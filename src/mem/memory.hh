/**
 * @file
 * Sparse byte-addressable main memory for functional emulation.
 */

#ifndef ELAG_MEM_MEMORY_HH
#define ELAG_MEM_MEMORY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace elag {

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

namespace mem {

/**
 * Sparse paged memory. Pages are allocated on first touch and
 * zero-initialized, so programs may read uninitialized memory and
 * observe zeros (like a freshly mapped heap).
 */
class MainMemory
{
  public:
    /** @param size total addressable bytes */
    explicit MainMemory(uint64_t size);

    uint8_t readByte(uint32_t addr) const;
    void writeByte(uint32_t addr, uint8_t value);

    /** Little-endian 32-bit access; no alignment requirement. */
    uint32_t readWord(uint32_t addr) const;
    void writeWord(uint32_t addr, uint32_t value);

    /** Bulk initialization helper. */
    void writeBlock(uint32_t addr, const std::vector<uint8_t> &data);

    uint64_t size() const { return size_; }

    /** Number of pages actually allocated (for tests). */
    size_t allocatedPages() const { return pages.size(); }

    /**
     * Checkpoint the memory image: allocated pages only, each
     * zero-run-length + varint compressed (sparse images shrink to a
     * few bytes per untouched region). restore() replaces the whole
     * image and must see the same configured size.
     */
    void serialize(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    static constexpr uint32_t PageShift = 12;
    static constexpr uint32_t PageSize = 1u << PageShift;

    void checkAddr(uint32_t addr, uint32_t bytes) const;
    uint8_t *pageFor(uint32_t addr);
    const uint8_t *pageForRead(uint32_t addr) const;

    uint64_t size_;
    mutable std::map<uint32_t, std::unique_ptr<uint8_t[]>> pages;
    /**
     * One-entry page cache: emulated accesses are strongly page-
     * local, and this keeps the per-load/store map walk off the
     * emulator's hot loop. Pages are never deallocated, so a cached
     * pointer can only go stale by pointing at nothing (absent pages
     * are never cached). Per-instance state: each Emulator owns its
     * MainMemory, so concurrent simulations do not share this.
     */
    mutable uint32_t cachedPageNo = ~0u;
    mutable uint8_t *cachedPage = nullptr;
};

} // namespace mem
} // namespace elag

#endif // ELAG_MEM_MEMORY_HH
