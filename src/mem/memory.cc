#include "mem/memory.hh"

#include <cstring>

#include "ckpt/serial.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace elag {
namespace mem {

MainMemory::MainMemory(uint64_t size)
    : size_(size)
{
}

void
MainMemory::checkAddr(uint32_t addr, uint32_t bytes) const
{
    if (static_cast<uint64_t>(addr) + bytes > size_) {
        fatal("memory access out of range: addr=0x%x size=%u", addr,
              bytes);
    }
}

uint8_t *
MainMemory::pageFor(uint32_t addr)
{
    uint32_t page = addr >> PageShift;
    if (page == cachedPageNo)
        return cachedPage;
    auto it = pages.find(page);
    if (it == pages.end()) {
        auto data = std::make_unique<uint8_t[]>(PageSize);
        std::memset(data.get(), 0, PageSize);
        it = pages.emplace(page, std::move(data)).first;
    }
    cachedPageNo = page;
    cachedPage = it->second.get();
    return cachedPage;
}

const uint8_t *
MainMemory::pageForRead(uint32_t addr) const
{
    uint32_t page = addr >> PageShift;
    if (page == cachedPageNo)
        return cachedPage;
    auto it = pages.find(page);
    if (it == pages.end())
        return nullptr;
    cachedPageNo = page;
    cachedPage = it->second.get();
    return cachedPage;
}

uint8_t
MainMemory::readByte(uint32_t addr) const
{
    checkAddr(addr, 1);
    const uint8_t *page = pageForRead(addr);
    return page ? page[addr & (PageSize - 1)] : 0;
}

void
MainMemory::writeByte(uint32_t addr, uint8_t value)
{
    checkAddr(addr, 1);
    pageFor(addr)[addr & (PageSize - 1)] = value;
}

uint32_t
MainMemory::readWord(uint32_t addr) const
{
    checkAddr(addr, 4);
    // Fast path: whole word within one page.
    uint32_t off = addr & (PageSize - 1);
    if (off + 4 <= PageSize) {
        const uint8_t *page = pageForRead(addr);
        if (!page)
            return 0;
        uint32_t v;
        std::memcpy(&v, page + off, 4);
        return v;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(readByte(addr + i)) << (8 * i);
    return v;
}

void
MainMemory::writeWord(uint32_t addr, uint32_t value)
{
    checkAddr(addr, 4);
    uint32_t off = addr & (PageSize - 1);
    if (off + 4 <= PageSize) {
        std::memcpy(pageFor(addr) + off, &value, 4);
        return;
    }
    for (int i = 0; i < 4; ++i)
        writeByte(addr + i, static_cast<uint8_t>(value >> (8 * i)));
}

void
MainMemory::writeBlock(uint32_t addr, const std::vector<uint8_t> &data)
{
    for (size_t i = 0; i < data.size(); ++i)
        writeByte(addr + static_cast<uint32_t>(i), data[i]);
}

void
MainMemory::serialize(ckpt::Writer &w) const
{
    w.u64(size_);
    w.varint(pages.size());
    // std::map iterates in ascending page order, so the encoding is
    // deterministic for a given image.
    for (const auto &kv : pages) {
        w.varint(kv.first);
        const uint8_t *data = kv.second.get();
        // Alternating (zero run, literal run) pairs until the page
        // is covered. Literal runs extend until 8 consecutive zero
        // bytes appear, so short zero gaps don't fragment them.
        uint32_t pos = 0;
        while (pos < PageSize) {
            uint32_t zeroStart = pos;
            while (pos < PageSize && data[pos] == 0)
                ++pos;
            w.varint(pos - zeroStart);
            uint32_t litStart = pos;
            while (pos < PageSize) {
                if (data[pos] != 0) {
                    ++pos;
                    continue;
                }
                uint32_t z = pos;
                while (z < PageSize && z - pos < 8 && data[z] == 0)
                    ++z;
                if (z - pos >= 8 || z == PageSize)
                    break;
                pos = z;
            }
            w.varint(pos - litStart);
            w.bytes(data + litStart, pos - litStart);
        }
    }
}

void
MainMemory::restore(ckpt::Reader &r)
{
    uint64_t size = r.u64();
    if (size != size_) {
        throw ckpt::CkptError(
            ckpt::ErrorKind::Mismatch,
            formatString("memory image size mismatch: checkpoint "
                         "%llu bytes, machine %llu",
                         static_cast<unsigned long long>(size),
                         static_cast<unsigned long long>(size_)));
    }
    pages.clear();
    cachedPageNo = ~0u;
    cachedPage = nullptr;
    uint64_t count = r.varint();
    for (uint64_t i = 0; i < count; ++i) {
        uint64_t pageNo = r.varint();
        if ((pageNo << PageShift) >= size_) {
            throw ckpt::CkptError(ckpt::ErrorKind::Corrupt,
                                  "memory checkpoint page out of "
                                  "range");
        }
        auto data = std::make_unique<uint8_t[]>(PageSize);
        std::memset(data.get(), 0, PageSize);
        uint64_t pos = 0;
        while (pos < PageSize) {
            pos += r.varint();
            uint64_t lit = r.varint();
            if (pos + lit > PageSize) {
                throw ckpt::CkptError(ckpt::ErrorKind::Corrupt,
                                      "memory checkpoint page run "
                                      "overflows the page");
            }
            r.bytes(data.get() + pos, lit);
            pos += lit;
        }
        pages.emplace(static_cast<uint32_t>(pageNo),
                      std::move(data));
    }
}

} // namespace mem
} // namespace elag
