/**
 * @file
 * Timing-only cache model.
 *
 * Functional data always comes from MainMemory (the emulator is the
 * source of truth); this model tracks hit/miss timing for a
 * direct-mapped or set-associative, non-blocking cache. The data
 * cache of the paper is 64K direct-mapped, 64-byte blocks,
 * write-through with no write allocate, 12-cycle miss penalty.
 */

#ifndef ELAG_MEM_CACHE_HH
#define ELAG_MEM_CACHE_HH

#include <bit>
#include <cstdint>
#include <map>
#include <vector>

namespace elag {

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

namespace mem {

/** Cache geometry and timing parameters. */
struct CacheConfig
{
    uint32_t sizeBytes = 64 * 1024;
    uint32_t blockSize = 64;
    uint32_t assoc = 1;
    uint32_t missPenalty = 12;
    bool writeAllocate = false;
};

/** Result of a timed cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** Cycle at which the data is available. */
    uint64_t readyCycle = 0;
    /** True when the block was already being filled (partial miss). */
    bool mergedWithFill = false;
};

/**
 * Non-blocking cache timing model with LRU replacement.
 *
 * Misses allocate a fill completing at access+missPenalty; accesses
 * to a block whose fill is in flight complete when the fill does.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Timed read access at @p cycle.
     * @param allocate_on_miss if false, a miss does not fill the
     *        cache (used for no-write-allocate stores).
     * @param extra_penalty additional cycles added to the fill of a
     *        newly-missing block (fault-injected latency jitter);
     *        hits and fill merges are unaffected.
     */
    CacheAccessResult access(uint32_t addr, uint64_t cycle,
                             bool allocate_on_miss = true,
                             uint32_t extra_penalty = 0);

    /** @return true if @p addr would hit right now (no state change,
     *  in-flight fills count as hits only once complete). */
    bool wouldHit(uint32_t addr, uint64_t cycle) const;

    const CacheConfig &config() const { return cfg; }

    // Statistics.
    uint64_t hits() const { return numHits; }
    uint64_t misses() const { return numMisses; }
    uint64_t fillMerges() const { return numMerges; }

    void reset();

    /**
     * Checkpoint every line (valid/tag/LRU stamp/fill cycle) plus
     * the hit/miss/merge tallies. The restoring cache must have been
     * constructed with the same geometry.
     */
    void serialize(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    struct Line
    {
        bool valid = false;
        uint32_t tag = 0;
        uint64_t lastUsed = 0;
        /** Cycle the fill completes; data usable at/after this. */
        uint64_t fillDone = 0;
    };

    // The geometry divisions sit on the per-retired-instruction hot
    // path (one I$ access per instruction); with the usual
    // power-of-two geometry they reduce to shifts and masks.
    uint32_t blockFor(uint32_t addr) const
    {
        return pow2Geometry ? addr >> blockShift
                            : addr / cfg.blockSize;
    }
    uint32_t setFor(uint32_t block) const
    {
        return pow2Geometry ? (block & setMask) : block % numSets;
    }
    uint32_t tagFor(uint32_t block) const
    {
        return pow2Geometry ? block >> setShift : block / numSets;
    }
    Line *findLine(uint32_t addr);
    const Line *findLine(uint32_t addr) const;

    CacheConfig cfg;
    uint32_t numSets;
    bool pow2Geometry = false;
    uint32_t blockShift = 0;
    uint32_t setShift = 0;
    uint32_t setMask = 0;
    std::vector<Line> lines; ///< numSets * assoc, set-major
    uint64_t numHits = 0;
    uint64_t numMisses = 0;
    uint64_t numMerges = 0;
};

/**
 * Branch target buffer with 2-bit saturating counters
 * (1K entries, direct-mapped on the PC, per the paper's machine).
 */
class Btb
{
  public:
    explicit Btb(uint32_t entries = 1024);

    /** Prediction for the branch at @p pc. */
    struct Prediction
    {
        bool hit = false;        ///< entry present with matching tag
        bool taken = false;      ///< counter >= 2
        uint32_t target = 0;     ///< stored target
    };

    Prediction predict(uint32_t pc) const;

    /** Train with the resolved outcome. */
    void update(uint32_t pc, bool taken, uint32_t target);

    void reset();

    /** Checkpoint every entry; geometry must match on restore. */
    void serialize(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t tag = 0;
        uint32_t target = 0;
        uint8_t counter = 0; ///< 2-bit saturating
    };

    // Two lookups per retired branch; shift/mask when pow2-sized.
    uint32_t indexOf(uint32_t pc) const
    {
        return pow2Entries ? (pc & indexMask) : pc % entries;
    }
    uint32_t tagOf(uint32_t pc) const
    {
        return pow2Entries ? pc >> indexShift : pc / entries;
    }

    uint32_t entries;
    bool pow2Entries = false;
    uint32_t indexShift = 0;
    uint32_t indexMask = 0;
    std::vector<Entry> table;
};

} // namespace mem
} // namespace elag

#endif // ELAG_MEM_CACHE_HH
