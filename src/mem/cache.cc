#include "mem/cache.hh"

#include "ckpt/serial.hh"
#include "support/logging.hh"

namespace elag {
namespace mem {

Cache::Cache(const CacheConfig &config)
    : cfg(config)
{
    elag_assert(cfg.blockSize > 0 && cfg.assoc > 0);
    elag_assert(cfg.sizeBytes % (cfg.blockSize * cfg.assoc) == 0);
    numSets = cfg.sizeBytes / (cfg.blockSize * cfg.assoc);
    elag_assert(numSets > 0);
    pow2Geometry = std::has_single_bit(cfg.blockSize) &&
                   std::has_single_bit(numSets);
    if (pow2Geometry) {
        blockShift = static_cast<uint32_t>(
            std::countr_zero(cfg.blockSize));
        setShift = static_cast<uint32_t>(std::countr_zero(numSets));
        setMask = numSets - 1;
    }
    lines.assign(static_cast<size_t>(numSets) * cfg.assoc, Line());
}

Cache::Line *
Cache::findLine(uint32_t addr)
{
    uint32_t block = blockFor(addr);
    uint32_t set = setFor(block);
    uint32_t tag = tagFor(block);
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        Line &line = lines[static_cast<size_t>(set) * cfg.assoc + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(uint32_t addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

CacheAccessResult
Cache::access(uint32_t addr, uint64_t cycle, bool allocate_on_miss,
              uint32_t extra_penalty)
{
    CacheAccessResult result;
    Line *line = findLine(addr);
    if (line) {
        line->lastUsed = cycle;
        if (line->fillDone <= cycle) {
            ++numHits;
            result.hit = true;
            result.readyCycle = cycle;
        } else {
            // Fill in flight: merge with it.
            ++numMerges;
            result.hit = false;
            result.mergedWithFill = true;
            result.readyCycle = line->fillDone;
        }
        return result;
    }

    ++numMisses;
    result.hit = false;
    result.readyCycle = cycle + cfg.missPenalty + extra_penalty;
    if (allocate_on_miss) {
        uint32_t block = blockFor(addr);
        uint32_t set = setFor(block);
        Line *victim = nullptr;
        for (uint32_t w = 0; w < cfg.assoc; ++w) {
            Line &cand =
                lines[static_cast<size_t>(set) * cfg.assoc + w];
            if (!cand.valid) {
                victim = &cand;
                break;
            }
            if (!victim || cand.lastUsed < victim->lastUsed)
                victim = &cand;
        }
        victim->valid = true;
        victim->tag = tagFor(block);
        victim->lastUsed = cycle;
        victim->fillDone = result.readyCycle;
    }
    return result;
}

bool
Cache::wouldHit(uint32_t addr, uint64_t cycle) const
{
    const Line *line = findLine(addr);
    return line && line->fillDone <= cycle;
}

void
Cache::reset()
{
    for (auto &line : lines)
        line = Line();
    numHits = numMisses = numMerges = 0;
}

Btb::Btb(uint32_t num_entries)
    : entries(num_entries), table(num_entries)
{
    elag_assert(num_entries > 0);
    pow2Entries = std::has_single_bit(entries);
    if (pow2Entries) {
        indexShift = static_cast<uint32_t>(std::countr_zero(entries));
        indexMask = entries - 1;
    }
}

Btb::Prediction
Btb::predict(uint32_t pc) const
{
    const Entry &entry = table[indexOf(pc)];
    Prediction pred;
    if (entry.valid && entry.tag == tagOf(pc)) {
        pred.hit = true;
        pred.taken = entry.counter >= 2;
        pred.target = entry.target;
    }
    return pred;
}

void
Btb::update(uint32_t pc, bool taken, uint32_t target)
{
    Entry &entry = table[indexOf(pc)];
    uint32_t tag = tagOf(pc);
    if (!entry.valid || entry.tag != tag) {
        // Allocate on taken branches only; not-taken branches fall
        // through and need no BTB entry.
        if (!taken)
            return;
        entry.valid = true;
        entry.tag = tag;
        entry.target = target;
        entry.counter = 2;
        return;
    }
    if (taken) {
        if (entry.counter < 3)
            ++entry.counter;
        entry.target = target;
    } else if (entry.counter > 0) {
        --entry.counter;
    }
}

void
Btb::reset()
{
    for (auto &entry : table)
        entry = Entry();
}

void
Cache::serialize(ckpt::Writer &w) const
{
    w.varint(lines.size());
    for (const Line &line : lines) {
        w.b(line.valid);
        w.varint(line.tag);
        w.varint(line.lastUsed);
        w.varint(line.fillDone);
    }
    w.varint(numHits);
    w.varint(numMisses);
    w.varint(numMerges);
}

void
Cache::restore(ckpt::Reader &r)
{
    uint64_t count = r.varint();
    if (count != lines.size()) {
        throw ckpt::CkptError(ckpt::ErrorKind::Mismatch,
                              "cache geometry mismatch between "
                              "checkpoint and machine config");
    }
    for (Line &line : lines) {
        line.valid = r.b();
        line.tag = static_cast<uint32_t>(r.varint());
        line.lastUsed = r.varint();
        line.fillDone = r.varint();
    }
    numHits = r.varint();
    numMisses = r.varint();
    numMerges = r.varint();
}

void
Btb::serialize(ckpt::Writer &w) const
{
    w.varint(table.size());
    for (const Entry &entry : table) {
        w.b(entry.valid);
        w.varint(entry.tag);
        w.varint(entry.target);
        w.u8(entry.counter);
    }
}

void
Btb::restore(ckpt::Reader &r)
{
    uint64_t count = r.varint();
    if (count != table.size()) {
        throw ckpt::CkptError(ckpt::ErrorKind::Mismatch,
                              "BTB geometry mismatch between "
                              "checkpoint and machine config");
    }
    for (Entry &entry : table) {
        entry.valid = r.b();
        entry.tag = static_cast<uint32_t>(r.varint());
        entry.target = static_cast<uint32_t>(r.varint());
        entry.counter = r.u8();
    }
}

} // namespace mem
} // namespace elag
