/**
 * @file
 * Build identification surfaced through the `stats` verb and the
 * metrics plane, so a scrape can tell which binary it is talking to.
 */

#ifndef ELAG_OBS_BUILD_INFO_HH
#define ELAG_OBS_BUILD_INFO_HH

#include <string>

namespace elag {

class JsonWriter;

namespace obs {

struct BuildInfo
{
    /** Toolchain release (bumped per PR series, not per commit). */
    std::string version;
    /** Host compiler identification (__VERSION__). */
    std::string compiler;
    /** C++ standard the build targets. */
    long standard;
    /** false when spans were compiled out (-DELAG_OBS_SPANS=OFF). */
    bool spansCompiled;
};

/** The running binary's build identification. */
const BuildInfo &buildInfo();

/** Serialize as {"version", "compiler", "std", "spans"}. */
void writeJson(JsonWriter &w, const BuildInfo &info);

} // namespace obs
} // namespace elag

#endif // ELAG_OBS_BUILD_INFO_HH
