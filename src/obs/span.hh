/**
 * @file
 * Span tracing: where wall-time goes, as a Chrome trace-event file.
 *
 * A Span is an RAII scope marker. While the process-wide tracer is
 * disabled (the default) constructing one costs a single predictable
 * branch on an atomic flag — cheap enough to stay compiled into
 * release builds, like ELAG_TRACE_EVT. When a tool arms the tracer
 * (`--trace-out=FILE` or the ELAG_TRACE_OUT environment variable),
 * every span that closes records one complete event:
 *
 *     {
 *         obs::Span span("simulate", "serve");
 *         span.arg("trace_id", request.trace);
 *         ...work...
 *     }   // event recorded here
 *
 * flush() writes the collected events as Chrome trace-event JSON
 * ({"traceEvents": [...]}) loadable directly in Perfetto or
 * chrome://tracing. Timestamps are microseconds on the tracer's own
 * monotonic epoch; cross-process correlation (client vs. server view
 * of one request) goes through the `trace_id` argument instead,
 * which the serving protocol propagates end to end.
 *
 * Spans may be constructed against a private SpanTracer in tests;
 * production code uses SpanTracer::process().
 *
 * Building with -DELAG_OBS_SPANS=OFF defines ELAG_NO_SPANS and
 * compiles Span down to an empty struct — the baseline the CI
 * bench_micro guard compares against to bound the disabled-path
 * overhead.
 */

#ifndef ELAG_OBS_SPAN_HH
#define ELAG_OBS_SPAN_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace elag {
namespace obs {

/** Collected trace events, shared by every Span in the process. */
class SpanTracer
{
  public:
    /** The process-wide tracer (what bare Span construction uses). */
    static SpanTracer &process();

    SpanTracer();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Arm the tracer; events buffer in memory until flush() writes
     * them to @p path. Arming is idempotent; the last path wins.
     */
    void enable(const std::string &path);

    /** Arm from ELAG_TRACE_OUT if set (idempotent). */
    void applyEnvironment();

    /** Record one complete event (normally via Span). */
    void record(const std::string &name, const std::string &cat,
                uint64_t ts_us, uint64_t dur_us,
                const std::vector<std::pair<std::string, std::string>>
                    &args);

    /**
     * Write the trace-event document to the armed path (rewriting
     * the whole file, so periodic flushes are safe). @return false
     * when disarmed or the file cannot be written.
     */
    bool flush();

    /** The trace-event JSON document (tests, flush). */
    std::string json() const;

    /** Events recorded so far (excludes dropped ones). */
    uint64_t eventCount() const;

    /** Events discarded after the in-memory cap was hit. */
    uint64_t droppedCount() const;

    /** Process label emitted as the process_name metadata event. */
    void setProcessLabel(const std::string &label);

    /** Microseconds since this tracer's epoch. */
    uint64_t nowMicros() const;

    /** Drop all events and disarm (tests). */
    void reset();

    SpanTracer(const SpanTracer &) = delete;
    SpanTracer &operator=(const SpanTracer &) = delete;

  private:
    /** Bound on buffered events so a long-lived daemon cannot grow
     *  without limit; past it events count as dropped. */
    static constexpr size_t kMaxEvents = 1u << 20;

    struct Event
    {
        std::string name;
        std::string cat;
        uint64_t ts = 0;
        uint64_t dur = 0;
        uint32_t tid = 0;
        std::vector<std::pair<std::string, std::string>> args;
    };

    uint32_t tidLocked(std::thread::id id);

    mutable std::mutex mu;
    std::atomic<bool> enabled_{false};
    std::string path_;
    std::string label_;
    std::vector<Event> events;
    std::map<std::thread::id, uint32_t> tids;
    uint64_t dropped_ = 0;
    std::chrono::steady_clock::time_point epoch_;
};

#ifdef ELAG_NO_SPANS

/** Spans compiled out (-DELAG_OBS_SPANS=OFF): zero-size no-ops. */
class Span
{
  public:
    explicit Span(const char *, const char *) {}
    Span(const char *, const char *, SpanTracer &) {}
    void arg(const char *, const std::string &) {}
    void end() {}
    bool active() const { return false; }
};

#else

/**
 * RAII scope timer. Inactive (one branch, no stores beyond a null
 * pointer) when the tracer is disabled at construction time.
 */
class Span
{
  public:
    explicit Span(const char *name, const char *cat)
        : Span(name, cat, SpanTracer::process())
    {}

    Span(const char *name, const char *cat, SpanTracer &tracer)
    {
        if (!tracer.enabled())
            return;
        tracer_ = &tracer;
        name_ = name;
        cat_ = cat;
        start_ = tracer.nowMicros();
    }

    ~Span() { end(); }

    /** Attach a string argument (no-op when inactive). */
    void
    arg(const char *key, const std::string &value)
    {
        if (tracer_)
            args_.emplace_back(key, value);
    }

    /** Close the span early (idempotent; the destructor calls it). */
    void
    end()
    {
        if (!tracer_)
            return;
        tracer_->record(name_, cat_, start_,
                        tracer_->nowMicros() - start_, args_);
        tracer_ = nullptr;
    }

    bool active() const { return tracer_ != nullptr; }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    SpanTracer *tracer_ = nullptr;
    const char *name_ = "";
    const char *cat_ = "";
    uint64_t start_ = 0;
    std::vector<std::pair<std::string, std::string>> args_;
};

#endif // ELAG_NO_SPANS

/**
 * A fresh request-correlation ID: 16 hex digits mixing the process
 * id, a per-process random epoch, and a sequence number, so IDs from
 * a client and a server (or two clients) never collide in practice.
 */
std::string newTraceId();

} // namespace obs
} // namespace elag

#endif // ELAG_OBS_SPAN_HH
