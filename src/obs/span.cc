#include "obs/span.hh"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "support/json.hh"
#include "support/logging.hh"

namespace elag {
namespace obs {

SpanTracer &
SpanTracer::process()
{
    static SpanTracer tracer;
    return tracer;
}

SpanTracer::SpanTracer() : epoch_(std::chrono::steady_clock::now()) {}

void
SpanTracer::enable(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu);
    path_ = path;
    enabled_.store(true, std::memory_order_relaxed);
}

void
SpanTracer::applyEnvironment()
{
    const char *path = std::getenv("ELAG_TRACE_OUT");
    if (path && *path && !enabled())
        enable(path);
}

uint64_t
SpanTracer::nowMicros() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

uint32_t
SpanTracer::tidLocked(std::thread::id id)
{
    auto it = tids.find(id);
    if (it == tids.end())
        it = tids.emplace(id, static_cast<uint32_t>(tids.size() + 1))
                 .first;
    return it->second;
}

void
SpanTracer::record(
    const std::string &name, const std::string &cat, uint64_t ts_us,
    uint64_t dur_us,
    const std::vector<std::pair<std::string, std::string>> &args)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() >= kMaxEvents) {
        ++dropped_;
        return;
    }
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.ts = ts_us;
    ev.dur = dur_us;
    ev.tid = tidLocked(std::this_thread::get_id());
    ev.args = args;
    events.push_back(std::move(ev));
}

std::string
SpanTracer::json() const
{
    std::lock_guard<std::mutex> lock(mu);
    uint64_t pid = static_cast<uint64_t>(::getpid());

    JsonWriter w(0);
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();

    // Metadata: name the process so Perfetto's track labels read as
    // the tool, not a bare pid.
    w.beginObject();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", pid);
    w.key("args").beginObject();
    w.field("name", label_.empty() ? "elag" : label_);
    w.endObject();
    w.endObject();

    for (const Event &ev : events) {
        w.beginObject();
        w.field("name", ev.name);
        w.field("cat", ev.cat);
        w.field("ph", "X");
        w.field("ts", ev.ts);
        w.field("dur", ev.dur);
        w.field("pid", pid);
        w.field("tid", static_cast<uint64_t>(ev.tid));
        if (!ev.args.empty()) {
            w.key("args").beginObject();
            for (const auto &kv : ev.args)
                w.field(kv.first, kv.second);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    if (dropped_)
        w.field("droppedEvents", dropped_);
    w.endObject();
    return w.str();
}

bool
SpanTracer::flush()
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!enabled_.load(std::memory_order_relaxed) ||
            path_.empty()) {
            return false;
        }
        path = path_;
    }
    std::string doc = json();
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        warn("obs: cannot write trace to '%s'", path.c_str());
        return false;
    }
    bool ok =
        std::fwrite(doc.data(), 1, doc.size(), out) == doc.size();
    ok = std::fputc('\n', out) != EOF && ok;
    ok = std::fclose(out) == 0 && ok;
    return ok;
}

uint64_t
SpanTracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return events.size();
}

uint64_t
SpanTracer::droppedCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return dropped_;
}

void
SpanTracer::setProcessLabel(const std::string &label)
{
    std::lock_guard<std::mutex> lock(mu);
    label_ = label;
}

void
SpanTracer::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    enabled_.store(false, std::memory_order_relaxed);
    path_.clear();
    events.clear();
    tids.clear();
    dropped_ = 0;
}

std::string
newTraceId()
{
    // Process-unique epoch: pid mixed with a startup clock sample,
    // so two processes started the same second still diverge.
    static const uint64_t processSalt = [] {
        uint64_t z =
            static_cast<uint64_t>(::getpid()) ^
            static_cast<uint64_t>(
                std::chrono::steady_clock::now().time_since_epoch()
                    .count());
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }();
    static std::atomic<uint64_t> seq{0};
    uint64_t id = processSalt ^
                  (seq.fetch_add(1, std::memory_order_relaxed) *
                   0x9e3779b97f4a7c15ULL);
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

} // namespace obs
} // namespace elag
