/**
 * @file
 * Process-wide metrics registry: the one place runtime counters live.
 *
 * Before this layer, operational statistics were scattered across
 * bespoke structs — serve::ServerMetrics, sim::RunCache::Stats, the
 * campaign runner's taxonomy tallies — each with its own locking and
 * its own serialization dialect. The registry absorbs them behind a
 * single typed API:
 *
 *     obs::Counter &hits = obs::Registry::process().counter(
 *         "elag_runcache_hits_total", "Run-cache lookups served "
 *         "from a completed entry.");
 *     hits.inc();
 *
 * Three metric kinds, mirroring the Prometheus data model:
 *
 *  - Counter: monotonically increasing; lock-free (one relaxed
 *    atomic add) so it can sit on simulator hot paths.
 *  - Gauge: a settable signed level (queue depths, entry counts).
 *  - Histogram: fixed-width buckets plus overflow, every cell a
 *    relaxed atomic, for latency/size distributions.
 *
 * Families are identified by name (convention:
 * `elag_<subsystem>_<name>_<unit>`, `_total` suffix on counters) and
 * may carry label sets, e.g. requests partitioned by verb:
 *
 *     registry.counter("elag_serve_requests_total", help,
 *                      {{"verb", "simulate"}});
 *
 * Export formats: writeJson() for the machine-readable stats
 * documents the toolchain already speaks, and prometheus() for the
 * text exposition format (`# HELP`/`# TYPE` comments, one
 * `name{labels} value` sample per line, histograms as cumulative
 * `_bucket{le=...}` series) so a scrape endpoint needs no extra
 * translation layer.
 *
 * Metric references returned by the registry stay valid for the
 * registry's lifetime; registration takes a lock, recording does
 * not. Most code uses the process() singleton; tests build private
 * instances.
 */

#ifndef ELAG_OBS_METRICS_HH
#define ELAG_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace elag {

class JsonWriter;

namespace obs {

/** One metric's label set, in canonical (registration) order. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotonic counter. inc() is one relaxed atomic add. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

  private:
    std::atomic<uint64_t> value_{0};
};

/** Settable signed level. */
class Gauge
{
  public:
    void
    set(int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(int64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-width-bucket histogram with an overflow bucket; every cell
 * is a relaxed atomic so concurrent observers never serialize.
 * Bucket i covers [i*width, (i+1)*width); samples past the last
 * bucket land in overflow. Exposed to Prometheus as the standard
 * cumulative `_bucket{le=...}` / `_sum` / `_count` series.
 */
class Histogram
{
  public:
    Histogram(size_t num_buckets, uint64_t bucket_width);

    void
    observe(uint64_t value)
    {
        size_t idx = static_cast<size_t>(value / width_);
        if (idx < buckets_.size())
            buckets_[idx].fetch_add(1, std::memory_order_relaxed);
        else
            overflow_.fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }
    uint64_t bucket(size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    uint64_t overflow() const
    {
        return overflow_.load(std::memory_order_relaxed);
    }
    size_t numBuckets() const { return buckets_.size(); }
    uint64_t bucketWidth() const { return width_; }
    double mean() const;

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

  private:
    std::vector<std::atomic<uint64_t>> buckets_;
    uint64_t width_;
    std::atomic<uint64_t> overflow_{0};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
};

/** Kind tag of a registered family. */
enum class MetricKind { Counter, Gauge, Histogram };

/**
 * The registry proper: families keyed by metric name, children keyed
 * by label set. Thread-safe; returned references live as long as the
 * registry.
 */
class Registry
{
  public:
    /** The process-wide registry used by all subsystems. */
    static Registry &process();

    // Out of line: Family is incomplete here.
    Registry();
    ~Registry();

    /**
     * Get (registering on first use) a metric. Re-registration with
     * the same name must use the same kind — a name collision across
     * kinds reports through panic(). Help text is taken from the
     * first registration. Names must match
     * [a-zA-Z_:][a-zA-Z0-9_:]*; label names likewise.
     */
    Counter &counter(const std::string &name, const std::string &help,
                     const Labels &labels = {});
    Gauge &gauge(const std::string &name, const std::string &help,
                 const Labels &labels = {});
    Histogram &histogram(const std::string &name,
                         const std::string &help, size_t num_buckets,
                         uint64_t bucket_width,
                         const Labels &labels = {});

    /**
     * Serialize everything as one JSON object keyed by flat sample
     * name (`name` or `name{label="v",...}`): counters/gauges as
     * numbers, histograms as {buckets, overflow, count, sum, mean,
     * bucket_width} objects. Families and children emit in sorted
     * order, so the document is deterministic for goldens.
     */
    void writeJson(JsonWriter &w) const;

    /** Prometheus text exposition (version 0.0.4) of all families. */
    std::string prometheus() const;

    /**
     * Counters only, as a flat JSON object {"flat-name": value}.
     * This is the durable snapshot format the campaign manifest
     * carries so a resumed run can restoreCounters() and keep
     * accumulating instead of starting from zero.
     */
    void writeCountersJson(JsonWriter &w) const;

    /**
     * Add the values of a writeCountersJson() document into this
     * registry's counters, registering any that do not exist yet.
     * @return the number of counters restored; 0 on a document that
     * does not parse as a flat string->integer object.
     */
    size_t restoreCounters(const std::string &raw_object);

  private:
    struct Family;

    Family &family(const std::string &name, MetricKind kind,
                   const std::string &help);

    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Family>> families;
};

/**
 * @return "" if @p text is a well-formed Prometheus text exposition
 * (every line a `# HELP`/`# TYPE`/`# EOF` comment or a
 * `name{labels} value` sample), else a one-line description of the
 * first offending line. Used by tests and the CI scrape check.
 */
std::string validatePrometheus(const std::string &text);

} // namespace obs
} // namespace elag

#endif // ELAG_OBS_METRICS_HH
