#include "obs/build_info.hh"

#include "support/json.hh"

namespace elag {
namespace obs {

const BuildInfo &
buildInfo()
{
    static const BuildInfo info = [] {
        BuildInfo b;
        b.version = "0.6.0";
#ifdef __VERSION__
        b.compiler = __VERSION__;
#else
        b.compiler = "unknown";
#endif
        b.standard = __cplusplus;
#ifdef ELAG_NO_SPANS
        b.spansCompiled = false;
#else
        b.spansCompiled = true;
#endif
        return b;
    }();
    return info;
}

void
writeJson(JsonWriter &w, const BuildInfo &info)
{
    w.beginObject();
    w.field("version", info.version);
    w.field("compiler", info.compiler);
    w.field("std", static_cast<int64_t>(info.standard));
    w.field("spans", info.spansCompiled);
    w.endObject();
}

} // namespace obs
} // namespace elag
