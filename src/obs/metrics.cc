#include "obs/metrics.hh"

#include <algorithm>
#include <cctype>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace elag {
namespace obs {

namespace {

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) ||
               c == '_' || c == ':';
    };
    auto tail = [&](char c) {
        return head(c) || std::isdigit(static_cast<unsigned char>(c));
    };
    if (!head(name[0]))
        return false;
    return std::all_of(name.begin() + 1, name.end(), tail);
}

/** Canonical `k1="v1",k2="v2"` rendering (registration order). */
std::string
renderLabels(const Labels &labels)
{
    std::string out;
    for (const auto &kv : labels) {
        if (!out.empty())
            out += ',';
        out += kv.first + "=\"" + jsonEscape(kv.second) + "\"";
    }
    return out;
}

/** Flat sample name: `name` or `name{labels}`. */
std::string
flatName(const std::string &name, const std::string &labels)
{
    return labels.empty() ? name : name + "{" + labels + "}";
}

/** Same, with an extra label appended (histogram `le` series). */
std::string
flatNameWith(const std::string &name, const std::string &labels,
             const std::string &extra)
{
    std::string all =
        labels.empty() ? extra
                       : (extra.empty() ? labels : labels + "," + extra);
    return flatName(name, all);
}

const char *
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

} // anonymous namespace

Histogram::Histogram(size_t num_buckets, uint64_t bucket_width)
    : buckets_(num_buckets), width_(bucket_width ? bucket_width : 1)
{
    elag_assert(num_buckets > 0);
}

double
Histogram::mean() const
{
    uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
}

/**
 * One registered family: kind + help + children keyed by rendered
 * label string. Exactly one of the child maps is populated,
 * according to kind.
 */
struct Registry::Family
{
    MetricKind kind;
    std::string help;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry &
Registry::process()
{
    static Registry registry;
    return registry;
}

Registry::Family &
Registry::family(const std::string &name, MetricKind kind,
                 const std::string &help)
{
    if (!validMetricName(name))
        panic("obs: invalid metric name '%s'", name.c_str());
    auto it = families.find(name);
    if (it == families.end()) {
        auto fam = std::make_unique<Family>();
        fam->kind = kind;
        fam->help = help;
        it = families.emplace(name, std::move(fam)).first;
    } else if (it->second->kind != kind) {
        panic("obs: metric '%s' registered as %s, requested as %s",
              name.c_str(), kindName(it->second->kind),
              kindName(kind));
    }
    return *it->second;
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  const Labels &labels)
{
    std::lock_guard<std::mutex> lock(mu);
    Family &fam = family(name, MetricKind::Counter, help);
    auto &slot = fam.counters[renderLabels(labels)];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                const Labels &labels)
{
    std::lock_guard<std::mutex> lock(mu);
    Family &fam = family(name, MetricKind::Gauge, help);
    auto &slot = fam.gauges[renderLabels(labels)];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    size_t num_buckets, uint64_t bucket_width,
                    const Labels &labels)
{
    std::lock_guard<std::mutex> lock(mu);
    Family &fam = family(name, MetricKind::Histogram, help);
    auto &slot = fam.histograms[renderLabels(labels)];
    if (!slot)
        slot = std::make_unique<Histogram>(num_buckets, bucket_width);
    return *slot;
}

void
Registry::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(mu);
    w.beginObject();
    for (const auto &fkv : families) {
        const Family &fam = *fkv.second;
        for (const auto &ckv : fam.counters)
            w.field(flatName(fkv.first, ckv.first),
                    ckv.second->value());
        for (const auto &gkv : fam.gauges)
            w.field(flatName(fkv.first, gkv.first),
                    gkv.second->value());
        for (const auto &hkv : fam.histograms) {
            const Histogram &h = *hkv.second;
            w.key(flatName(fkv.first, hkv.first)).beginObject();
            w.field("count", h.count());
            w.field("sum", h.sum());
            w.field("mean", h.mean());
            w.field("bucket_width", h.bucketWidth());
            w.key("buckets").beginArray();
            for (size_t i = 0; i < h.numBuckets(); ++i)
                w.value(h.bucket(i));
            w.endArray();
            w.field("overflow", h.overflow());
            w.endObject();
        }
    }
    w.endObject();
}

std::string
Registry::prometheus() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::string out;
    for (const auto &fkv : families) {
        const std::string &name = fkv.first;
        const Family &fam = *fkv.second;
        if (!fam.help.empty())
            out += "# HELP " + name + " " + fam.help + "\n";
        out += "# TYPE " + name + " " +
               std::string(kindName(fam.kind)) + "\n";
        for (const auto &ckv : fam.counters) {
            out += flatName(name, ckv.first) + " " +
                   std::to_string(ckv.second->value()) + "\n";
        }
        for (const auto &gkv : fam.gauges) {
            out += flatName(name, gkv.first) + " " +
                   std::to_string(gkv.second->value()) + "\n";
        }
        for (const auto &hkv : fam.histograms) {
            const Histogram &h = *hkv.second;
            uint64_t cumulative = 0;
            for (size_t i = 0; i < h.numBuckets(); ++i) {
                cumulative += h.bucket(i);
                uint64_t le = h.bucketWidth() * (i + 1);
                out += flatNameWith(name + "_bucket", hkv.first,
                                    "le=\"" + std::to_string(le) +
                                        "\"") +
                       " " + std::to_string(cumulative) + "\n";
            }
            cumulative += h.overflow();
            out += flatNameWith(name + "_bucket", hkv.first,
                                "le=\"+Inf\"") +
                   " " + std::to_string(cumulative) + "\n";
            out += flatName(name + "_sum", hkv.first) + " " +
                   std::to_string(h.sum()) + "\n";
            out += flatName(name + "_count", hkv.first) + " " +
                   std::to_string(h.count()) + "\n";
        }
    }
    return out;
}

void
Registry::writeCountersJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(mu);
    w.beginObject();
    for (const auto &fkv : families) {
        for (const auto &ckv : fkv.second->counters)
            w.field(flatName(fkv.first, ckv.first),
                    ckv.second->value());
    }
    w.endObject();
}

namespace {

/**
 * Parse one flat sample name back into (family, labels). The flat
 * grammar is exactly what renderLabels/flatName produce: optional
 * {k="v",...} with JSON-style escapes inside the value.
 */
bool
parseFlatName(const std::string &flat, std::string &name,
              Labels &labels)
{
    size_t brace = flat.find('{');
    if (brace == std::string::npos) {
        name = flat;
        return validMetricName(name);
    }
    if (flat.back() != '}')
        return false;
    name = flat.substr(0, brace);
    if (!validMetricName(name))
        return false;
    size_t p = brace + 1;
    const size_t end = flat.size() - 1;
    while (p < end) {
        size_t eq = flat.find('=', p);
        if (eq == std::string::npos || eq + 1 >= end ||
            flat[eq + 1] != '"') {
            return false;
        }
        std::string key = flat.substr(p, eq - p);
        std::string value;
        size_t q = eq + 2;
        for (; q < end && flat[q] != '"'; ++q) {
            if (flat[q] == '\\' && q + 1 < end)
                value += flat[++q];
            else
                value += flat[q];
        }
        if (q >= end)
            return false;
        labels.emplace_back(key, value);
        p = q + 1;
        if (p < end) {
            if (flat[p] != ',')
                return false;
            ++p;
        }
    }
    return true;
}

} // anonymous namespace

size_t
Registry::restoreCounters(const std::string &raw_object)
{
    // Scan the flat {"name": value, ...} document directly: keys can
    // contain braces and escaped quotes, so the line-oriented
    // jsonExtract helpers do not apply.
    size_t restored = 0;
    size_t p = raw_object.find('{');
    if (p == std::string::npos)
        return 0;
    ++p;
    while (p < raw_object.size()) {
        size_t open = raw_object.find('"', p);
        if (open == std::string::npos)
            break;
        std::string key;
        size_t q = open + 1;
        for (; q < raw_object.size() && raw_object[q] != '"'; ++q) {
            if (raw_object[q] == '\\' && q + 1 < raw_object.size())
                key += raw_object[++q];
            else
                key += raw_object[q];
        }
        if (q >= raw_object.size())
            break;
        size_t colon = raw_object.find(':', q + 1);
        if (colon == std::string::npos)
            break;
        size_t vstart = colon + 1;
        while (vstart < raw_object.size() &&
               std::isspace(
                   static_cast<unsigned char>(raw_object[vstart]))) {
            ++vstart;
        }
        size_t vend = vstart;
        while (vend < raw_object.size() &&
               std::isdigit(
                   static_cast<unsigned char>(raw_object[vend]))) {
            ++vend;
        }
        uint64_t value = 0;
        std::string name;
        Labels labels;
        if (vend > vstart &&
            parseUint64(raw_object.substr(vstart, vend - vstart),
                        value) &&
            parseFlatName(key, name, labels)) {
            counter(name, "", labels).inc(value);
            ++restored;
        }
        p = vend + 1;
    }
    return restored;
}

namespace {

bool
validSampleLine(const std::string &line)
{
    // name
    size_t p = 0;
    auto head = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) ||
               c == '_' || c == ':';
    };
    auto tail = [&](char c) {
        return head(c) || std::isdigit(static_cast<unsigned char>(c));
    };
    if (p >= line.size() || !head(line[p]))
        return false;
    while (p < line.size() && tail(line[p]))
        ++p;
    // optional {labels}
    if (p < line.size() && line[p] == '{') {
        ++p;
        while (p < line.size() && line[p] != '}') {
            if (!head(line[p]))
                return false;
            while (p < line.size() && tail(line[p]))
                ++p;
            if (p >= line.size() || line[p] != '=')
                return false;
            ++p;
            if (p >= line.size() || line[p] != '"')
                return false;
            ++p;
            while (p < line.size() && line[p] != '"') {
                if (line[p] == '\\')
                    ++p;
                ++p;
            }
            if (p >= line.size())
                return false;
            ++p; // closing quote
            if (p < line.size() && line[p] == ',')
                ++p;
        }
        if (p >= line.size())
            return false;
        ++p; // closing brace
    }
    // single space, then a value
    if (p >= line.size() || line[p] != ' ')
        return false;
    ++p;
    std::string value = line.substr(p);
    if (value.empty() || value.find(' ') != std::string::npos)
        return false;
    if (value == "+Inf" || value == "-Inf" || value == "NaN")
        return true;
    // Integer or simple float, optional sign/exponent.
    size_t v = 0;
    if (value[v] == '+' || value[v] == '-')
        ++v;
    bool digits = false, dot = false, exp = false;
    for (; v < value.size(); ++v) {
        char c = value[v];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digits = true;
        } else if (c == '.' && !dot && !exp) {
            dot = true;
        } else if ((c == 'e' || c == 'E') && digits && !exp) {
            exp = true;
            if (v + 1 < value.size() &&
                (value[v + 1] == '+' || value[v + 1] == '-')) {
                ++v;
            }
            digits = false;
        } else {
            return false;
        }
    }
    return digits;
}

} // anonymous namespace

std::string
validatePrometheus(const std::string &text)
{
    if (!text.empty() && text.back() != '\n')
        return "exposition must end with a newline";
    size_t lineno = 0;
    for (const std::string &line : splitString(text, '\n')) {
        ++lineno;
        if (line.empty())
            continue; // blank separator lines are allowed
        if (line[0] == '#') {
            if (startsWith(line, "# HELP ") ||
                startsWith(line, "# TYPE ") || line == "# EOF") {
                continue;
            }
            return formatString("line %zu: malformed comment",
                                lineno);
        }
        if (!validSampleLine(line))
            return formatString("line %zu: not a 'name{labels} "
                                "value' sample: %s",
                                lineno, line.c_str());
    }
    return "";
}

} // namespace obs
} // namespace elag
