#include "predict/address_table.hh"

#include "support/logging.hh"
#include "verify/fault_injector.hh"

namespace elag {
namespace predict {

AddressTable::AddressTable(uint32_t num_entries,
                           bool predict_while_learning)
    : entries(num_entries),
      predictWhileLearning(predict_while_learning),
      table(num_entries)
{
    elag_assert(num_entries > 0);
}

std::optional<uint32_t>
AddressTable::probe(uint32_t pc) const
{
    ++numProbes;
    const Entry &entry = table[indexOf(pc)];
    if (!entry.valid)
        return std::nullopt;
    if (entry.tag != tagOf(pc)) {
        // Tag-alias fault: the probe trusts the aliased entry as if
        // its tag matched, yielding another load's prediction.
        if (!(faults && faults->fireTagAlias()))
            return std::nullopt;
    }
    ++numProbeHits;
    if (!entry.fsm.willPredict() && !predictWhileLearning)
        return std::nullopt;
    uint32_t predicted = entry.fsm.predictedAddress();
    if (faults && faults->fireEntryCorrupt())
        predicted = faults->corruptAddress(predicted);
    return predicted;
}

bool
AddressTable::present(uint32_t pc) const
{
    const Entry &entry = table[indexOf(pc)];
    return entry.valid && entry.tag == tagOf(pc);
}

bool
AddressTable::update(uint32_t pc, uint32_t ca)
{
    Entry &entry = table[indexOf(pc)];
    uint32_t tag = tagOf(pc);
    if (!entry.valid || entry.tag != tag) {
        if (entry.valid)
            ++numReplacements;
        entry.valid = true;
        entry.tag = tag;
        entry.fsm.allocate(ca);
        confHist.sample(0);
        return false;
    }
    bool correct = entry.fsm.update(ca);
    confHist.sample(entry.fsm.confidentStreak());
    return correct;
}

void
AddressTable::reset()
{
    for (auto &entry : table)
        entry = Entry();
    confHist.reset();
    numProbes = numProbeHits = numReplacements = 0;
}

} // namespace predict
} // namespace elag
