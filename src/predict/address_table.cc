#include "predict/address_table.hh"

#include "support/logging.hh"

namespace elag {
namespace predict {

AddressTable::AddressTable(uint32_t num_entries,
                           bool predict_while_learning)
    : entries(num_entries),
      predictWhileLearning(predict_while_learning),
      table(num_entries)
{
    elag_assert(num_entries > 0);
}

std::optional<uint32_t>
AddressTable::probe(uint32_t pc) const
{
    ++numProbes;
    const Entry &entry = table[indexOf(pc)];
    if (!entry.valid || entry.tag != tagOf(pc))
        return std::nullopt;
    ++numProbeHits;
    if (!entry.fsm.willPredict() && !predictWhileLearning)
        return std::nullopt;
    return entry.fsm.predictedAddress();
}

bool
AddressTable::present(uint32_t pc) const
{
    const Entry &entry = table[indexOf(pc)];
    return entry.valid && entry.tag == tagOf(pc);
}

bool
AddressTable::update(uint32_t pc, uint32_t ca)
{
    Entry &entry = table[indexOf(pc)];
    uint32_t tag = tagOf(pc);
    if (!entry.valid || entry.tag != tag) {
        if (entry.valid)
            ++numReplacements;
        entry.valid = true;
        entry.tag = tag;
        entry.fsm.allocate(ca);
        confHist.sample(0);
        return false;
    }
    bool correct = entry.fsm.update(ca);
    confHist.sample(entry.fsm.confidentStreak());
    return correct;
}

void
AddressTable::reset()
{
    for (auto &entry : table)
        entry = Entry();
    confHist.reset();
    numProbes = numProbeHits = numReplacements = 0;
}

} // namespace predict
} // namespace elag
