#include "predict/address_table.hh"

#include "ckpt/serial.hh"
#include "support/logging.hh"
#include "verify/fault_injector.hh"

namespace elag {
namespace predict {

AddressTable::AddressTable(uint32_t num_entries,
                           bool predict_while_learning)
    : entries(num_entries),
      predictWhileLearning(predict_while_learning),
      table(num_entries)
{
    elag_assert(num_entries > 0);
    pow2Entries = std::has_single_bit(entries);
    if (pow2Entries) {
        indexShift = static_cast<uint32_t>(std::countr_zero(entries));
        indexMask = entries - 1;
    }
}

std::optional<uint32_t>
AddressTable::probe(uint32_t pc) const
{
    ++numProbes;
    const Entry &entry = table[indexOf(pc)];
    if (!entry.valid)
        return std::nullopt;
    if (entry.tag != tagOf(pc)) {
        // Tag-alias fault: the probe trusts the aliased entry as if
        // its tag matched, yielding another load's prediction.
        if (!(faults && faults->fireTagAlias()))
            return std::nullopt;
    }
    ++numProbeHits;
    if (!entry.fsm.willPredict() && !predictWhileLearning)
        return std::nullopt;
    uint32_t predicted = entry.fsm.predictedAddress();
    if (faults && faults->fireEntryCorrupt())
        predicted = faults->corruptAddress(predicted);
    return predicted;
}

bool
AddressTable::present(uint32_t pc) const
{
    const Entry &entry = table[indexOf(pc)];
    return entry.valid && entry.tag == tagOf(pc);
}

bool
AddressTable::update(uint32_t pc, uint32_t ca)
{
    Entry &entry = table[indexOf(pc)];
    uint32_t tag = tagOf(pc);
    if (!entry.valid || entry.tag != tag) {
        if (entry.valid)
            ++numReplacements;
        entry.valid = true;
        entry.tag = tag;
        entry.fsm.allocate(ca);
        confHist.sample(0);
        return false;
    }
    bool correct = entry.fsm.update(ca);
    confHist.sample(entry.fsm.confidentStreak());
    return correct;
}

void
AddressTable::reset()
{
    for (auto &entry : table)
        entry = Entry();
    confHist.reset();
    numProbes = numProbeHits = numReplacements = 0;
}

void
AddressTable::serialize(ckpt::Writer &w) const
{
    w.varint(table.size());
    for (const Entry &entry : table) {
        w.b(entry.valid);
        w.varint(entry.tag);
        w.varint(entry.fsm.predictedAddress());
        w.varint(entry.fsm.stride());
        w.varint(entry.fsm.confidentStreak());
        w.b(entry.fsm.willPredict());
    }
    ckpt::serialize(w, confHist);
    w.varint(numProbes);
    w.varint(numProbeHits);
    w.varint(numReplacements);
}

void
AddressTable::restore(ckpt::Reader &r)
{
    uint64_t count = r.varint();
    if (count != table.size()) {
        throw ckpt::CkptError(ckpt::ErrorKind::Mismatch,
                              "address-table geometry mismatch "
                              "between checkpoint and machine "
                              "config");
    }
    for (Entry &entry : table) {
        entry.valid = r.b();
        entry.tag = static_cast<uint32_t>(r.varint());
        uint32_t pa = static_cast<uint32_t>(r.varint());
        uint32_t stride = static_cast<uint32_t>(r.varint());
        uint32_t streak = static_cast<uint32_t>(r.varint());
        bool confident = r.b();
        entry.fsm.restoreRaw(pa, stride, streak, confident);
    }
    ckpt::restore(r, confHist);
    numProbes = r.varint();
    numProbeHits = r.varint();
    numReplacements = r.varint();
}

} // namespace predict
} // namespace elag
