#include "predict/profiler.hh"

#include "support/logging.hh"

namespace elag {
namespace predict {

void
AddressProfiler::observe(int load_id, uint32_t address)
{
    elag_assert(load_id >= 0);
    if (static_cast<size_t>(load_id) >= loads.size())
        loads.resize(load_id + 1);
    PerLoad &entry = loads[load_id];
    entry.present = true;
    cacheStale = true;
    if (!entry.seeded) {
        // First execution allocates the entry (Replace arc); it is
        // not counted as a prediction opportunity.
        entry.fsm.allocate(address);
        entry.seeded = true;
        ++entry.prof.executions;
        return;
    }
    bool correct = entry.fsm.update(address);
    ++entry.prof.executions;
    if (correct)
        ++entry.prof.correct;
}

const classify::AddressProfile &
AddressProfiler::profile() const
{
    if (cacheStale) {
        cached.clear();
        for (size_t id = 0; id < loads.size(); ++id) {
            if (loads[id].present)
                cached.emplace(static_cast<int>(id), loads[id].prof);
        }
        cacheStale = false;
    }
    return cached;
}

uint64_t
AddressProfiler::totalExecutions() const
{
    uint64_t total = 0;
    for (const PerLoad &entry : loads)
        total += entry.prof.executions;
    return total;
}

void
AddressProfiler::reset()
{
    loads.clear();
    cached.clear();
    cacheStale = false;
}

} // namespace predict
} // namespace elag
