#include "predict/profiler.hh"

namespace elag {
namespace predict {

void
AddressProfiler::observe(int load_id, uint32_t address)
{
    PerLoad &entry = fsms[load_id];
    classify::LoadProfile &prof = data[load_id];
    if (!entry.seeded) {
        // First execution allocates the entry (Replace arc); it is
        // not counted as a prediction opportunity.
        entry.fsm.allocate(address);
        entry.seeded = true;
        ++prof.executions;
        return;
    }
    bool correct = entry.fsm.update(address);
    ++prof.executions;
    if (correct)
        ++prof.correct;
}

uint64_t
AddressProfiler::totalExecutions() const
{
    uint64_t total = 0;
    for (const auto &kv : data)
        total += kv.second.executions;
    return total;
}

void
AddressProfiler::reset()
{
    fsms.clear();
    data.clear();
}

} // namespace predict
} // namespace elag
