/**
 * @file
 * The PC-indexed address prediction table (paper Section 3.2.2).
 */

#ifndef ELAG_PREDICT_ADDRESS_TABLE_HH
#define ELAG_PREDICT_ADDRESS_TABLE_HH

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "predict/stride_fsm.hh"
#include "support/stats.hh"

namespace elag {

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

namespace verify {
class FaultInjector;
} // namespace verify

namespace predict {

/**
 * Direct-mapped, PC-indexed table of {tag, PA, ST, STC} entries.
 *
 * A probe in ID1 returns the predicted address if the entry is
 * present and confident; the entry is trained in MEM with the
 * computed address. A probe miss makes no prediction; training a
 * missing PC allocates (Replace arc of Figure 3).
 */
class AddressTable
{
  public:
    /**
     * @param entries number of direct-mapped entries
     * @param predict_while_learning if true, probes return the PA
     *        field even when stride confidence (STC) is not built —
     *        the ablation of the Figure-3 confidence mechanism
     */
    explicit AddressTable(uint32_t entries,
                          bool predict_while_learning = false);

    /**
     * ID1-stage probe for the load at @p pc.
     * @return predicted effective address, or nullopt when the probe
     *         misses or the entry lacks stride confidence.
     */
    std::optional<uint32_t> probe(uint32_t pc) const;

    /** @return true if an entry for @p pc is present (any state). */
    bool present(uint32_t pc) const;

    /**
     * MEM-stage update with the computed address @p ca. Allocates on
     * a tag mismatch.
     * @return true if the (pre-update) prediction was correct.
     */
    bool update(uint32_t pc, uint32_t ca);

    uint32_t numEntries() const { return entries; }

    // Statistics.
    uint64_t probes() const { return numProbes; }
    uint64_t probeHits() const { return numProbeHits; }
    uint64_t replacements() const { return numReplacements; }

    /**
     * Distribution of the trained entry's confident-prediction
     * streak, sampled on every update: mass near zero means entries
     * keep relearning strides, mass to the right means settled
     * strided loads (the Figure-3 FSM spends its life Functioning).
     */
    const Histogram &confidenceHistogram() const { return confHist; }

    /**
     * Attach a fault injector (not owned; may be null). Probes then
     * consult it for tag-aliasing and entry-corruption faults.
     */
    void setFaultInjector(verify::FaultInjector *injector)
    {
        faults = injector;
    }

    void reset();

    /**
     * Checkpoint every entry (tag + full stride-FSM state), the
     * confidence histogram, and the probe/replacement tallies. The
     * restoring table must have the same entry count.
     */
    void serialize(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t tag = 0;
        StrideFsm fsm;
    };

    // Probed and trained once per speculated load; shift/mask when
    // the table is pow2-sized (it is for every paper configuration).
    uint32_t indexOf(uint32_t pc) const
    {
        return pow2Entries ? (pc & indexMask) : pc % entries;
    }
    uint32_t tagOf(uint32_t pc) const
    {
        return pow2Entries ? pc >> indexShift : pc / entries;
    }

    uint32_t entries;
    bool pow2Entries = false;
    uint32_t indexShift = 0;
    uint32_t indexMask = 0;
    bool predictWhileLearning;
    verify::FaultInjector *faults = nullptr;
    std::vector<Entry> table;
    Histogram confHist{16, 4};
    mutable uint64_t numProbes = 0;
    mutable uint64_t numProbeHits = 0;
    uint64_t numReplacements = 0;
};

} // namespace predict
} // namespace elag

#endif // ELAG_PREDICT_ADDRESS_TABLE_HH
