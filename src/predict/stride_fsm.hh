/**
 * @file
 * The two-state stride-detection FSM of paper Figure 3.
 *
 * Shared by the address prediction table (one instance per table
 * entry) and by the address profiler (one unbounded instance per
 * static load, the "individual operation prediction" methodology of
 * Section 5.2).
 */

#ifndef ELAG_PREDICT_STRIDE_FSM_HH
#define ELAG_PREDICT_STRIDE_FSM_HH

#include <cstdint>

namespace elag {
namespace predict {

/**
 * Per-entry stride predictor state.
 *
 * States: Functioning (STC=1, predictions are made) and Learning
 * (STC=0, a new stride must be seen twice in a row before confidence
 * returns). Transitions (Figure 3b):
 *
 *  Replace          tag mismatch   PA=CA     ST=0      STC=1
 *  Correct          PA == CA       PA=CA+ST  ST n/c    STC n/c
 *  New_Stride       PA != CA       PA=CA     ST=CA-PA  STC=0
 *  Verified_Stride  CA-PA == ST    PA=CA+ST  ST n/c    STC=1
 */
class StrideFsm
{
  public:
    /** Reinitialize for a newly allocated entry observing @p ca. */
    void
    allocate(uint32_t ca)
    {
        pa_ = ca;
        stride_ = 0;
        confident_ = true;
        streak_ = 0;
        // After allocation the next access to the same address
        // matches PA (constant-location loads predict immediately).
    }

    /**
     * @return true if the entry would make a prediction right now
     * (confident/functioning state).
     */
    bool willPredict() const { return confident_; }

    /** Predicted effective address (valid when willPredict()). */
    uint32_t predictedAddress() const { return pa_; }

    /**
     * Train with the computed address CA; implements Figure 3.
     * @return true if the entry's prediction matched (PA == CA while
     *         confident) — i.e. a correct prediction.
     */
    bool
    update(uint32_t ca)
    {
        if (confident_) {
            if (pa_ == ca) {
                pa_ = ca + stride_;          // Correct
                ++streak_;
                return true;
            }
            stride_ = ca - pa_;              // New_Stride
            pa_ = ca;
            confident_ = false;
            streak_ = 0;
            return false;
        }
        if (ca - pa_ == stride_) {
            pa_ = ca + stride_;              // Verified_Stride
            confident_ = true;
        } else {
            stride_ = ca - pa_;              // still learning
            pa_ = ca;
        }
        return false;
    }

    uint32_t stride() const { return stride_; }

    /**
     * Consecutive correct predictions since confidence was last
     * (re)established — the observable "how settled is this entry"
     * signal behind the stride-confidence distribution.
     */
    uint32_t confidentStreak() const { return streak_; }

    /**
     * Overwrite the full FSM state (checkpoint restore). The getters
     * above expose every field, so restoreRaw(predictedAddress(),
     * stride(), confidentStreak(), willPredict()) is an exact round
     * trip.
     */
    void
    restoreRaw(uint32_t pa, uint32_t stride, uint32_t streak,
               bool confident)
    {
        pa_ = pa;
        stride_ = stride;
        streak_ = streak;
        confident_ = confident;
    }

  private:
    uint32_t pa_ = 0;
    uint32_t stride_ = 0;
    uint32_t streak_ = 0;
    bool confident_ = false;
};

} // namespace predict
} // namespace elag

#endif // ELAG_PREDICT_STRIDE_FSM_HH
