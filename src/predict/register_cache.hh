/**
 * @file
 * The early-calculation register cache.
 *
 * With capacity 1 this is the paper's special addressing register
 * R_addr (Section 3.2.1): the ld_e opcode binds one general-purpose
 * register; only that register's value is buffered, so no predecode
 * or multicast write network is needed. Larger capacities model the
 * hardware-only base-register caches of prior work (Figure 5b uses
 * 4-16 cached registers with full multicast updates).
 */

#ifndef ELAG_PREDICT_REGISTER_CACHE_HH
#define ELAG_PREDICT_REGISTER_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "support/stats.hh"

namespace elag {

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

namespace predict {

/** LRU cache of (register specifier -> cached value). */
class RegisterCache
{
  public:
    explicit RegisterCache(uint32_t capacity);

    /**
     * ID1-stage lookup: is @p reg bound, and what value is cached?
     * @return the cached value, or nullopt when @p reg is not bound
     *         (the R_addr_Hit term evaluates false).
     */
    std::optional<uint32_t> lookup(int reg) const;

    /** @return true if @p reg is currently bound. */
    bool isBound(int reg) const { return lookup(reg).has_value(); }

    /**
     * Bind @p reg with @p value (the ld_e binding, or a hardware
     * allocation on any load's base register). Evicts LRU. @p cycle
     * (the binding pipeline cycle, when the caller has one) stamps
     * the slot so rebinds can record the old binding's lifetime.
     */
    void bind(int reg, uint32_t value, uint64_t cycle = 0);

    /**
     * Multicast write: a completing instruction wrote @p reg; cached
     * copies are refreshed. For capacity 1 this is the paper's
     * "limited broadcast" between the register file and R_addr.
     */
    void onRegisterWrite(int reg, uint32_t value);

    /**
     * Drop @p reg's binding (fault injection, or a context-switch-
     * style flush). A no-op when @p reg is not bound. @p cycle, when
     * provided, records the ended binding's lifetime.
     */
    void invalidate(int reg, uint64_t cycle = 0);

    uint32_t capacity() const { return cap; }

    // Statistics.
    uint64_t lookups() const { return numLookups; }
    uint64_t lookupHits() const { return numHits; }
    uint64_t bindings() const { return numBindings; }

    /**
     * Distribution of binding lifetimes in cycles: how long each
     * binding survived before a rebind of the same register or an
     * eviction replaced it. For capacity 1 this is the R_addr
     * residency the compiler's grouping heuristic tries to maximize.
     */
    const Histogram &lifetimeHistogram() const { return lifeHist; }

    void reset();

    /**
     * Checkpoint every slot, the lifetime histogram, the LRU tick
     * and the lookup/binding tallies. Capacity must match.
     */
    void serialize(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    struct Slot
    {
        bool valid = false;
        int reg = 0;
        uint32_t value = 0;
        uint64_t lastUsed = 0;
        uint64_t boundCycle = 0;
    };

    uint32_t cap;
    std::vector<Slot> slots;
    Histogram lifeHist{16, 16};
    uint64_t tick = 0;
    mutable uint64_t numLookups = 0;
    mutable uint64_t numHits = 0;
    uint64_t numBindings = 0;
};

} // namespace predict
} // namespace elag

#endif // ELAG_PREDICT_REGISTER_CACHE_HH
