#include "predict/register_cache.hh"

#include "ckpt/serial.hh"
#include "support/logging.hh"

namespace elag {
namespace predict {

RegisterCache::RegisterCache(uint32_t capacity)
    : cap(capacity), slots(capacity)
{
    elag_assert(capacity > 0);
}

std::optional<uint32_t>
RegisterCache::lookup(int reg) const
{
    ++numLookups;
    for (const Slot &slot : slots) {
        if (slot.valid && slot.reg == reg) {
            ++numHits;
            return slot.value;
        }
    }
    return std::nullopt;
}

void
RegisterCache::bind(int reg, uint32_t value, uint64_t cycle)
{
    ++tick;
    ++numBindings;
    Slot *victim = nullptr;
    for (Slot &slot : slots) {
        if (slot.valid && slot.reg == reg) {
            // Rebinding the same register ends the old binding.
            if (cycle > slot.boundCycle)
                lifeHist.sample(cycle - slot.boundCycle);
            slot.value = value;
            slot.lastUsed = tick;
            slot.boundCycle = cycle;
            return;
        }
        if (!slot.valid) {
            if (!victim || victim->valid)
                victim = &slot;
        } else if (!victim ||
                   (victim->valid &&
                    slot.lastUsed < victim->lastUsed)) {
            victim = &slot;
        }
    }
    elag_assert(victim != nullptr);
    if (victim->valid && cycle > victim->boundCycle)
        lifeHist.sample(cycle - victim->boundCycle);
    victim->valid = true;
    victim->reg = reg;
    victim->value = value;
    victim->lastUsed = tick;
    victim->boundCycle = cycle;
}

void
RegisterCache::onRegisterWrite(int reg, uint32_t value)
{
    for (Slot &slot : slots) {
        if (slot.valid && slot.reg == reg)
            slot.value = value;
    }
}

void
RegisterCache::invalidate(int reg, uint64_t cycle)
{
    for (Slot &slot : slots) {
        if (slot.valid && slot.reg == reg) {
            if (cycle > slot.boundCycle)
                lifeHist.sample(cycle - slot.boundCycle);
            slot = Slot();
        }
    }
}

void
RegisterCache::reset()
{
    for (Slot &slot : slots)
        slot = Slot();
    lifeHist.reset();
    tick = 0;
    numLookups = numHits = numBindings = 0;
}

void
RegisterCache::serialize(ckpt::Writer &w) const
{
    w.varint(slots.size());
    for (const Slot &slot : slots) {
        w.b(slot.valid);
        w.i32(slot.reg);
        w.varint(slot.value);
        w.varint(slot.lastUsed);
        w.varint(slot.boundCycle);
    }
    ckpt::serialize(w, lifeHist);
    w.varint(tick);
    w.varint(numLookups);
    w.varint(numHits);
    w.varint(numBindings);
}

void
RegisterCache::restore(ckpt::Reader &r)
{
    uint64_t count = r.varint();
    if (count != slots.size()) {
        throw ckpt::CkptError(ckpt::ErrorKind::Mismatch,
                              "register-cache capacity mismatch "
                              "between checkpoint and machine "
                              "config");
    }
    for (Slot &slot : slots) {
        slot.valid = r.b();
        slot.reg = r.i32();
        slot.value = static_cast<uint32_t>(r.varint());
        slot.lastUsed = r.varint();
        slot.boundCycle = r.varint();
    }
    ckpt::restore(r, lifeHist);
    tick = r.varint();
    numLookups = r.varint();
    numHits = r.varint();
    numBindings = r.varint();
}

} // namespace predict
} // namespace elag
