#include "predict/register_cache.hh"

#include "support/logging.hh"

namespace elag {
namespace predict {

RegisterCache::RegisterCache(uint32_t capacity)
    : cap(capacity), slots(capacity)
{
    elag_assert(capacity > 0);
}

std::optional<uint32_t>
RegisterCache::lookup(int reg) const
{
    ++numLookups;
    for (const Slot &slot : slots) {
        if (slot.valid && slot.reg == reg) {
            ++numHits;
            return slot.value;
        }
    }
    return std::nullopt;
}

void
RegisterCache::bind(int reg, uint32_t value)
{
    ++tick;
    ++numBindings;
    Slot *victim = nullptr;
    for (Slot &slot : slots) {
        if (slot.valid && slot.reg == reg) {
            slot.value = value;
            slot.lastUsed = tick;
            return;
        }
        if (!slot.valid) {
            if (!victim || victim->valid)
                victim = &slot;
        } else if (!victim ||
                   (victim->valid &&
                    slot.lastUsed < victim->lastUsed)) {
            victim = &slot;
        }
    }
    elag_assert(victim != nullptr);
    victim->valid = true;
    victim->reg = reg;
    victim->value = value;
    victim->lastUsed = tick;
}

void
RegisterCache::onRegisterWrite(int reg, uint32_t value)
{
    for (Slot &slot : slots) {
        if (slot.valid && slot.reg == reg)
            slot.value = value;
    }
}

void
RegisterCache::reset()
{
    for (Slot &slot : slots)
        slot = Slot();
    tick = 0;
    numLookups = numHits = numBindings = 0;
}

} // namespace predict
} // namespace elag
