#include "predict/register_cache.hh"

#include "support/logging.hh"

namespace elag {
namespace predict {

RegisterCache::RegisterCache(uint32_t capacity)
    : cap(capacity), slots(capacity)
{
    elag_assert(capacity > 0);
}

std::optional<uint32_t>
RegisterCache::lookup(int reg) const
{
    ++numLookups;
    for (const Slot &slot : slots) {
        if (slot.valid && slot.reg == reg) {
            ++numHits;
            return slot.value;
        }
    }
    return std::nullopt;
}

void
RegisterCache::bind(int reg, uint32_t value, uint64_t cycle)
{
    ++tick;
    ++numBindings;
    Slot *victim = nullptr;
    for (Slot &slot : slots) {
        if (slot.valid && slot.reg == reg) {
            // Rebinding the same register ends the old binding.
            if (cycle > slot.boundCycle)
                lifeHist.sample(cycle - slot.boundCycle);
            slot.value = value;
            slot.lastUsed = tick;
            slot.boundCycle = cycle;
            return;
        }
        if (!slot.valid) {
            if (!victim || victim->valid)
                victim = &slot;
        } else if (!victim ||
                   (victim->valid &&
                    slot.lastUsed < victim->lastUsed)) {
            victim = &slot;
        }
    }
    elag_assert(victim != nullptr);
    if (victim->valid && cycle > victim->boundCycle)
        lifeHist.sample(cycle - victim->boundCycle);
    victim->valid = true;
    victim->reg = reg;
    victim->value = value;
    victim->lastUsed = tick;
    victim->boundCycle = cycle;
}

void
RegisterCache::onRegisterWrite(int reg, uint32_t value)
{
    for (Slot &slot : slots) {
        if (slot.valid && slot.reg == reg)
            slot.value = value;
    }
}

void
RegisterCache::invalidate(int reg, uint64_t cycle)
{
    for (Slot &slot : slots) {
        if (slot.valid && slot.reg == reg) {
            if (cycle > slot.boundCycle)
                lifeHist.sample(cycle - slot.boundCycle);
            slot = Slot();
        }
    }
}

void
RegisterCache::reset()
{
    for (Slot &slot : slots)
        slot = Slot();
    lifeHist.reset();
    tick = 0;
    numLookups = numHits = numBindings = 0;
}

} // namespace predict
} // namespace elag
