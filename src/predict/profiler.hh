/**
 * @file
 * Per-static-load address profiler (paper Sections 4.3 and 5.2).
 *
 * Runs the Figure-3 stride FSM individually for every static load
 * with no table capacity or conflicts — the paper's "individual
 * operation prediction" methodology. Produces the prediction rates
 * of Tables 2-4 and the profile that drives ld_n -> ld_p upgrades.
 */

#ifndef ELAG_PREDICT_PROFILER_HH
#define ELAG_PREDICT_PROFILER_HH

#include <vector>

#include "classify/classify.hh"
#include "predict/stride_fsm.hh"

namespace elag {
namespace predict {

/** Unbounded per-load stride profiler. */
class AddressProfiler
{
  public:
    /**
     * Observe one dynamic execution of static load @p load_id at
     * effective address @p address.
     */
    void observe(int load_id, uint32_t address);

    /** Profile keyed by load id (executions and correct counts). */
    const classify::AddressProfile &profile() const;

    /** Dynamic executions across all loads. */
    uint64_t totalExecutions() const;

    void reset();

  private:
    struct PerLoad
    {
        StrideFsm fsm;
        classify::LoadProfile prof;
        bool seeded = false;
        bool present = false;
    };

    /**
     * Dense per-load state indexed by load id: observe() runs once
     * per dynamic load, and ids are small sequential integers, so a
     * vector replaces the former per-observation map walk. The
     * map-shaped profile the public API promises is rebuilt only
     * when profile() is called after new observations.
     */
    std::vector<PerLoad> loads;
    mutable classify::AddressProfile cached;
    mutable bool cacheStale = false;
};

} // namespace predict
} // namespace elag

#endif // ELAG_PREDICT_PROFILER_HH
