#include "sim/ckpt_run.hh"

#include <unistd.h>

#include "ckpt/checkpoint.hh"
#include "sim/run_cache.hh"
#include "support/logging.hh"
#include "verify/fault_injector.hh"
#include "verify/invariant_checker.hh"

namespace elag {
namespace sim {

CkptRunKey
makeRunKey(const CompiledProgram &prog,
           const pipeline::MachineConfig &machine,
           const pipeline::MachineConfig &baseline,
           uint64_t max_instructions, bool has_checker,
           const verify::FaultInjector *injector)
{
    CkptRunKey key;
    key.programHash = hashProgram(prog.code.program);
    key.machineHash = hashConfig(machine);
    key.baselineHash = hashConfig(baseline);
    key.maxInstructions = max_instructions;
    key.hasChecker = has_checker;
    if (injector) {
        key.injectorPlan = injector->plan().name;
        key.injectorSeed = injector->seed();
    }
    return key;
}

void
serialize(ckpt::Writer &w, const CkptRunKey &key)
{
    w.u64(key.programHash);
    w.u64(key.machineHash);
    w.u64(key.baselineHash);
    w.u64(key.maxInstructions);
    w.b(key.hasChecker);
    w.str(key.injectorPlan);
    w.u64(key.injectorSeed);
}

void
restore(ckpt::Reader &r, CkptRunKey &key)
{
    key.programHash = r.u64();
    key.machineHash = r.u64();
    key.baselineHash = r.u64();
    key.maxInstructions = r.u64();
    key.hasChecker = r.b();
    key.injectorPlan = r.str();
    key.injectorSeed = r.u64();
}

uint64_t
hashRunKey(const CkptRunKey &key)
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(key.programHash);
    mix(key.machineHash);
    mix(key.baselineHash);
    mix(key.maxInstructions);
    mix(key.hasChecker ? 1 : 0);
    mix(key.injectorPlan.size());
    for (char c : key.injectorPlan)
        mix(static_cast<uint8_t>(c));
    mix(key.injectorSeed);
    return h;
}

ResumableTimedRun::ResumableTimedRun(const CompiledProgram &prog,
                                     const pipeline::MachineConfig &machine,
                                     uint64_t max_instructions)
    : pipe_(machine), emu_(prog.code.program),
      maxInst_(max_instructions),
      wallStart_(std::chrono::steady_clock::now())
{
}

void
ResumableTimedRun::attach(pipeline::Observer *observer)
{
    pipe_.attach(observer);
}

void
ResumableTimedRun::step(uint64_t budget, const Watchdog &watchdog)
{
    if (done_)
        return;
    uint64_t left = maxInst_ - acc_.instructions;
    uint64_t chunk = budget < left ? budget : left;

    // Watchdog limits are enforced per retire, exactly like the
    // instrumented path of runTimed(): maxRetires / maxCycles are
    // totals over the whole (possibly resumed) run, the wall clock
    // covers this process's attempt.
    uint64_t before = acc_.instructions;
    uint64_t local = 0;
    bool guarded = watchdog.maxRetires || watchdog.maxCycles ||
                   watchdog.maxWallMs;

    EmulationResult part = emu_.run(
        chunk, [&](const pipeline::RetiredInst &ri) {
            pipe_.retire(ri);
            if (!guarded)
                return;
            ++local;
            uint64_t total = before + local;
            if (watchdog.maxWallMs && (total & 0xfff) == 0) {
                auto elapsed =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - wallStart_)
                        .count();
                if (static_cast<uint64_t>(elapsed) > watchdog.maxWallMs) {
                    throw SimTimeoutError(
                        SimTimeoutError::Kind::WallClock,
                        watchdog.maxWallMs,
                        formatString("watchdog: run exceeded %llu ms "
                                     "of wall clock",
                                     static_cast<unsigned long long>(
                                         watchdog.maxWallMs)));
                }
            }
            if (watchdog.maxRetires && total > watchdog.maxRetires) {
                throw SimTimeoutError(
                    SimTimeoutError::Kind::Retires, watchdog.maxRetires,
                    formatString("watchdog: more than %llu "
                                 "instructions retired",
                                 static_cast<unsigned long long>(
                                     watchdog.maxRetires)));
            }
            if (watchdog.maxCycles &&
                pipe_.currentCycle() > watchdog.maxCycles) {
                throw SimTimeoutError(
                    SimTimeoutError::Kind::Cycles, watchdog.maxCycles,
                    formatString("watchdog: simulation passed cycle "
                                 "%llu",
                                 static_cast<unsigned long long>(
                                     watchdog.maxCycles)));
            }
        });

    acc_.instructions += part.instructions;
    acc_.output.insert(acc_.output.end(), part.output.begin(),
                       part.output.end());
    acc_.halted = part.halted;
    acc_.exitValue = part.exitValue;
    done_ = part.halted || acc_.instructions >= maxInst_;
}

TimedResult
ResumableTimedRun::finish()
{
    TimedResult result;
    result.pipe = pipe_.finish();
    result.emulation = acc_;
    return result;
}

void
ResumableTimedRun::serialize(ckpt::Writer &w) const
{
    w.u64(maxInst_);
    emu_.serialize(w);
    pipe_.serialize(w);
    sim::serialize(w, acc_);
    w.b(done_);
}

void
ResumableTimedRun::restore(ckpt::Reader &r)
{
    uint64_t max_inst = r.u64();
    if (max_inst != maxInst_) {
        throw ckpt::CkptError(ckpt::ErrorKind::Mismatch,
                              "instruction-cap mismatch");
    }
    emu_.restore(r);
    pipe_.restore(r);
    sim::restore(r, acc_);
    done_ = r.b();
    wallStart_ = std::chrono::steady_clock::now();
}

namespace {

/** Section names of the checkpointed stats-run container. */
constexpr char kSecMeta[5] = "META"; ///< run key + phase
constexpr char kSecBase[5] = "BASE"; ///< completed baseline result
constexpr char kSecRuns[5] = "RUNS"; ///< in-flight phase run state
constexpr char kSecTele[5] = "TELE"; ///< load telemetry table
constexpr char kSecChkr[5] = "CHKR"; ///< invariant-checker shadows
constexpr char kSecFalt[5] = "FALT"; ///< fault-injector stream

} // anonymous namespace

CkptStatsOutcome
runTimedCheckpointed(const CompiledProgram &prog,
                     const pipeline::MachineConfig &machine,
                     const pipeline::MachineConfig &baseline,
                     uint64_t max_instructions,
                     pipeline::LoadTelemetry *telemetry,
                     verify::InvariantChecker *checker,
                     verify::FaultInjector *injector,
                     const Watchdog &watchdog, const CkptPolicy &policy,
                     const std::string &resume_from)
{
    CkptStatsOutcome out;
    const CkptRunKey key =
        makeRunKey(prog, machine, baseline, max_instructions,
                   checker != nullptr, injector);

    // Phase 0 runs the baseline machine observer-free; phase 1 runs
    // the configured machine with the observers attached — the same
    // structure (and hence the same event streams) as the
    // non-checkpointed elagc stats path.
    ResumableTimedRun baseRun(prog, baseline, max_instructions);
    ResumableTimedRun timedRun(prog, machine, max_instructions);
    if (telemetry)
        timedRun.attach(telemetry);
    if (checker)
        timedRun.attach(checker);

    uint8_t phase = 0;

    if (!resume_from.empty()) {
        ckpt::CheckpointReader ck =
            ckpt::CheckpointReader::fromFile(resume_from);
        ckpt::Reader meta = ck.section(kSecMeta);
        CkptRunKey fileKey;
        restore(meta, fileKey);
        if (!(fileKey == key)) {
            throw ckpt::CkptError(
                ckpt::ErrorKind::Mismatch,
                "checkpoint belongs to a different run (program, "
                "machine, cap, or observer set differs)");
        }
        phase = meta.u8();
        if (phase > 1) {
            throw ckpt::CkptError(ckpt::ErrorKind::Corrupt,
                                  "invalid checkpoint phase");
        }
        if (phase == 0) {
            ckpt::Reader runs = ck.section(kSecRuns);
            baseRun.restore(runs);
        } else {
            ckpt::Reader bs = ck.section(kSecBase);
            pipeline::restore(bs, out.base.pipe);
            sim::restore(bs, out.base.emulation);
            ckpt::Reader runs = ck.section(kSecRuns);
            timedRun.restore(runs);
            if (telemetry) {
                if (!ck.has(kSecTele)) {
                    throw ckpt::CkptError(
                        ckpt::ErrorKind::Mismatch,
                        "checkpoint carries no telemetry section");
                }
                ckpt::Reader t = ck.section(kSecTele);
                telemetry->restore(t);
            }
            if (checker) {
                if (!ck.has(kSecChkr)) {
                    throw ckpt::CkptError(
                        ckpt::ErrorKind::Mismatch,
                        "checkpoint carries no checker section");
                }
                ckpt::Reader c = ck.section(kSecChkr);
                checker->restore(c);
            }
            if (injector) {
                if (!ck.has(kSecFalt)) {
                    throw ckpt::CkptError(
                        ckpt::ErrorKind::Mismatch,
                        "checkpoint carries no fault-injector section");
                }
                ckpt::Reader f = ck.section(kSecFalt);
                injector->restore(f);
            }
        }
        out.resumed = true;
    }

    // Snapshot write failures degrade to a warning: losing a snapshot
    // costs resumability, not correctness, and must never kill a run
    // that would otherwise finish.
    auto snapshot = [&](uint8_t ph) {
        if (policy.path.empty())
            return;
        try {
            ckpt::CheckpointWriter cw;
            ckpt::Writer &meta = cw.section(kSecMeta);
            serialize(meta, key);
            meta.u8(ph);
            if (ph == 1) {
                ckpt::Writer &bs = cw.section(kSecBase);
                pipeline::serialize(bs, out.base.pipe);
                sim::serialize(bs, out.base.emulation);
            }
            ckpt::Writer &runs = cw.section(kSecRuns);
            if (ph == 0)
                baseRun.serialize(runs);
            else
                timedRun.serialize(runs);
            if (ph == 1) {
                if (telemetry)
                    telemetry->serialize(cw.section(kSecTele));
                if (checker)
                    checker->serialize(cw.section(kSecChkr));
                if (injector)
                    injector->serialize(cw.section(kSecFalt));
            }
            cw.writeFile(policy.path);
            ++out.snapshots;
        } catch (const ckpt::CkptError &e) {
            ++out.snapshotFailures;
            warn("checkpoint snapshot to '%s' failed (%s): %s",
                 policy.path.c_str(), ckpt::name(e.kind()), e.what());
        }
    };

    const uint64_t chunk =
        policy.everyRetires ? policy.everyRetires : kDefaultCkptRetires;

    if (phase == 0) {
        while (!baseRun.done()) {
            baseRun.step(chunk, watchdog);
            if (baseRun.done())
                break;
            if (policy.interrupted && policy.interrupted()) {
                snapshot(0);
                out.interrupted = true;
                return out;
            }
            snapshot(0);
        }
        out.base = baseRun.finish();
        phase = 1;
        // Persist the phase transition so a kill early in the timed
        // run resumes past the whole baseline.
        snapshot(1);
    }

    while (!timedRun.done()) {
        timedRun.step(chunk, watchdog);
        if (timedRun.done())
            break;
        if (policy.interrupted && policy.interrupted()) {
            snapshot(1);
            out.interrupted = true;
            return out;
        }
        snapshot(1);
    }
    out.timed = timedRun.finish();

    if (!policy.path.empty() && policy.deleteOnSuccess)
        ::unlink(policy.path.c_str());
    return out;
}

} // namespace sim
} // namespace elag
