/**
 * @file
 * Crash-safe checkpointed timed simulation.
 *
 * A timed stats run (the engine behind `elagc --json-stats` and the
 * daemon's `simulate` verb) is two sequential simulations — the
 * baseline machine, then the configured machine with telemetry and
 * optional verification observers attached. runTimedCheckpointed()
 * executes the same two runs in fixed-size retire chunks and writes a
 * durable snapshot of the complete simulation state between chunks:
 * architectural state (PC, register files, memory image), the full
 * timing model (caches, BTB, predictor tables, booking ring,
 * in-flight stores, issue/fetch frontiers, aggregate stats), and
 * every attached observer (telemetry, invariant checker, fault
 * injector PRNG stream).
 *
 * The contract is *kill-resume equivalence*: a run killed at any
 * instant and resumed from its last snapshot produces a final stats
 * report byte-identical to an uninterrupted run's. Snapshots are
 * written atomically (ckpt/checkpoint.hh), so a kill mid-snapshot
 * just resumes from the previous one.
 *
 * Snapshots are bound to their run identity — program hash, machine
 * and baseline config hashes, instruction cap, observer set, fault
 * plan and seed. Restoring against a different identity throws
 * CkptError(Mismatch) rather than silently continuing the wrong run.
 */

#ifndef ELAG_SIM_CKPT_RUN_HH
#define ELAG_SIM_CKPT_RUN_HH

#include <chrono>
#include <functional>
#include <string>

#include "sim/simulator.hh"

namespace elag {

namespace verify {
class FaultInjector;
class InvariantChecker;
} // namespace verify

namespace sim {

/**
 * Identity of one checkpointed stats run. A snapshot may only be
 * restored into a run with the identical key.
 */
struct CkptRunKey
{
    uint64_t programHash = 0;
    uint64_t machineHash = 0;
    uint64_t baselineHash = 0;
    uint64_t maxInstructions = 0;
    bool hasChecker = false;
    std::string injectorPlan; ///< empty when no injector attached
    uint64_t injectorSeed = 0;

    bool
    operator==(const CkptRunKey &o) const
    {
        return programHash == o.programHash &&
               machineHash == o.machineHash &&
               baselineHash == o.baselineHash &&
               maxInstructions == o.maxInstructions &&
               hasChecker == o.hasChecker &&
               injectorPlan == o.injectorPlan &&
               injectorSeed == o.injectorSeed;
    }
};

/** The key for a stats run over @p prog with the given attachments. */
CkptRunKey makeRunKey(const CompiledProgram &prog,
                      const pipeline::MachineConfig &machine,
                      const pipeline::MachineConfig &baseline,
                      uint64_t max_instructions, bool has_checker,
                      const verify::FaultInjector *injector);

void serialize(ckpt::Writer &w, const CkptRunKey &key);
void restore(ckpt::Reader &r, CkptRunKey &key);

/**
 * Stable content hash of a run key — names auto-resume snapshot
 * files, so re-invoking the identical command finds its own
 * checkpoint and a different command cannot collide with it.
 */
uint64_t hashRunKey(const CkptRunKey &key);

/**
 * One timed simulation that can stop at a chunk boundary, serialize
 * its complete state, and later continue — in the same process (for
 * equivalence tests) or after a restore in a fresh one.
 */
class ResumableTimedRun
{
  public:
    ResumableTimedRun(const CompiledProgram &prog,
                      const pipeline::MachineConfig &machine,
                      uint64_t max_instructions);

    /** Attach an observer (order matters for event delivery). */
    void attach(pipeline::Observer *observer);

    /**
     * Retire up to @p budget more instructions. Watchdog limits are
     * enforced per retire exactly as in runTimed(); maxRetires and
     * maxCycles count the whole (resumed) run, maxWallMs counts this
     * process's attempt only.
     */
    void step(uint64_t budget, const Watchdog &watchdog);

    /** True once the program halted or the instruction cap is hit. */
    bool done() const { return done_; }

    /** Retired instructions so far, across restores. */
    uint64_t retired() const { return acc_.instructions; }

    /** Finalize the pipeline and return the result (once done()). */
    TimedResult finish();

    /**
     * Checkpoint/restore the run mid-flight. restore() requires a
     * ResumableTimedRun constructed over the identical program and
     * machine configuration (enforced via CkptRunKey by callers).
     */
    void serialize(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    pipeline::Pipeline pipe_;
    Emulator emu_;
    uint64_t maxInst_;
    /** Accumulated result across step() calls and restores. */
    EmulationResult acc_;
    bool done_ = false;
    /** Wall-clock budget base for this process's attempt. */
    std::chrono::steady_clock::time_point wallStart_;
};

/** Snapshot cadence and placement for a checkpointed run. */
struct CkptPolicy
{
    /** Snapshot file; empty disables snapshotting (resume-only). */
    std::string path;
    /** Retires between snapshots (0 means the 5M default). */
    uint64_t everyRetires = 0;
    /** Remove the snapshot after the run completes cleanly. */
    bool deleteOnSuccess = true;
    /**
     * Polled at chunk boundaries; returning true flushes a final
     * snapshot and stops the run with interrupted=true (used by
     * SIGTERM/SIGINT handlers to make interrupted runs resumable).
     */
    std::function<bool()> interrupted;
};

/** Default snapshot interval in retired instructions. */
constexpr uint64_t kDefaultCkptRetires = 5'000'000;

/** Outcome of a checkpointed stats run. */
struct CkptStatsOutcome
{
    TimedResult base;
    TimedResult timed;
    /** True when the run continued from a restored snapshot. */
    bool resumed = false;
    /**
     * True when policy.interrupted() stopped the run early; base and
     * timed are then partial and must not be reported.
     */
    bool interrupted = false;
    uint32_t snapshots = 0;
    /** Snapshot writes that failed (warned, never fatal). */
    uint32_t snapshotFailures = 0;
};

/**
 * The two-phase stats run (baseline machine, then @p machine with
 * @p telemetry / @p checker attached and @p injector active) with
 * periodic durable snapshots per @p policy.
 *
 * When @p resume_from is non-empty the snapshot at that path is
 * validated and restored first; any defect — torn file, bad CRC,
 * version mismatch, or an identity mismatch against the current run
 * — throws the corresponding typed CkptError. The caller decides
 * whether that is fatal (explicit --resume-from) or grounds for a
 * clean re-run (auto-resume).
 *
 * Observers must match the snapshot being restored: @p telemetry
 * and @p checker state is captured alongside the simulation so a
 * resumed run's load report and invariant-conservation checks match
 * an uninterrupted run's.
 */
CkptStatsOutcome
runTimedCheckpointed(const CompiledProgram &prog,
                     const pipeline::MachineConfig &machine,
                     const pipeline::MachineConfig &baseline,
                     uint64_t max_instructions,
                     pipeline::LoadTelemetry *telemetry,
                     verify::InvariantChecker *checker,
                     verify::FaultInjector *injector,
                     const Watchdog &watchdog, const CkptPolicy &policy,
                     const std::string &resume_from = "");

} // namespace sim
} // namespace elag

#endif // ELAG_SIM_CKPT_RUN_HH
