/**
 * @file
 * High-level simulation façade: compile mini-C, classify loads, run
 * functional/profiled/timed simulations, compute speedups.
 *
 * This is the public API the examples and the benchmark harness use:
 *
 *     auto prog = sim::compile(source);
 *     auto timed = sim::runTimed(prog, pipeline::MachineConfig::proposed());
 *     auto base  = sim::runTimed(prog, pipeline::MachineConfig::baseline());
 *     double speedup = sim::speedup(base, timed);
 */

#ifndef ELAG_SIM_SIMULATOR_HH
#define ELAG_SIM_SIMULATOR_HH

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "classify/classify.hh"
#include "codegen/codegen.hh"
#include "ir/ir.hh"
#include "opt/pass.hh"
#include "pipeline/pipeline.hh"
#include "pipeline/telemetry.hh"
#include "predict/profiler.hh"
#include "sim/emulator.hh"

namespace elag {
namespace sim {

/** Compilation options. */
struct CompileOptions
{
    opt::OptConfig opt;
    classify::ClassifyConfig classify;
    /** Run the Section-4 classifier (false leaves every load ld_n). */
    bool runClassifier = true;
};

/**
 * Specifier of each static load, as a flat dense vector indexed by
 * load id. Load ids are small consecutive integers assigned by the
 * IR builder, so a vector lookup replaces the std::map walk that
 * used to sit on the per-load profiling and telemetry paths.
 */
class LoadSpecMap
{
  public:
    void
    set(int load_id, isa::LoadSpec spec)
    {
        if (load_id < 0)
            return;
        size_t idx = static_cast<size_t>(load_id);
        if (idx >= spec_.size())
            spec_.resize(idx + 1, Absent);
        spec_[idx] = static_cast<uint8_t>(spec);
    }

    /** @return true if @p load_id has a recorded specifier. */
    bool
    has(int load_id) const
    {
        return load_id >= 0 &&
               static_cast<size_t>(load_id) < spec_.size() &&
               spec_[static_cast<size_t>(load_id)] != Absent;
    }

    /** Specifier of @p load_id (Normal when absent). */
    isa::LoadSpec
    get(int load_id) const
    {
        return has(load_id) ? static_cast<isa::LoadSpec>(
                                  spec_[static_cast<size_t>(load_id)])
                            : isa::LoadSpec::Normal;
    }

    /** All (load id, spec) pairs in ascending load-id order. */
    std::vector<std::pair<int, isa::LoadSpec>>
    entries() const
    {
        std::vector<std::pair<int, isa::LoadSpec>> out;
        for (size_t i = 0; i < spec_.size(); ++i) {
            if (spec_[i] != Absent)
                out.emplace_back(static_cast<int>(i),
                                 static_cast<isa::LoadSpec>(spec_[i]));
        }
        return out;
    }

    void clear() { spec_.clear(); }

  private:
    static constexpr uint8_t Absent = 0xff;
    std::vector<uint8_t> spec_;
};

/** A compiled program, retaining the IR for reclassification. */
struct CompiledProgram
{
    std::unique_ptr<ir::Module> module;
    codegen::CodegenResult code;
    classify::ClassifyStats classStats;

    /** Specifier of each static load, keyed by load id. */
    LoadSpecMap specOf;

    /** Rebuild machine code + spec map from the (modified) IR. */
    void regenerate();
};

/** Compile mini-C source through the full pipeline. */
CompiledProgram compile(const std::string &source,
                        const CompileOptions &options = {});

/** Per-specifier dynamic load counts and profiled prediction rates. */
struct ClassDynamics
{
    uint64_t executions = 0;
    /** Individual-operation stride predictions that were correct. */
    uint64_t predicted = 0;

    double
    rate() const
    {
        return executions == 0
                   ? 0.0
                   : static_cast<double>(predicted) /
                         static_cast<double>(executions);
    }
};

/** Result of a profiling (functional) run. */
struct ProfileResult
{
    EmulationResult emulation;
    /** Raw per-load profile (drives Section 4.3 reclassification). */
    classify::AddressProfile profile;
    /** Aggregates by current static classification. */
    ClassDynamics normal;
    ClassDynamics predict;
    ClassDynamics earlyCalc;

    uint64_t
    totalLoads() const
    {
        return normal.executions + predict.executions +
               earlyCalc.executions;
    }
};

/**
 * Functional run with the unbounded per-load stride profiler — the
 * "individual operation prediction" methodology behind the
 * prediction-rate columns of Tables 2-4.
 */
ProfileResult runProfile(const CompiledProgram &prog,
                         uint64_t max_instructions = 500'000'000);

/** Result of a timed run. */
struct TimedResult
{
    pipeline::PipelineStats pipe;
    EmulationResult emulation;
};

/** Emulation-driven timed run on the given machine. */
TimedResult runTimed(const CompiledProgram &prog,
                     const pipeline::MachineConfig &machine,
                     uint64_t max_instructions = 500'000'000);

/**
 * Timed run with pipeline observers attached (telemetry, custom
 * tooling). Observers must outlive the call; they receive every
 * pipeline event of the run.
 */
TimedResult runTimed(const CompiledProgram &prog,
                     const pipeline::MachineConfig &machine,
                     uint64_t max_instructions,
                     const std::vector<pipeline::Observer *> &observers);

/**
 * Thrown by a watchdog-guarded run whose program exceeded a limit —
 * a hung or runaway simulation, distinct from both user error
 * (FatalError) and model bugs (PanicError). Process exit code 75.
 */
class SimTimeoutError : public std::runtime_error
{
  public:
    enum class Kind { Retires, Cycles, WallClock };

    SimTimeoutError(Kind which, uint64_t limit_value,
                    const std::string &msg)
        : std::runtime_error(msg), kind_(which), limit_(limit_value)
    {}

    Kind kind() const { return kind_; }
    uint64_t limit() const { return limit_; }

  private:
    Kind kind_;
    uint64_t limit_;
};

/**
 * Hang detection for timed runs. Zero means unlimited. Unlike the
 * max_instructions cap (which ends the run benignly with
 * halted=false), tripping a watchdog throws SimTimeoutError.
 */
struct Watchdog
{
    /** Maximum instructions retired into the timing model. */
    uint64_t maxRetires = 0;
    /** Maximum pipeline completion cycle. */
    uint64_t maxCycles = 0;
    /**
     * Maximum host wall-clock milliseconds for the run. Unlike the
     * simulated-unit caps above, this bounds real time, so a crash-
     * isolated worker can exit with a clean timeout (75) before an
     * external supervisor has to SIGKILL it. Checked every few
     * thousand retires; granularity is coarse, not exact.
     */
    uint64_t maxWallMs = 0;
};

/**
 * Timed run guarded by a watchdog: throws SimTimeoutError as soon as
 * a limit is exceeded mid-run.
 */
TimedResult runTimed(const CompiledProgram &prog,
                     const pipeline::MachineConfig &machine,
                     uint64_t max_instructions,
                     const std::vector<pipeline::Observer *> &observers,
                     const Watchdog &watchdog);

/** baseline cycles / machine cycles. */
double speedup(const TimedResult &baseline, const TimedResult &machine);

/**
 * Render per-PC load telemetry as an aligned text table, cross-
 * referencing each site against the compiler's static classification
 * (a `*` note marks sites whose runtime path disagrees with the
 * compiler's specifier — e.g. disabled hardware or hardware-only
 * selection policies).
 */
std::string loadReportText(const CompiledProgram &prog,
                           const pipeline::LoadTelemetry &telemetry);

/**
 * Serialize the same per-PC report as a JSON array of site objects
 * (pc, load_id, compiler_spec, path, executed, speculated,
 * forwarded, forward_rate, dominant_failure, outcome breakdown).
 */
void loadReportJson(JsonWriter &w, const CompiledProgram &prog,
                    const pipeline::LoadTelemetry &telemetry);

/**
 * The full machine-readable stats document for one timed run against
 * its baseline: program block, machine/selection labels, baseline
 * cycles, speedup, pipeline stats, per-PC load report. This is the
 * document behind `elagc --json-stats` and the serving daemon's
 * `simulate` responses — both call it, so a served result is
 * byte-identical to a single-shot one for the same inputs.
 */
std::string statsReportJson(const std::string &file_label,
                            const std::string &machine_name,
                            const std::string &selection,
                            const CompiledProgram &prog,
                            const TimedResult &base,
                            const TimedResult &timed,
                            const pipeline::LoadTelemetry &telemetry);

} // namespace sim
} // namespace elag

#endif // ELAG_SIM_SIMULATOR_HH
