#include "sim/simulator.hh"

#include "irgen/irgen.hh"
#include "lang/parser.hh"
#include "lang/sema.hh"
#include "support/logging.hh"

namespace elag {
namespace sim {

namespace {

std::map<int, isa::LoadSpec>
collectSpecs(const ir::Module &mod)
{
    std::map<int, isa::LoadSpec> specs;
    for (const auto &fn : mod.functions) {
        for (const auto &bb : fn->blocks()) {
            for (const auto &inst : bb->insts) {
                if (inst.isLoad())
                    specs[inst.loadId] = inst.spec;
            }
        }
    }
    return specs;
}

} // anonymous namespace

void
CompiledProgram::regenerate()
{
    code = codegen::generateCode(*module);
    specOf = collectSpecs(*module);
}

CompiledProgram
compile(const std::string &source, const CompileOptions &options)
{
    lang::TypeTable types;
    std::unique_ptr<lang::Program> ast =
        lang::parseSource(source, types);
    lang::Sema sema(*ast, types);
    sema.analyze();

    CompiledProgram prog;
    prog.module = irgen::lowerToIr(*ast, types, sema.globalSize());
    opt::runStandardPipeline(*prog.module, options.opt);
    if (options.runClassifier) {
        prog.classStats =
            classify::classifyLoads(*prog.module, options.classify);
    } else {
        classify::clearClassification(*prog.module);
        // Count everything as normal for reporting purposes.
        for (const auto &fn : prog.module->functions) {
            for (const auto &bb : fn->blocks()) {
                for (const auto &inst : bb->insts) {
                    if (inst.isLoad())
                        ++prog.classStats.numNormal;
                }
            }
        }
    }
    prog.regenerate();
    return prog;
}

ProfileResult
runProfile(const CompiledProgram &prog, uint64_t max_instructions)
{
    ProfileResult result;
    predict::AddressProfiler profiler;

    // Per-load prediction correctness split by current class.
    Emulator emu(prog.code.program);
    const auto &load_ids = prog.code.loadIdOf;
    result.emulation = emu.run(
        max_instructions,
        [&](const pipeline::RetiredInst &ri) {
            if (!ri.inst.isLoad())
                return;
            auto it = load_ids.find(ri.pc);
            if (it == load_ids.end())
                return; // runtime (spill/prologue) load
            int load_id = it->second;
            // The profiler FSM must be consulted before it trains.
            // AddressProfiler::observe does both and records the
            // outcome in the per-load profile.
            profiler.observe(load_id, ri.effAddr);
        });

    result.profile = profiler.profile();

    // Aggregate per current classification. Per-load totals use the
    // profile; correctness per class follows the paper's methodology
    // (rates over dynamic executions of loads in that class).
    for (const auto &kv : result.profile) {
        auto spec_it = prog.specOf.find(kv.first);
        isa::LoadSpec spec = spec_it == prog.specOf.end()
                                 ? isa::LoadSpec::Normal
                                 : spec_it->second;
        ClassDynamics *dyn = &result.normal;
        if (spec == isa::LoadSpec::Predict)
            dyn = &result.predict;
        else if (spec == isa::LoadSpec::EarlyCalc)
            dyn = &result.earlyCalc;
        dyn->executions += kv.second.executions;
        dyn->predicted += kv.second.correct;
    }
    return result;
}

TimedResult
runTimed(const CompiledProgram &prog,
         const pipeline::MachineConfig &machine,
         uint64_t max_instructions)
{
    TimedResult result;
    pipeline::Pipeline pipe(machine);
    Emulator emu(prog.code.program);
    result.emulation =
        emu.run(max_instructions,
                [&](const pipeline::RetiredInst &ri) { pipe.retire(ri); });
    result.pipe = pipe.finish();
    return result;
}

double
speedup(const TimedResult &baseline, const TimedResult &machine)
{
    if (machine.pipe.cycles == 0)
        return 0.0;
    return static_cast<double>(baseline.pipe.cycles) /
           static_cast<double>(machine.pipe.cycles);
}

} // namespace sim
} // namespace elag
