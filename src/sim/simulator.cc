#include "sim/simulator.hh"

#include <chrono>

#include "irgen/irgen.hh"
#include "lang/parser.hh"
#include "lang/sema.hh"
#include "obs/span.hh"
#include "pipeline/stats.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace elag {
namespace sim {

namespace {

LoadSpecMap
collectSpecs(const ir::Module &mod)
{
    LoadSpecMap specs;
    for (const auto &fn : mod.functions) {
        for (const auto &bb : fn->blocks()) {
            for (const auto &inst : bb->insts) {
                if (inst.isLoad())
                    specs.set(inst.loadId, inst.spec);
            }
        }
    }
    return specs;
}

} // anonymous namespace

void
CompiledProgram::regenerate()
{
    code = codegen::generateCode(*module);
    specOf = collectSpecs(*module);
}

CompiledProgram
compile(const std::string &source, const CompileOptions &options)
{
    obs::Span compileSpan("compile", "pipeline");
    lang::TypeTable types;
    std::unique_ptr<lang::Program> ast;
    {
        obs::Span span("parse", "pipeline");
        ast = lang::parseSource(source, types);
    }
    lang::Sema sema(*ast, types);
    {
        obs::Span span("sema", "pipeline");
        sema.analyze();
    }

    CompiledProgram prog;
    {
        obs::Span span("irgen", "pipeline");
        prog.module =
            irgen::lowerToIr(*ast, types, sema.globalSize());
    }
    {
        obs::Span span("opt", "pipeline");
        opt::runStandardPipeline(*prog.module, options.opt);
    }
    {
        obs::Span span("classify", "pipeline");
        if (options.runClassifier) {
            prog.classStats =
                classify::classifyLoads(*prog.module,
                                        options.classify);
        } else {
            classify::clearClassification(*prog.module);
            // Count everything as normal for reporting purposes.
            for (const auto &fn : prog.module->functions) {
                for (const auto &bb : fn->blocks()) {
                    for (const auto &inst : bb->insts) {
                        if (inst.isLoad())
                            ++prog.classStats.numNormal;
                    }
                }
            }
        }
    }
    {
        obs::Span span("codegen", "pipeline");
        prog.regenerate();
    }
    return prog;
}

ProfileResult
runProfile(const CompiledProgram &prog, uint64_t max_instructions)
{
    ProfileResult result;
    predict::AddressProfiler profiler;

    // Per-load prediction correctness split by current class.
    Emulator emu(prog.code.program);
    const auto &load_ids = prog.code.loadIdOf;
    result.emulation = emu.run(
        max_instructions,
        [&](const pipeline::RetiredInst &ri) {
            if (!ri.inst.isLoad())
                return;
            int load_id = load_ids.at(ri.pc);
            if (load_id < 0)
                return; // runtime (spill/prologue) load
            // The profiler FSM must be consulted before it trains.
            // AddressProfiler::observe does both and records the
            // outcome in the per-load profile.
            profiler.observe(load_id, ri.effAddr);
        });

    result.profile = profiler.profile();

    // Aggregate per current classification. Per-load totals use the
    // profile; correctness per class follows the paper's methodology
    // (rates over dynamic executions of loads in that class).
    for (const auto &kv : result.profile) {
        isa::LoadSpec spec = prog.specOf.get(kv.first);
        ClassDynamics *dyn = &result.normal;
        if (spec == isa::LoadSpec::Predict)
            dyn = &result.predict;
        else if (spec == isa::LoadSpec::EarlyCalc)
            dyn = &result.earlyCalc;
        dyn->executions += kv.second.executions;
        dyn->predicted += kv.second.correct;
    }
    return result;
}

TimedResult
runTimed(const CompiledProgram &prog,
         const pipeline::MachineConfig &machine,
         uint64_t max_instructions)
{
    return runTimed(prog, machine, max_instructions, {});
}

TimedResult
runTimed(const CompiledProgram &prog,
         const pipeline::MachineConfig &machine,
         uint64_t max_instructions,
         const std::vector<pipeline::Observer *> &observers)
{
    return runTimed(prog, machine, max_instructions, observers,
                    Watchdog{});
}

TimedResult
runTimed(const CompiledProgram &prog,
         const pipeline::MachineConfig &machine,
         uint64_t max_instructions,
         const std::vector<pipeline::Observer *> &observers,
         const Watchdog &watchdog)
{
    TimedResult result;
    pipeline::Pipeline pipe(machine);
    for (pipeline::Observer *observer : observers)
        pipe.attach(observer);
    Emulator emu(prog.code.program);

    obs::SpanTracer &tracer = obs::SpanTracer::process();

    // Most runs have no watchdog and no tracer armed; keep the
    // per-retire callback down to the pipeline hand-off in that case.
    if (!watchdog.maxWallMs && !watchdog.maxRetires &&
        !watchdog.maxCycles && !tracer.enabled()) {
        result.emulation =
            emu.run(max_instructions,
                    [&](const pipeline::RetiredInst &ri) {
                        pipe.retire(ri);
                    });
        result.pipe = pipe.finish();
        return result;
    }

    // With the tracer armed, cut the run into slice spans so a
    // long simulation shows progress structure in the trace viewer
    // instead of one opaque block.
    constexpr uint64_t kSliceRetires = 1u << 20;
    uint64_t sliceStartUs = tracer.enabled() ? tracer.nowMicros() : 0;
    uint64_t sliceBase = 0;

    uint64_t retired = 0;
    const auto wallStart = std::chrono::steady_clock::now();
    result.emulation = emu.run(
        max_instructions, [&](const pipeline::RetiredInst &ri) {
            pipe.retire(ri);
            ++retired;
            if (tracer.enabled() &&
                retired - sliceBase >= kSliceRetires) {
                uint64_t now = tracer.nowMicros();
                tracer.record(
                    "sim.slice", "sim", sliceStartUs,
                    now - sliceStartUs,
                    {{"retired", std::to_string(retired)},
                     {"cycle",
                      std::to_string(pipe.currentCycle())}});
                sliceStartUs = now;
                sliceBase = retired;
            }
            if (watchdog.maxWallMs && (retired & 0xfff) == 0) {
                auto elapsed =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - wallStart)
                        .count();
                if (static_cast<uint64_t>(elapsed) > watchdog.maxWallMs) {
                    throw SimTimeoutError(
                        SimTimeoutError::Kind::WallClock,
                        watchdog.maxWallMs,
                        formatString("watchdog: run exceeded %llu ms "
                                     "of wall clock",
                                     static_cast<unsigned long long>(
                                         watchdog.maxWallMs)));
                }
            }
            if (watchdog.maxRetires && retired > watchdog.maxRetires) {
                throw SimTimeoutError(
                    SimTimeoutError::Kind::Retires, watchdog.maxRetires,
                    formatString("watchdog: more than %llu "
                                 "instructions retired",
                                 static_cast<unsigned long long>(
                                     watchdog.maxRetires)));
            }
            if (watchdog.maxCycles &&
                pipe.currentCycle() > watchdog.maxCycles) {
                throw SimTimeoutError(
                    SimTimeoutError::Kind::Cycles, watchdog.maxCycles,
                    formatString("watchdog: simulation passed cycle "
                                 "%llu",
                                 static_cast<unsigned long long>(
                                     watchdog.maxCycles)));
            }
        });
    if (tracer.enabled() && retired > sliceBase) {
        uint64_t now = tracer.nowMicros();
        tracer.record("sim.slice", "sim", sliceStartUs,
                      now - sliceStartUs,
                      {{"retired", std::to_string(retired)},
                       {"cycle",
                        std::to_string(pipe.currentCycle())}});
    }
    result.pipe = pipe.finish();
    return result;
}

namespace {

const char *
specName(isa::LoadSpec spec)
{
    switch (spec) {
      case isa::LoadSpec::Normal:
        return "ld_n";
      case isa::LoadSpec::Predict:
        return "ld_p";
      case isa::LoadSpec::EarlyCalc:
        return "ld_e";
    }
    return "?";
}

pipeline::LoadPath
expectedPath(isa::LoadSpec spec)
{
    switch (spec) {
      case isa::LoadSpec::Predict:
        return pipeline::LoadPath::Predict;
      case isa::LoadSpec::EarlyCalc:
        return pipeline::LoadPath::EarlyCalc;
      case isa::LoadSpec::Normal:
        break;
    }
    return pipeline::LoadPath::Normal;
}

/** One resolved report row: telemetry + compiler cross-reference. */
struct ReportSite
{
    uint32_t pc;
    const pipeline::LoadRecord *rec;
    int loadId = -1;            ///< -1 for runtime (spill/prologue) loads
    bool classified = false;    ///< has a compiler specifier
    isa::LoadSpec spec = isa::LoadSpec::Normal;
    bool mismatch = false;      ///< runtime path != compiler specifier
};

std::vector<ReportSite>
resolveSites(const CompiledProgram &prog,
             const pipeline::LoadTelemetry &telemetry)
{
    std::vector<ReportSite> sites;
    sites.reserve(telemetry.loads().size());
    for (const auto &kv : telemetry.loads()) {
        ReportSite site;
        site.pc = kv.first;
        site.rec = &kv.second;
        int load_id = prog.code.loadIdOf.at(kv.first);
        if (load_id >= 0) {
            site.loadId = load_id;
            if (prog.specOf.has(load_id)) {
                site.classified = true;
                site.spec = prog.specOf.get(load_id);
                site.mismatch =
                    expectedPath(site.spec) != kv.second.path;
            }
        }
        sites.push_back(site);
    }
    return sites;
}

} // anonymous namespace

std::string
loadReportText(const CompiledProgram &prog,
               const pipeline::LoadTelemetry &telemetry)
{
    TextTable table;
    table.setHeader({"pc", "load", "spec", "path", "executed",
                     "spec'd", "fwd", "fwd%", "dominant-failure", ""});
    uint64_t executed = 0, speculated = 0, forwarded = 0;
    for (const ReportSite &site : resolveSites(prog, telemetry)) {
        const pipeline::LoadRecord &rec = *site.rec;
        executed += rec.executed;
        speculated += rec.speculated;
        forwarded += rec.forwarded();
        std::string failure =
            rec.forwarded() == rec.executed
                ? "-"
                : pipeline::name(rec.dominantFailure());
        table.addRow(
            {std::to_string(site.pc),
             site.loadId >= 0 ? std::to_string(site.loadId) : "-",
             site.classified ? specName(site.spec) : "-",
             pipeline::name(rec.path), std::to_string(rec.executed),
             std::to_string(rec.speculated),
             std::to_string(rec.forwarded()),
             formatPercent(rec.forwardRate()), failure,
             site.mismatch ? "*" : ""});
    }
    table.addSeparator();
    table.addRow({"total", "", "", "", std::to_string(executed),
                  std::to_string(speculated),
                  std::to_string(forwarded),
                  formatPercent(executed == 0
                                    ? 0.0
                                    : static_cast<double>(forwarded) /
                                          static_cast<double>(executed)),
                  "", ""});
    return table.render();
}

void
loadReportJson(JsonWriter &w, const CompiledProgram &prog,
               const pipeline::LoadTelemetry &telemetry)
{
    w.beginArray();
    for (const ReportSite &site : resolveSites(prog, telemetry)) {
        const pipeline::LoadRecord &rec = *site.rec;
        w.beginObject();
        w.field("pc", site.pc);
        if (site.loadId >= 0)
            w.field("load_id", site.loadId);
        else
            w.key("load_id").nullValue();
        if (site.classified)
            w.field("compiler_spec", specName(site.spec));
        else
            w.key("compiler_spec").nullValue();
        w.field("path", pipeline::name(rec.path));
        w.field("mismatch", site.mismatch);
        w.field("executed", rec.executed);
        w.field("speculated", rec.speculated);
        w.field("forwarded", rec.forwarded());
        w.field("forward_rate", rec.forwardRate());
        w.field("dominant_failure",
                pipeline::name(rec.dominantFailure()));
        w.key("outcomes").beginObject();
        for (size_t i = 0; i < pipeline::NumSpecOutcomes; ++i) {
            pipeline::SpecOutcome outcome =
                static_cast<pipeline::SpecOutcome>(i);
            if (rec.count(outcome) > 0)
                w.field(pipeline::name(outcome), rec.count(outcome));
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
}

std::string
statsReportJson(const std::string &file_label,
                const std::string &machine_name,
                const std::string &selection,
                const CompiledProgram &prog, const TimedResult &base,
                const TimedResult &timed,
                const pipeline::LoadTelemetry &telemetry)
{
    JsonWriter w;
    w.beginObject();
    w.key("program").beginObject();
    w.field("file", file_label);
    w.field("instructions",
            static_cast<uint64_t>(prog.code.program.code.size()));
    w.key("static_loads").beginObject();
    w.field("total", prog.classStats.total());
    w.field("ld_n", prog.classStats.numNormal);
    w.field("ld_p", prog.classStats.numPredict);
    w.field("ld_e", prog.classStats.numEarlyCalc);
    w.endObject();
    w.endObject();
    w.field("machine", machine_name);
    if (!selection.empty())
        w.field("selection", selection);
    w.key("baseline").beginObject();
    w.field("cycles", base.pipe.cycles);
    w.field("ipc", base.pipe.ipc());
    w.endObject();
    w.field("speedup", speedup(base, timed));
    w.key("stats");
    pipeline::writeJson(w, timed.pipe);
    w.key("loads");
    loadReportJson(w, prog, telemetry);
    w.endObject();
    return w.str();
}

double
speedup(const TimedResult &baseline, const TimedResult &machine)
{
    if (machine.pipe.cycles == 0)
        return 0.0;
    return static_cast<double>(baseline.pipe.cycles) /
           static_cast<double>(machine.pipe.cycles);
}

} // namespace sim
} // namespace elag
