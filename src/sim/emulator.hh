/**
 * @file
 * Functional emulator for ELAG machine programs.
 *
 * Executes architecturally and streams each committed instruction
 * (with its real effective address and branch outcome) to an
 * observer — the "emulation-driven" methodology of Section 5.1: the
 * same committed stream drives the timing model and the address
 * profiler.
 *
 * The emulator runs over a predecoded DecodedStream (sim/decoded.hh)
 * rather than raw isa::Instruction records: handler specialization,
 * operand pre-resolution, and the retire flag word all happen once
 * per static instruction instead of once per committed instruction.
 * Two dispatch loops share one set of handler bodies
 * (sim/exec_loop.inc):
 *
 *  - runThreaded(): computed-goto threaded code, compiled in when the
 *    ELAG_THREADED_DISPATCH build option is ON and the compiler
 *    supports &&label (GCC/Clang). Each handler ends in its own
 *    indirect jump, so the host branch predictor keys on the guest's
 *    actual opcode-successor patterns.
 *  - runSwitch(): a portable switch over the same handler indices,
 *    always compiled, selectable at runtime (sim::setDispatchMode or
 *    ELAG_DISPATCH=switch) for differential testing and A/B benches.
 *
 * Both loops produce identical observable behavior by construction;
 * tests/test_dispatch.cc pins the stats documents byte-for-byte.
 *
 * run() is a template over the observer callable so the per-retire
 * callback (typically "feed the pipeline timing model") inlines into
 * the dispatch loop; this loop executes once per simulated
 * instruction and an opaque std::function indirection here costs
 * measurable whole-simulation throughput.
 */

#ifndef ELAG_SIM_EMULATOR_HH
#define ELAG_SIM_EMULATOR_HH

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "isa/program.hh"
#include "isa/registers.hh"
#include "mem/memory.hh"
#include "pipeline/pipeline.hh"
#include "sim/decoded.hh"
#include "support/logging.hh"

/**
 * ELAG_EMU_CGOTO mirrors sim::threadedDispatchCompiled() at the
 * preprocessor level: it gates the computed-goto loop's definition,
 * which uses GNU &&label syntax a portable build cannot parse.
 */
#if defined(ELAG_THREADED_DISPATCH) && ELAG_THREADED_DISPATCH && \
    (defined(__GNUC__) || defined(__clang__))
#define ELAG_EMU_CGOTO 1
#else
#define ELAG_EMU_CGOTO 0
#endif

namespace elag {
namespace sim {

/** Result of a functional run. */
struct EmulationResult
{
    /** Instructions committed. */
    uint64_t instructions = 0;
    /** Values emitted by the program's print() builtin. */
    std::vector<int32_t> output;
    /** True if the program reached HALT (vs. the instruction cap). */
    bool halted = false;
    /** Exit value (main's return value, register r4 at HALT). */
    int32_t exitValue = 0;
};

/**
 * Checkpoint codec for a (possibly partial) emulation result — used
 * to carry the retired-instruction count and accumulated print()
 * output across a checkpoint/restore boundary.
 */
void serialize(ckpt::Writer &w, const EmulationResult &result);
void restore(ckpt::Reader &r, EmulationResult &result);

/** The emulator. */
class Emulator
{
  public:
    /**
     * Type-erased committed-instruction sink; prefer passing a
     * lambda directly to run() so the call inlines.
     */
    using Observer = std::function<void(const pipeline::RetiredInst &)>;

    explicit Emulator(const isa::MachineProgram &program);

    /**
     * Run until HALT or @p max_instructions, streaming every
     * committed instruction to @p observer in program order.
     *
     * Guest faults (divide by zero, wild PC, out-of-range effective
     * address, undecodable opcode) raise GuestTrapError; the
     * architected PC visible to serialize() is the faulting
     * instruction's PC.
     */
    template <typename F>
    EmulationResult run(uint64_t max_instructions, F &&observer);

    /** Run until HALT or @p max_instructions, with no observer. */
    EmulationResult run(uint64_t max_instructions = 500'000'000);

    /** Architected integer register (for tests). */
    int32_t reg(int index) const;
    /** The memory image (for tests). */
    const mem::MainMemory &memory() const { return mem_; }
    mem::MainMemory &memory() { return mem_; }

    /**
     * Checkpoint the architectural state: PC, integer and FP
     * register files, and the full memory image. The program itself
     * is not captured; restore() requires an Emulator constructed
     * over the identical MachineProgram (checked by program hash at
     * the checkpoint layer). The predecoded stream is derived state
     * and never serialized, so checkpoints taken under one dispatch
     * mode restore under the other.
     */
    void serialize(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    template <typename F>
    EmulationResult runSwitch(uint64_t max_instructions, F &&observer);
#if ELAG_EMU_CGOTO
    template <typename F>
    EmulationResult runThreaded(uint64_t max_instructions,
                                F &&observer);
#endif
    template <typename F>
    EmulationResult runLegacy(uint64_t max_instructions, F &&observer);

    void reset();

    // Owned copy, not a reference: the legacy loop decodes from the
    // raw program at run time (the other engines only touch the
    // shared DecodedStream), and callers may construct an Emulator
    // from a temporary MachineProgram.
    const isa::MachineProgram prog;
    std::shared_ptr<const DecodedStream> stream_;
    mem::MainMemory mem_;
    int32_t regs[isa::NumIntRegs] = {};
    float fregs[isa::NumFpRegs] = {};
    uint32_t pc_ = 0;
};

template <typename F>
EmulationResult
Emulator::run(uint64_t max_instructions, F &&observer)
{
    const DispatchMode mode = dispatchMode();
    if (mode == DispatchMode::Legacy) [[unlikely]]
        return runLegacy(max_instructions,
                         std::forward<F>(observer));
#if ELAG_EMU_CGOTO
    if (mode != DispatchMode::Switch)
        return runThreaded(max_instructions,
                           std::forward<F>(observer));
#endif
    return runSwitch(max_instructions, std::forward<F>(observer));
}

template <typename F>
EmulationResult
Emulator::runSwitch(uint64_t max_instructions, F &&observer)
{
#define ELAG_EXEC_THREADED 0
#include "sim/exec_loop.inc"
#undef ELAG_EXEC_THREADED
}

#if ELAG_EMU_CGOTO
template <typename F>
EmulationResult
Emulator::runThreaded(uint64_t max_instructions, F &&observer)
{
#define ELAG_EXEC_THREADED 1
#include "sim/exec_loop.inc"
#undef ELAG_EXEC_THREADED
}
#endif

/**
 * The pre-predecode reference interpreter: a decode-as-you-go switch
 * over raw isa::Instruction records, kept alive (with the typed guest
 * traps) as a third differential oracle — it shares no predecode
 * machinery with the other modes — and as the same-runner baseline
 * the dispatch A/B benches and the CI perf smoke measure against.
 * RetiredInst records leave flag::Valid clear, so this mode also
 * exercises the pipeline's decode-at-retire fallback.
 */
template <typename F>
EmulationResult
Emulator::runLegacy(uint64_t max_instructions, F &&observer)
{
    using isa::Instruction;
    using isa::Opcode;

    EmulationResult result;
    const uint32_t size = static_cast<uint32_t>(prog.code.size());
    const uint64_t mem_size = mem_.size();
    uint32_t pc = pc_;

    if (pc > size) {
        throw GuestTrapError(
            GuestTrapKind::PcOutOfRange, pc,
            formatString("emulator: PC 0x%x out of range", pc));
    }
    if (max_instructions == 0)
        return result;

    auto read_reg = [&](int r) -> int32_t {
        return r == 0 ? 0 : regs[r];
    };
    auto write_reg = [&](int r, int32_t v) {
        if (r != 0)
            regs[r] = v;
    };
    auto check_ea = [&](uint32_t ea, uint32_t bytes) {
        if (static_cast<uint64_t>(ea) + bytes > mem_size) {
            throw GuestTrapError(
                GuestTrapKind::BadAddress, pc,
                formatString("emulator: memory access out of range "
                             "at pc %u: addr=0x%x",
                             pc, ea));
        }
    };

    try {
        while (result.instructions < max_instructions) {
            if (pc >= size) {
                throw GuestTrapError(
                    GuestTrapKind::PcOutOfRange, pc,
                    formatString("emulator: PC 0x%x out of range",
                                 pc));
            }
            const Instruction &inst = prog.code[pc];

            pipeline::RetiredInst ri;
            ri.pc = pc;
            ri.inst = inst;

            uint32_t next_pc = pc + 1;
            uint32_t a = static_cast<uint32_t>(read_reg(inst.rs1));
            uint32_t b = static_cast<uint32_t>(read_reg(inst.rs2));
            int32_t sa = static_cast<int32_t>(a);
            int32_t sb = static_cast<int32_t>(b);
            int32_t imm = inst.imm;

            switch (inst.op) {
              case Opcode::ADD: write_reg(inst.rd, sa + sb); break;
              case Opcode::SUB: write_reg(inst.rd, sa - sb); break;
              case Opcode::MUL:
                write_reg(inst.rd, static_cast<int32_t>(a * b));
                break;
              case Opcode::DIV:
                if (sb == 0) {
                    throw GuestTrapError(
                        GuestTrapKind::DivideByZero, pc,
                        formatString(
                            "emulator: divide by zero at pc %u", pc));
                }
                write_reg(inst.rd, (sa == INT32_MIN && sb == -1)
                                       ? INT32_MIN
                                       : sa / sb);
                break;
              case Opcode::REM:
                if (sb == 0) {
                    throw GuestTrapError(
                        GuestTrapKind::RemainderByZero, pc,
                        formatString(
                            "emulator: remainder by zero at pc %u",
                            pc));
                }
                write_reg(inst.rd,
                          (sa == INT32_MIN && sb == -1) ? 0 : sa % sb);
                break;
              case Opcode::AND: write_reg(inst.rd, sa & sb); break;
              case Opcode::OR: write_reg(inst.rd, sa | sb); break;
              case Opcode::XOR: write_reg(inst.rd, sa ^ sb); break;
              case Opcode::SLL:
                write_reg(inst.rd,
                          static_cast<int32_t>(a << (b & 31)));
                break;
              case Opcode::SRL:
                write_reg(inst.rd,
                          static_cast<int32_t>(a >> (b & 31)));
                break;
              case Opcode::SRA:
                write_reg(inst.rd, sa >> (b & 31));
                break;
              case Opcode::SLT: write_reg(inst.rd, sa < sb); break;
              case Opcode::SLTU: write_reg(inst.rd, a < b); break;
              case Opcode::SEQ: write_reg(inst.rd, sa == sb); break;
              case Opcode::ADDI: write_reg(inst.rd, sa + imm); break;
              case Opcode::ANDI: write_reg(inst.rd, sa & imm); break;
              case Opcode::ORI: write_reg(inst.rd, sa | imm); break;
              case Opcode::XORI: write_reg(inst.rd, sa ^ imm); break;
              case Opcode::SLLI:
                write_reg(inst.rd,
                          static_cast<int32_t>(a << (imm & 31)));
                break;
              case Opcode::SRLI:
                write_reg(inst.rd,
                          static_cast<int32_t>(a >> (imm & 31)));
                break;
              case Opcode::SRAI:
                write_reg(inst.rd, sa >> (imm & 31));
                break;
              case Opcode::SLTI: write_reg(inst.rd, sa < imm); break;
              case Opcode::LUI: write_reg(inst.rd, imm << 16); break;
              case Opcode::LOAD: {
                uint32_t ea = inst.mode == isa::AddrMode::BaseOffset
                                  ? a + static_cast<uint32_t>(imm)
                                  : a + b;
                ri.effAddr = ea;
                uint32_t bytes =
                    inst.width == isa::MemWidth::Byte ? 1u : 4u;
                check_ea(ea, bytes);
                int32_t value =
                    inst.width == isa::MemWidth::Byte
                        ? static_cast<int32_t>(mem_.readByte(ea))
                        : static_cast<int32_t>(mem_.readWord(ea));
                write_reg(inst.rd, value);
                break;
              }
              case Opcode::STORE: {
                uint32_t ea = inst.mode == isa::AddrMode::BaseOffset
                                  ? a + static_cast<uint32_t>(imm)
                                  : a + b;
                ri.effAddr = ea;
                uint32_t bytes =
                    inst.width == isa::MemWidth::Byte ? 1u : 4u;
                check_ea(ea, bytes);
                if (inst.width == isa::MemWidth::Byte)
                    mem_.writeByte(ea, static_cast<uint8_t>(b));
                else
                    mem_.writeWord(ea, b);
                break;
              }
              case Opcode::BEQ: ri.taken = sa == sb; break;
              case Opcode::BNE: ri.taken = sa != sb; break;
              case Opcode::BLT: ri.taken = sa < sb; break;
              case Opcode::BGE: ri.taken = sa >= sb; break;
              case Opcode::BLTU: ri.taken = a < b; break;
              case Opcode::BGEU: ri.taken = a >= b; break;
              case Opcode::JMP:
                ri.taken = true;
                next_pc = static_cast<uint32_t>(imm);
                break;
              case Opcode::JAL:
                ri.taken = true;
                write_reg(inst.rd, static_cast<int32_t>(pc + 1));
                next_pc = static_cast<uint32_t>(imm);
                break;
              case Opcode::JR:
                ri.taken = true;
                next_pc = a;
                break;
              case Opcode::FADD:
                fregs[inst.rd] = fregs[inst.rs1] + fregs[inst.rs2];
                break;
              case Opcode::FSUB:
                fregs[inst.rd] = fregs[inst.rs1] - fregs[inst.rs2];
                break;
              case Opcode::FMUL:
                fregs[inst.rd] = fregs[inst.rs1] * fregs[inst.rs2];
                break;
              case Opcode::FDIV:
                fregs[inst.rd] = fregs[inst.rs1] / fregs[inst.rs2];
                break;
              case Opcode::FLOAD: {
                uint32_t ea = inst.mode == isa::AddrMode::BaseOffset
                                  ? a + static_cast<uint32_t>(imm)
                                  : a + b;
                ri.effAddr = ea;
                check_ea(ea, 4);
                uint32_t bits = mem_.readWord(ea);
                float f;
                std::memcpy(&f, &bits, 4);
                fregs[inst.rd] = f;
                break;
              }
              case Opcode::FSTORE: {
                uint32_t ea = a + static_cast<uint32_t>(imm);
                ri.effAddr = ea;
                check_ea(ea, 4);
                uint32_t bits;
                std::memcpy(&bits, &fregs[inst.rs2], 4);
                mem_.writeWord(ea, bits);
                break;
              }
              case Opcode::CVTIF:
                fregs[inst.rd] = static_cast<float>(sa);
                break;
              case Opcode::CVTFI:
                write_reg(inst.rd,
                          static_cast<int32_t>(fregs[inst.rs1]));
                break;
              case Opcode::PRINT:
                result.output.push_back(sa);
                break;
              case Opcode::HALT:
                ++result.instructions;
                ri.nextPc = pc;
                observer(ri);
                result.halted = true;
                result.exitValue = read_reg(isa::reg::Arg0);
                pc_ = pc;
                return result;
              case Opcode::NOP:
                break;
              default:
                throw GuestTrapError(
                    GuestTrapKind::BadOpcode, pc,
                    formatString("emulator: bad opcode at pc %u",
                                 pc));
            }

            // Conditional branches pick their target here; explicit
            // transfers validate it like the predecoded loops do
            // (== size flows to the next iteration's range trap).
            if (inst.isCondBranch() && ri.taken)
                next_pc = static_cast<uint32_t>(imm);
            if (next_pc > size) {
                throw GuestTrapError(
                    GuestTrapKind::PcOutOfRange, pc,
                    formatString("emulator: control transfer to PC "
                                 "0x%x out of range at pc %u",
                                 next_pc, pc));
            }

            ri.nextPc = next_pc;
            ++result.instructions;
            observer(ri);
            pc = next_pc;
        }
        pc_ = pc;
        result.halted = false;
        return result;
    } catch (...) {
        pc_ = pc;
        throw;
    }
}

inline EmulationResult
Emulator::run(uint64_t max_instructions)
{
    return run(max_instructions,
               [](const pipeline::RetiredInst &) {});
}

} // namespace sim
} // namespace elag

#endif // ELAG_SIM_EMULATOR_HH
