/**
 * @file
 * Functional emulator for ELAG machine programs.
 *
 * Executes architecturally and streams each committed instruction
 * (with its real effective address and branch outcome) to an
 * observer — the "emulation-driven" methodology of Section 5.1: the
 * same committed stream drives the timing model and the address
 * profiler.
 */

#ifndef ELAG_SIM_EMULATOR_HH
#define ELAG_SIM_EMULATOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "isa/program.hh"
#include "mem/memory.hh"
#include "pipeline/pipeline.hh"

namespace elag {
namespace sim {

/** Result of a functional run. */
struct EmulationResult
{
    /** Instructions committed. */
    uint64_t instructions = 0;
    /** Values emitted by the program's print() builtin. */
    std::vector<int32_t> output;
    /** True if the program reached HALT (vs. the instruction cap). */
    bool halted = false;
    /** Exit value (main's return value, register r4 at HALT). */
    int32_t exitValue = 0;
};

/** The emulator. */
class Emulator
{
  public:
    /** Callback receiving every committed instruction in order. */
    using Observer = std::function<void(const pipeline::RetiredInst &)>;

    explicit Emulator(const isa::MachineProgram &program);

    /**
     * Run until HALT or @p max_instructions.
     * @param observer optional committed-instruction sink
     */
    EmulationResult run(uint64_t max_instructions = 500'000'000,
                        const Observer &observer = nullptr);

    /** Architected integer register (for tests). */
    int32_t reg(int index) const;
    /** The memory image (for tests). */
    const mem::MainMemory &memory() const { return mem_; }
    mem::MainMemory &memory() { return mem_; }

  private:
    void reset();

    const isa::MachineProgram &prog;
    mem::MainMemory mem_;
    int32_t regs[isa::NumIntRegs] = {};
    float fregs[isa::NumFpRegs] = {};
    uint32_t pc = 0;
};

} // namespace sim
} // namespace elag

#endif // ELAG_SIM_EMULATOR_HH
