/**
 * @file
 * Functional emulator for ELAG machine programs.
 *
 * Executes architecturally and streams each committed instruction
 * (with its real effective address and branch outcome) to an
 * observer — the "emulation-driven" methodology of Section 5.1: the
 * same committed stream drives the timing model and the address
 * profiler.
 *
 * run() is a template over the observer callable so the per-retire
 * callback (typically "feed the pipeline timing model") inlines into
 * the dispatch loop; this loop executes once per simulated
 * instruction and an opaque std::function indirection here costs
 * measurable whole-simulation throughput.
 */

#ifndef ELAG_SIM_EMULATOR_HH
#define ELAG_SIM_EMULATOR_HH

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "isa/program.hh"
#include "isa/registers.hh"
#include "mem/memory.hh"
#include "pipeline/pipeline.hh"
#include "support/logging.hh"

namespace elag {
namespace sim {

/** Result of a functional run. */
struct EmulationResult
{
    /** Instructions committed. */
    uint64_t instructions = 0;
    /** Values emitted by the program's print() builtin. */
    std::vector<int32_t> output;
    /** True if the program reached HALT (vs. the instruction cap). */
    bool halted = false;
    /** Exit value (main's return value, register r4 at HALT). */
    int32_t exitValue = 0;
};

/**
 * Checkpoint codec for a (possibly partial) emulation result — used
 * to carry the retired-instruction count and accumulated print()
 * output across a checkpoint/restore boundary.
 */
void serialize(ckpt::Writer &w, const EmulationResult &result);
void restore(ckpt::Reader &r, EmulationResult &result);

/** The emulator. */
class Emulator
{
  public:
    /**
     * Type-erased committed-instruction sink; prefer passing a
     * lambda directly to run() so the call inlines.
     */
    using Observer = std::function<void(const pipeline::RetiredInst &)>;

    explicit Emulator(const isa::MachineProgram &program);

    /**
     * Run until HALT or @p max_instructions, streaming every
     * committed instruction to @p observer in program order.
     */
    template <typename F>
    EmulationResult run(uint64_t max_instructions, F &&observer);

    /** Run until HALT or @p max_instructions, with no observer. */
    EmulationResult run(uint64_t max_instructions = 500'000'000);

    /** Architected integer register (for tests). */
    int32_t reg(int index) const;
    /** The memory image (for tests). */
    const mem::MainMemory &memory() const { return mem_; }
    mem::MainMemory &memory() { return mem_; }

    /**
     * Checkpoint the architectural state: PC, integer and FP
     * register files, and the full memory image. The program itself
     * is not captured; restore() requires an Emulator constructed
     * over the identical MachineProgram (checked by program hash at
     * the checkpoint layer).
     */
    void serialize(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    void reset();

    const isa::MachineProgram &prog;
    mem::MainMemory mem_;
    int32_t regs[isa::NumIntRegs] = {};
    float fregs[isa::NumFpRegs] = {};
    uint32_t pc = 0;
};

template <typename F>
EmulationResult
Emulator::run(uint64_t max_instructions, F &&observer)
{
    using isa::Instruction;
    using isa::Opcode;

    EmulationResult result;

    auto read_reg = [&](int r) -> int32_t { return r == 0 ? 0 : regs[r]; };
    auto write_reg = [&](int r, int32_t v) {
        if (r != 0)
            regs[r] = v;
    };

    while (result.instructions < max_instructions) {
        if (pc >= prog.code.size())
            fatal("emulator: PC 0x%x out of range", pc);
        const Instruction &inst = prog.code[pc];

        pipeline::RetiredInst ri;
        ri.pc = pc;
        ri.inst = inst;

        uint32_t next_pc = pc + 1;
        uint32_t a = static_cast<uint32_t>(read_reg(inst.rs1));
        uint32_t b = static_cast<uint32_t>(read_reg(inst.rs2));
        int32_t sa = static_cast<int32_t>(a);
        int32_t sb = static_cast<int32_t>(b);
        int32_t imm = inst.imm;

        switch (inst.op) {
          case Opcode::ADD: write_reg(inst.rd, sa + sb); break;
          case Opcode::SUB: write_reg(inst.rd, sa - sb); break;
          case Opcode::MUL:
            write_reg(inst.rd,
                      static_cast<int32_t>(a * b));
            break;
          case Opcode::DIV:
            if (sb == 0)
                fatal("emulator: divide by zero at pc %u", pc);
            write_reg(inst.rd, (sa == INT32_MIN && sb == -1)
                                   ? INT32_MIN
                                   : sa / sb);
            break;
          case Opcode::REM:
            if (sb == 0)
                fatal("emulator: remainder by zero at pc %u", pc);
            write_reg(inst.rd,
                      (sa == INT32_MIN && sb == -1) ? 0 : sa % sb);
            break;
          case Opcode::AND: write_reg(inst.rd, sa & sb); break;
          case Opcode::OR: write_reg(inst.rd, sa | sb); break;
          case Opcode::XOR: write_reg(inst.rd, sa ^ sb); break;
          case Opcode::SLL:
            write_reg(inst.rd,
                      static_cast<int32_t>(a << (b & 31)));
            break;
          case Opcode::SRL:
            write_reg(inst.rd,
                      static_cast<int32_t>(a >> (b & 31)));
            break;
          case Opcode::SRA: write_reg(inst.rd, sa >> (b & 31)); break;
          case Opcode::SLT: write_reg(inst.rd, sa < sb); break;
          case Opcode::SLTU: write_reg(inst.rd, a < b); break;
          case Opcode::SEQ: write_reg(inst.rd, sa == sb); break;
          case Opcode::ADDI: write_reg(inst.rd, sa + imm); break;
          case Opcode::ANDI: write_reg(inst.rd, sa & imm); break;
          case Opcode::ORI: write_reg(inst.rd, sa | imm); break;
          case Opcode::XORI: write_reg(inst.rd, sa ^ imm); break;
          case Opcode::SLLI:
            write_reg(inst.rd,
                      static_cast<int32_t>(a << (imm & 31)));
            break;
          case Opcode::SRLI:
            write_reg(inst.rd,
                      static_cast<int32_t>(a >> (imm & 31)));
            break;
          case Opcode::SRAI: write_reg(inst.rd, sa >> (imm & 31)); break;
          case Opcode::SLTI: write_reg(inst.rd, sa < imm); break;
          case Opcode::LUI:
            write_reg(inst.rd, imm << 16);
            break;
          case Opcode::LOAD: {
            uint32_t ea = inst.mode == isa::AddrMode::BaseOffset
                              ? a + static_cast<uint32_t>(imm)
                              : a + b;
            ri.effAddr = ea;
            int32_t value =
                inst.width == isa::MemWidth::Byte
                    ? static_cast<int32_t>(mem_.readByte(ea))
                    : static_cast<int32_t>(mem_.readWord(ea));
            write_reg(inst.rd, value);
            break;
          }
          case Opcode::STORE: {
            uint32_t ea = inst.mode == isa::AddrMode::BaseOffset
                              ? a + static_cast<uint32_t>(imm)
                              : a + b;
            ri.effAddr = ea;
            if (inst.width == isa::MemWidth::Byte)
                mem_.writeByte(ea, static_cast<uint8_t>(b));
            else
                mem_.writeWord(ea, b);
            break;
          }
          case Opcode::BEQ:
            ri.taken = sa == sb;
            break;
          case Opcode::BNE:
            ri.taken = sa != sb;
            break;
          case Opcode::BLT:
            ri.taken = sa < sb;
            break;
          case Opcode::BGE:
            ri.taken = sa >= sb;
            break;
          case Opcode::BLTU:
            ri.taken = a < b;
            break;
          case Opcode::BGEU:
            ri.taken = a >= b;
            break;
          case Opcode::JMP:
            ri.taken = true;
            next_pc = static_cast<uint32_t>(imm);
            break;
          case Opcode::JAL:
            ri.taken = true;
            write_reg(inst.rd, static_cast<int32_t>(pc + 1));
            next_pc = static_cast<uint32_t>(imm);
            break;
          case Opcode::JR:
            ri.taken = true;
            next_pc = a;
            break;
          case Opcode::FADD:
            fregs[inst.rd] = fregs[inst.rs1] + fregs[inst.rs2];
            break;
          case Opcode::FSUB:
            fregs[inst.rd] = fregs[inst.rs1] - fregs[inst.rs2];
            break;
          case Opcode::FMUL:
            fregs[inst.rd] = fregs[inst.rs1] * fregs[inst.rs2];
            break;
          case Opcode::FDIV:
            fregs[inst.rd] = fregs[inst.rs1] / fregs[inst.rs2];
            break;
          case Opcode::FLOAD: {
            uint32_t ea = inst.mode == isa::AddrMode::BaseOffset
                              ? a + static_cast<uint32_t>(imm)
                              : a + b;
            ri.effAddr = ea;
            uint32_t bits = mem_.readWord(ea);
            float f;
            std::memcpy(&f, &bits, 4);
            fregs[inst.rd] = f;
            break;
          }
          case Opcode::FSTORE: {
            uint32_t ea = a + static_cast<uint32_t>(imm);
            ri.effAddr = ea;
            uint32_t bits;
            std::memcpy(&bits, &fregs[inst.rs2], 4);
            mem_.writeWord(ea, bits);
            break;
          }
          case Opcode::CVTIF:
            fregs[inst.rd] = static_cast<float>(sa);
            break;
          case Opcode::CVTFI:
            write_reg(inst.rd,
                      static_cast<int32_t>(fregs[inst.rs1]));
            break;
          case Opcode::PRINT:
            result.output.push_back(sa);
            break;
          case Opcode::HALT:
            ++result.instructions;
            ri.nextPc = pc;
            observer(ri);
            result.halted = true;
            result.exitValue = read_reg(isa::reg::Arg0);
            return result;
          case Opcode::NOP:
            break;
          default:
            fatal("emulator: bad opcode at pc %u", pc);
        }

        // Conditional branches pick their target here.
        if (inst.isCondBranch() && ri.taken)
            next_pc = static_cast<uint32_t>(imm);

        ri.nextPc = next_pc;
        ++result.instructions;
        observer(ri);
        pc = next_pc;
    }
    result.halted = false;
    return result;
}

inline EmulationResult
Emulator::run(uint64_t max_instructions)
{
    return run(max_instructions,
               [](const pipeline::RetiredInst &) {});
}

} // namespace sim
} // namespace elag

#endif // ELAG_SIM_EMULATOR_HH
