#include "sim/decoded.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>

#include "support/logging.hh"

namespace elag {
namespace sim {

using isa::AddrMode;
using isa::Instruction;
using isa::MemWidth;
using isa::Opcode;

const char *
name(GuestTrapKind kind)
{
    switch (kind) {
      case GuestTrapKind::DivideByZero:
        return "divide_by_zero";
      case GuestTrapKind::RemainderByZero:
        return "remainder_by_zero";
      case GuestTrapKind::PcOutOfRange:
        return "pc_out_of_range";
      case GuestTrapKind::BadAddress:
        return "bad_address";
      case GuestTrapKind::BadOpcode:
        return "bad_opcode";
    }
    return "?";
}

namespace {

Handler
handlerFor(const Instruction &inst)
{
    bool bo = inst.mode == AddrMode::BaseOffset;
    bool byte = inst.width == MemWidth::Byte;
    switch (inst.op) {
      case Opcode::ADD: return Handler::ADD;
      case Opcode::SUB: return Handler::SUB;
      case Opcode::MUL: return Handler::MUL;
      case Opcode::DIV: return Handler::DIV;
      case Opcode::REM: return Handler::REM;
      case Opcode::AND: return Handler::AND;
      case Opcode::OR: return Handler::OR;
      case Opcode::XOR: return Handler::XOR;
      case Opcode::SLL: return Handler::SLL;
      case Opcode::SRL: return Handler::SRL;
      case Opcode::SRA: return Handler::SRA;
      case Opcode::SLT: return Handler::SLT;
      case Opcode::SLTU: return Handler::SLTU;
      case Opcode::SEQ: return Handler::SEQ;
      case Opcode::ADDI: return Handler::ADDI;
      case Opcode::ANDI: return Handler::ANDI;
      case Opcode::ORI: return Handler::ORI;
      case Opcode::XORI: return Handler::XORI;
      case Opcode::SLLI: return Handler::SLLI;
      case Opcode::SRLI: return Handler::SRLI;
      case Opcode::SRAI: return Handler::SRAI;
      case Opcode::SLTI: return Handler::SLTI;
      case Opcode::LUI: return Handler::LUI;
      case Opcode::LOAD:
        if (bo)
            return byte ? Handler::LOAD_BO_B : Handler::LOAD_BO_W;
        return byte ? Handler::LOAD_BI_B : Handler::LOAD_BI_W;
      case Opcode::STORE:
        if (bo)
            return byte ? Handler::STORE_BO_B : Handler::STORE_BO_W;
        return byte ? Handler::STORE_BI_B : Handler::STORE_BI_W;
      case Opcode::BEQ: return Handler::BEQ;
      case Opcode::BNE: return Handler::BNE;
      case Opcode::BLT: return Handler::BLT;
      case Opcode::BGE: return Handler::BGE;
      case Opcode::BLTU: return Handler::BLTU;
      case Opcode::BGEU: return Handler::BGEU;
      case Opcode::JMP: return Handler::JMP;
      case Opcode::JAL: return Handler::JAL;
      case Opcode::JR: return Handler::JR;
      case Opcode::FADD: return Handler::FADD;
      case Opcode::FSUB: return Handler::FSUB;
      case Opcode::FMUL: return Handler::FMUL;
      case Opcode::FDIV: return Handler::FDIV;
      case Opcode::FLOAD:
        return bo ? Handler::FLOAD_BO : Handler::FLOAD_BI;
      case Opcode::FSTORE: return Handler::FSTORE;
      case Opcode::CVTIF: return Handler::CVTIF;
      case Opcode::CVTFI: return Handler::CVTFI;
      case Opcode::PRINT: return Handler::PRINT;
      case Opcode::HALT: return Handler::HALT;
      case Opcode::NOP: return Handler::NOP;
      default:
        return Handler::TRAP_BADOP;
    }
}

} // anonymous namespace

DecodedInst
decodeInst(const Instruction &inst)
{
    DecodedInst d;
    d.inst = inst;
    d.handler = handlerFor(inst);
    if (d.handler == Handler::TRAP_BADOP) {
        // Leave an undecodable record inert beyond its handler: the
        // flag word of a junk opcode is meaningless and the trap
        // fires before any observer sees it.
        return d;
    }
    d.flags = isa::decodeFlags(inst);
    int s1, s2;
    inst.intSources(s1, s2);
    d.src1 = static_cast<int8_t>(s1);
    d.src2 = static_cast<int8_t>(s2);
    if (inst.isControl() && inst.op != Opcode::JR)
        d.target = static_cast<uint32_t>(inst.imm);
    return d;
}

DecodedStream::DecodedStream(const isa::MachineProgram &program)
{
    insts_.reserve(program.code.size() + 1);
    for (const Instruction &inst : program.code)
        insts_.push_back(decodeInst(inst));
    // Sentinel: executing past the last instruction (or entering at
    // an out-of-range PC equal to the stream size) traps instead of
    // reading out of bounds, which is what lets the dispatch loop
    // drop its per-instruction PC check.
    DecodedInst sentinel;
    sentinel.handler = Handler::TRAP_PCRANGE;
    insts_.push_back(sentinel);
}

namespace {

/**
 * Process-wide stream cache: content hash -> shared stream, bounded
 * LRU. Entries hold shared_ptr (not weak_ptr) so the bench pattern
 * of destroying and re-creating an Emulator per iteration still hits.
 * A collision-free 64-bit content hash is assumed, exactly as the run
 * cache and the checkpoint run keys already assume.
 */
struct StreamCache
{
    static constexpr size_t kCapacity = 64;

    std::mutex mu;
    std::unordered_map<uint64_t,
                       std::pair<std::shared_ptr<const DecodedStream>,
                                 std::list<uint64_t>::iterator>>
        entries;
    std::list<uint64_t> lru; // most recently used first

    static StreamCache &
    instance()
    {
        static StreamCache cache;
        return cache;
    }

    std::shared_ptr<const DecodedStream>
    get(const isa::MachineProgram &program)
    {
        uint64_t key = hashProgram(program);
        std::lock_guard<std::mutex> lock(mu);
        auto it = entries.find(key);
        if (it != entries.end()) {
            lru.splice(lru.begin(), lru, it->second.second);
            return it->second.first;
        }
        auto stream = std::make_shared<const DecodedStream>(program);
        lru.push_front(key);
        entries.emplace(key, std::make_pair(stream, lru.begin()));
        while (entries.size() > kCapacity) {
            entries.erase(lru.back());
            lru.pop_back();
        }
        return stream;
    }
};

} // anonymous namespace

std::shared_ptr<const DecodedStream>
DecodedStream::get(const isa::MachineProgram &program)
{
    return StreamCache::instance().get(program);
}

size_t
DecodedStream::cacheSize()
{
    StreamCache &cache = StreamCache::instance();
    std::lock_guard<std::mutex> lock(cache.mu);
    return cache.entries.size();
}

void
DecodedStream::clearCache()
{
    StreamCache &cache = StreamCache::instance();
    std::lock_guard<std::mutex> lock(cache.mu);
    cache.entries.clear();
    cache.lru.clear();
}

namespace {

DispatchMode
envDispatchMode()
{
    const char *env = std::getenv("ELAG_DISPATCH");
    if (!env || !*env)
        return DispatchMode::Auto;
    if (std::strcmp(env, "switch") == 0)
        return DispatchMode::Switch;
    if (std::strcmp(env, "threaded") == 0)
        return DispatchMode::Threaded;
    if (std::strcmp(env, "legacy") == 0)
        return DispatchMode::Legacy;
    if (std::strcmp(env, "auto") != 0)
        warn("ELAG_DISPATCH: unknown mode '%s' (want auto, switch, "
             "threaded, or legacy); using auto",
             env);
    return DispatchMode::Auto;
}

std::atomic<DispatchMode> &
modeVar()
{
    static std::atomic<DispatchMode> mode{envDispatchMode()};
    return mode;
}

} // anonymous namespace

void
setDispatchMode(DispatchMode mode)
{
    modeVar().store(mode, std::memory_order_relaxed);
}

DispatchMode
dispatchMode()
{
    return modeVar().load(std::memory_order_relaxed);
}

bool
threadedDispatchActive()
{
    if (!threadedDispatchCompiled())
        return false;
    DispatchMode mode = dispatchMode();
    return mode != DispatchMode::Switch &&
           mode != DispatchMode::Legacy;
}

} // namespace sim
} // namespace elag
