#include "sim/emulator.hh"

#include <cstring>

namespace elag {
namespace sim {

Emulator::Emulator(const isa::MachineProgram &program)
    : prog(program), mem_(isa::MemorySize)
{
    reset();
}

void
Emulator::reset()
{
    std::memset(regs, 0, sizeof(regs));
    std::memset(fregs, 0, sizeof(fregs));
    pc = prog.entry;

    // Load the global segment and patch the heap bump pointer, which
    // by construction is the last word of the segment.
    mem_.writeBlock(isa::GlobalBase, prog.globalInit);
    if (prog.globalSize >= 4) {
        mem_.writeWord(isa::GlobalBase + prog.globalSize - 4,
                       prog.heapBase());
    }
}

int32_t
Emulator::reg(int index) const
{
    elag_assert(index >= 0 && index < isa::NumIntRegs);
    return regs[index];
}

} // namespace sim
} // namespace elag
