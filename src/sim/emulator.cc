#include "sim/emulator.hh"

#include <cstring>

#include "ckpt/serial.hh"

namespace elag {
namespace sim {

Emulator::Emulator(const isa::MachineProgram &program)
    : prog(program), stream_(DecodedStream::get(program)),
      mem_(isa::MemorySize)
{
    reset();
}

void
Emulator::reset()
{
    std::memset(regs, 0, sizeof(regs));
    std::memset(fregs, 0, sizeof(fregs));
    pc_ = prog.entry;

    // Load the global segment and patch the heap bump pointer, which
    // by construction is the last word of the segment.
    mem_.writeBlock(isa::GlobalBase, prog.globalInit);
    if (prog.globalSize >= 4) {
        mem_.writeWord(isa::GlobalBase + prog.globalSize - 4,
                       prog.heapBase());
    }
}

int32_t
Emulator::reg(int index) const
{
    elag_assert(index >= 0 && index < isa::NumIntRegs);
    return regs[index];
}

void
Emulator::serialize(ckpt::Writer &w) const
{
    w.u32(pc_);
    for (int32_t reg : regs)
        w.i32(reg);
    for (float freg : fregs)
        w.f32(freg);
    mem_.serialize(w);
}

void
Emulator::restore(ckpt::Reader &r)
{
    pc_ = r.u32();
    for (int32_t &reg : regs)
        reg = r.i32();
    for (float &freg : fregs)
        freg = r.f32();
    // The dispatch loop reads regs[] unguarded and relies on the
    // hardwired-zero register actually holding zero; re-pin it in
    // case the checkpoint bytes were tampered with.
    regs[0] = 0;
    mem_.restore(r);
}

void
serialize(ckpt::Writer &w, const EmulationResult &result)
{
    w.varint(result.instructions);
    w.varint(result.output.size());
    for (int32_t value : result.output)
        w.i32(value);
    w.b(result.halted);
    w.i32(result.exitValue);
}

void
restore(ckpt::Reader &r, EmulationResult &result)
{
    result.instructions = r.varint();
    result.output.clear();
    uint64_t values = r.varint();
    result.output.reserve(values);
    for (uint64_t i = 0; i < values; ++i)
        result.output.push_back(r.i32());
    result.halted = r.b();
    result.exitValue = r.i32();
}

} // namespace sim
} // namespace elag
