/**
 * @file
 * In-process memoization of timed simulation runs.
 *
 * Several benches re-simulate the same (program, machine
 * configuration) pair — every speedup column re-runs the baseline
 * machine, and sweeps share endpoints — and the serving daemon
 * (tools/elagd) re-simulates whatever workloads its clients repeat.
 * A run is a pure function of the compiled machine code, the machine
 * configuration, and the instruction cap, so results are cached
 * under a content hash of exactly those inputs. Entries hold
 * shared_futures so that when two worker threads miss on the same
 * key concurrently, one simulates and the other blocks for the
 * result instead of duplicating work.
 *
 * The cache is bounded: entries are kept on an LRU list and evicted
 * past a configurable capacity, so a long-running daemon serving an
 * open-ended request stream cannot grow it without limit. Eviction
 * only considers completed entries — an in-flight simulation is
 * never dropped from under its waiters, so the map may transiently
 * exceed the capacity by the number of concurrent misses.
 *
 * Runs with a fault injector attached are never cached: faults draw
 * from the injector's own PRNG stream, so such runs are not pure in
 * the inputs the key covers.
 */

#ifndef ELAG_SIM_RUN_CACHE_HH
#define ELAG_SIM_RUN_CACHE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <mutex>
#include <unordered_map>

#include "pipeline/telemetry.hh"
#include "sim/simulator.hh"

namespace elag {
namespace sim {

/** Content hash of a linked machine program. */
uint64_t hashProgram(const isa::MachineProgram &program);

/** Content hash of a machine configuration. */
uint64_t hashConfig(const pipeline::MachineConfig &config);

/** Process-wide timed-run memoization. Thread-safe. */
class RunCache
{
  public:
    static constexpr size_t kDefaultCapacity = 1024;

    static RunCache &instance();

    /**
     * A cached run: the timed result plus the per-PC load telemetry
     * collected during it. Entries created through run() carry empty
     * telemetry (the observer costs time on the bench hot path, so
     * plain runs skip it and key separately).
     */
    struct Report
    {
        TimedResult timed;
        pipeline::LoadTelemetry telemetry;
    };

    /**
     * Like sim::runTimed(prog, machine, max_instructions), but
     * served from the cache when an identical run has already been
     * simulated. Uncacheable runs (fault injector attached) are
     * forwarded to runTimed directly.
     *
     * A watchdog with maxWallMs set also bounds the time spent
     * waiting on another thread's in-flight simulation of the same
     * key, throwing SimTimeoutError on expiry; failed runs are never
     * cached.
     */
    TimedResult run(const CompiledProgram &prog,
                    const pipeline::MachineConfig &machine,
                    uint64_t max_instructions,
                    const Watchdog &watchdog = {});

    /**
     * Like run(), but the simulation executes with a LoadTelemetry
     * observer attached and the telemetry is cached alongside the
     * timed result. Keyed separately from plain run() entries so the
     * bench path never pays for observation it does not use.
     */
    Report runReport(const CompiledProgram &prog,
                     const pipeline::MachineConfig &machine,
                     uint64_t max_instructions,
                     const Watchdog &watchdog = {});

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t bypasses = 0;
        uint64_t evictions = 0;
    };

    Stats stats() const;

    /** Completed + in-flight entries currently held. */
    size_t size() const;

    size_t capacity() const;

    /**
     * Set the entry cap (>= 1); evicts least-recently-used completed
     * entries immediately if the cache is over the new capacity.
     */
    void setCapacity(size_t cap);

    /** Drop all entries (tests). */
    void clear();

  private:
    RunCache() = default;

    struct Entry
    {
        std::shared_future<Report> future;
        std::list<uint64_t>::iterator lruPos;
        /** Insertion generation, so a failed owner never erases a
         *  newer entry that reused its key after eviction. */
        uint64_t gen = 0;
    };

    /**
     * Cache-or-simulate for one key. @p simulate runs the simulation
     * when this thread owns the miss.
     */
    Report lookup(uint64_t key,
                  const std::function<Report()> &simulate,
                  const Watchdog &watchdog);

    /** Evict completed LRU entries beyond capacity. Lock held. */
    void evictLocked();

    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> entries;
    /** Keys, most recently used first. */
    std::list<uint64_t> lru;
    size_t capacity_ = kDefaultCapacity;
    uint64_t genCounter = 0;
    Stats stats_;
};

} // namespace sim
} // namespace elag

#endif // ELAG_SIM_RUN_CACHE_HH
