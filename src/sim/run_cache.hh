/**
 * @file
 * In-process memoization of timed simulation runs.
 *
 * Several benches re-simulate the same (program, machine
 * configuration) pair — every speedup column re-runs the baseline
 * machine, and sweeps share endpoints. A run is a pure function of
 * the compiled machine code, the machine configuration, and the
 * instruction cap, so results are cached under a content hash of
 * exactly those inputs. Entries hold shared_futures so that when two
 * worker threads miss on the same key concurrently, one simulates
 * and the other blocks for the result instead of duplicating work.
 *
 * Runs with a fault injector attached are never cached: faults draw
 * from the injector's own PRNG stream, so such runs are not pure in
 * the inputs the key covers.
 */

#ifndef ELAG_SIM_RUN_CACHE_HH
#define ELAG_SIM_RUN_CACHE_HH

#include <cstdint>
#include <future>
#include <mutex>
#include <unordered_map>

#include "sim/simulator.hh"

namespace elag {
namespace sim {

/** Content hash of a linked machine program. */
uint64_t hashProgram(const isa::MachineProgram &program);

/** Content hash of a machine configuration. */
uint64_t hashConfig(const pipeline::MachineConfig &config);

/** Process-wide timed-run memoization. Thread-safe. */
class RunCache
{
  public:
    static RunCache &instance();

    /**
     * Like sim::runTimed(prog, machine, max_instructions), but
     * served from the cache when an identical run has already been
     * simulated. Uncacheable runs (fault injector attached) are
     * forwarded to runTimed directly.
     */
    TimedResult run(const CompiledProgram &prog,
                    const pipeline::MachineConfig &machine,
                    uint64_t max_instructions);

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t bypasses = 0;
    };

    Stats stats() const;

    /** Drop all entries (tests). */
    void clear();

  private:
    RunCache() = default;

    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::shared_future<TimedResult>>
        entries;
    Stats stats_;
};

} // namespace sim
} // namespace elag

#endif // ELAG_SIM_RUN_CACHE_HH
