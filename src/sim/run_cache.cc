#include "sim/run_cache.hh"

#include <chrono>

#include "obs/metrics.hh"
#include "support/logging.hh"

namespace elag {
namespace sim {

namespace {

/**
 * Registry-backed mirrors of RunCache::Stats. The struct keeps its
 * own tallies for the existing stats() API; these make the same
 * counts scrapeable through the metrics plane.
 */
struct CacheCounters
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &bypasses;
    obs::Counter &evictions;

    static CacheCounters &
    instance()
    {
        static CacheCounters counters = [] {
            obs::Registry &r = obs::Registry::process();
            return CacheCounters{
                r.counter("elag_runcache_hits_total",
                          "Run-cache lookups served from a completed "
                          "or in-flight entry."),
                r.counter("elag_runcache_misses_total",
                          "Run-cache lookups that had to simulate."),
                r.counter("elag_runcache_bypasses_total",
                          "Uncacheable runs (fault injector attached) "
                          "forwarded around the cache."),
                r.counter("elag_runcache_evictions_total",
                          "Completed entries dropped past capacity."),
            };
        }();
        return counters;
    }
};

/** FNV-1a, folded field by field so struct padding never leaks in. */
struct Fnv1a
{
    uint64_t state = 1469598103934665603ull;

    void
    mix(uint64_t value)
    {
        // Hash all 8 bytes of the value, byte by byte.
        for (int i = 0; i < 8; ++i) {
            state ^= (value >> (8 * i)) & 0xff;
            state *= 1099511628211ull;
        }
    }

    void
    mixBytes(const uint8_t *data, size_t n)
    {
        for (size_t i = 0; i < n; ++i) {
            state ^= data[i];
            state *= 1099511628211ull;
        }
    }
};

void
mixCacheConfig(Fnv1a &h, const mem::CacheConfig &cfg)
{
    h.mix(cfg.sizeBytes);
    h.mix(cfg.blockSize);
    h.mix(cfg.assoc);
    h.mix(cfg.missPenalty);
    h.mix(cfg.writeAllocate ? 1 : 0);
}

} // anonymous namespace

uint64_t
hashProgram(const isa::MachineProgram &program)
{
    Fnv1a h;
    h.mix(program.code.size());
    for (const isa::Instruction &inst : program.code) {
        h.mix(static_cast<uint64_t>(inst.op));
        h.mix(inst.rd);
        h.mix(inst.rs1);
        h.mix(inst.rs2);
        h.mix(static_cast<uint64_t>(static_cast<uint32_t>(inst.imm)));
        h.mix(static_cast<uint64_t>(inst.spec));
        h.mix(static_cast<uint64_t>(inst.mode));
        h.mix(static_cast<uint64_t>(inst.width));
    }
    h.mix(program.entry);
    h.mix(program.globalSize);
    h.mix(program.globalInit.size());
    h.mixBytes(program.globalInit.data(), program.globalInit.size());
    return h.state;
}

uint64_t
hashConfig(const pipeline::MachineConfig &config)
{
    Fnv1a h;
    h.mix(config.issueWidth);
    h.mix(config.intAlus);
    h.mix(config.memPorts);
    h.mix(config.fpAlus);
    h.mix(config.branchUnits);
    h.mix(config.aluLatency);
    h.mix(config.mulLatency);
    h.mix(config.divLatency);
    h.mix(config.fpLatency);
    h.mix(config.loadLatency);
    mixCacheConfig(h, config.icache);
    mixCacheConfig(h, config.dcache);
    h.mix(config.btbEntries);
    h.mix(config.addressTableEnabled ? 1 : 0);
    h.mix(config.addressTableEntries);
    h.mix(config.tablePredictsWhileLearning ? 1 : 0);
    h.mix(config.earlyCalcEnabled ? 1 : 0);
    h.mix(config.registerCacheSize);
    h.mix(static_cast<uint64_t>(config.selection));
    return h.state;
}

RunCache &
RunCache::instance()
{
    static RunCache cache;
    return cache;
}

/** Cache key for one run request. */
static uint64_t
runKey(const CompiledProgram &prog,
       const pipeline::MachineConfig &machine,
       uint64_t max_instructions, bool with_telemetry)
{
    Fnv1a h;
    h.mix(hashProgram(prog.code.program));
    h.mix(hashConfig(machine));
    h.mix(max_instructions);
    h.mix(with_telemetry ? 1 : 0);
    return h.state;
}

TimedResult
RunCache::run(const CompiledProgram &prog,
              const pipeline::MachineConfig &machine,
              uint64_t max_instructions, const Watchdog &watchdog)
{
    if (machine.faultInjector) {
        {
            std::lock_guard<std::mutex> lock(mu);
            ++stats_.bypasses;
        }
        CacheCounters::instance().bypasses.inc();
        return runTimed(prog, machine, max_instructions, {}, watchdog);
    }
    return lookup(
               runKey(prog, machine, max_instructions, false),
               [&] {
                   Report report;
                   report.timed = runTimed(prog, machine,
                                           max_instructions, {},
                                           watchdog);
                   return report;
               },
               watchdog)
        .timed;
}

RunCache::Report
RunCache::runReport(const CompiledProgram &prog,
                    const pipeline::MachineConfig &machine,
                    uint64_t max_instructions, const Watchdog &watchdog)
{
    if (machine.faultInjector) {
        {
            std::lock_guard<std::mutex> lock(mu);
            ++stats_.bypasses;
        }
        CacheCounters::instance().bypasses.inc();
        Report report;
        report.timed = runTimed(prog, machine, max_instructions,
                                {&report.telemetry}, watchdog);
        return report;
    }
    return lookup(
        runKey(prog, machine, max_instructions, true),
        [&] {
            Report report;
            report.timed = runTimed(prog, machine, max_instructions,
                                    {&report.telemetry}, watchdog);
            return report;
        },
        watchdog);
}

RunCache::Report
RunCache::lookup(uint64_t key,
                 const std::function<Report()> &simulate,
                 const Watchdog &watchdog)
{
    std::shared_future<Report> future;
    std::promise<Report> promise;
    bool owner = false;
    uint64_t gen = 0;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = entries.find(key);
        if (it != entries.end()) {
            ++stats_.hits;
            CacheCounters::instance().hits.inc();
            future = it->second.future;
            // Refresh recency.
            lru.splice(lru.begin(), lru, it->second.lruPos);
        } else {
            ++stats_.misses;
            CacheCounters::instance().misses.inc();
            owner = true;
            gen = ++genCounter;
            future = promise.get_future().share();
            lru.push_front(key);
            entries.emplace(key, Entry{future, lru.begin(), gen});
            evictLocked();
        }
    }

    if (owner) {
        try {
            promise.set_value(simulate());
        } catch (...) {
            // Do not cache failures (e.g. watchdog timeouts): drop
            // the entry so a retry re-simulates, and wake waiters
            // with the same exception. The generation check keeps us
            // from erasing a newer entry that reused the key after
            // this one was evicted mid-run.
            {
                std::lock_guard<std::mutex> lock(mu);
                auto it = entries.find(key);
                if (it != entries.end() && it->second.gen == gen) {
                    lru.erase(it->second.lruPos);
                    entries.erase(it);
                }
            }
            promise.set_exception(std::current_exception());
        }
        return future.get();
    }

    // A waiter with a wall-clock deadline must not block forever on
    // another thread's simulation (it enforces its own watchdog, not
    // ours).
    if (watchdog.maxWallMs) {
        if (future.wait_for(std::chrono::milliseconds(
                watchdog.maxWallMs)) == std::future_status::timeout) {
            throw SimTimeoutError(
                SimTimeoutError::Kind::WallClock, watchdog.maxWallMs,
                formatString("watchdog: waited more than %llu ms for "
                             "a shared in-flight simulation",
                             static_cast<unsigned long long>(
                                 watchdog.maxWallMs)));
        }
    }
    return future.get();
}

void
RunCache::evictLocked()
{
    if (entries.size() <= capacity_)
        return;
    // Walk from the cold end, skipping in-flight entries: dropping
    // those would duplicate running work and orphan their waiters'
    // dedup guarantee. The map can therefore transiently exceed the
    // capacity by at most the number of concurrent misses.
    auto pos = lru.end();
    while (entries.size() > capacity_ && pos != lru.begin()) {
        --pos;
        auto it = entries.find(*pos);
        if (it->second.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
            continue;
        }
        entries.erase(it);
        pos = lru.erase(pos);
        ++stats_.evictions;
        CacheCounters::instance().evictions.inc();
    }
}

RunCache::Stats
RunCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stats_;
}

size_t
RunCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries.size();
}

size_t
RunCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mu);
    return capacity_;
}

void
RunCache::setCapacity(size_t cap)
{
    elag_assert(cap >= 1);
    std::lock_guard<std::mutex> lock(mu);
    capacity_ = cap;
    evictLocked();
}

void
RunCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    entries.clear();
    lru.clear();
    stats_ = Stats{};
}

} // namespace sim
} // namespace elag
