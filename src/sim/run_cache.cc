#include "sim/run_cache.hh"

namespace elag {
namespace sim {

namespace {

/** FNV-1a, folded field by field so struct padding never leaks in. */
struct Fnv1a
{
    uint64_t state = 1469598103934665603ull;

    void
    mix(uint64_t value)
    {
        // Hash all 8 bytes of the value, byte by byte.
        for (int i = 0; i < 8; ++i) {
            state ^= (value >> (8 * i)) & 0xff;
            state *= 1099511628211ull;
        }
    }

    void
    mixBytes(const uint8_t *data, size_t n)
    {
        for (size_t i = 0; i < n; ++i) {
            state ^= data[i];
            state *= 1099511628211ull;
        }
    }
};

void
mixCacheConfig(Fnv1a &h, const mem::CacheConfig &cfg)
{
    h.mix(cfg.sizeBytes);
    h.mix(cfg.blockSize);
    h.mix(cfg.assoc);
    h.mix(cfg.missPenalty);
    h.mix(cfg.writeAllocate ? 1 : 0);
}

} // anonymous namespace

uint64_t
hashProgram(const isa::MachineProgram &program)
{
    Fnv1a h;
    h.mix(program.code.size());
    for (const isa::Instruction &inst : program.code) {
        h.mix(static_cast<uint64_t>(inst.op));
        h.mix(inst.rd);
        h.mix(inst.rs1);
        h.mix(inst.rs2);
        h.mix(static_cast<uint64_t>(static_cast<uint32_t>(inst.imm)));
        h.mix(static_cast<uint64_t>(inst.spec));
        h.mix(static_cast<uint64_t>(inst.mode));
        h.mix(static_cast<uint64_t>(inst.width));
    }
    h.mix(program.entry);
    h.mix(program.globalSize);
    h.mix(program.globalInit.size());
    h.mixBytes(program.globalInit.data(), program.globalInit.size());
    return h.state;
}

uint64_t
hashConfig(const pipeline::MachineConfig &config)
{
    Fnv1a h;
    h.mix(config.issueWidth);
    h.mix(config.intAlus);
    h.mix(config.memPorts);
    h.mix(config.fpAlus);
    h.mix(config.branchUnits);
    h.mix(config.aluLatency);
    h.mix(config.mulLatency);
    h.mix(config.divLatency);
    h.mix(config.fpLatency);
    h.mix(config.loadLatency);
    mixCacheConfig(h, config.icache);
    mixCacheConfig(h, config.dcache);
    h.mix(config.btbEntries);
    h.mix(config.addressTableEnabled ? 1 : 0);
    h.mix(config.addressTableEntries);
    h.mix(config.tablePredictsWhileLearning ? 1 : 0);
    h.mix(config.earlyCalcEnabled ? 1 : 0);
    h.mix(config.registerCacheSize);
    h.mix(static_cast<uint64_t>(config.selection));
    return h.state;
}

RunCache &
RunCache::instance()
{
    static RunCache cache;
    return cache;
}

TimedResult
RunCache::run(const CompiledProgram &prog,
              const pipeline::MachineConfig &machine,
              uint64_t max_instructions)
{
    if (machine.faultInjector) {
        {
            std::lock_guard<std::mutex> lock(mu);
            ++stats_.bypasses;
        }
        return runTimed(prog, machine, max_instructions);
    }

    Fnv1a h;
    h.mix(hashProgram(prog.code.program));
    h.mix(hashConfig(machine));
    h.mix(max_instructions);
    const uint64_t key = h.state;

    std::shared_future<TimedResult> future;
    std::promise<TimedResult> promise;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = entries.find(key);
        if (it != entries.end()) {
            ++stats_.hits;
            future = it->second;
        } else {
            ++stats_.misses;
            owner = true;
            future = promise.get_future().share();
            entries.emplace(key, future);
        }
    }

    if (owner) {
        try {
            promise.set_value(runTimed(prog, machine,
                                       max_instructions));
        } catch (...) {
            // Do not cache failures (e.g. watchdog timeouts): drop
            // the entry so a retry re-simulates, and wake waiters
            // with the same exception.
            {
                std::lock_guard<std::mutex> lock(mu);
                entries.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

RunCache::Stats
RunCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stats_;
}

void
RunCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    entries.clear();
    stats_ = Stats{};
}

} // namespace sim
} // namespace elag
