/**
 * @file
 * Predecoded instruction streams for threaded-code dispatch.
 *
 * The emulator's inner loop used to re-read and re-derive every
 * Instruction field per committed instruction. A DecodedStream lowers
 * a linked isa::MachineProgram once into a dense array of DecodedInst
 * records: a specialized handler index (loads and stores are split by
 * addressing mode and width so the handler body carries no mode
 * branches), the precomputed isa::decodeFlags() predicate word the
 * timing model consumes at retire, pre-resolved integer source
 * registers, and the pre-split control-transfer target. One sentinel
 * record sits past the end of the stream so the dispatch loop needs
 * no per-instruction PC bounds check — falling off the end lands on a
 * handler that raises a typed guest trap.
 *
 * Streams are immutable after construction and cached process-wide
 * under the same content hash the run cache uses (sim::hashProgram),
 * so the serving daemon, the bench harness, and checkpoint resume all
 * share one predecode per distinct program.
 */

#ifndef ELAG_SIM_DECODED_HH
#define ELAG_SIM_DECODED_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace elag {
namespace sim {

/** Content hash of a linked machine program (defined in run_cache.cc,
 *  shared with the run cache and the checkpoint run keys). */
uint64_t hashProgram(const isa::MachineProgram &program);

/**
 * Guest fault taxonomy. A malformed or misbehaving *simulated*
 * program (divide by zero, wild PC, out-of-range effective address,
 * undecodable opcode) is the guest's bug, not the simulator's:
 * distinct from FatalError (host usage error) and PanicError
 * (simulator bug). Mapped to exit code 70 with a typed "guest_trap"
 * error document by elagc, and to a typed error frame by elagd.
 */
enum class GuestTrapKind : uint8_t
{
    DivideByZero,
    RemainderByZero,
    PcOutOfRange,
    BadAddress,
    BadOpcode,
};

/** Stable identifier for a trap kind ("divide_by_zero", ...). */
const char *name(GuestTrapKind kind);

/** Thrown by the emulator when the guest program faults. */
class GuestTrapError : public std::runtime_error
{
  public:
    GuestTrapError(GuestTrapKind kind, uint32_t pc,
                   const std::string &msg)
        : std::runtime_error(msg), kind_(kind), pc_(pc)
    {}

    GuestTrapKind kind() const { return kind_; }
    /** PC of the faulting instruction (or the wild PC itself). */
    uint32_t trapPc() const { return pc_; }

  private:
    GuestTrapKind kind_;
    uint32_t pc_;
};

/**
 * Execution handlers. LOAD/STORE/FLOAD are specialized by addressing
 * mode (BO = base+offset, BI = base+index) and width (W = word,
 * B = byte) so the hot handler bodies are straight-line. The two TRAP
 * handlers raise guest faults lazily, at execution time: a program
 * carrying an undecodable instruction it never reaches still runs.
 */
#define ELAG_DECODED_HANDLERS(X)                                      \
    X(ADD) X(SUB) X(MUL) X(DIV) X(REM)                                \
    X(AND) X(OR) X(XOR) X(SLL) X(SRL) X(SRA)                          \
    X(SLT) X(SLTU) X(SEQ)                                             \
    X(ADDI) X(ANDI) X(ORI) X(XORI)                                    \
    X(SLLI) X(SRLI) X(SRAI) X(SLTI) X(LUI)                            \
    X(LOAD_BO_W) X(LOAD_BO_B) X(LOAD_BI_W) X(LOAD_BI_B)               \
    X(STORE_BO_W) X(STORE_BO_B) X(STORE_BI_W) X(STORE_BI_B)           \
    X(BEQ) X(BNE) X(BLT) X(BGE) X(BLTU) X(BGEU)                       \
    X(JMP) X(JAL) X(JR)                                               \
    X(FADD) X(FSUB) X(FMUL) X(FDIV)                                   \
    X(FLOAD_BO) X(FLOAD_BI) X(FSTORE)                                 \
    X(CVTIF) X(CVTFI)                                                 \
    X(PRINT) X(HALT) X(NOP)                                           \
    X(TRAP_BADOP) X(TRAP_PCRANGE)

enum class Handler : uint8_t
{
#define ELAG_HANDLER_ENUM(name) name,
    ELAG_DECODED_HANDLERS(ELAG_HANDLER_ENUM)
#undef ELAG_HANDLER_ENUM
    NumHandlers
};

constexpr size_t NumHandlers =
    static_cast<size_t>(Handler::NumHandlers);

/** One predecoded instruction. */
struct DecodedInst
{
    /** The original instruction (copied into the retire stream). */
    isa::Instruction inst;
    /** Absolute control-transfer target (branches/JMP/JAL only). */
    uint32_t target = 0;
    /** isa::decodeFlags(inst). */
    uint16_t flags = 0;
    /** Specialized execution handler. */
    Handler handler = Handler::NOP;
    /** Pre-resolved integer source registers (-1 = unused). */
    int8_t src1 = -1;
    int8_t src2 = -1;
};

/** An immutable predecoded program. */
class DecodedStream
{
  public:
    /** Lower @p program (uncached; prefer get()). */
    explicit DecodedStream(const isa::MachineProgram &program);

    /**
     * The shared predecode of @p program, built on first use and
     * cached process-wide under hashProgram(program). Thread-safe.
     */
    static std::shared_ptr<const DecodedStream>
    get(const isa::MachineProgram &program);

    /** Entries cached right now (tests). */
    static size_t cacheSize();
    /** Drop all cached streams (tests). */
    static void clearCache();

    /** The decoded records; size() == programSize() + 1 (sentinel). */
    const DecodedInst *insts() const { return insts_.data(); }
    size_t size() const { return insts_.size(); }
    /** Instruction count of the underlying program. */
    uint32_t programSize() const
    {
        return static_cast<uint32_t>(insts_.size() - 1);
    }

    const DecodedInst &at(size_t index) const { return insts_[index]; }

  private:
    std::vector<DecodedInst> insts_;
};

/** Lower one instruction (exposed for predecode unit tests). */
DecodedInst decodeInst(const isa::Instruction &inst);

/**
 * Emulator dispatch-mode selection. The CMake option
 * ELAG_THREADED_DISPATCH compiles the computed-goto loop in (GCC and
 * Clang only); this runtime switch picks between it and the portable
 * switch loop inside one binary, so differential tests and dispatch
 * A/B benchmarks need no second build tree. Auto resolves to the
 * ELAG_DISPATCH environment variable ("threaded"/"switch"/"legacy"),
 * then to threaded wherever it is compiled in.
 *
 * Legacy is the pre-predecode reference interpreter: a decode-as-you-
 * go switch over raw isa::Instruction records, kept as a third
 * differential oracle (it shares no predecode machinery with the
 * other two modes) and as the same-runner baseline the CI perf smoke
 * measures the predecoded engine against.
 */
enum class DispatchMode : uint8_t
{
    Auto,
    Switch,
    Threaded,
    Legacy,
};

/** Set the process-wide dispatch mode (thread-safe). */
void setDispatchMode(DispatchMode mode);
DispatchMode dispatchMode();

/** True if this build carries the computed-goto loop. */
constexpr bool
threadedDispatchCompiled()
{
#if defined(ELAG_THREADED_DISPATCH) && ELAG_THREADED_DISPATCH && \
    (defined(__GNUC__) || defined(__clang__))
    return true;
#else
    return false;
#endif
}

/** True if the next Emulator::run will use computed-goto dispatch. */
bool threadedDispatchActive();

} // namespace sim
} // namespace elag

#endif // ELAG_SIM_DECODED_HH
