/**
 * @file
 * Dominator-tree computation.
 */

#ifndef ELAG_IR_DOMINATORS_HH
#define ELAG_IR_DOMINATORS_HH

#include <map>
#include <vector>

#include "ir/ir.hh"

namespace elag {
namespace ir {

/**
 * Dominator information for a function, computed with the classic
 * Cooper-Harvey-Kennedy iterative algorithm over the RPO.
 */
class Dominators
{
  public:
    /** Compute dominators; the function's CFG must be current. */
    explicit Dominators(const Function &fn);

    /** Immediate dominator of @p bb (null for the entry block). */
    const BasicBlock *idom(const BasicBlock *bb) const;

    /** @return true if @p a dominates @p b (reflexive). */
    bool dominates(const BasicBlock *a, const BasicBlock *b) const;

  private:
    std::map<const BasicBlock *, const BasicBlock *> idoms;
    std::map<const BasicBlock *, int> rpoIndex;
};

} // namespace ir
} // namespace elag

#endif // ELAG_IR_DOMINATORS_HH
