/**
 * @file
 * IR structural verifier.
 */

#ifndef ELAG_IR_VERIFY_HH
#define ELAG_IR_VERIFY_HH

#include "ir/ir.hh"

namespace elag {
namespace ir {

/**
 * Check structural invariants of a function:
 *  - every block ends in exactly one terminator;
 *  - branch targets are blocks of this function;
 *  - operand kinds match each opcode's expectations;
 *  - stack-object and vreg references are in range.
 * @throws PanicError describing the first violation.
 */
void verify(const Function &fn);

/** Verify every function of the module. */
void verify(const Module &mod);

} // namespace ir
} // namespace elag

#endif // ELAG_IR_VERIFY_HH
