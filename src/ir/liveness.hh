/**
 * @file
 * Virtual-register liveness analysis.
 */

#ifndef ELAG_IR_LIVENESS_HH
#define ELAG_IR_LIVENESS_HH

#include <map>
#include <set>

#include "ir/ir.hh"

namespace elag {
namespace ir {

/** Per-block live-in/live-out sets of virtual registers. */
class Liveness
{
  public:
    /** Compute liveness; the function's CFG must be current. */
    explicit Liveness(const Function &fn);

    const std::set<int> &liveIn(const BasicBlock *bb) const;
    const std::set<int> &liveOut(const BasicBlock *bb) const;

    /** @return true if @p vreg is live out of the whole function. */
    static bool isParamLike(int vreg, const Function &fn);

  private:
    std::map<const BasicBlock *, std::set<int>> liveIns;
    std::map<const BasicBlock *, std::set<int>> liveOuts;
    std::set<int> empty;
};

} // namespace ir
} // namespace elag

#endif // ELAG_IR_LIVENESS_HH
