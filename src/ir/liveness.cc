#include "ir/liveness.hh"

#include <algorithm>

namespace elag {
namespace ir {

Liveness::Liveness(const Function &fn)
{
    // Per-block use (upward-exposed) and def sets.
    std::map<const BasicBlock *, std::set<int>> uses;
    std::map<const BasicBlock *, std::set<int>> defs;
    for (const auto &bb : fn.blocks()) {
        std::set<int> &use = uses[bb.get()];
        std::set<int> &def = defs[bb.get()];
        std::vector<int> srcs;
        for (const auto &inst : bb->insts) {
            srcs.clear();
            inst.sourceRegs(srcs);
            for (int s : srcs) {
                if (!def.count(s))
                    use.insert(s);
            }
            if (inst.dest)
                def.insert(inst.dest);
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        // Iterate blocks in reverse RPO for fast convergence.
        std::vector<BasicBlock *> order =
            const_cast<Function &>(fn).rpo();
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            const BasicBlock *bb = *it;
            std::set<int> out;
            for (const BasicBlock *succ : bb->succs) {
                const std::set<int> &in = liveIns[succ];
                out.insert(in.begin(), in.end());
            }
            std::set<int> in = uses[bb];
            for (int v : out) {
                if (!defs[bb].count(v))
                    in.insert(v);
            }
            if (out != liveOuts[bb] || in != liveIns[bb]) {
                liveOuts[bb] = std::move(out);
                liveIns[bb] = std::move(in);
                changed = true;
            }
        }
    }
}

const std::set<int> &
Liveness::liveIn(const BasicBlock *bb) const
{
    auto it = liveIns.find(bb);
    return it == liveIns.end() ? empty : it->second;
}

const std::set<int> &
Liveness::liveOut(const BasicBlock *bb) const
{
    auto it = liveOuts.find(bb);
    return it == liveOuts.end() ? empty : it->second;
}

bool
Liveness::isParamLike(int vreg, const Function &fn)
{
    return std::find(fn.params.begin(), fn.params.end(), vreg) !=
           fn.params.end();
}

} // namespace ir
} // namespace elag
