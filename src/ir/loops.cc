#include "ir/loops.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace elag {
namespace ir {

LoopInfo::LoopInfo(Function &fn)
{
    Dominators doms(fn);

    // Find back edges (tail -> header where header dominates tail)
    // and collect each loop's body by backwards reachability.
    std::map<BasicBlock *, Loop *> headerLoop;
    for (BasicBlock *bb : fn.rpo()) {
        for (BasicBlock *succ : bb->succs) {
            if (!doms.dominates(succ, bb))
                continue;
            Loop *loop;
            auto it = headerLoop.find(succ);
            if (it == headerLoop.end()) {
                loops_.push_back(std::make_unique<Loop>());
                loop = loops_.back().get();
                loop->header = succ;
                loop->blocks.insert(succ);
                headerLoop[succ] = loop;
            } else {
                loop = it->second;
            }
            // Walk predecessors from the latch up to the header.
            std::vector<BasicBlock *> work;
            if (loop->blocks.insert(bb).second)
                work.push_back(bb);
            while (!work.empty()) {
                BasicBlock *cur = work.back();
                work.pop_back();
                for (BasicBlock *pred : cur->preds) {
                    if (pred != loop->header &&
                        loop->blocks.insert(pred).second) {
                        work.push_back(pred);
                    }
                }
            }
        }
    }

    // Build the nesting forest: parent = smallest strictly containing
    // loop.
    for (auto &loop : loops_) {
        Loop *best = nullptr;
        for (auto &other : loops_) {
            if (other.get() == loop.get())
                continue;
            if (!other->blocks.count(loop->header))
                continue;
            // 'other' contains our header; candidate parent.
            if (other->header == loop->header)
                continue; // identical header: same loop, merged above
            if (!best || other->blocks.size() < best->blocks.size())
                best = other.get();
        }
        loop->parent = best;
        if (best)
            best->children.push_back(loop.get());
    }
    for (auto &loop : loops_) {
        int depth = 1;
        for (Loop *p = loop->parent; p; p = p->parent)
            ++depth;
        loop->depth = depth;
    }
}

std::vector<Loop *>
LoopInfo::loopsInnermostFirst() const
{
    std::vector<Loop *> out;
    for (const auto &loop : loops_)
        out.push_back(loop.get());
    std::stable_sort(out.begin(), out.end(),
                     [](const Loop *a, const Loop *b) {
                         return a->depth > b->depth;
                     });
    return out;
}

Loop *
LoopInfo::loopFor(const BasicBlock *bb) const
{
    Loop *best = nullptr;
    for (const auto &loop : loops_) {
        if (!loop->contains(bb))
            continue;
        if (!best || loop->depth > best->depth)
            best = loop.get();
    }
    return best;
}

BasicBlock *
ensurePreheader(Function &fn, Loop &loop)
{
    BasicBlock *header = loop.header;
    std::vector<BasicBlock *> outside;
    for (BasicBlock *pred : header->preds) {
        if (!loop.contains(pred))
            outside.push_back(pred);
    }
    if (outside.size() == 1) {
        BasicBlock *cand = outside[0];
        const IrInst *term = cand->terminator();
        if (term && term->op == IrOpcode::Jump && cand->succs.size() == 1)
            return cand;
    }

    // Insert a fresh preheader and retarget all outside edges.
    BasicBlock *pre = fn.newBlock();
    IrInst jump;
    jump.op = IrOpcode::Jump;
    jump.taken = header;
    pre->insts.push_back(jump);

    for (BasicBlock *pred : outside) {
        IrInst *term = pred->terminator();
        elag_assert(term != nullptr);
        if (term->taken == header)
            term->taken = pre;
        if (term->notTaken == header)
            term->notTaken = pre;
    }
    if (fn.entry() == header)
        fn.setEntry(pre);
    fn.recomputeCfg();
    return pre;
}

} // namespace ir
} // namespace elag
