#include "ir/printer.hh"

#include "support/logging.hh"

namespace elag {
namespace ir {

namespace {

std::string
operandStr(const Operand &o)
{
    switch (o.kind) {
      case Operand::Kind::None: return "<none>";
      case Operand::Kind::Reg: return formatString("v%d", o.reg);
      case Operand::Kind::Imm:
        return formatString("%lld", static_cast<long long>(o.imm));
      default:
        panic("operandStr: bad operand kind");
    }
}

std::string
blockLabel(const BasicBlock *bb)
{
    return bb ? formatString("bb%d", bb->id()) : "<null>";
}

} // anonymous namespace

std::string
toString(const IrInst &inst)
{
    using O = IrOpcode;
    std::string dest =
        inst.dest ? formatString("v%d = ", inst.dest) : std::string();
    switch (inst.op) {
      case O::Add: case O::Sub: case O::Mul: case O::Div: case O::Rem:
      case O::And: case O::Or: case O::Xor:
      case O::Shl: case O::Shr: case O::Sra:
      case O::SetLt: case O::SetLtU: case O::SetEq:
        return dest + irOpcodeName(inst.op) + " " +
               operandStr(inst.a) + ", " + operandStr(inst.b);
      case O::Mov:
        return dest + "mov " + operandStr(inst.a);
      case O::FrameAddr:
        return dest + formatString("frameaddr #%lld",
                                   static_cast<long long>(inst.a.imm));
      case O::GlobalAddr:
        return dest + formatString("globaladdr +%lld",
                                   static_cast<long long>(inst.a.imm));
      case O::Load:
        return dest +
               formatString("load%s [%s + %s] (%s)",
                            inst.width == isa::MemWidth::Byte ? ".b" : "",
                            operandStr(inst.a).c_str(),
                            operandStr(inst.b).c_str(),
                            isa::loadSpecName(inst.spec).c_str());
      case O::Store:
        return formatString("store%s [%s + %s], %s",
                            inst.width == isa::MemWidth::Byte ? ".b" : "",
                            operandStr(inst.a).c_str(),
                            operandStr(inst.b).c_str(),
                            operandStr(inst.c).c_str());
      case O::Br:
        return formatString("br %s %s, %s -> %s, %s",
                            condCodeName(inst.cond).c_str(),
                            operandStr(inst.a).c_str(),
                            operandStr(inst.b).c_str(),
                            blockLabel(inst.taken).c_str(),
                            blockLabel(inst.notTaken).c_str());
      case O::Jump:
        return "jump " + blockLabel(inst.taken);
      case O::Call: {
        std::string s = dest + "call " + inst.callee + "(";
        for (size_t i = 0; i < inst.args.size(); ++i) {
            if (i)
                s += ", ";
            s += formatString("v%d", inst.args[i]);
        }
        return s + ")";
      }
      case O::Ret:
        return inst.a.isNone() ? "ret" : "ret " + operandStr(inst.a);
      case O::Print:
        return "print " + operandStr(inst.a);
      case O::Nop:
        return "nop";
      default:
        panic("toString: bad IR opcode");
    }
}

std::string
toString(const Function &fn)
{
    std::string out = "func " + fn.name() + "(";
    for (size_t i = 0; i < fn.params.size(); ++i) {
        if (i)
            out += ", ";
        out += formatString("v%d", fn.params[i]);
    }
    out += ")\n";
    for (const auto &obj : fn.stackObjects()) {
        out += formatString("  stack #%d: %d bytes (%s)\n", obj.id,
                            obj.size, obj.name.c_str());
    }
    for (const auto &bb : fn.blocks()) {
        out += formatString("%s:%s\n", blockLabel(bb.get()).c_str(),
                            bb.get() == fn.entry() ? " ; entry" : "");
        for (const auto &inst : bb->insts)
            out += "  " + toString(inst) + "\n";
    }
    return out;
}

std::string
toString(const Module &mod)
{
    std::string out =
        formatString("module: %d global bytes\n", mod.globalSize);
    for (const auto &fn : mod.functions)
        out += toString(*fn) + "\n";
    return out;
}

} // namespace ir
} // namespace elag
