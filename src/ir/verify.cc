#include "ir/verify.hh"

#include <set>

#include "ir/printer.hh"
#include "support/logging.hh"

namespace elag {
namespace ir {

namespace {

void
verifyInst(const Function &fn, const BasicBlock &bb, const IrInst &inst,
           const std::set<const BasicBlock *> &blocks)
{
    auto bad = [&](const char *why) {
        panic("verify %s bb%d: %s: %s", fn.name().c_str(), bb.id(), why,
              toString(inst).c_str());
    };
    auto checkReg = [&](const Operand &o, const char *what) {
        if (o.isReg() && (o.reg <= 0 || o.reg >= fn.vregLimit()))
            bad(what);
    };
    checkReg(inst.a, "operand a out of range");
    checkReg(inst.b, "operand b out of range");
    checkReg(inst.c, "operand c out of range");
    if (inst.dest && (inst.dest <= 0 || inst.dest >= fn.vregLimit()))
        bad("dest out of range");

    switch (inst.op) {
      case IrOpcode::Load:
        if (!inst.dest)
            bad("load without dest");
        if (!inst.a.isReg())
            bad("load base must be a register");
        if (inst.b.isNone())
            bad("load needs an offset operand");
        break;
      case IrOpcode::Store:
        if (!inst.a.isReg())
            bad("store base must be a register");
        if (inst.b.isNone() || inst.c.isNone())
            bad("store needs offset and data operands");
        break;
      case IrOpcode::Br:
        if (!inst.taken || !inst.notTaken)
            bad("br without both targets");
        if (!blocks.count(inst.taken) || !blocks.count(inst.notTaken))
            bad("br target not in function");
        break;
      case IrOpcode::Jump:
        if (!inst.taken)
            bad("jump without target");
        if (!blocks.count(inst.taken))
            bad("jump target not in function");
        break;
      case IrOpcode::FrameAddr:
        if (!inst.a.isImm() || inst.a.imm < 0 ||
            static_cast<size_t>(inst.a.imm) >=
                fn.stackObjects().size()) {
            bad("frameaddr references bad stack object");
        }
        break;
      case IrOpcode::Call:
        if (inst.callee.empty())
            bad("call without callee");
        for (int arg : inst.args) {
            if (arg <= 0 || arg >= fn.vregLimit())
                bad("call argument out of range");
        }
        break;
      default:
        break;
    }
}

} // anonymous namespace

void
verify(const Function &fn)
{
    std::set<const BasicBlock *> blocks;
    for (const auto &bb : fn.blocks())
        blocks.insert(bb.get());
    if (!fn.entry() || !blocks.count(fn.entry()))
        panic("verify %s: bad entry block", fn.name().c_str());

    for (const auto &bb : fn.blocks()) {
        if (bb->insts.empty() || !bb->insts.back().isTerminator()) {
            panic("verify %s: bb%d lacks a terminator",
                  fn.name().c_str(), bb->id());
        }
        for (size_t i = 0; i + 1 < bb->insts.size(); ++i) {
            if (bb->insts[i].isTerminator()) {
                panic("verify %s: bb%d has a terminator mid-block",
                      fn.name().c_str(), bb->id());
            }
        }
        for (const auto &inst : bb->insts)
            verifyInst(fn, *bb, inst, blocks);
    }
}

void
verify(const Module &mod)
{
    for (const auto &fn : mod.functions)
        verify(*fn);
}

} // namespace ir
} // namespace elag
