/**
 * @file
 * The intermediate representation.
 *
 * A non-SSA, virtual-register, three-address IR in the spirit of the
 * IMPACT compiler's Lcode: unbounded virtual registers, explicit
 * control-flow graph, and memory accesses expressed as
 * base-register + (immediate | register) addressing so the load
 * classifier can reason about addressing modes directly.
 */

#ifndef ELAG_IR_IR_HH
#define ELAG_IR_IR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace elag {
namespace ir {

/** IR opcodes. */
enum class IrOpcode : uint8_t
{
    // dest = a op b (a, b are registers or immediates)
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor,
    Shl, Shr, Sra,
    SetLt, SetLtU, SetEq,
    // dest = a
    Mov,
    // dest = address of stack object a.imm
    FrameAddr,
    // dest = GlobalBase + a.imm
    GlobalAddr,
    // dest = mem[a + b]; a must be a register, b register or immediate
    Load,
    // mem[a + b] = c
    Store,
    // conditional branch: if (a cond b) goto taken else fallthrough
    Br,
    // unconditional branch
    Jump,
    // dest = call callee(args...); dest may be absent
    Call,
    // return a (optional)
    Ret,
    // print a
    Print,
    Nop,
};

/** Branch condition codes. */
enum class CondCode : uint8_t { Eq, Ne, Lt, Le, Gt, Ge, LtU, GeU };

/** An instruction operand: nothing, a virtual register, or an imm. */
struct Operand
{
    enum class Kind : uint8_t { None, Reg, Imm };

    Kind kind = Kind::None;
    int reg = 0;
    int64_t imm = 0;

    static Operand none() { return Operand{}; }

    static Operand
    makeReg(int r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }

    static Operand
    makeImm(int64_t v)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = v;
        return o;
    }

    bool isNone() const { return kind == Kind::None; }
    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool operator==(const Operand &o) const = default;
};

class BasicBlock;

/** One IR instruction. */
struct IrInst
{
    IrOpcode op = IrOpcode::Nop;
    /** Destination virtual register; 0 means none. */
    int dest = 0;
    Operand a;
    Operand b;
    /** Store data operand. */
    Operand c;

    // Memory access attributes (Load/Store).
    isa::MemWidth width = isa::MemWidth::Word;
    /** Early-generation specifier chosen by the classifier. */
    isa::LoadSpec spec = isa::LoadSpec::Normal;
    /** Stable id of a static load, for profiles; 0 = unassigned. */
    int loadId = 0;

    // Branch attributes.
    CondCode cond = CondCode::Eq;
    BasicBlock *taken = nullptr;    ///< Br/Jump target
    BasicBlock *notTaken = nullptr; ///< Br fallthrough

    // Call attributes.
    std::string callee;
    std::vector<int> args;

    bool isLoad() const { return op == IrOpcode::Load; }
    bool isStore() const { return op == IrOpcode::Store; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isCall() const { return op == IrOpcode::Call; }
    bool
    isTerminator() const
    {
        return op == IrOpcode::Br || op == IrOpcode::Jump ||
               op == IrOpcode::Ret;
    }
    /** true if removing the instruction could change behaviour. */
    bool hasSideEffects() const;
    /** Registers read by this instruction (appended to @p regs). */
    void sourceRegs(std::vector<int> &regs) const;
};

/** A basic block: straight-line code ending in one terminator. */
class BasicBlock
{
  public:
    explicit BasicBlock(int id) : id_(id) {}

    int id() const { return id_; }
    std::vector<IrInst> insts;

    /** Predecessors/successors; valid after Function::recomputeCfg. */
    std::vector<BasicBlock *> preds;
    std::vector<BasicBlock *> succs;

    /** @return the terminator, or null if the block is unterminated. */
    const IrInst *terminator() const;
    IrInst *terminator();

  private:
    int id_;
};

/** A fixed-size stack allocation (local array or spilled variable). */
struct StackObject
{
    int id = 0;
    int size = 0;
    int align = 4;
    std::string name; ///< for diagnostics
};

/** One IR function. */
class Function
{
  public:
    explicit Function(std::string name);

    const std::string &name() const { return name_; }

    /** Allocate a new virtual register. */
    int newVReg() { return nextVReg++; }
    /** Number of allocated vregs + 1 (vreg ids are 1-based). */
    int vregLimit() const { return nextVReg; }
    /** Note that vreg ids below @p limit are in use (for cloning). */
    void reserveVRegs(int limit);

    /** Create a new basic block owned by this function. */
    BasicBlock *newBlock();

    /** Create a stack object of @p size bytes; returns its id. */
    int newStackObject(int size, int align, const std::string &name);

    BasicBlock *entry() const { return entry_; }
    void setEntry(BasicBlock *bb) { entry_ = bb; }

    const std::vector<std::unique_ptr<BasicBlock>> &blocks() const
    {
        return blocks_;
    }
    std::vector<std::unique_ptr<BasicBlock>> &blocks()
    {
        return blocks_;
    }

    const std::vector<StackObject> &stackObjects() const
    {
        return stackObjects_;
    }

    /** Parameter vregs, in order. */
    std::vector<int> params;

    /** Recompute pred/succ edges from terminators. */
    void recomputeCfg();

    /** Blocks in reverse post order from the entry. */
    std::vector<BasicBlock *> rpo() const;

    /** Remove blocks unreachable from the entry. */
    void removeUnreachable();

    /** Assign sequential ids to loads that lack one. */
    void numberLoads(int &next_load_id);

    /** Total count of instructions across blocks. */
    size_t instCount() const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    std::vector<StackObject> stackObjects_;
    BasicBlock *entry_ = nullptr;
    int nextVReg = 1;
    int nextBlockId = 0;
};

/** A whole program in IR form. */
class Module
{
  public:
    std::vector<std::unique_ptr<Function>> functions;
    /** Bytes of global data. */
    int globalSize = 0;
    /** Initial global segment contents. */
    std::vector<uint8_t> globalInit;

    Function *findFunction(const std::string &name) const;

    /** Assign stable loadIds across all functions. */
    void numberLoads();
};

/** Name of an IR opcode for printing. */
std::string irOpcodeName(IrOpcode op);
/** Name of a condition code ("eq", "lt", ...). */
std::string condCodeName(CondCode cc);
/** Logical negation of a condition code. */
CondCode negateCond(CondCode cc);
/** Condition with swapped operands (lt -> gt, etc.). */
CondCode swapCond(CondCode cc);

} // namespace ir
} // namespace elag

#endif // ELAG_IR_IR_HH
