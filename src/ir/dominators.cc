#include "ir/dominators.hh"

#include "support/logging.hh"

namespace elag {
namespace ir {

Dominators::Dominators(const Function &fn)
{
    std::vector<BasicBlock *> order =
        const_cast<Function &>(fn).rpo();
    for (size_t i = 0; i < order.size(); ++i)
        rpoIndex[order[i]] = static_cast<int>(i);

    if (order.empty())
        return;
    const BasicBlock *entry = order[0];
    idoms[entry] = entry;

    auto intersect = [&](const BasicBlock *a, const BasicBlock *b) {
        while (a != b) {
            while (rpoIndex.at(a) > rpoIndex.at(b))
                a = idoms.at(a);
            while (rpoIndex.at(b) > rpoIndex.at(a))
                b = idoms.at(b);
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 1; i < order.size(); ++i) {
            const BasicBlock *bb = order[i];
            const BasicBlock *new_idom = nullptr;
            for (const BasicBlock *pred : bb->preds) {
                if (!idoms.count(pred))
                    continue;
                new_idom = new_idom ? intersect(new_idom, pred) : pred;
            }
            if (!new_idom)
                continue;
            auto it = idoms.find(bb);
            if (it == idoms.end() || it->second != new_idom) {
                idoms[bb] = new_idom;
                changed = true;
            }
        }
    }
    // The entry's idom is conventionally null.
    idoms[entry] = nullptr;
}

const BasicBlock *
Dominators::idom(const BasicBlock *bb) const
{
    auto it = idoms.find(bb);
    return it == idoms.end() ? nullptr : it->second;
}

bool
Dominators::dominates(const BasicBlock *a, const BasicBlock *b) const
{
    for (const BasicBlock *cur = b; cur; cur = idom(cur)) {
        if (cur == a)
            return true;
    }
    return false;
}

} // namespace ir
} // namespace elag
