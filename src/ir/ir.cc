#include "ir/ir.hh"

#include <algorithm>
#include <set>

#include "support/logging.hh"

namespace elag {
namespace ir {

bool
IrInst::hasSideEffects() const
{
    switch (op) {
      case IrOpcode::Store:
      case IrOpcode::Br:
      case IrOpcode::Jump:
      case IrOpcode::Call:
      case IrOpcode::Ret:
      case IrOpcode::Print:
        return true;
      case IrOpcode::Div:
      case IrOpcode::Rem:
        // May trap on divide-by-zero; keep unless the divisor is a
        // non-zero immediate.
        return !(b.isImm() && b.imm != 0);
      default:
        return false;
    }
}

void
IrInst::sourceRegs(std::vector<int> &regs) const
{
    if (a.isReg())
        regs.push_back(a.reg);
    if (b.isReg())
        regs.push_back(b.reg);
    if (c.isReg())
        regs.push_back(c.reg);
    for (int arg : args)
        regs.push_back(arg);
}

const IrInst *
BasicBlock::terminator() const
{
    if (insts.empty() || !insts.back().isTerminator())
        return nullptr;
    return &insts.back();
}

IrInst *
BasicBlock::terminator()
{
    if (insts.empty() || !insts.back().isTerminator())
        return nullptr;
    return &insts.back();
}

Function::Function(std::string name)
    : name_(std::move(name))
{
}

void
Function::reserveVRegs(int limit)
{
    nextVReg = std::max(nextVReg, limit);
}

BasicBlock *
Function::newBlock()
{
    blocks_.push_back(std::make_unique<BasicBlock>(nextBlockId++));
    BasicBlock *bb = blocks_.back().get();
    if (!entry_)
        entry_ = bb;
    return bb;
}

int
Function::newStackObject(int size, int align, const std::string &name)
{
    StackObject obj;
    obj.id = static_cast<int>(stackObjects_.size());
    obj.size = size;
    obj.align = align;
    obj.name = name;
    stackObjects_.push_back(obj);
    return obj.id;
}

void
Function::recomputeCfg()
{
    for (auto &bb : blocks_) {
        bb->preds.clear();
        bb->succs.clear();
    }
    for (auto &bb : blocks_) {
        const IrInst *term = bb->terminator();
        if (!term)
            continue;
        auto link = [&](BasicBlock *succ) {
            if (!succ)
                return;
            bb->succs.push_back(succ);
            succ->preds.push_back(bb.get());
        };
        if (term->op == IrOpcode::Br) {
            link(term->taken);
            link(term->notTaken);
        } else if (term->op == IrOpcode::Jump) {
            link(term->taken);
        }
    }
}

std::vector<BasicBlock *>
Function::rpo() const
{
    std::vector<BasicBlock *> postorder;
    std::set<const BasicBlock *> visited;
    // Iterative DFS with explicit state to avoid deep recursion.
    struct Frame
    {
        BasicBlock *bb;
        size_t next = 0;
    };
    std::vector<Frame> stack;
    if (entry_) {
        stack.push_back({entry_});
        visited.insert(entry_);
    }
    while (!stack.empty()) {
        Frame &f = stack.back();
        if (f.next < f.bb->succs.size()) {
            BasicBlock *succ = f.bb->succs[f.next++];
            if (visited.insert(succ).second)
                stack.push_back({succ});
        } else {
            postorder.push_back(f.bb);
            stack.pop_back();
        }
    }
    std::reverse(postorder.begin(), postorder.end());
    return postorder;
}

void
Function::removeUnreachable()
{
    recomputeCfg();
    std::set<const BasicBlock *> reachable;
    for (BasicBlock *bb : rpo())
        reachable.insert(bb);
    blocks_.erase(
        std::remove_if(blocks_.begin(), blocks_.end(),
                       [&](const std::unique_ptr<BasicBlock> &bb) {
                           return !reachable.count(bb.get());
                       }),
        blocks_.end());
    recomputeCfg();
}

void
Function::numberLoads(int &next_load_id)
{
    for (auto &bb : blocks_) {
        for (auto &inst : bb->insts) {
            if (inst.isLoad() && inst.loadId == 0)
                inst.loadId = next_load_id++;
        }
    }
}

size_t
Function::instCount() const
{
    size_t n = 0;
    for (const auto &bb : blocks_)
        n += bb->insts.size();
    return n;
}

Function *
Module::findFunction(const std::string &name) const
{
    for (const auto &fn : functions) {
        if (fn->name() == name)
            return fn.get();
    }
    return nullptr;
}

void
Module::numberLoads()
{
    int next = 1;
    for (auto &fn : functions)
        fn->numberLoads(next);
}

std::string
irOpcodeName(IrOpcode op)
{
    switch (op) {
      case IrOpcode::Add: return "add";
      case IrOpcode::Sub: return "sub";
      case IrOpcode::Mul: return "mul";
      case IrOpcode::Div: return "div";
      case IrOpcode::Rem: return "rem";
      case IrOpcode::And: return "and";
      case IrOpcode::Or: return "or";
      case IrOpcode::Xor: return "xor";
      case IrOpcode::Shl: return "shl";
      case IrOpcode::Shr: return "shr";
      case IrOpcode::Sra: return "sra";
      case IrOpcode::SetLt: return "setlt";
      case IrOpcode::SetLtU: return "setltu";
      case IrOpcode::SetEq: return "seteq";
      case IrOpcode::Mov: return "mov";
      case IrOpcode::FrameAddr: return "frameaddr";
      case IrOpcode::GlobalAddr: return "globaladdr";
      case IrOpcode::Load: return "load";
      case IrOpcode::Store: return "store";
      case IrOpcode::Br: return "br";
      case IrOpcode::Jump: return "jump";
      case IrOpcode::Call: return "call";
      case IrOpcode::Ret: return "ret";
      case IrOpcode::Print: return "print";
      case IrOpcode::Nop: return "nop";
      default:
        panic("irOpcodeName: bad opcode");
    }
}

std::string
condCodeName(CondCode cc)
{
    switch (cc) {
      case CondCode::Eq: return "eq";
      case CondCode::Ne: return "ne";
      case CondCode::Lt: return "lt";
      case CondCode::Le: return "le";
      case CondCode::Gt: return "gt";
      case CondCode::Ge: return "ge";
      case CondCode::LtU: return "ltu";
      case CondCode::GeU: return "geu";
      default:
        panic("condCodeName: bad cond");
    }
}

CondCode
negateCond(CondCode cc)
{
    switch (cc) {
      case CondCode::Eq: return CondCode::Ne;
      case CondCode::Ne: return CondCode::Eq;
      case CondCode::Lt: return CondCode::Ge;
      case CondCode::Ge: return CondCode::Lt;
      case CondCode::Le: return CondCode::Gt;
      case CondCode::Gt: return CondCode::Le;
      case CondCode::LtU: return CondCode::GeU;
      case CondCode::GeU: return CondCode::LtU;
      default:
        panic("negateCond: bad cond");
    }
}

CondCode
swapCond(CondCode cc)
{
    switch (cc) {
      case CondCode::Eq: return CondCode::Eq;
      case CondCode::Ne: return CondCode::Ne;
      case CondCode::Lt: return CondCode::Gt;
      case CondCode::Gt: return CondCode::Lt;
      case CondCode::Le: return CondCode::Ge;
      case CondCode::Ge: return CondCode::Le;
      case CondCode::LtU:
      case CondCode::GeU:
        panic("swapCond: unsigned conditions not swappable here");
      default:
        panic("swapCond: bad cond");
    }
}

} // namespace ir
} // namespace elag
