/**
 * @file
 * Textual dumping of IR for tests and debugging.
 */

#ifndef ELAG_IR_PRINTER_HH
#define ELAG_IR_PRINTER_HH

#include <string>

#include "ir/ir.hh"

namespace elag {
namespace ir {

/** Render one instruction, e.g. "v3 = load [v1 + 4] (ld_p)". */
std::string toString(const IrInst &inst);

/** Render a function with block labels. */
std::string toString(const Function &fn);

/** Render the whole module. */
std::string toString(const Module &mod);

} // namespace ir
} // namespace elag

#endif // ELAG_IR_PRINTER_HH
