/**
 * @file
 * Natural-loop detection.
 *
 * The paper's cyclic classification heuristic (Section 4.1) operates
 * per natural loop, innermost first; LoopInfo provides exactly that
 * iteration order.
 */

#ifndef ELAG_IR_LOOPS_HH
#define ELAG_IR_LOOPS_HH

#include <memory>
#include <set>
#include <vector>

#include "ir/dominators.hh"
#include "ir/ir.hh"

namespace elag {
namespace ir {

/** Deterministic block ordering (by id, not by address). */
struct BlockIdLess
{
    bool
    operator()(const BasicBlock *a, const BasicBlock *b) const
    {
        return a->id() < b->id();
    }
};

/** One natural loop. */
struct Loop
{
    BasicBlock *header = nullptr;
    /**
     * All blocks in the loop, including the header, ordered by block
     * id so passes iterating the set transform code
     * deterministically.
     */
    std::set<BasicBlock *, BlockIdLess> blocks;
    /** Enclosing loop, or null for top-level loops. */
    Loop *parent = nullptr;
    /** Loops directly nested inside this one. */
    std::vector<Loop *> children;
    /** Nesting depth: 1 for top-level loops. */
    int depth = 1;

    bool contains(const BasicBlock *bb) const
    {
        return blocks.count(const_cast<BasicBlock *>(bb)) > 0;
    }
};

/** Loop forest for one function. */
class LoopInfo
{
  public:
    /** Detect loops; the function's CFG must be current. */
    explicit LoopInfo(Function &fn);

    /** All loops, innermost first (children precede parents). */
    std::vector<Loop *> loopsInnermostFirst() const;

    /** All detected loops in discovery order. */
    const std::vector<std::unique_ptr<Loop>> &loops() const
    {
        return loops_;
    }

    /** Innermost loop containing @p bb (null if none). */
    Loop *loopFor(const BasicBlock *bb) const;

  private:
    std::vector<std::unique_ptr<Loop>> loops_;
};

/**
 * Find or create a preheader for @p loop: a block that is the unique
 * non-loop predecessor of the header and jumps straight to it.
 * Rebuilds the CFG if a block is inserted.
 * @return the preheader block.
 */
BasicBlock *ensurePreheader(Function &fn, Loop &loop);

} // namespace ir
} // namespace elag

#endif // ELAG_IR_LOOPS_HH
