/**
 * @file
 * Inline factory functions for constructing machine instructions.
 *
 * Used by the code generator and by tests that hand-assemble
 * programs; keeps Instruction a plain aggregate.
 */

#ifndef ELAG_ISA_BUILDER_HH
#define ELAG_ISA_BUILDER_HH

#include "isa/instruction.hh"

namespace elag {
namespace isa {
namespace build {

inline Instruction
rrr(Opcode op, int rd, int rs1, int rs2)
{
    Instruction i;
    i.op = op;
    i.rd = static_cast<uint8_t>(rd);
    i.rs1 = static_cast<uint8_t>(rs1);
    i.rs2 = static_cast<uint8_t>(rs2);
    return i;
}

inline Instruction
rri(Opcode op, int rd, int rs1, int32_t imm)
{
    Instruction i;
    i.op = op;
    i.rd = static_cast<uint8_t>(rd);
    i.rs1 = static_cast<uint8_t>(rs1);
    i.imm = imm;
    return i;
}

/** add rd, rs1, rs2 */
inline Instruction
add(int rd, int rs1, int rs2)
{
    return rrr(Opcode::ADD, rd, rs1, rs2);
}

/** addi rd, rs1, imm */
inline Instruction
addi(int rd, int rs1, int32_t imm)
{
    return rri(Opcode::ADDI, rd, rs1, imm);
}

/** li rd, imm (pseudo: addi rd, zero, imm) */
inline Instruction
li(int rd, int32_t imm)
{
    return rri(Opcode::ADDI, rd, 0, imm);
}

/** mov rd, rs (pseudo: addi rd, rs, 0) */
inline Instruction
mov(int rd, int rs)
{
    return rri(Opcode::ADDI, rd, rs, 0);
}

/** Load with base+offset addressing. */
inline Instruction
load(LoadSpec spec, int rd, int base, int32_t offset,
     MemWidth width = MemWidth::Word)
{
    Instruction i;
    i.op = Opcode::LOAD;
    i.rd = static_cast<uint8_t>(rd);
    i.rs1 = static_cast<uint8_t>(base);
    i.imm = offset;
    i.spec = spec;
    i.mode = AddrMode::BaseOffset;
    i.width = width;
    return i;
}

/** Load with base+index addressing. */
inline Instruction
loadx(LoadSpec spec, int rd, int base, int index,
      MemWidth width = MemWidth::Word)
{
    Instruction i;
    i.op = Opcode::LOAD;
    i.rd = static_cast<uint8_t>(rd);
    i.rs1 = static_cast<uint8_t>(base);
    i.rs2 = static_cast<uint8_t>(index);
    i.spec = spec;
    i.mode = AddrMode::BaseIndex;
    i.width = width;
    return i;
}

/** st rs2 -> offset(base) */
inline Instruction
store(int src, int base, int32_t offset, MemWidth width = MemWidth::Word)
{
    Instruction i;
    i.op = Opcode::STORE;
    i.rs1 = static_cast<uint8_t>(base);
    i.rs2 = static_cast<uint8_t>(src);
    i.imm = offset;
    i.mode = AddrMode::BaseOffset;
    i.width = width;
    return i;
}

/** Conditional branch to absolute PC @p target. */
inline Instruction
branch(Opcode op, int rs1, int rs2, int32_t target)
{
    Instruction i;
    i.op = op;
    i.rs1 = static_cast<uint8_t>(rs1);
    i.rs2 = static_cast<uint8_t>(rs2);
    i.imm = target;
    return i;
}

/** jmp target */
inline Instruction
jmp(int32_t target)
{
    Instruction i;
    i.op = Opcode::JMP;
    i.imm = target;
    return i;
}

/** jal rd, target */
inline Instruction
jal(int rd, int32_t target)
{
    Instruction i;
    i.op = Opcode::JAL;
    i.rd = static_cast<uint8_t>(rd);
    i.imm = target;
    return i;
}

/** jr rs */
inline Instruction
jr(int rs)
{
    Instruction i;
    i.op = Opcode::JR;
    i.rs1 = static_cast<uint8_t>(rs);
    return i;
}

/** print rs */
inline Instruction
print(int rs)
{
    Instruction i;
    i.op = Opcode::PRINT;
    i.rs1 = static_cast<uint8_t>(rs);
    return i;
}

/** halt */
inline Instruction
halt()
{
    Instruction i;
    i.op = Opcode::HALT;
    return i;
}

/** nop */
inline Instruction
nop()
{
    Instruction i;
    i.op = Opcode::NOP;
    return i;
}

} // namespace build
} // namespace isa
} // namespace elag

#endif // ELAG_ISA_BUILDER_HH
