#include "isa/registers.hh"

#include "isa/instruction.hh"
#include "support/logging.hh"

namespace elag {
namespace isa {

std::string
intRegName(int reg)
{
    elag_assert(reg >= 0 && reg < NumIntRegs);
    switch (reg) {
      case reg::Zero: return "zero";
      case reg::Sp: return "sp";
      case reg::Ra: return "ra";
      case reg::Gp: return "gp";
      default:
        return formatString("r%d", reg);
    }
}

std::string
fpRegName(int reg)
{
    elag_assert(reg >= 0 && reg < NumFpRegs);
    return formatString("f%d", reg);
}

} // namespace isa
} // namespace elag
