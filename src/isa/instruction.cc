#include "isa/instruction.hh"

#include "support/logging.hh"

namespace elag {
namespace isa {

bool
Instruction::isCondBranch() const
{
    switch (op) {
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::BLTU:
      case Opcode::BGEU:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isControl() const
{
    return isCondBranch() || op == Opcode::JMP || op == Opcode::JAL ||
           op == Opcode::JR;
}

FuClass
Instruction::fuClass() const
{
    if (isMem())
        return FuClass::MemPort;
    if (isControl())
        return FuClass::Branch;
    switch (op) {
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMUL:
      case Opcode::FDIV:
      case Opcode::CVTIF:
      case Opcode::CVTFI:
        return FuClass::FpAlu;
      case Opcode::HALT:
      case Opcode::NOP:
        return FuClass::None;
      case Opcode::PRINT:
        return FuClass::IntAlu;
      default:
        return FuClass::IntAlu;
    }
}

bool
Instruction::writesIntReg() const
{
    return intDest() > 0;
}

int
Instruction::intDest() const
{
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM:
      case Opcode::AND: case Opcode::OR: case Opcode::XOR:
      case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
      case Opcode::SLT: case Opcode::SLTU: case Opcode::SEQ:
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
      case Opcode::SRAI: case Opcode::SLTI: case Opcode::LUI:
      case Opcode::LOAD: case Opcode::JAL: case Opcode::CVTFI:
        return rd == 0 ? -1 : rd;
      default:
        return -1;
    }
}

bool
Instruction::writesFpReg() const
{
    switch (op) {
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV: case Opcode::FLOAD: case Opcode::CVTIF:
        return true;
      default:
        return false;
    }
}

void
Instruction::intSources(int &s1, int &s2) const
{
    s1 = -1;
    s2 = -1;
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM:
      case Opcode::AND: case Opcode::OR: case Opcode::XOR:
      case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
      case Opcode::SLT: case Opcode::SLTU: case Opcode::SEQ:
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
        s1 = rs1;
        s2 = rs2;
        break;
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
      case Opcode::SRAI: case Opcode::SLTI:
      case Opcode::JR: case Opcode::PRINT: case Opcode::CVTIF:
        s1 = rs1;
        break;
      case Opcode::LOAD:
      case Opcode::FLOAD:
        s1 = rs1;
        if (mode == AddrMode::BaseIndex)
            s2 = rs2;
        break;
      case Opcode::STORE:
        s1 = rs1;
        s2 = rs2;
        break;
      case Opcode::FSTORE:
        s1 = rs1;   // base address; data comes from the FP file
        break;
      default:
        break;
    }
    // r0 reads as constant zero and never creates a dependence.
    if (s1 == 0)
        s1 = -1;
    if (s2 == 0)
        s2 = -1;
}

int
Instruction::baseReg() const
{
    if (!isMem())
        return -1;
    return rs1;
}

int
Instruction::indexReg() const
{
    if (!isLoad() || mode != AddrMode::BaseIndex)
        return -1;
    return rs2;
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::MUL: return "mul";
      case Opcode::DIV: return "div";
      case Opcode::REM: return "rem";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::SLL: return "sll";
      case Opcode::SRL: return "srl";
      case Opcode::SRA: return "sra";
      case Opcode::SLT: return "slt";
      case Opcode::SLTU: return "sltu";
      case Opcode::SEQ: return "seq";
      case Opcode::ADDI: return "addi";
      case Opcode::ANDI: return "andi";
      case Opcode::ORI: return "ori";
      case Opcode::XORI: return "xori";
      case Opcode::SLLI: return "slli";
      case Opcode::SRLI: return "srli";
      case Opcode::SRAI: return "srai";
      case Opcode::SLTI: return "slti";
      case Opcode::LUI: return "lui";
      case Opcode::LOAD: return "ld";
      case Opcode::STORE: return "st";
      case Opcode::BEQ: return "beq";
      case Opcode::BNE: return "bne";
      case Opcode::BLT: return "blt";
      case Opcode::BGE: return "bge";
      case Opcode::BLTU: return "bltu";
      case Opcode::BGEU: return "bgeu";
      case Opcode::JMP: return "jmp";
      case Opcode::JAL: return "jal";
      case Opcode::JR: return "jr";
      case Opcode::FADD: return "fadd";
      case Opcode::FSUB: return "fsub";
      case Opcode::FMUL: return "fmul";
      case Opcode::FDIV: return "fdiv";
      case Opcode::FLOAD: return "fld";
      case Opcode::FSTORE: return "fst";
      case Opcode::CVTIF: return "cvtif";
      case Opcode::CVTFI: return "cvtfi";
      case Opcode::PRINT: return "print";
      case Opcode::HALT: return "halt";
      case Opcode::NOP: return "nop";
      default:
        panic("opcodeName: bad opcode %d", static_cast<int>(op));
    }
}

std::string
loadSpecName(LoadSpec spec)
{
    switch (spec) {
      case LoadSpec::Normal: return "ld_n";
      case LoadSpec::Predict: return "ld_p";
      case LoadSpec::EarlyCalc: return "ld_e";
      default:
        panic("loadSpecName: bad spec %d", static_cast<int>(spec));
    }
}

} // namespace isa
} // namespace elag
