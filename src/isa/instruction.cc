#include "isa/instruction.hh"

#include "support/logging.hh"

namespace elag {
namespace isa {

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::MUL: return "mul";
      case Opcode::DIV: return "div";
      case Opcode::REM: return "rem";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::SLL: return "sll";
      case Opcode::SRL: return "srl";
      case Opcode::SRA: return "sra";
      case Opcode::SLT: return "slt";
      case Opcode::SLTU: return "sltu";
      case Opcode::SEQ: return "seq";
      case Opcode::ADDI: return "addi";
      case Opcode::ANDI: return "andi";
      case Opcode::ORI: return "ori";
      case Opcode::XORI: return "xori";
      case Opcode::SLLI: return "slli";
      case Opcode::SRLI: return "srli";
      case Opcode::SRAI: return "srai";
      case Opcode::SLTI: return "slti";
      case Opcode::LUI: return "lui";
      case Opcode::LOAD: return "ld";
      case Opcode::STORE: return "st";
      case Opcode::BEQ: return "beq";
      case Opcode::BNE: return "bne";
      case Opcode::BLT: return "blt";
      case Opcode::BGE: return "bge";
      case Opcode::BLTU: return "bltu";
      case Opcode::BGEU: return "bgeu";
      case Opcode::JMP: return "jmp";
      case Opcode::JAL: return "jal";
      case Opcode::JR: return "jr";
      case Opcode::FADD: return "fadd";
      case Opcode::FSUB: return "fsub";
      case Opcode::FMUL: return "fmul";
      case Opcode::FDIV: return "fdiv";
      case Opcode::FLOAD: return "fld";
      case Opcode::FSTORE: return "fst";
      case Opcode::CVTIF: return "cvtif";
      case Opcode::CVTFI: return "cvtfi";
      case Opcode::PRINT: return "print";
      case Opcode::HALT: return "halt";
      case Opcode::NOP: return "nop";
      default:
        panic("opcodeName: bad opcode %d", static_cast<int>(op));
    }
}

uint16_t
decodeFlags(const Instruction &inst)
{
    uint16_t flags = flag::Valid;
    if (inst.isLoad())
        flags |= flag::Load;
    if (inst.isStore())
        flags |= flag::Store;
    if (inst.isCondBranch())
        flags |= flag::CondBranch;
    if (inst.isControl())
        flags |= flag::Control;
    if (inst.writesIntReg())
        flags |= flag::WritesInt;
    if (inst.writesFpReg())
        flags |= flag::WritesFp;
    switch (inst.op) {
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMUL:
      case Opcode::FDIV:
      case Opcode::FSTORE:
      case Opcode::CVTFI:
        flags |= flag::ReadsFp;
        break;
      default:
        break;
    }
    if (inst.mode == AddrMode::BaseOffset)
        flags |= flag::BaseOffset;
    if (inst.width == MemWidth::Byte)
        flags |= flag::WidthByte;
    flags |= static_cast<uint16_t>(static_cast<uint16_t>(inst.spec)
                                   << flag::SpecShift);
    flags |= static_cast<uint16_t>(
        static_cast<uint16_t>(inst.fuClass()) << flag::FuShift);
    return flags;
}

std::string
loadSpecName(LoadSpec spec)
{
    switch (spec) {
      case LoadSpec::Normal: return "ld_n";
      case LoadSpec::Predict: return "ld_p";
      case LoadSpec::EarlyCalc: return "ld_e";
      default:
        panic("loadSpecName: bad spec %d", static_cast<int>(spec));
    }
}

} // namespace isa
} // namespace elag
