/**
 * @file
 * Binary instruction encoding.
 *
 * Instructions are packed into a 64-bit word so programs can be
 * serialized and so the instruction-set extension cost discussed in
 * the paper (three load specifiers folded into the load opcode) is
 * concrete. Layout, from bit 0:
 *
 *   [7:0]    opcode
 *   [13:8]   rd
 *   [19:14]  rs1
 *   [25:20]  rs2
 *   [27:26]  load spec
 *   [28]     addressing mode
 *   [30:29]  memory width (log2 of bytes)
 *   [63:32]  imm (signed 32-bit)
 */

#ifndef ELAG_ISA_ENCODING_HH
#define ELAG_ISA_ENCODING_HH

#include <cstdint>

#include "isa/instruction.hh"

namespace elag {
namespace isa {

/** Pack an instruction into its 64-bit binary form. */
uint64_t encode(const Instruction &inst);

/**
 * Decode a 64-bit instruction word.
 * @throws FatalError on an invalid opcode or field.
 */
Instruction decode(uint64_t word);

} // namespace isa
} // namespace elag

#endif // ELAG_ISA_ENCODING_HH
