/**
 * @file
 * The ELAG instruction set.
 *
 * A 32-bit RISC ISA modeled on the HP PA-7100 assumptions of the
 * paper: 64 integer and 64 floating-point registers, register+offset
 * and register+register load addressing, 1-cycle integer operations
 * and 2-cycle loads. The load instruction carries one of three
 * compiler-selected specifiers (paper Table 1):
 *
 *   ld_n  normal load, no early address generation
 *   ld_p  table-based address prediction
 *   ld_e  early calculation through the R_addr register cache
 */

#ifndef ELAG_ISA_INSTRUCTION_HH
#define ELAG_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

namespace elag {
namespace isa {

/** Number of architected integer registers (r0 is hardwired zero). */
constexpr int NumIntRegs = 64;
/** Number of architected floating-point registers. */
constexpr int NumFpRegs = 64;

/** Machine opcodes. */
enum class Opcode : uint8_t
{
    // Integer ALU, register-register.
    ADD, SUB, MUL, DIV, REM,
    AND, OR, XOR,
    SLL, SRL, SRA,
    SLT, SLTU, SEQ,
    // Integer ALU, register-immediate.
    ADDI, ANDI, ORI, XORI,
    SLLI, SRLI, SRAI, SLTI,
    LUI,
    // Memory.
    LOAD, STORE,
    // Control transfer (imm holds the absolute target PC).
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    JMP, JAL, JR,
    // Floating point (operands index the FP register file).
    FADD, FSUB, FMUL, FDIV,
    FLOAD, FSTORE,
    CVTIF,  ///< int reg -> fp reg
    CVTFI,  ///< fp reg -> int reg (truncating)
    // System.
    PRINT,  ///< emit rs1 to the emulator's output channel
    HALT,   ///< stop execution
    NOP,

    NumOpcodes
};

/** Compiler-selected early-address-generation specifier (Table 1). */
enum class LoadSpec : uint8_t
{
    Normal,     ///< ld_n
    Predict,    ///< ld_p
    EarlyCalc,  ///< ld_e
};

/** Memory access addressing mode. */
enum class AddrMode : uint8_t
{
    BaseOffset, ///< effective address = reg[base] + imm
    BaseIndex,  ///< effective address = reg[base] + reg[index]
};

/** Memory access width in bytes. */
enum class MemWidth : uint8_t
{
    Byte = 1,
    Word = 4,
};

/** Functional-unit class an instruction executes on. */
enum class FuClass : uint8_t
{
    IntAlu,
    MemPort,
    FpAlu,
    Branch,
    None,   ///< NOP/HALT consume an issue slot only
};

/**
 * One decoded machine instruction.
 *
 * Field meaning depends on the opcode:
 *  - ALU reg-reg:   rd <- rs1 op rs2
 *  - ALU reg-imm:   rd <- rs1 op imm
 *  - LOAD:          rd <- mem[rs1 + imm]  (BaseOffset)
 *                   rd <- mem[rs1 + rs2]  (BaseIndex)
 *  - STORE:         mem[rs1 + imm] <- rs2 (BaseOffset)
 *  - branches:      compare rs1, rs2; target PC = imm
 *  - JAL:           rd <- return PC; jump to imm
 *  - JR:            jump to rs1
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;
    LoadSpec spec = LoadSpec::Normal;
    AddrMode mode = AddrMode::BaseOffset;
    MemWidth width = MemWidth::Word;

    bool operator==(const Instruction &other) const = default;

    /** @return true for integer or FP loads. */
    bool isLoad() const { return op == Opcode::LOAD || op == Opcode::FLOAD; }
    /** @return true for integer or FP stores. */
    bool
    isStore() const
    {
        return op == Opcode::STORE || op == Opcode::FSTORE;
    }
    /** @return true for any memory access. */
    bool isMem() const { return isLoad() || isStore(); }
    /** @return true for conditional branches. */
    bool isCondBranch() const
    {
        return op >= Opcode::BEQ && op <= Opcode::BGEU;
    }
    /** @return true for any control transfer. */
    bool isControl() const
    {
        return op >= Opcode::BEQ && op <= Opcode::JR;
    }
    /** @return true if this op terminates execution. */
    bool isHalt() const { return op == Opcode::HALT; }
    /** @return functional-unit class. */
    FuClass fuClass() const;

    /** @return true if the instruction writes an integer register. */
    bool writesIntReg() const { return intDest() > 0; }
    /** @return destination integer register or -1. */
    int intDest() const;
    /** @return true if the instruction writes an FP register. */
    bool writesFpReg() const
    {
        return (op >= Opcode::FADD && op <= Opcode::FDIV) ||
               op == Opcode::FLOAD || op == Opcode::CVTIF;
    }

    /** Integer source registers; -1 entries mean unused. */
    void intSources(int &s1, int &s2) const;

    /** @return the base register for a memory access (or -1). */
    int baseReg() const { return isMem() ? rs1 : -1; }
    /** @return the index register for a BaseIndex access (or -1). */
    int indexReg() const
    {
        return isLoad() && mode == AddrMode::BaseIndex ? rs2 : -1;
    }
};

// The predicates above (and the decode helpers below) lean on the
// declaration order of Opcode; pin the ranges they assume.
static_assert(Opcode::BEQ < Opcode::BNE && Opcode::BNE < Opcode::BLT &&
              Opcode::BLT < Opcode::BGE && Opcode::BGE < Opcode::BLTU &&
              Opcode::BLTU < Opcode::BGEU && Opcode::BGEU < Opcode::JMP &&
              Opcode::JMP < Opcode::JAL && Opcode::JAL < Opcode::JR,
              "control opcodes must stay contiguous");
static_assert(Opcode::FADD < Opcode::FSUB && Opcode::FSUB < Opcode::FMUL &&
              Opcode::FMUL < Opcode::FDIV,
              "FP ALU opcodes must stay contiguous");
static_assert(Opcode::ADD < Opcode::SEQ && Opcode::ADDI < Opcode::LUI,
              "ALU opcode groups must stay contiguous");

inline FuClass
Instruction::fuClass() const
{
    if (isMem())
        return FuClass::MemPort;
    if (isControl())
        return FuClass::Branch;
    switch (op) {
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMUL:
      case Opcode::FDIV:
      case Opcode::CVTIF:
      case Opcode::CVTFI:
        return FuClass::FpAlu;
      case Opcode::HALT:
      case Opcode::NOP:
        return FuClass::None;
      case Opcode::PRINT:
        return FuClass::IntAlu;
      default:
        return FuClass::IntAlu;
    }
}

inline int
Instruction::intDest() const
{
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM:
      case Opcode::AND: case Opcode::OR: case Opcode::XOR:
      case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
      case Opcode::SLT: case Opcode::SLTU: case Opcode::SEQ:
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
      case Opcode::SRAI: case Opcode::SLTI: case Opcode::LUI:
      case Opcode::LOAD: case Opcode::JAL: case Opcode::CVTFI:
        return rd == 0 ? -1 : rd;
      default:
        return -1;
    }
}

inline void
Instruction::intSources(int &s1, int &s2) const
{
    s1 = -1;
    s2 = -1;
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM:
      case Opcode::AND: case Opcode::OR: case Opcode::XOR:
      case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
      case Opcode::SLT: case Opcode::SLTU: case Opcode::SEQ:
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
        s1 = rs1;
        s2 = rs2;
        break;
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
      case Opcode::SRAI: case Opcode::SLTI:
      case Opcode::JR: case Opcode::PRINT: case Opcode::CVTIF:
        s1 = rs1;
        break;
      case Opcode::LOAD:
      case Opcode::FLOAD:
        s1 = rs1;
        if (mode == AddrMode::BaseIndex)
            s2 = rs2;
        break;
      case Opcode::STORE:
        s1 = rs1;
        s2 = rs2;
        break;
      case Opcode::FSTORE:
        s1 = rs1;   // base address; data comes from the FP file
        break;
      default:
        break;
    }
    // r0 reads as constant zero and never creates a dependence.
    if (s1 == 0)
        s1 = -1;
    if (s2 == 0)
        s2 = -1;
}

/**
 * Precomputed per-instruction predicate word.
 *
 * One bit (or small field) per question the per-retire hot paths ask
 * of an instruction, so the timing model tests a cached word instead
 * of re-walking the opcode switches above on every committed
 * instruction. The word is a function of the whole Instruction (the
 * register numbers matter: e.g. WritesInt is clear when rd is the
 * hardwired-zero register), so it is computed once per static
 * instruction by the predecoder and carried alongside the retire
 * stream.
 */
namespace flag {

/** Word was produced by decodeFlags (hand-built records leave 0). */
constexpr uint16_t Valid = 1u << 0;
constexpr uint16_t Load = 1u << 1;
constexpr uint16_t Store = 1u << 2;
constexpr uint16_t CondBranch = 1u << 3;
constexpr uint16_t Control = 1u << 4;
/** Writes an integer register (false when rd is r0). */
constexpr uint16_t WritesInt = 1u << 5;
/** Writes a floating-point register. */
constexpr uint16_t WritesFp = 1u << 6;
/** Reads at least one floating-point register. */
constexpr uint16_t ReadsFp = 1u << 7;
/** Memory access uses reg+imm addressing (clear: reg+reg). */
constexpr uint16_t BaseOffset = 1u << 8;
/** Memory access is byte-wide (clear: word). */
constexpr uint16_t WidthByte = 1u << 9;
/** LoadSpec, as a 2-bit field. */
constexpr int SpecShift = 10;
constexpr uint16_t SpecMask = 0x3u << SpecShift;
/** FuClass, as a 3-bit field. */
constexpr int FuShift = 12;
constexpr uint16_t FuMask = 0x7u << FuShift;

} // namespace flag

/** Compute the full flag word (always has flag::Valid set). */
uint16_t decodeFlags(const Instruction &inst);

/** The FuClass field of a flag word. */
inline FuClass
flagFuClass(uint16_t flags)
{
    return static_cast<FuClass>((flags & flag::FuMask) >>
                                flag::FuShift);
}

/** The LoadSpec field of a flag word. */
inline LoadSpec
flagLoadSpec(uint16_t flags)
{
    return static_cast<LoadSpec>((flags & flag::SpecMask) >>
                                 flag::SpecShift);
}

/** Mnemonic for an opcode (e.g. "add", "ld_p"). */
std::string opcodeName(Opcode op);

/** Mnemonic for a load spec ("ld_n"/"ld_p"/"ld_e"). */
std::string loadSpecName(LoadSpec spec);

} // namespace isa
} // namespace elag

#endif // ELAG_ISA_INSTRUCTION_HH
