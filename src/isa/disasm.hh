/**
 * @file
 * Instruction and program disassembly.
 */

#ifndef ELAG_ISA_DISASM_HH
#define ELAG_ISA_DISASM_HH

#include <string>

#include "isa/instruction.hh"
#include "isa/program.hh"

namespace elag {
namespace isa {

/** Disassemble one instruction, e.g. "ld_p r4, 0(r17)". */
std::string disassemble(const Instruction &inst);

/** Disassemble a whole program with PC labels and symbols. */
std::string disassemble(const MachineProgram &prog);

} // namespace isa
} // namespace elag

#endif // ELAG_ISA_DISASM_HH
