#include "isa/program.hh"

#include "support/logging.hh"

namespace elag {
namespace isa {

uint32_t
MachineProgram::heapBase() const
{
    // Word-align the start of the heap past the globals.
    uint32_t base = GlobalBase + globalSize;
    return (base + 7u) & ~7u;
}

std::string
MachineProgram::symbolAt(uint32_t pc) const
{
    std::string best;
    uint32_t best_pc = 0;
    for (const auto &kv : symbols) {
        if (kv.second <= pc && (best.empty() || kv.second >= best_pc)) {
            best = kv.first;
            best_pc = kv.second;
        }
    }
    return best;
}

void
MachineProgram::verify() const
{
    elag_assert(entry < code.size());
    for (size_t pc = 0; pc < code.size(); ++pc) {
        const Instruction &inst = code[pc];
        elag_assert(inst.rd < NumIntRegs);
        elag_assert(inst.rs1 < NumIntRegs);
        elag_assert(inst.rs2 < NumIntRegs);
        if (inst.isCondBranch() || inst.op == Opcode::JMP ||
            inst.op == Opcode::JAL) {
            if (inst.imm < 0 ||
                static_cast<size_t>(inst.imm) >= code.size()) {
                panic("verify: pc %zu (%s) target %d out of range",
                      pc, opcodeName(inst.op).c_str(), inst.imm);
            }
        }
    }
}

} // namespace isa
} // namespace elag
