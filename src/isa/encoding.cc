#include "isa/encoding.hh"

#include "support/logging.hh"

namespace elag {
namespace isa {

namespace {

uint32_t
widthLog2(MemWidth w)
{
    return w == MemWidth::Byte ? 0 : 2;
}

MemWidth
widthFromLog2(uint32_t lg)
{
    switch (lg) {
      case 0: return MemWidth::Byte;
      case 2: return MemWidth::Word;
      default:
        fatal("decode: invalid memory width field %u", lg);
    }
}

} // anonymous namespace

uint64_t
encode(const Instruction &inst)
{
    elag_assert(inst.rd < NumIntRegs);
    elag_assert(inst.rs1 < NumIntRegs);
    elag_assert(inst.rs2 < NumIntRegs);
    uint64_t w = 0;
    w |= static_cast<uint64_t>(inst.op) & 0xff;
    w |= (static_cast<uint64_t>(inst.rd) & 0x3f) << 8;
    w |= (static_cast<uint64_t>(inst.rs1) & 0x3f) << 14;
    w |= (static_cast<uint64_t>(inst.rs2) & 0x3f) << 20;
    w |= (static_cast<uint64_t>(inst.spec) & 0x3) << 26;
    w |= (static_cast<uint64_t>(inst.mode) & 0x1) << 28;
    w |= (static_cast<uint64_t>(widthLog2(inst.width)) & 0x3) << 29;
    w |= static_cast<uint64_t>(static_cast<uint32_t>(inst.imm)) << 32;
    return w;
}

Instruction
decode(uint64_t word)
{
    uint32_t op_field = static_cast<uint32_t>(word & 0xff);
    if (op_field >= static_cast<uint32_t>(Opcode::NumOpcodes))
        fatal("decode: invalid opcode field %u", op_field);

    Instruction inst;
    inst.op = static_cast<Opcode>(op_field);
    inst.rd = static_cast<uint8_t>((word >> 8) & 0x3f);
    inst.rs1 = static_cast<uint8_t>((word >> 14) & 0x3f);
    inst.rs2 = static_cast<uint8_t>((word >> 20) & 0x3f);
    uint32_t spec_field = static_cast<uint32_t>((word >> 26) & 0x3);
    if (spec_field > static_cast<uint32_t>(LoadSpec::EarlyCalc))
        fatal("decode: invalid load spec field %u", spec_field);
    inst.spec = static_cast<LoadSpec>(spec_field);
    inst.mode = static_cast<AddrMode>((word >> 28) & 0x1);
    inst.width = widthFromLog2(static_cast<uint32_t>((word >> 29) & 0x3));
    inst.imm = static_cast<int32_t>(static_cast<uint32_t>(word >> 32));
    return inst;
}

} // namespace isa
} // namespace elag
