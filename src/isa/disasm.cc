#include "isa/disasm.hh"

#include "isa/registers.hh"
#include "support/logging.hh"

namespace elag {
namespace isa {

namespace {

std::string
r(int reg)
{
    return intRegName(reg);
}

std::string
f(int reg)
{
    return fpRegName(reg);
}

std::string
memOperand(const Instruction &inst)
{
    if (inst.mode == AddrMode::BaseOffset)
        return formatString("%d(%s)", inst.imm, r(inst.rs1).c_str());
    return formatString("(%s+%s)", r(inst.rs1).c_str(),
                        r(inst.rs2).c_str());
}

std::string
widthSuffix(const Instruction &inst)
{
    return inst.width == MemWidth::Byte ? "b" : "";
}

} // anonymous namespace

std::string
disassemble(const Instruction &inst)
{
    using O = Opcode;
    switch (inst.op) {
      case O::ADD: case O::SUB: case O::MUL: case O::DIV: case O::REM:
      case O::AND: case O::OR: case O::XOR:
      case O::SLL: case O::SRL: case O::SRA:
      case O::SLT: case O::SLTU: case O::SEQ:
        return formatString("%s %s, %s, %s",
                            opcodeName(inst.op).c_str(),
                            r(inst.rd).c_str(), r(inst.rs1).c_str(),
                            r(inst.rs2).c_str());
      case O::ADDI: case O::ANDI: case O::ORI: case O::XORI:
      case O::SLLI: case O::SRLI: case O::SRAI: case O::SLTI:
        return formatString("%s %s, %s, %d",
                            opcodeName(inst.op).c_str(),
                            r(inst.rd).c_str(), r(inst.rs1).c_str(),
                            inst.imm);
      case O::LUI:
        return formatString("lui %s, %d", r(inst.rd).c_str(), inst.imm);
      case O::LOAD:
        return formatString("%s%s %s, %s",
                            loadSpecName(inst.spec).c_str(),
                            widthSuffix(inst).c_str(),
                            r(inst.rd).c_str(), memOperand(inst).c_str());
      case O::STORE:
        return formatString("st%s %s, %s", widthSuffix(inst).c_str(),
                            r(inst.rs2).c_str(), memOperand(inst).c_str());
      case O::BEQ: case O::BNE: case O::BLT: case O::BGE:
      case O::BLTU: case O::BGEU:
        return formatString("%s %s, %s, %d",
                            opcodeName(inst.op).c_str(),
                            r(inst.rs1).c_str(), r(inst.rs2).c_str(),
                            inst.imm);
      case O::JMP:
        return formatString("jmp %d", inst.imm);
      case O::JAL:
        return formatString("jal %s, %d", r(inst.rd).c_str(), inst.imm);
      case O::JR:
        return formatString("jr %s", r(inst.rs1).c_str());
      case O::FADD: case O::FSUB: case O::FMUL: case O::FDIV:
        return formatString("%s %s, %s, %s",
                            opcodeName(inst.op).c_str(),
                            f(inst.rd).c_str(), f(inst.rs1).c_str(),
                            f(inst.rs2).c_str());
      case O::FLOAD:
        return formatString("fld %s, %s", f(inst.rd).c_str(),
                            memOperand(inst).c_str());
      case O::FSTORE:
        return formatString("fst %s, %s", f(inst.rs2).c_str(),
                            memOperand(inst).c_str());
      case O::CVTIF:
        return formatString("cvtif %s, %s", f(inst.rd).c_str(),
                            r(inst.rs1).c_str());
      case O::CVTFI:
        return formatString("cvtfi %s, %s", r(inst.rd).c_str(),
                            f(inst.rs1).c_str());
      case O::PRINT:
        return formatString("print %s", r(inst.rs1).c_str());
      case O::HALT:
        return "halt";
      case O::NOP:
        return "nop";
      default:
        panic("disassemble: bad opcode %d", static_cast<int>(inst.op));
    }
}

std::string
disassemble(const MachineProgram &prog)
{
    std::map<uint32_t, std::string> labels;
    for (const auto &kv : prog.symbols)
        labels[kv.second] = kv.first;

    std::string out;
    for (size_t pc = 0; pc < prog.code.size(); ++pc) {
        auto it = labels.find(static_cast<uint32_t>(pc));
        if (it != labels.end())
            out += formatString("%s:\n", it->second.c_str());
        out += formatString("  %4zu: %s\n", pc,
                            disassemble(prog.code[pc]).c_str());
    }
    return out;
}

} // namespace isa
} // namespace elag
