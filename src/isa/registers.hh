/**
 * @file
 * Architected register names and the software calling convention.
 */

#ifndef ELAG_ISA_REGISTERS_HH
#define ELAG_ISA_REGISTERS_HH

#include <cstdint>
#include <string>

namespace elag {
namespace isa {

/** Software register convention used by the code generator. */
namespace reg {

constexpr int Zero = 0;       ///< hardwired zero
constexpr int Sp = 1;         ///< stack pointer
constexpr int Ra = 2;         ///< return address
constexpr int Gp = 3;         ///< global pointer (base of globals)
constexpr int Arg0 = 4;       ///< first argument / return value
constexpr int NumArgRegs = 8; ///< r4..r11 carry arguments

/** First caller-saved temporary. */
constexpr int CallerSavedFirst = 12;
/** Last caller-saved temporary. */
constexpr int CallerSavedLast = 31;
/** First callee-saved register. */
constexpr int CalleeSavedFirst = 32;
/** Last callee-saved register. */
constexpr int CalleeSavedLast = 63;

/** @return argument register i (i < NumArgRegs). */
constexpr int arg(int i) { return Arg0 + i; }

} // namespace reg

/** Human-readable integer register name ("r7", "sp", ...). */
std::string intRegName(int reg);

/** Human-readable FP register name ("f3"). */
std::string fpRegName(int reg);

} // namespace isa
} // namespace elag

#endif // ELAG_ISA_REGISTERS_HH
