/**
 * @file
 * Container for a fully linked machine program.
 */

#ifndef ELAG_ISA_PROGRAM_HH
#define ELAG_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace elag {
namespace isa {

/** Base byte address of the global data segment. */
constexpr uint32_t GlobalBase = 0x1000;
/** Initial stack pointer (stack grows down). */
constexpr uint32_t StackTop = 0x0400'0000;
/** Total simulated memory size in bytes. */
constexpr uint32_t MemorySize = 0x0400'0000 + 0x1000;

/**
 * A linked ELAG machine program.
 *
 * The PC is an instruction index; instruction i occupies byte address
 * 4*i for instruction-cache purposes. Branch/jump immediates hold
 * absolute target PCs (indices into @ref code).
 */
struct MachineProgram
{
    /** The instruction stream. */
    std::vector<Instruction> code;
    /** Entry PC (index into code). */
    uint32_t entry = 0;
    /** Bytes of global data, placed at GlobalBase. */
    uint32_t globalSize = 0;
    /** Initial contents of the global segment (may be shorter). */
    std::vector<uint8_t> globalInit;
    /** Function name -> entry PC, for diagnostics. */
    std::map<std::string, uint32_t> symbols;

    /** @return byte address where the heap begins. */
    uint32_t heapBase() const;

    /** @return name of the function containing @p pc ("" if none). */
    std::string symbolAt(uint32_t pc) const;

    /**
     * Validate internal consistency: branch targets in range,
     * register indices legal, entry in range.
     * @throws PanicError on violation.
     */
    void verify() const;
};

} // namespace isa
} // namespace elag

#endif // ELAG_ISA_PROGRAM_HH
