/**
 * @file
 * Observer hook interface for the timing model.
 *
 * The pipeline publishes its interesting micro-events — speculative
 * dispatches, verification verdicts, forwards, stalls — to attached
 * observers, so tracing, per-PC telemetry and future tooling can
 * watch a run without further edits to the core model. Callbacks
 * fire in retire (program) order; with no observers attached the
 * cost is one empty-vector check per load.
 */

#ifndef ELAG_PIPELINE_OBSERVER_HH
#define ELAG_PIPELINE_OBSERVER_HH

#include <cstddef>
#include <cstdint>

namespace elag {
namespace pipeline {

struct RetiredInst;

/** The path a dynamic load was routed to (Section 3's three ways). */
enum class LoadPath : uint8_t
{
    Normal,    ///< ld_n timing: EA in EXE, D$ in MEM
    Predict,   ///< ld_p: PC-indexed address-prediction table
    EarlyCalc, ///< ld_e: early calculation through R_addr
};

/**
 * Per-dynamic-load speculation verdict. One of these is decided for
 * every executed load; values past Forwarded give the reason the
 * speculation was skipped or discarded, mirroring the failure
 * counters of SpecCounters.
 */
enum class SpecOutcome : uint8_t
{
    NotAttempted, ///< routed to the normal path, nothing to verify
    Forwarded,    ///< speculation succeeded, latency reduced
    NoPrediction, ///< table miss / entry not confident
    NotBound,     ///< R_addr held a different register
    PortDenied,   ///< no free data-cache port in the early stage
    RegInterlock, ///< base register not ready at ID1
    MemInterlock, ///< conflicting in-flight store
    WrongAddress, ///< predicted != computed
    CacheMiss,    ///< speculative access missed the D$
};

constexpr size_t NumSpecOutcomes = 9;

/** Stable lowercase name, e.g. for trace lines and JSON keys. */
constexpr const char *
name(LoadPath path)
{
    switch (path) {
      case LoadPath::Normal:
        return "normal";
      case LoadPath::Predict:
        return "predict";
      case LoadPath::EarlyCalc:
        return "early_calc";
    }
    return "?";
}

/** Stable name for a speculation outcome. */
constexpr const char *
name(SpecOutcome outcome)
{
    switch (outcome) {
      case SpecOutcome::NotAttempted:
        return "not_attempted";
      case SpecOutcome::Forwarded:
        return "forwarded";
      case SpecOutcome::NoPrediction:
        return "no_prediction";
      case SpecOutcome::NotBound:
        return "not_bound";
      case SpecOutcome::PortDenied:
        return "port_denied";
      case SpecOutcome::RegInterlock:
        return "reg_interlock";
      case SpecOutcome::MemInterlock:
        return "mem_interlock";
      case SpecOutcome::WrongAddress:
        return "wrong_address";
      case SpecOutcome::CacheMiss:
        return "cache_miss";
    }
    return "?";
}

/** Causes of lost cycles attributed to a single instruction. */
enum class StallKind : uint8_t
{
    IcacheMiss,      ///< fetch waited on an I$ fill
    BranchMispredict,///< fetch redirected at EXE resolution
    RegInterlock,    ///< issue waited on source operands
    DcacheMiss,      ///< normal-path load waited on a D$ fill
};

/** Stable name for a stall kind. */
constexpr const char *
name(StallKind kind)
{
    switch (kind) {
      case StallKind::IcacheMiss:
        return "icache_miss";
      case StallKind::BranchMispredict:
        return "branch_mispredict";
      case StallKind::RegInterlock:
        return "reg_interlock";
      case StallKind::DcacheMiss:
        return "dcache_miss";
    }
    return "?";
}

/**
 * The four Section-3.2 safety conditions as the hardware evaluated
 * them for one dispatched speculative access. Published alongside
 * the verdict so lockstep checkers (verify::InvariantChecker) can
 * prove the forwarding decision followed from the measurements:
 * a Forwarded verdict is legal only when every field holds.
 */
struct VerifyConditions
{
    /** A data-cache port was allocated in the early stage. */
    bool portAllocated = false;
    /** Speculative address equals the computed effective address. */
    bool addrMatch = false;
    /** The speculative access hit the data cache. */
    bool cacheHit = false;
    /** No address-register interlock at the early stage. */
    bool regInterlockFree = false;
    /** No conflicting in-flight store (Mem_Interlock clear). */
    bool memInterlockFree = false;

    bool
    allHold() const
    {
        return portAllocated && addrMatch && cacheHit &&
               regInterlockFree && memInterlockFree;
    }
};

/**
 * Attachable pipeline event sink. Default implementations do
 * nothing, so observers override only the events they need.
 */
class Observer
{
  public:
    virtual ~Observer() = default;

    /**
     * A speculative D-cache access was dispatched for @p ri in the
     * early stage (ID1 for ld_e, ID2 for ld_p) at @p cycle using
     * address @p specAddr.
     */
    virtual void
    onSpecDispatch(const RetiredInst &ri, LoadPath path,
                   uint32_t specAddr, uint64_t cycle)
    {
        (void)ri; (void)path; (void)specAddr; (void)cycle;
    }

    /**
     * The speculation verdict for a load, fired once per executed
     * load at its EXE cycle (including NotAttempted and the skip
     * reasons, so outcome counts partition executed loads).
     */
    virtual void
    onVerify(const RetiredInst &ri, LoadPath path, SpecOutcome outcome,
             uint64_t exeCycle)
    {
        (void)ri; (void)path; (void)outcome; (void)exeCycle;
    }

    /**
     * The measured safety conditions behind a dispatched
     * speculation's verdict, fired immediately before the matching
     * onVerify whenever a speculative access was dispatched (i.e.
     * once per speculated load, never for skipped speculation).
     */
    virtual void
    onVerifyConditions(const RetiredInst &ri, LoadPath path,
                       SpecOutcome outcome,
                       const VerifyConditions &conditions,
                       uint64_t exeCycle)
    {
        (void)ri; (void)path; (void)outcome; (void)conditions;
        (void)exeCycle;
    }

    /**
     * A successful speculation forwarded its value; @p latency is
     * the effective load-use latency (0 for ld_e base+offset, 1
     * otherwise) and @p readyCycle when the dest register is ready.
     */
    virtual void
    onForward(const RetiredInst &ri, LoadPath path, int latency,
              uint64_t readyCycle)
    {
        (void)ri; (void)path; (void)latency; (void)readyCycle;
    }

    /** @p ri cost the machine @p cycles stall cycles of kind @p kind. */
    virtual void
    onStall(const RetiredInst &ri, StallKind kind, uint64_t cycles)
    {
        (void)ri; (void)kind; (void)cycles;
    }
};

} // namespace pipeline
} // namespace elag

#endif // ELAG_PIPELINE_OBSERVER_HH
