#include "pipeline/pipeline.hh"

#include <algorithm>

#include "ckpt/serial.hh"
#include "isa/disasm.hh"
#include "support/logging.hh"
#include "verify/fault_injector.hh"

namespace elag {
namespace pipeline {

using isa::FuClass;
using isa::Instruction;
using isa::Opcode;

Pipeline::Pipeline(const MachineConfig &config)
    : cfg(config),
      icache(config.icache),
      dcache(config.dcache),
      btb(config.btbEntries),
      table(config.addressTableEntries,
            config.tablePredictsWhileLearning),
      regCache(config.registerCacheSize),
      faults(config.faultInjector),
      books(BookRingSize),
      tcPipeline(trace::channel("pipeline")),
      tcPredict(trace::channel("predict")),
      tcRaddr(trace::channel("raddr")),
      tcCache(trace::channel("cache"))
{
    table.setFaultInjector(faults);
}

void
Pipeline::attach(Observer *observer)
{
    if (observer) {
        observers.push_back(observer);
        hasObservers_ = true;
    }
}

void
Pipeline::notifyStall(const RetiredInst &ri, StallKind kind,
                      uint64_t cycles)
{
    if (!hasObservers_)
        return;
    for (Observer *o : observers)
        o->onStall(ri, kind, cycles);
}

Pipeline::CycleUse &
Pipeline::use(uint64_t cycle)
{
    BookSlot &slot = books[cycle & (BookRingSize - 1)];
    if (slot.cycle != cycle) {
        slot.cycle = cycle;
        slot.use = CycleUse{};
    }
    return slot.use;
}

void
Pipeline::pruneStores(uint64_t before)
{
    while (!inFlightStores.empty() &&
           inFlightStores.front().writeCycle + 4 < before) {
        inFlightStores.pop_front();
    }
}

uint64_t
Pipeline::scheduleIssue(uint64_t from, FuClass fu)
{
    for (uint64_t c = from;; ++c) {
        CycleUse &u = use(c);
        if (u.issue >= cfg.issueWidth)
            continue;
        int *count = nullptr;
        int limit = 0;
        switch (fu) {
          case FuClass::IntAlu:
            count = &u.intAlu;
            limit = cfg.intAlus;
            break;
          case FuClass::MemPort:
            count = &u.mem;
            limit = cfg.memPorts;
            break;
          case FuClass::FpAlu:
            count = &u.fp;
            limit = cfg.fpAlus;
            break;
          case FuClass::Branch:
            count = &u.branch;
            limit = cfg.branchUnits;
            break;
          case FuClass::None:
            break;
        }
        if (count && *count >= limit)
            continue;
        ++u.issue;
        if (count)
            ++*count;
        return c;
    }
}

int
Pipeline::latencyOf(const Instruction &inst) const
{
    switch (inst.op) {
      case Opcode::MUL:
        return cfg.mulLatency;
      case Opcode::DIV:
      case Opcode::REM:
        return cfg.divLatency;
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMUL:
      case Opcode::FDIV:
      case Opcode::CVTIF:
      case Opcode::CVTFI:
        return cfg.fpLatency;
      default:
        return cfg.aluLatency;
    }
}

bool
Pipeline::memInterlock(uint32_t addr, uint32_t bytes,
                       uint64_t cycle) const
{
    for (const InFlightStore &s : inFlightStores) {
        if (s.writeCycle < cycle)
            continue; // already visible in the cache
        if (s.exeCycle >= cycle)
            return true; // address not yet resolved: conservative
        bool overlap = addr < s.addr + s.bytes && s.addr < addr + bytes;
        if (overlap)
            return true;
    }
    return false;
}

uint64_t
Pipeline::fetchConstraint(const RetiredInst &ri)
{
    uint64_t f = nextFetch;
    if (fetchedThisCycle >= cfg.issueWidth) {
        ++f;
        fetchedThisCycle = 0;
    }
    mem::CacheAccessResult res = icache.access(ri.pc * 4, f);
    if (!res.hit && res.readyCycle > f) {
        ELAG_TRACE_EVT(tcCache, f, "I$ miss pc=%u fill ready %llu",
                       ri.pc,
                       static_cast<unsigned long long>(res.readyCycle));
        notifyStall(ri, StallKind::IcacheMiss, res.readyCycle - f);
        f = res.readyCycle;
        fetchedThisCycle = 0;
    }
    ++fetchedThisCycle;
    nextFetch = f;
    return f + 3;
}

LoadPath
Pipeline::routeLoad(const Instruction &inst, uint64_t id1, int base,
                    int index) const
{
    switch (cfg.selection) {
      case SelectionPolicy::CompilerSpec:
        if (inst.spec == isa::LoadSpec::Predict &&
            cfg.addressTableEnabled) {
            return LoadPath::Predict;
        }
        if (inst.spec == isa::LoadSpec::EarlyCalc &&
            cfg.earlyCalcEnabled) {
            return LoadPath::EarlyCalc;
        }
        break;
      case SelectionPolicy::AllPredict:
        if (cfg.addressTableEnabled)
            return LoadPath::Predict;
        break;
      case SelectionPolicy::AllEarlyCalc:
        if (cfg.earlyCalcEnabled)
            return LoadPath::EarlyCalc;
        break;
      case SelectionPolicy::EvSelect: {
        // Eickemeyer-Vassiliadis: loads whose address registers are
        // interlocked go to the prediction table, others calculate
        // early.
        bool interlocked =
            (base > 0 && intReady[base] > id1) ||
            (index > 0 && intReady[index] > id1);
        if (interlocked && cfg.addressTableEnabled)
            return LoadPath::Predict;
        if (cfg.earlyCalcEnabled)
            return LoadPath::EarlyCalc;
        break;
      }
    }
    return LoadPath::Normal;
}

SpecCounters &
Pipeline::countersFor(LoadPath path)
{
    switch (path) {
      case LoadPath::Predict:
        return stats_.predict;
      case LoadPath::EarlyCalc:
        return stats_.earlyCalc;
      case LoadPath::Normal:
        break;
    }
    return stats_.normal;
}

void
Pipeline::bumpOutcome(SpecCounters &ctr, SpecOutcome outcome)
{
    switch (outcome) {
      case SpecOutcome::NotAttempted:
        break;
      case SpecOutcome::Forwarded:
        ++ctr.forwarded;
        break;
      case SpecOutcome::NoPrediction:
        ++ctr.noPrediction;
        break;
      case SpecOutcome::NotBound:
        ++ctr.notBound;
        break;
      case SpecOutcome::PortDenied:
        ++ctr.portDenied;
        break;
      case SpecOutcome::RegInterlock:
        ++ctr.regInterlock;
        break;
      case SpecOutcome::MemInterlock:
        ++ctr.memInterlock;
        break;
      case SpecOutcome::WrongAddress:
        ++ctr.wrongAddress;
        break;
      case SpecOutcome::CacheMiss:
        ++ctr.cacheMiss;
        break;
    }
}

uint64_t
Pipeline::handleLoad(const RetiredInst &ri, uint64_t e,
                     uint16_t flags)
{
    const Instruction &inst = ri.inst;
    uint32_t ca = ri.effAddr;
    uint32_t bytes = (flags & isa::flag::WidthByte) ? 1u : 4u;
    uint64_t id1 = e - 2;
    uint64_t id2 = e - 1;
    int base = inst.rs1;
    int index = (flags & isa::flag::BaseOffset) ? -1 : inst.rs2;

    LoadPath path = routeLoad(inst, id1, base, index);
    SpecCounters &ctr = countersFor(path);
    ++ctr.executed;

    // Every executed load gets exactly one verdict; the failure
    // counters and the observer stream both derive from it, so the
    // aggregate SpecCounters and per-PC telemetry cannot diverge.
    SpecOutcome outcome = SpecOutcome::NotAttempted;
    uint64_t ready = 0;
    /** Measured safety conditions, set iff an access was dispatched. */
    std::optional<VerifyConditions> cond;

    if (path == LoadPath::Predict) {
        std::optional<uint32_t> predicted = table.probe(ri.pc);
        ELAG_TRACE_EVT(tcPredict, id2,
                       "probe pc=%u -> %s (ca=0x%x)", ri.pc,
                       predicted ? "hit" : "miss", ca);
        if (!predicted) {
            outcome = SpecOutcome::NoPrediction;
        } else if (use(id2).dcachePorts >= cfg.memPorts ||
                   (faults && faults->firePortSteal())) {
            outcome = SpecOutcome::PortDenied;
        } else {
            ++use(id2).dcachePorts;
            ++ctr.speculated;
            if (hasObservers_) {
                for (Observer *o : observers)
                    o->onSpecDispatch(ri, path, *predicted, id2);
            }
            mem::CacheAccessResult acc =
                dcache.access(*predicted, id2, true,
                              faults ? faults->latencyJitter() : 0);
            ELAG_TRACE_EVT(tcCache, id2,
                           "D$ spec access pc=%u addr=0x%x %s", ri.pc,
                           *predicted, acc.hit ? "hit" : "miss");
            bool addr_ok = *predicted == ca;
            // A forced verification failure looks exactly like a
            // wrong prediction to everything downstream.
            if (faults && faults->fireVerifyFail())
                addr_ok = false;
            bool mem_lock = memInterlock(ca, bytes, id2);
            if (hasObservers_) {
                cond.emplace();
                cond->portAllocated = true;
                cond->addrMatch = addr_ok;
                cond->cacheHit = acc.hit;
                cond->regInterlockFree = true;
                cond->memInterlockFree = !mem_lock;
            }
            // Deliberate bug (not graceful): skip the address check.
            if (faults && faults->bypassAddressCheck())
                addr_ok = true;
            if (!addr_ok)
                outcome = SpecOutcome::WrongAddress;
            else if (mem_lock)
                outcome = SpecOutcome::MemInterlock;
            else if (!acc.hit)
                outcome = SpecOutcome::CacheMiss;
            else {
                outcome = SpecOutcome::Forwarded;
                ready = e + 1;
            }
            if (outcome != SpecOutcome::Forwarded)
                ++stats_.extraAccesses;
        }
        // Train / allocate in MEM, per the allocation policy.
        bool update = false;
        switch (cfg.selection) {
          case SelectionPolicy::CompilerSpec:
          case SelectionPolicy::AllPredict:
            update = true;
            break;
          case SelectionPolicy::EvSelect:
            update = table.present(ri.pc) ||
                     (base > 0 && intReady[base] > id1) ||
                     (index > 0 && intReady[index] > id1);
            break;
          default:
            break;
        }
        if (update) {
            table.update(ri.pc, ca);
            ELAG_TRACE_EVT(tcPredict, e + 1, "train pc=%u ca=0x%x",
                           ri.pc, ca);
        }
    } else if (path == LoadPath::EarlyCalc) {
        // Fault: drop the R_addr binding right before the probe.
        if (faults && base > 0 && faults->fireRaddrInvalidate())
            regCache.invalidate(base, id1);
        bool bound = base > 0 && regCache.isBound(base);
        bool interlock =
            (base > 0 && intReady[base] > id1) ||
            (index > 0 && intReady[index] > id1);
        // Fault: spurious interlock, as from a late wakeup signal.
        if (faults && faults->fireForceInterlock())
            interlock = true;
        ELAG_TRACE_EVT(tcRaddr, id1, "probe pc=%u base=r%d -> %s%s",
                       ri.pc, base, bound ? "bound" : "not bound",
                       interlock ? " (interlocked)" : "");
        if (!bound) {
            outcome = SpecOutcome::NotBound;
        } else if (use(id1).dcachePorts >= cfg.memPorts ||
                   (faults && faults->firePortSteal())) {
            outcome = SpecOutcome::PortDenied;
        } else {
            ++use(id1).dcachePorts;
            ++ctr.speculated;
            if (hasObservers_) {
                for (Observer *o : observers)
                    o->onSpecDispatch(ri, path, ca, id1);
            }
            // With an interlock the speculative address is stale; the
            // access still consumes a port and cache bandwidth. The
            // stale address is approximated by the current one for
            // cache-content purposes.
            mem::CacheAccessResult acc =
                dcache.access(ca, id1, true,
                              faults ? faults->latencyJitter() : 0);
            ELAG_TRACE_EVT(tcCache, id1,
                           "D$ spec access pc=%u addr=0x%x %s", ri.pc,
                           ca, acc.hit ? "hit" : "miss");
            bool mem_lock = memInterlock(ca, bytes, id1);
            if (hasObservers_) {
                cond.emplace();
                cond->portAllocated = true;
                cond->addrMatch = true;
                cond->cacheHit = acc.hit;
                cond->regInterlockFree = !interlock;
                cond->memInterlockFree = !mem_lock;
            }
            // Deliberate bug (not graceful): ignore the interlock.
            if (faults && faults->bypassInterlockCheck())
                interlock = false;
            if (interlock)
                outcome = SpecOutcome::RegInterlock;
            else if (mem_lock)
                outcome = SpecOutcome::MemInterlock;
            else if (!acc.hit)
                outcome = SpecOutcome::CacheMiss;
            else {
                outcome = SpecOutcome::Forwarded;
                // register+offset: the R_addr full adder finishes in
                // ID1, so data is back for EXE (latency 0).
                // register+register needs the second register read,
                // delivering only by MEM (latency 1) — the
                // Austin-Sohi limitation the paper describes in
                // Section 2.2.
                ready = (flags & isa::flag::BaseOffset) ? e : e + 1;
            }
            if (outcome != SpecOutcome::Forwarded)
                ++stats_.extraAccesses;
        }
        // The ld_e opcode (or the hardware allocation policy) binds
        // the base register into the register cache.
        if (base > 0) {
            uint32_t base_value =
                (flags & isa::flag::BaseOffset)
                    ? ca - static_cast<uint32_t>(inst.imm)
                    : 0;
            regCache.bind(base, base_value, id1);
            ELAG_TRACE_EVT(tcRaddr, id1, "bind r%d=0x%x pc=%u", base,
                           base_value, ri.pc);
        }
    }

    bumpOutcome(ctr, outcome);
    if (hasObservers_) {
        if (cond) {
            for (Observer *o : observers)
                o->onVerifyConditions(ri, path, outcome, *cond, e);
        }
        for (Observer *o : observers)
            o->onVerify(ri, path, outcome, e);
        if (outcome == SpecOutcome::Forwarded) {
            for (Observer *o : observers)
                o->onForward(ri, path, static_cast<int>(ready - e),
                             ready);
        }
    }
    if (outcome != SpecOutcome::Forwarded) {
        // Normal path: EA in EXE, cache in MEM. A speculative miss
        // has already started the fill and the accesses merge.
        ++use(e + 1).dcachePorts;
        mem::CacheAccessResult acc = dcache.access(ca, e + 1);
        ELAG_TRACE_EVT(tcCache, e + 1, "D$ access pc=%u addr=0x%x %s",
                       ri.pc, ca, acc.hit ? "hit" : "miss");
        if (!acc.hit && acc.readyCycle > e + 1)
            notifyStall(ri, StallKind::DcacheMiss,
                        acc.readyCycle - (e + 1));
        ready = acc.readyCycle + 1;
    }

    stats_.loadLatency.sample(ready - e);
    ELAG_TRACE_EVT(tcPipeline, e, "load pc=%u path=%s %s ready=%llu",
                   ri.pc, name(path), name(outcome),
                   static_cast<unsigned long long>(ready));
    return ready;
}

void
Pipeline::handleBranch(const RetiredInst &ri, uint64_t e,
                       uint16_t flags)
{
    const Instruction &inst = ri.inst;
    uint64_t cur_fetch = nextFetch;
    mem::Btb::Prediction pred = btb.predict(ri.pc);

    if (flags & isa::flag::CondBranch) {
        ++stats_.branches;
        bool predicted_taken = pred.hit && pred.taken;
        bool correct =
            (!ri.taken && !predicted_taken) ||
            (ri.taken && predicted_taken && pred.target == ri.nextPc);
        if (correct) {
            if (ri.taken) {
                // BTB redirect: target fetch starts next cycle.
                nextFetch = cur_fetch + 1;
                fetchedThisCycle = 0;
            }
        } else {
            ++stats_.mispredicts;
            ELAG_TRACE_EVT(tcPipeline, e, "mispredict pc=%u -> %u",
                           ri.pc, ri.nextPc);
            notifyStall(ri, StallKind::BranchMispredict,
                        e + 1 - cur_fetch);
            nextFetch = e + 1;
            fetchedThisCycle = 0;
        }
        btb.update(ri.pc, ri.taken, ri.nextPc);
        return;
    }

    // Unconditional control.
    switch (inst.op) {
      case Opcode::JMP:
      case Opcode::JAL:
        // Direct target: resolvable in ID1 when the BTB missed.
        if (pred.hit && pred.taken && pred.target == ri.nextPc)
            nextFetch = cur_fetch + 1;
        else
            nextFetch = cur_fetch + 2;
        fetchedThisCycle = 0;
        btb.update(ri.pc, true, ri.nextPc);
        break;
      case Opcode::JR:
        // Indirect: resolved in EXE.
        if (pred.hit && pred.taken && pred.target == ri.nextPc) {
            nextFetch = cur_fetch + 1;
        } else {
            ++stats_.mispredicts;
            notifyStall(ri, StallKind::BranchMispredict,
                        e + 1 - cur_fetch);
            nextFetch = e + 1;
        }
        fetchedThisCycle = 0;
        btb.update(ri.pc, true, ri.nextPc);
        break;
      default:
        panic("handleBranch: not a control instruction");
    }
}

void
Pipeline::retire(const RetiredInst &ri)
{
    elag_assert(!finished);
    const Instruction &inst = ri.inst;
    ++stats_.instructions;

    uint64_t e = fetchConstraint(ri);
    e = std::max(e, nextIssue);
    uint64_t ready_to_issue = e;

    // The emulator's predecoded stream supplies the flag word and the
    // pre-resolved integer sources; hand-built records (tests, replay
    // tooling) arrive without flag::Valid and decode here instead.
    uint16_t flags = ri.flags;
    int s1, s2;
    if (flags & isa::flag::Valid) {
        s1 = ri.src1;
        s2 = ri.src2;
    } else {
        flags = isa::decodeFlags(inst);
        inst.intSources(s1, s2);
    }

    // Integer source dependences.
    if (s1 > 0)
        e = std::max(e, intReady[s1]);
    if (s2 > 0)
        e = std::max(e, intReady[s2]);
    // Floating-point source dependences.
    if (flags & isa::flag::ReadsFp) {
        switch (inst.op) {
          case Opcode::FADD: case Opcode::FSUB:
          case Opcode::FMUL: case Opcode::FDIV:
            e = std::max({e, fpReady[inst.rs1], fpReady[inst.rs2]});
            break;
          case Opcode::FSTORE:
            e = std::max(e, fpReady[inst.rs2]);
            break;
          case Opcode::CVTFI:
            e = std::max(e, fpReady[inst.rs1]);
            break;
          default:
            break;
        }
    }

    if (e > ready_to_issue && hasObservers_)
        notifyStall(ri, StallKind::RegInterlock, e - ready_to_issue);

    e = scheduleIssue(e, isa::flagFuClass(flags));

    ELAG_TRACE_EVT(tcPipeline, e, "retire pc=%u %s", ri.pc,
                   isa::disassemble(inst).c_str());

    uint64_t completion = e + 2; // WB

    if (flags & isa::flag::Load) {
        ++stats_.loads;
        uint64_t ready = handleLoad(ri, e, flags);
        if (flags & isa::flag::WritesFp)
            fpReady[inst.rd] = ready;
        else if (inst.rd != 0)
            intReady[inst.rd] = ready;
        completion = std::max(completion, ready);
    } else if (flags & isa::flag::Store) {
        ++stats_.stores;
        ++use(e + 1).dcachePorts;
        dcache.access(ri.effAddr, e + 1, cfg.dcache.writeAllocate);
        inFlightStores.push_back(
            {ri.effAddr, (flags & isa::flag::WidthByte) ? 1u : 4u, e,
             e + 1});
    } else if (flags & isa::flag::Control) {
        handleBranch(ri, e, flags);
        if (inst.op == Opcode::JAL && inst.rd != 0)
            intReady[inst.rd] = e + 1;
    } else if (flags & isa::flag::WritesFp) {
        fpReady[inst.rd] =
            e + static_cast<uint64_t>(latencyOf(inst));
    } else if (flags & isa::flag::WritesInt) {
        intReady[inst.rd] =
            e + static_cast<uint64_t>(latencyOf(inst));
        completion = std::max(completion, intReady[inst.rd]);
    }

    nextIssue = e;
    lastCompletion = std::max(lastCompletion, completion);
    if (e > 64)
        pruneStores(e - 64);
}

const PipelineStats &
Pipeline::finish()
{
    if (!finished) {
        finished = true;
        stats_.cycles = lastCompletion;
        stats_.icacheMisses = icache.misses();
        stats_.dcacheMisses = dcache.misses();
        stats_.strideConfidence = table.confidenceHistogram();
        stats_.bindLifetime = regCache.lifetimeHistogram();
    }
    return stats_;
}

void
Pipeline::serialize(ckpt::Writer &w) const
{
    pipeline::serialize(w, stats_);
    icache.serialize(w);
    dcache.serialize(w);
    btb.serialize(w);
    table.serialize(w);
    regCache.serialize(w);

    w.varint(books.size());
    for (const BookSlot &slot : books) {
        w.u64(slot.cycle);
        w.i32(slot.use.issue);
        w.i32(slot.use.intAlu);
        w.i32(slot.use.mem);
        w.i32(slot.use.fp);
        w.i32(slot.use.branch);
        w.i32(slot.use.dcachePorts);
    }

    w.varint(inFlightStores.size());
    for (const InFlightStore &st : inFlightStores) {
        w.varint(st.addr);
        w.varint(st.bytes);
        w.varint(st.exeCycle);
        w.varint(st.writeCycle);
    }

    for (uint64_t ready : intReady)
        w.varint(ready);
    for (uint64_t ready : fpReady)
        w.varint(ready);

    w.varint(nextIssue);
    w.varint(nextFetch);
    w.i32(fetchedThisCycle);
    w.varint(lastCompletion);
    w.b(finished);
}

void
Pipeline::restore(ckpt::Reader &r)
{
    pipeline::restore(r, stats_);
    icache.restore(r);
    dcache.restore(r);
    btb.restore(r);
    table.restore(r);
    regCache.restore(r);

    uint64_t slots = r.varint();
    if (slots != books.size()) {
        throw ckpt::CkptError(ckpt::ErrorKind::Mismatch,
                              "pipeline booking-ring size mismatch");
    }
    for (BookSlot &slot : books) {
        slot.cycle = r.u64();
        slot.use.issue = r.i32();
        slot.use.intAlu = r.i32();
        slot.use.mem = r.i32();
        slot.use.fp = r.i32();
        slot.use.branch = r.i32();
        slot.use.dcachePorts = r.i32();
    }

    inFlightStores.clear();
    uint64_t stores = r.varint();
    for (uint64_t i = 0; i < stores; ++i) {
        InFlightStore st;
        st.addr = static_cast<uint32_t>(r.varint());
        st.bytes = static_cast<uint32_t>(r.varint());
        st.exeCycle = r.varint();
        st.writeCycle = r.varint();
        inFlightStores.push_back(st);
    }

    for (uint64_t &ready : intReady)
        ready = r.varint();
    for (uint64_t &ready : fpReady)
        ready = r.varint();

    nextIssue = r.varint();
    nextFetch = r.varint();
    fetchedThisCycle = r.i32();
    lastCompletion = r.varint();
    finished = r.b();
}

} // namespace pipeline
} // namespace elag
