#include "pipeline/pipeline.hh"

#include <algorithm>

#include "support/logging.hh"

namespace elag {
namespace pipeline {

using isa::FuClass;
using isa::Instruction;
using isa::Opcode;

Pipeline::Pipeline(const MachineConfig &config)
    : cfg(config),
      icache(config.icache),
      dcache(config.dcache),
      btb(config.btbEntries),
      table(config.addressTableEntries,
            config.tablePredictsWhileLearning),
      regCache(config.registerCacheSize),
      books(BookRingSize)
{
}

Pipeline::CycleUse &
Pipeline::use(uint64_t cycle)
{
    BookSlot &slot = books[cycle & (BookRingSize - 1)];
    if (slot.cycle != cycle) {
        slot.cycle = cycle;
        slot.use = CycleUse{};
    }
    return slot.use;
}

void
Pipeline::pruneStores(uint64_t before)
{
    while (!inFlightStores.empty() &&
           inFlightStores.front().writeCycle + 4 < before) {
        inFlightStores.pop_front();
    }
}

uint64_t
Pipeline::scheduleIssue(uint64_t from, FuClass fu)
{
    for (uint64_t c = from;; ++c) {
        CycleUse &u = use(c);
        if (u.issue >= cfg.issueWidth)
            continue;
        int *count = nullptr;
        int limit = 0;
        switch (fu) {
          case FuClass::IntAlu:
            count = &u.intAlu;
            limit = cfg.intAlus;
            break;
          case FuClass::MemPort:
            count = &u.mem;
            limit = cfg.memPorts;
            break;
          case FuClass::FpAlu:
            count = &u.fp;
            limit = cfg.fpAlus;
            break;
          case FuClass::Branch:
            count = &u.branch;
            limit = cfg.branchUnits;
            break;
          case FuClass::None:
            break;
        }
        if (count && *count >= limit)
            continue;
        ++u.issue;
        if (count)
            ++*count;
        return c;
    }
}

int
Pipeline::latencyOf(const Instruction &inst) const
{
    switch (inst.op) {
      case Opcode::MUL:
        return cfg.mulLatency;
      case Opcode::DIV:
      case Opcode::REM:
        return cfg.divLatency;
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMUL:
      case Opcode::FDIV:
      case Opcode::CVTIF:
      case Opcode::CVTFI:
        return cfg.fpLatency;
      default:
        return cfg.aluLatency;
    }
}

bool
Pipeline::memInterlock(uint32_t addr, uint32_t bytes,
                       uint64_t cycle) const
{
    for (const InFlightStore &s : inFlightStores) {
        if (s.writeCycle < cycle)
            continue; // already visible in the cache
        if (s.exeCycle >= cycle)
            return true; // address not yet resolved: conservative
        bool overlap = addr < s.addr + s.bytes && s.addr < addr + bytes;
        if (overlap)
            return true;
    }
    return false;
}

uint64_t
Pipeline::fetchConstraint(const RetiredInst &ri)
{
    uint64_t f = nextFetch;
    if (fetchedThisCycle >= cfg.issueWidth) {
        ++f;
        fetchedThisCycle = 0;
    }
    mem::CacheAccessResult res = icache.access(ri.pc * 4, f);
    if (!res.hit && res.readyCycle > f) {
        f = res.readyCycle;
        fetchedThisCycle = 0;
    }
    ++fetchedThisCycle;
    nextFetch = f;
    return f + 3;
}

uint64_t
Pipeline::handleLoad(const RetiredInst &ri, uint64_t e)
{
    const Instruction &inst = ri.inst;
    uint32_t ca = ri.effAddr;
    uint32_t bytes = static_cast<uint32_t>(inst.width);
    uint64_t id1 = e - 2;
    uint64_t id2 = e - 1;
    int base = inst.baseReg();
    int index = inst.indexReg();

    // Route the load to a path.
    enum class Path { Normal, Predict, EarlyCalc };
    Path path = Path::Normal;
    switch (cfg.selection) {
      case SelectionPolicy::CompilerSpec:
        if (inst.spec == isa::LoadSpec::Predict &&
            cfg.addressTableEnabled) {
            path = Path::Predict;
        } else if (inst.spec == isa::LoadSpec::EarlyCalc &&
                   cfg.earlyCalcEnabled) {
            path = Path::EarlyCalc;
        }
        break;
      case SelectionPolicy::AllPredict:
        if (cfg.addressTableEnabled)
            path = Path::Predict;
        break;
      case SelectionPolicy::AllEarlyCalc:
        if (cfg.earlyCalcEnabled)
            path = Path::EarlyCalc;
        break;
      case SelectionPolicy::EvSelect: {
        // Eickemeyer-Vassiliadis: loads whose address registers are
        // interlocked go to the prediction table, others calculate
        // early.
        bool interlocked =
            (base > 0 && intReady[base] > id1) ||
            (index > 0 && intReady[index] > id1);
        if (interlocked && cfg.addressTableEnabled)
            path = Path::Predict;
        else if (cfg.earlyCalcEnabled)
            path = Path::EarlyCalc;
        break;
      }
    }

    SpecCounters *ctr = &stats_.normal;
    if (path == Path::Predict)
        ctr = &stats_.predict;
    else if (path == Path::EarlyCalc)
        ctr = &stats_.earlyCalc;
    ++ctr->executed;

    bool forwarded = false;
    uint64_t ready = 0;

    if (path == Path::Predict) {
        std::optional<uint32_t> predicted = table.probe(ri.pc);
        if (!predicted) {
            ++ctr->noPrediction;
        } else if (use(id2).dcachePorts >= cfg.memPorts) {
            ++ctr->portDenied;
        } else {
            ++use(id2).dcachePorts;
            ++ctr->speculated;
            mem::CacheAccessResult acc = dcache.access(*predicted, id2);
            bool addr_ok = *predicted == ca;
            bool mem_lock = memInterlock(ca, bytes, id2);
            if (!addr_ok) {
                ++ctr->wrongAddress;
            } else if (mem_lock) {
                ++ctr->memInterlock;
            } else if (!acc.hit) {
                ++ctr->cacheMiss;
            } else {
                forwarded = true;
                ++ctr->forwarded;
                ready = e + 1;
            }
            if (!forwarded)
                ++stats_.extraAccesses;
        }
        // Train / allocate in MEM, per the allocation policy.
        bool update = false;
        switch (cfg.selection) {
          case SelectionPolicy::CompilerSpec:
          case SelectionPolicy::AllPredict:
            update = true;
            break;
          case SelectionPolicy::EvSelect:
            update = table.present(ri.pc) ||
                     (base > 0 && intReady[base] > id1) ||
                     (index > 0 && intReady[index] > id1);
            break;
          default:
            break;
        }
        if (update)
            table.update(ri.pc, ca);
    } else if (path == Path::EarlyCalc) {
        bool bound = base > 0 && regCache.isBound(base);
        bool interlock =
            (base > 0 && intReady[base] > id1) ||
            (index > 0 && intReady[index] > id1);
        if (!bound) {
            ++ctr->notBound;
        } else if (use(id1).dcachePorts >= cfg.memPorts) {
            ++ctr->portDenied;
        } else {
            ++use(id1).dcachePorts;
            ++ctr->speculated;
            // With an interlock the speculative address is stale; the
            // access still consumes a port and cache bandwidth. The
            // stale address is approximated by the current one for
            // cache-content purposes.
            mem::CacheAccessResult acc = dcache.access(ca, id1);
            bool mem_lock = memInterlock(ca, bytes, id1);
            if (interlock) {
                ++ctr->regInterlock;
            } else if (mem_lock) {
                ++ctr->memInterlock;
            } else if (!acc.hit) {
                ++ctr->cacheMiss;
            } else {
                forwarded = true;
                ++ctr->forwarded;
                // register+offset: the R_addr full adder finishes in
                // ID1, so data is back for EXE (latency 0).
                // register+register needs the second register read,
                // delivering only by MEM (latency 1) — the
                // Austin-Sohi limitation the paper describes in
                // Section 2.2.
                ready = inst.mode == isa::AddrMode::BaseOffset
                            ? e
                            : e + 1;
            }
            if (!forwarded)
                ++stats_.extraAccesses;
        }
        // The ld_e opcode (or the hardware allocation policy) binds
        // the base register into the register cache.
        if (base > 0) {
            uint32_t base_value =
                inst.mode == isa::AddrMode::BaseOffset
                    ? ca - static_cast<uint32_t>(inst.imm)
                    : 0;
            regCache.bind(base, base_value);
        }
    }

    if (!forwarded) {
        // Normal path: EA in EXE, cache in MEM. A speculative miss
        // has already started the fill and the accesses merge.
        ++use(e + 1).dcachePorts;
        mem::CacheAccessResult acc = dcache.access(ca, e + 1);
        ready = acc.readyCycle + 1;
    }
    return ready;
}

void
Pipeline::handleBranch(const RetiredInst &ri, uint64_t e)
{
    const Instruction &inst = ri.inst;
    uint64_t cur_fetch = nextFetch;
    mem::Btb::Prediction pred = btb.predict(ri.pc);

    if (inst.isCondBranch()) {
        ++stats_.branches;
        bool predicted_taken = pred.hit && pred.taken;
        bool correct =
            (!ri.taken && !predicted_taken) ||
            (ri.taken && predicted_taken && pred.target == ri.nextPc);
        if (correct) {
            if (ri.taken) {
                // BTB redirect: target fetch starts next cycle.
                nextFetch = cur_fetch + 1;
                fetchedThisCycle = 0;
            }
        } else {
            ++stats_.mispredicts;
            nextFetch = e + 1;
            fetchedThisCycle = 0;
        }
        btb.update(ri.pc, ri.taken, ri.nextPc);
        return;
    }

    // Unconditional control.
    switch (inst.op) {
      case Opcode::JMP:
      case Opcode::JAL:
        // Direct target: resolvable in ID1 when the BTB missed.
        if (pred.hit && pred.taken && pred.target == ri.nextPc)
            nextFetch = cur_fetch + 1;
        else
            nextFetch = cur_fetch + 2;
        fetchedThisCycle = 0;
        btb.update(ri.pc, true, ri.nextPc);
        break;
      case Opcode::JR:
        // Indirect: resolved in EXE.
        if (pred.hit && pred.taken && pred.target == ri.nextPc) {
            nextFetch = cur_fetch + 1;
        } else {
            ++stats_.mispredicts;
            nextFetch = e + 1;
        }
        fetchedThisCycle = 0;
        btb.update(ri.pc, true, ri.nextPc);
        break;
      default:
        panic("handleBranch: not a control instruction");
    }
}

void
Pipeline::retire(const RetiredInst &ri)
{
    elag_assert(!finished);
    const Instruction &inst = ri.inst;
    ++stats_.instructions;

    uint64_t e = fetchConstraint(ri);
    e = std::max(e, nextIssue);

    // Integer source dependences.
    int s1, s2;
    inst.intSources(s1, s2);
    if (s1 > 0)
        e = std::max(e, intReady[s1]);
    if (s2 > 0)
        e = std::max(e, intReady[s2]);
    // Floating-point source dependences.
    switch (inst.op) {
      case Opcode::FADD: case Opcode::FSUB:
      case Opcode::FMUL: case Opcode::FDIV:
        e = std::max({e, fpReady[inst.rs1], fpReady[inst.rs2]});
        break;
      case Opcode::FSTORE:
        e = std::max(e, fpReady[inst.rs2]);
        break;
      case Opcode::CVTFI:
        e = std::max(e, fpReady[inst.rs1]);
        break;
      default:
        break;
    }

    e = scheduleIssue(e, inst.fuClass());

    uint64_t completion = e + 2; // WB

    if (inst.isLoad()) {
        ++stats_.loads;
        uint64_t ready = handleLoad(ri, e);
        if (inst.op == Opcode::FLOAD)
            fpReady[inst.rd] = ready;
        else if (inst.rd != 0)
            intReady[inst.rd] = ready;
        completion = std::max(completion, ready);
    } else if (inst.isStore()) {
        ++stats_.stores;
        ++use(e + 1).dcachePorts;
        dcache.access(ri.effAddr, e + 1, cfg.dcache.writeAllocate);
        inFlightStores.push_back(
            {ri.effAddr, static_cast<uint32_t>(inst.width), e, e + 1});
    } else if (inst.isControl()) {
        handleBranch(ri, e);
        if (inst.op == Opcode::JAL && inst.rd != 0)
            intReady[inst.rd] = e + 1;
    } else if (inst.writesFpReg()) {
        fpReady[inst.rd] =
            e + static_cast<uint64_t>(latencyOf(inst));
    } else if (inst.writesIntReg()) {
        intReady[inst.rd] =
            e + static_cast<uint64_t>(latencyOf(inst));
        completion = std::max(completion, intReady[inst.rd]);
    }

    nextIssue = e;
    lastCompletion = std::max(lastCompletion, completion);
    if (e > 64)
        pruneStores(e - 64);
}

const PipelineStats &
Pipeline::finish()
{
    if (!finished) {
        finished = true;
        stats_.cycles = lastCompletion;
        stats_.icacheMisses = icache.misses();
        stats_.dcacheMisses = dcache.misses();
    }
    return stats_;
}

} // namespace pipeline
} // namespace elag
