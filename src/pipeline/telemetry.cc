#include "pipeline/telemetry.hh"

#include "ckpt/serial.hh"
#include "pipeline/pipeline.hh"

namespace elag {
namespace pipeline {

SpecOutcome
LoadRecord::dominantFailure() const
{
    SpecOutcome best = SpecOutcome::Forwarded;
    uint64_t best_count = 0;
    for (size_t i = 0; i < NumSpecOutcomes; ++i) {
        SpecOutcome outcome = static_cast<SpecOutcome>(i);
        if (outcome == SpecOutcome::Forwarded)
            continue;
        if (outcomes[i] > best_count) {
            best_count = outcomes[i];
            best = outcome;
        }
    }
    return best;
}

void
LoadTelemetry::onSpecDispatch(const RetiredInst &ri, LoadPath path,
                              uint32_t specAddr, uint64_t cycle)
{
    (void)specAddr;
    (void)cycle;
    LoadRecord &rec = loads_[ri.pc];
    rec.path = path;
    ++rec.speculated;
}

void
LoadTelemetry::onVerify(const RetiredInst &ri, LoadPath path,
                        SpecOutcome outcome, uint64_t exeCycle)
{
    (void)exeCycle;
    LoadRecord &rec = loads_[ri.pc];
    rec.path = path;
    ++rec.executed;
    ++rec.outcomes[static_cast<size_t>(outcome)];
}

uint64_t
LoadTelemetry::totalExecuted() const
{
    uint64_t total = 0;
    for (const auto &kv : loads_)
        total += kv.second.executed;
    return total;
}

void
LoadTelemetry::serialize(ckpt::Writer &w) const
{
    w.varint(loads_.size());
    for (const auto &kv : loads_) {
        const LoadRecord &rec = kv.second;
        w.varint(kv.first);
        w.u8(static_cast<uint8_t>(rec.path));
        w.varint(rec.executed);
        w.varint(rec.speculated);
        for (uint64_t count : rec.outcomes)
            w.varint(count);
    }
}

void
LoadTelemetry::restore(ckpt::Reader &r)
{
    loads_.clear();
    uint64_t entries = r.varint();
    for (uint64_t i = 0; i < entries; ++i) {
        uint32_t pc = static_cast<uint32_t>(r.varint());
        LoadRecord &rec = loads_[pc];
        rec.path = static_cast<LoadPath>(r.u8());
        rec.executed = r.varint();
        rec.speculated = r.varint();
        for (uint64_t &count : rec.outcomes)
            count = r.varint();
    }
}

} // namespace pipeline
} // namespace elag
