#include "pipeline/telemetry.hh"

#include "pipeline/pipeline.hh"

namespace elag {
namespace pipeline {

SpecOutcome
LoadRecord::dominantFailure() const
{
    SpecOutcome best = SpecOutcome::Forwarded;
    uint64_t best_count = 0;
    for (size_t i = 0; i < NumSpecOutcomes; ++i) {
        SpecOutcome outcome = static_cast<SpecOutcome>(i);
        if (outcome == SpecOutcome::Forwarded)
            continue;
        if (outcomes[i] > best_count) {
            best_count = outcomes[i];
            best = outcome;
        }
    }
    return best;
}

void
LoadTelemetry::onSpecDispatch(const RetiredInst &ri, LoadPath path,
                              uint32_t specAddr, uint64_t cycle)
{
    (void)specAddr;
    (void)cycle;
    LoadRecord &rec = loads_[ri.pc];
    rec.path = path;
    ++rec.speculated;
}

void
LoadTelemetry::onVerify(const RetiredInst &ri, LoadPath path,
                        SpecOutcome outcome, uint64_t exeCycle)
{
    (void)exeCycle;
    LoadRecord &rec = loads_[ri.pc];
    rec.path = path;
    ++rec.executed;
    ++rec.outcomes[static_cast<size_t>(outcome)];
}

uint64_t
LoadTelemetry::totalExecuted() const
{
    uint64_t total = 0;
    for (const auto &kv : loads_)
        total += kv.second.executed;
    return total;
}

} // namespace pipeline
} // namespace elag
