/**
 * @file
 * Timing-model statistics.
 */

#ifndef ELAG_PIPELINE_STATS_HH
#define ELAG_PIPELINE_STATS_HH

#include <cstdint>

#include "support/stats.hh"

namespace elag {

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

namespace pipeline {

/** Per-load-specifier dynamic counters. */
struct SpecCounters
{
    uint64_t executed = 0;
    /** Speculative cache accesses dispatched on this path. */
    uint64_t speculated = 0;
    /** Speculations whose data was forwarded (latency reduced). */
    uint64_t forwarded = 0;
    // Reasons speculation was not attempted / failed.
    uint64_t noPrediction = 0;   ///< table miss / not confident
    uint64_t notBound = 0;       ///< R_addr held a different register
    uint64_t portDenied = 0;     ///< no free data-cache port
    uint64_t regInterlock = 0;   ///< base register not ready at ID1
    uint64_t memInterlock = 0;   ///< conflicting in-flight store
    uint64_t wrongAddress = 0;   ///< predicted != computed
    uint64_t cacheMiss = 0;      ///< speculative access missed
};

/** Aggregate run statistics. */
struct PipelineStats
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t icacheMisses = 0;
    uint64_t dcacheMisses = 0;
    /** Extra cache accesses caused by speculation (bandwidth cost). */
    uint64_t extraAccesses = 0;

    /** Counters for loads routed to each path at run time. */
    SpecCounters normal;
    SpecCounters predict;
    SpecCounters earlyCalc;

    /** Load-use latency (dest-ready minus EXE cycle) per load. */
    Histogram loadLatency{16, 1};
    /**
     * Address-table confident-streak distribution (copied from
     * AddressTable::confidenceHistogram at finish()).
     */
    Histogram strideConfidence{16, 4};
    /**
     * R_addr binding lifetime in cycles (copied from
     * RegisterCache::lifetimeHistogram at finish()).
     */
    Histogram bindLifetime{16, 16};

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }
};

/**
 * Serialize one specifier-path counter block as a JSON object with
 * stable snake_case keys (executed, speculated, forwarded, and the
 * failure causes). JsonWriter is forward-declared by support/stats.
 */
void writeJson(JsonWriter &w, const SpecCounters &c);

/**
 * Serialize a full stats record: scalar counters, the three
 * SpecCounters blocks (normal / predict / early_calc) and the
 * histograms, suitable for elagc --json-stats and bench --json.
 */
void writeJson(JsonWriter &w, const PipelineStats &s);

/**
 * Checkpoint codec for the aggregate counters. Every field — the
 * scalars, all three SpecCounters blocks, and the histograms — is
 * captured, so a restored run's final JSON report is byte-identical
 * to an uninterrupted one.
 */
void serialize(ckpt::Writer &w, const SpecCounters &c);
void restore(ckpt::Reader &r, SpecCounters &c);
void serialize(ckpt::Writer &w, const PipelineStats &s);
void restore(ckpt::Reader &r, PipelineStats &s);

} // namespace pipeline
} // namespace elag

#endif // ELAG_PIPELINE_STATS_HH
