/**
 * @file
 * Machine configuration for the timing model.
 *
 * Defaults reproduce the base architecture of paper Section 5.1: a
 * 6-issue in-order superscalar with 4 integer ALUs, 2 memory ports,
 * 2 FP ALUs and 1 branch unit; 64 int + 64 FP registers; 64K
 * direct-mapped I and D caches with 64-byte blocks, write-through
 * no-write-allocate D cache with a 12-cycle miss penalty; a 1K-entry
 * BTB with 2-bit counters; HP PA-7100-style latencies (1-cycle
 * integer ops, 2-cycle loads).
 */

#ifndef ELAG_PIPELINE_CONFIG_HH
#define ELAG_PIPELINE_CONFIG_HH

#include <cstdint>

#include "mem/cache.hh"

namespace elag {

namespace verify {
class FaultInjector;
} // namespace verify

namespace pipeline {

/** How loads are steered to the early-address-generation paths. */
enum class SelectionPolicy : uint8_t
{
    /** Follow the compiler-assigned opcode (ld_n / ld_p / ld_e). */
    CompilerSpec,
    /** Hardware-only: every load uses the prediction table. */
    AllPredict,
    /** Hardware-only: every load uses the early-calculation path. */
    AllEarlyCalc,
    /**
     * Hardware-only dual path using the Eickemeyer-Vassiliadis
     * run-time heuristic: loads whose base register is interlocked
     * go to the prediction table, others to early calculation.
     */
    EvSelect,
};

/** Full machine configuration. */
struct MachineConfig
{
    // Core width and functional units (Section 5.1).
    int issueWidth = 6;
    int intAlus = 4;
    int memPorts = 2;
    int fpAlus = 2;
    int branchUnits = 1;

    // Latencies (cycles from issue to dependent-ready).
    int aluLatency = 1;
    int mulLatency = 3;
    int divLatency = 8;
    int fpLatency = 2;
    /** Load-use latency of a normal load that hits (EA calc + D$). */
    int loadLatency = 2;

    // Memory system.
    mem::CacheConfig icache{64 * 1024, 64, 1, 12, true};
    mem::CacheConfig dcache{64 * 1024, 64, 1, 12, false};
    uint32_t btbEntries = 1024;

    // Early address generation hardware.
    bool addressTableEnabled = false;
    uint32_t addressTableEntries = 256;
    /** Ablation: predict even without stride confidence (STC=0). */
    bool tablePredictsWhileLearning = false;
    bool earlyCalcEnabled = false;
    uint32_t registerCacheSize = 1;
    SelectionPolicy selection = SelectionPolicy::CompilerSpec;

    /**
     * Optional fault injector perturbing the speculation hardware
     * (not owned; must outlive the pipeline). Null in normal runs.
     * Faults only steer timing decisions — architectural results
     * come from the emulator and cannot be affected.
     */
    verify::FaultInjector *faultInjector = nullptr;

    /** Baseline machine: all early-generation hardware off. */
    static MachineConfig
    baseline()
    {
        return MachineConfig{};
    }

    /** The paper's proposed machine: 256-entry table + one R_addr. */
    static MachineConfig
    proposed()
    {
        MachineConfig cfg;
        cfg.addressTableEnabled = true;
        cfg.addressTableEntries = 256;
        cfg.earlyCalcEnabled = true;
        cfg.registerCacheSize = 1;
        cfg.selection = SelectionPolicy::CompilerSpec;
        return cfg;
    }
};

} // namespace pipeline
} // namespace elag

#endif // ELAG_PIPELINE_CONFIG_HH
