/**
 * @file
 * Emulation-driven timing model of the six-stage in-order
 * superscalar pipeline (paper Figure 2).
 *
 * Stage timing for an instruction entering EXE at cycle t:
 *
 *     IF = t-3   ID1 = t-2   ID2 = t-1   EXE = t   MEM = t+1   WB = t+2
 *
 * Early address generation:
 *  - ld_e probes R_addr and dispatches a speculative access in ID1;
 *    on success the loaded value is ready at the start of EXE
 *    (latency 0).
 *  - ld_p probes the PC-indexed table in ID1 and dispatches in ID2;
 *    verification against the computed address happens at the end of
 *    EXE; on success the value is ready at t+1 (latency 1).
 *  - Failed or skipped speculation falls back to the normal path
 *    (EA in EXE, D$ in MEM, latency 2), with any speculative miss
 *    having warmed the non-blocking cache.
 *
 * The committed instruction stream (with real effective addresses
 * and branch outcomes) is streamed in program order through
 * retire(); the model books issue slots, functional units, data-
 * cache ports, and register ready-times cycle by cycle. Program-
 * order processing gives older instructions priority for data-cache
 * ports, matching hardware arbitration.
 */

#ifndef ELAG_PIPELINE_PIPELINE_HH
#define ELAG_PIPELINE_PIPELINE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "isa/instruction.hh"
#include "mem/cache.hh"
#include "pipeline/config.hh"
#include "pipeline/observer.hh"
#include "pipeline/stats.hh"
#include "predict/address_table.hh"
#include "predict/register_cache.hh"
#include "support/trace.hh"

namespace elag {
namespace pipeline {

/** One committed instruction, as produced by the emulator. */
struct RetiredInst
{
    uint32_t pc = 0;
    isa::Instruction inst;
    /** Effective address for memory operations. */
    uint32_t effAddr = 0;
    /** Conditional branch outcome / always true for jumps. */
    bool taken = false;
    /** Next PC actually executed. */
    uint32_t nextPc = 0;
    /**
     * Precomputed isa::decodeFlags(inst) word and pre-resolved
     * integer source registers, filled by the emulator's predecoded
     * stream. Hand-built records may leave them zeroed (flag::Valid
     * clear); retire() then decodes on the spot.
     */
    uint16_t flags = 0;
    int8_t src1 = -1;
    int8_t src2 = -1;
};

/** The timing model. */
class Pipeline
{
  public:
    explicit Pipeline(const MachineConfig &config);

    /** Process the next committed instruction (program order). */
    void retire(const RetiredInst &ri);

    /** Finalize and return statistics. */
    const PipelineStats &finish();

    /**
     * Attach an event observer (tracing, telemetry, tooling). Not
     * owned; must outlive the pipeline. May be called between
     * retires.
     */
    void attach(Observer *observer);

    const PipelineStats &stats() const { return stats_; }
    const MachineConfig &config() const { return cfg; }

    /**
     * Completion cycle of the work retired so far (what finish()
     * would report as cycles). Watchdogs poll this between retires.
     */
    uint64_t currentCycle() const { return lastCompletion; }

    /** Access to the hardware structures (for tests). */
    const predict::AddressTable &addressTable() const { return table; }
    const predict::RegisterCache &registerCache() const
    {
        return regCache;
    }

    /**
     * Checkpoint the complete timing state: aggregate stats, caches,
     * BTB, predictor tables, the cycle-resource booking ring,
     * in-flight stores, register ready-times, and the issue/fetch
     * frontiers. Configuration, observers, and the fault-injector
     * pointer are NOT captured — restore() requires a Pipeline built
     * from the identical MachineConfig (the checkpoint layer checks
     * config hashes before calling it).
     */
    void serialize(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    /** Per-cycle resource books. */
    struct CycleUse
    {
        int issue = 0;
        int intAlu = 0;
        int mem = 0;
        int fp = 0;
        int branch = 0;
        int dcachePorts = 0;
    };

    /** An in-flight store, for memory-interlock checks. */
    struct InFlightStore
    {
        uint32_t addr = 0;
        uint32_t bytes = 4;
        uint64_t exeCycle = 0;   ///< address resolved at end of this
        uint64_t writeCycle = 0; ///< data visible after this cycle
    };

    CycleUse &use(uint64_t cycle);
    void pruneStores(uint64_t before);
    /** Earliest cycle >= @p from with a free issue slot + FU. */
    uint64_t scheduleIssue(uint64_t from, isa::FuClass fu);
    /** Latency of a non-load instruction. */
    int latencyOf(const isa::Instruction &inst) const;
    /** True if an in-flight older store may conflict at @p cycle. */
    bool memInterlock(uint32_t addr, uint32_t bytes,
                      uint64_t cycle) const;
    /** Handle fetch timing; returns earliest EXE cycle from fetch. */
    uint64_t fetchConstraint(const RetiredInst &ri);
    /** Route a load to a path per the selection policy. */
    LoadPath routeLoad(const isa::Instruction &inst, uint64_t id1,
                       int base, int index) const;
    /** The aggregate counter block for @p path. */
    SpecCounters &countersFor(LoadPath path);
    /** Book one verdict into @p ctr (failure cause or forward). */
    static void bumpOutcome(SpecCounters &ctr, SpecOutcome outcome);
    /** Process load speculation; returns dest-ready cycle. */
    uint64_t handleLoad(const RetiredInst &ri, uint64_t e,
                        uint16_t flags);
    void handleBranch(const RetiredInst &ri, uint64_t e,
                      uint16_t flags);
    void notifyStall(const RetiredInst &ri, StallKind kind,
                     uint64_t cycles);

    MachineConfig cfg;
    PipelineStats stats_;

    mem::Cache icache;
    mem::Cache dcache;
    mem::Btb btb;
    predict::AddressTable table;
    predict::RegisterCache regCache;
    /** Optional fault source (from cfg.faultInjector; not owned). */
    verify::FaultInjector *faults = nullptr;

    /**
     * Per-cycle resource books as a ring keyed by cycle modulo the
     * ring size. The live booking window spans only a few cycles
     * around the issue frontier, so collisions cannot occur; stale
     * slots are lazily reset when revisited.
     */
    struct BookSlot
    {
        uint64_t cycle = ~0ull;
        CycleUse use;
    };
    static constexpr size_t BookRingSize = 1024;
    std::vector<BookSlot> books;
    std::deque<InFlightStore> inFlightStores;

    /** Attached event sinks (not owned). */
    std::vector<Observer *> observers;
    /**
     * Cached observers.empty() inverse. Observer notification sits
     * on the per-retire hot path; a single flag test keeps the
     * common observer-free configuration from touching the vector
     * (and from assembling per-event condition records) at all.
     */
    bool hasObservers_ = false;

    // Trace channels (process-lifetime registry references).
    trace::Channel &tcPipeline;
    trace::Channel &tcPredict;
    trace::Channel &tcRaddr;
    trace::Channel &tcCache;

    uint64_t intReady[isa::NumIntRegs] = {};
    uint64_t fpReady[isa::NumFpRegs] = {};

    uint64_t nextIssue = 4;   ///< first instruction's EXE cycle
    uint64_t nextFetch = 1;   ///< next fetch cycle lower bound
    int fetchedThisCycle = 0;
    uint64_t lastCompletion = 0;
    bool finished = false;
};

} // namespace pipeline
} // namespace elag

#endif // ELAG_PIPELINE_PIPELINE_HH
