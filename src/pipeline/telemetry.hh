/**
 * @file
 * Per-PC load telemetry.
 *
 * LoadTelemetry is an Observer that aggregates every load's
 * speculation verdicts by static load site (PC): executed /
 * speculated / forwarded counts plus the full outcome breakdown, so
 * reports can show each site's forwarding rate and dominant failure
 * reason and cross-reference them against the compiler's static
 * classification (tools/elagc --load-report).
 */

#ifndef ELAG_PIPELINE_TELEMETRY_HH
#define ELAG_PIPELINE_TELEMETRY_HH

#include <cstdint>
#include <map>

#include "pipeline/observer.hh"

namespace elag {

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

namespace pipeline {

/** Dynamic record for one static load site. */
struct LoadRecord
{
    /** Path the site was last routed to. */
    LoadPath path = LoadPath::Normal;
    uint64_t executed = 0;
    uint64_t speculated = 0;
    /** Verdict counts, indexed by SpecOutcome. */
    uint64_t outcomes[NumSpecOutcomes] = {};

    uint64_t
    count(SpecOutcome outcome) const
    {
        return outcomes[static_cast<size_t>(outcome)];
    }

    uint64_t forwarded() const { return count(SpecOutcome::Forwarded); }

    /** Forwards per executed load. */
    double
    forwardRate() const
    {
        return executed == 0 ? 0.0
                             : static_cast<double>(forwarded()) /
                                   static_cast<double>(executed);
    }

    /**
     * The most common non-forwarded outcome (the site's dominant
     * failure reason), or Forwarded when the site never failed.
     */
    SpecOutcome dominantFailure() const;
};

/** Observer building the per-PC load table. */
class LoadTelemetry : public Observer
{
  public:
    void onSpecDispatch(const RetiredInst &ri, LoadPath path,
                        uint32_t specAddr, uint64_t cycle) override;
    void onVerify(const RetiredInst &ri, LoadPath path,
                  SpecOutcome outcome, uint64_t exeCycle) override;

    /** The table, keyed by load PC. */
    const std::map<uint32_t, LoadRecord> &loads() const
    {
        return loads_;
    }

    /** Total executed loads across all sites. */
    uint64_t totalExecuted() const;

    void reset() { loads_.clear(); }

    /**
     * Checkpoint the full per-PC table so a resumed run's
     * --load-report matches an uninterrupted run's exactly.
     */
    void serialize(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    std::map<uint32_t, LoadRecord> loads_;
};

} // namespace pipeline
} // namespace elag

#endif // ELAG_PIPELINE_TELEMETRY_HH
