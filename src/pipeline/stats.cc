#include "pipeline/stats.hh"

#include "support/json.hh"

namespace elag {
namespace pipeline {

void
writeJson(JsonWriter &w, const SpecCounters &c)
{
    w.beginObject();
    w.field("executed", c.executed);
    w.field("speculated", c.speculated);
    w.field("forwarded", c.forwarded);
    w.field("no_prediction", c.noPrediction);
    w.field("not_bound", c.notBound);
    w.field("port_denied", c.portDenied);
    w.field("reg_interlock", c.regInterlock);
    w.field("mem_interlock", c.memInterlock);
    w.field("wrong_address", c.wrongAddress);
    w.field("cache_miss", c.cacheMiss);
    w.endObject();
}

void
writeJson(JsonWriter &w, const PipelineStats &s)
{
    w.beginObject();
    w.field("cycles", s.cycles);
    w.field("instructions", s.instructions);
    w.field("ipc", s.ipc());
    w.field("loads", s.loads);
    w.field("stores", s.stores);
    w.field("branches", s.branches);
    w.field("mispredicts", s.mispredicts);
    w.field("icache_misses", s.icacheMisses);
    w.field("dcache_misses", s.dcacheMisses);
    w.field("extra_accesses", s.extraAccesses);
    w.key("normal");
    writeJson(w, s.normal);
    w.key("predict");
    writeJson(w, s.predict);
    w.key("early_calc");
    writeJson(w, s.earlyCalc);
    w.key("histograms").beginObject();
    w.key("load_latency");
    writeJson(w, s.loadLatency);
    w.key("stride_confidence");
    writeJson(w, s.strideConfidence);
    w.key("bind_lifetime");
    writeJson(w, s.bindLifetime);
    w.endObject();
    w.endObject();
}

} // namespace pipeline
} // namespace elag
