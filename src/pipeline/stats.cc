#include "pipeline/stats.hh"

#include "ckpt/serial.hh"
#include "support/json.hh"

namespace elag {
namespace pipeline {

void
writeJson(JsonWriter &w, const SpecCounters &c)
{
    w.beginObject();
    w.field("executed", c.executed);
    w.field("speculated", c.speculated);
    w.field("forwarded", c.forwarded);
    w.field("no_prediction", c.noPrediction);
    w.field("not_bound", c.notBound);
    w.field("port_denied", c.portDenied);
    w.field("reg_interlock", c.regInterlock);
    w.field("mem_interlock", c.memInterlock);
    w.field("wrong_address", c.wrongAddress);
    w.field("cache_miss", c.cacheMiss);
    w.endObject();
}

void
writeJson(JsonWriter &w, const PipelineStats &s)
{
    w.beginObject();
    w.field("cycles", s.cycles);
    w.field("instructions", s.instructions);
    w.field("ipc", s.ipc());
    w.field("loads", s.loads);
    w.field("stores", s.stores);
    w.field("branches", s.branches);
    w.field("mispredicts", s.mispredicts);
    w.field("icache_misses", s.icacheMisses);
    w.field("dcache_misses", s.dcacheMisses);
    w.field("extra_accesses", s.extraAccesses);
    w.key("normal");
    writeJson(w, s.normal);
    w.key("predict");
    writeJson(w, s.predict);
    w.key("early_calc");
    writeJson(w, s.earlyCalc);
    w.key("histograms").beginObject();
    w.key("load_latency");
    writeJson(w, s.loadLatency);
    w.key("stride_confidence");
    writeJson(w, s.strideConfidence);
    w.key("bind_lifetime");
    writeJson(w, s.bindLifetime);
    w.endObject();
    w.endObject();
}

void
serialize(ckpt::Writer &w, const SpecCounters &c)
{
    w.varint(c.executed);
    w.varint(c.speculated);
    w.varint(c.forwarded);
    w.varint(c.noPrediction);
    w.varint(c.notBound);
    w.varint(c.portDenied);
    w.varint(c.regInterlock);
    w.varint(c.memInterlock);
    w.varint(c.wrongAddress);
    w.varint(c.cacheMiss);
}

void
restore(ckpt::Reader &r, SpecCounters &c)
{
    c.executed = r.varint();
    c.speculated = r.varint();
    c.forwarded = r.varint();
    c.noPrediction = r.varint();
    c.notBound = r.varint();
    c.portDenied = r.varint();
    c.regInterlock = r.varint();
    c.memInterlock = r.varint();
    c.wrongAddress = r.varint();
    c.cacheMiss = r.varint();
}

void
serialize(ckpt::Writer &w, const PipelineStats &s)
{
    w.varint(s.cycles);
    w.varint(s.instructions);
    w.varint(s.loads);
    w.varint(s.stores);
    w.varint(s.branches);
    w.varint(s.mispredicts);
    w.varint(s.icacheMisses);
    w.varint(s.dcacheMisses);
    w.varint(s.extraAccesses);
    serialize(w, s.normal);
    serialize(w, s.predict);
    serialize(w, s.earlyCalc);
    ckpt::serialize(w, s.loadLatency);
    ckpt::serialize(w, s.strideConfidence);
    ckpt::serialize(w, s.bindLifetime);
}

void
restore(ckpt::Reader &r, PipelineStats &s)
{
    s.cycles = r.varint();
    s.instructions = r.varint();
    s.loads = r.varint();
    s.stores = r.varint();
    s.branches = r.varint();
    s.mispredicts = r.varint();
    s.icacheMisses = r.varint();
    s.dcacheMisses = r.varint();
    s.extraAccesses = r.varint();
    restore(r, s.normal);
    restore(r, s.predict);
    restore(r, s.earlyCalc);
    ckpt::restore(r, s.loadLatency);
    ckpt::restore(r, s.strideConfidence);
    ckpt::restore(r, s.bindLifetime);
}

} // namespace pipeline
} // namespace elag
