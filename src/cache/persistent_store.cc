#include "cache/persistent_store.hh"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "obs/metrics.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace elag {
namespace cache {

namespace {

/**
 * Registry-backed mirrors of PersistentStore::Stats, shared by every
 * store instance in the process (shard workers hold exactly one).
 */
struct PersistCounters
{
    obs::Counter &appends;
    obs::Counter &recovered;
    obs::Counter &tornTruncated;
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &compactions;
    obs::Counter &writeFailures;

    static PersistCounters &
    instance()
    {
        static PersistCounters counters = [] {
            obs::Registry &r = obs::Registry::process();
            return PersistCounters{
                r.counter("elag_cache_persist_appends_total",
                          "Records appended to persistent cache "
                          "segments."),
                r.counter("elag_cache_persist_recovered_total",
                          "Records replayed from segments into the "
                          "index at open."),
                r.counter("elag_cache_persist_torn_truncated_total",
                          "Torn tail records truncated off segments "
                          "during recovery."),
                r.counter("elag_cache_persist_hits_total",
                          "Persistent-cache lookups served from "
                          "disk."),
                r.counter("elag_cache_persist_misses_total",
                          "Persistent-cache lookups that had to "
                          "compute."),
                r.counter("elag_cache_persist_compactions_total",
                          "Segment compaction passes completed."),
                r.counter("elag_cache_persist_write_failures_total",
                          "Segment appends dropped on write failure "
                          "(ENOSPC, short write); degraded to a "
                          "future cache miss."),
            };
        }();
        return counters;
    }
};

/** write(2) everything, retrying EINTR; false on error/EPIPE. */
bool
writeAll(int fd, const void *buf, size_t n)
{
    size_t done = 0;
    const char *p = static_cast<const char *>(buf);
    while (done < n) {
        ssize_t w = ::write(fd, p + done, n - done);
        if (w > 0) {
            done += static_cast<size_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

/** mkdir -p. Throws FatalError when a component cannot be created. */
void
ensureDir(const std::string &dir)
{
    std::string path;
    for (size_t i = 0; i <= dir.size(); ++i) {
        if (i < dir.size() && dir[i] != '/') {
            path += dir[i];
            continue;
        }
        if (i < dir.size())
            path += '/';
        if (path.empty() || path == "/")
            continue;
        if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
            fatal("cache: cannot create directory '%s': %s",
                  path.c_str(), std::strerror(errno));
    }
    struct stat st;
    if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        fatal("cache: '%s' is not a directory", dir.c_str());
}

bool
validOwnerTag(const std::string &owner)
{
    if (owner.empty())
        return false;
    for (char c : owner) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::string
segmentFileName(const std::string &owner, uint64_t gen)
{
    return formatString("seg-%s.%llu.jsonl", owner.c_str(),
                        static_cast<unsigned long long>(gen));
}

/** Parse "seg-<owner>.<gen>.jsonl"; false on anything else. */
bool
parseSegmentFileName(const std::string &name, std::string &owner,
                     uint64_t &gen)
{
    const std::string prefix = "seg-";
    const std::string suffix = ".jsonl";
    if (!startsWith(name, prefix) || !endsWith(name, suffix) ||
        name.size() <= prefix.size() + suffix.size()) {
        return false;
    }
    std::string middle = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    size_t dot = middle.rfind('.');
    if (dot == std::string::npos || dot == 0 ||
        dot + 1 >= middle.size()) {
        return false;
    }
    owner = middle.substr(0, dot);
    return parseUint64(middle.substr(dot + 1), gen) &&
           validOwnerTag(owner);
}

bool
parseHexKey(const std::string &hex, uint64_t &key)
{
    if (hex.size() != 16)
        return false;
    uint64_t k = 0;
    for (char c : hex) {
        uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = 10 + (c - 'a');
        else
            return false;
        k = (k << 4) | digit;
    }
    key = k;
    return true;
}

/**
 * One record line, newline excluded. The scalar members precede the
 * value member, protocol-style, so stats-document text inside the
 * stored value can never shadow them.
 */
std::string
buildRecordLine(uint64_t key, const std::string &value)
{
    JsonWriter w(0);
    w.beginObject();
    w.field("k", formatString("%016llx",
                              static_cast<unsigned long long>(key)));
    w.field("c", static_cast<uint64_t>(
                     crc32(value.data(), value.size())));
    w.field("v", value);
    w.endObject();
    return w.str();
}

/** Validate + decode one record line (no trailing newline). */
bool
parseRecordLine(const std::string &line, uint64_t &key,
                std::string &value)
{
    size_t vpos = line.find("\"v\":");
    if (vpos == std::string::npos)
        return false;
    std::string prefix = line.substr(0, vpos);
    std::string khex;
    uint64_t crc = 0;
    if (!jsonExtractString(prefix, "k", khex) ||
        !parseHexKey(khex, key) ||
        !jsonExtractUint(prefix, "c", crc) || crc > UINT32_MAX) {
        return false;
    }
    if (!jsonExtractString(line.substr(vpos), "v", value))
        return false;
    return crc32(value.data(), value.size()) == crc;
}

} // anonymous namespace

uint32_t
crc32(const void *data, size_t n)
{
    // IEEE 802.3 polynomial, reflected; table built on first use.
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    uint32_t c = 0xffffffffu;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

PersistentStore::PersistentStore(const PersistentStoreConfig &config)
    : cfg(config)
{
    if (cfg.dir.empty())
        fatal("cache: persistent store directory is empty");
    if (!validOwnerTag(cfg.owner))
        fatal("cache: owner tag '%s' must match [A-Za-z0-9_-]+",
              cfg.owner.c_str());
    ensureDir(cfg.dir);

    // Collect and replay every segment, all owners, in (gen, owner)
    // order so replay is deterministic. Records are content-addressed
    // and deterministic per key, so replay order only matters for
    // tie-breaking identical entries.
    struct Found
    {
        std::string path;
        std::string owner;
        uint64_t gen;
    };
    std::vector<Found> found;
    DIR *d = ::opendir(cfg.dir.c_str());
    if (!d)
        fatal("cache: cannot open directory '%s': %s",
              cfg.dir.c_str(), std::strerror(errno));
    while (struct dirent *entry = ::readdir(d)) {
        std::string owner;
        uint64_t gen;
        if (parseSegmentFileName(entry->d_name, owner, gen)) {
            found.push_back(
                {cfg.dir + "/" + entry->d_name, owner, gen});
            if (gen >= nextGen_)
                nextGen_ = gen + 1;
        }
    }
    ::closedir(d);
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  return a.gen != b.gen ? a.gen < b.gen
                                        : a.owner < b.owner;
              });

    {
        std::lock_guard<std::mutex> lock(mu);
        for (const Found &f : found)
            loadSegment(f.path, f.owner == cfg.owner);
    }

    openActiveSegment();

    size_t owned = 0;
    for (const Segment &seg : segments_)
        if (seg.owned)
            ++owned;
    if (owned >= cfg.compactSegmentThreshold)
        compact();
}

PersistentStore::~PersistentStore()
{
    std::lock_guard<std::mutex> lock(mu);
    if (activeFd_ >= 0) {
        ::fsync(activeFd_);
        ::close(activeFd_);
        activeFd_ = -1;
    }
}

void
PersistentStore::loadSegment(const std::string &path, bool owned)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        warn("cache: cannot open segment '%s': %s", path.c_str(),
             std::strerror(errno));
        return;
    }
    std::string data;
    char buf[1 << 16];
    for (;;) {
        ssize_t r = ::read(fd, buf, sizeof(buf));
        if (r > 0) {
            data.append(buf, static_cast<size_t>(r));
            continue;
        }
        if (r < 0 && errno == EINTR)
            continue;
        break;
    }
    ::close(fd);

    segments_.push_back(Segment{path, owned});
    uint32_t seg = static_cast<uint32_t>(segments_.size() - 1);

    // Split into complete lines; bytes after the last newline are a
    // partial (torn) record.
    struct Line
    {
        size_t begin;
        size_t end; // one past the newline
    };
    std::vector<Line> lines;
    size_t pos = 0;
    while (pos < data.size()) {
        size_t nl = data.find('\n', pos);
        if (nl == std::string::npos)
            break;
        lines.push_back({pos, nl + 1});
        pos = nl + 1;
    }
    bool partialTail = pos < data.size();

    size_t truncateAt = std::string::npos;
    uint64_t torn = partialTail ? 1 : 0;
    if (partialTail)
        truncateAt = pos;

    for (size_t i = 0; i < lines.size(); ++i) {
        const Line &line = lines[i];
        std::string text = data.substr(line.begin,
                                       line.end - line.begin - 1);
        uint64_t key;
        std::string value;
        if (parseRecordLine(text, key, value)) {
            index_[key] = Location{
                seg, line.begin,
                static_cast<uint32_t>(line.end - line.begin)};
            ++stats_.recovered;
            PersistCounters::instance().recovered.inc();
            continue;
        }
        if (i + 1 == lines.size()) {
            // A damaged final record is a torn tail: the crash (or
            // the corruption) hit the end of the segment, so cutting
            // it off loses exactly that record.
            truncateAt = line.begin;
            ++torn;
        } else {
            // Mid-file damage: skip the record, keep what follows.
            ++stats_.corruptSkipped;
            warn("cache: skipping corrupt record in '%s'",
                 path.c_str());
        }
    }

    if (truncateAt != std::string::npos) {
        if (::truncate(path.c_str(),
                       static_cast<off_t>(truncateAt)) != 0) {
            warn("cache: cannot truncate torn tail of '%s': %s",
                 path.c_str(), std::strerror(errno));
        }
        stats_.tornTruncated += torn;
        PersistCounters::instance().tornTruncated.inc(torn);
        warn("cache: truncated %llu torn record%s off '%s'",
             static_cast<unsigned long long>(torn),
             torn == 1 ? "" : "s", path.c_str());
    }
}

void
PersistentStore::openActiveSegment()
{
    std::lock_guard<std::mutex> lock(mu);
    std::string path =
        cfg.dir + "/" + segmentFileName(cfg.owner, nextGen_);
    ++nextGen_;
    int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND,
                    0666);
    if (fd < 0)
        fatal("cache: cannot create segment '%s': %s", path.c_str(),
              std::strerror(errno));
    segments_.push_back(Segment{path, true});
    activeFd_ = fd;
    activeSegment_ = static_cast<uint32_t>(segments_.size() - 1);
    activeSize_ = 0;
}

void
PersistentStore::rotateLocked()
{
    ::fsync(activeFd_);
    ::close(activeFd_);
    std::string path =
        cfg.dir + "/" + segmentFileName(cfg.owner, nextGen_);
    ++nextGen_;
    int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND,
                    0666);
    if (fd < 0)
        fatal("cache: cannot create segment '%s': %s", path.c_str(),
              std::strerror(errno));
    segments_.push_back(Segment{path, true});
    activeFd_ = fd;
    activeSegment_ = static_cast<uint32_t>(segments_.size() - 1);
    activeSize_ = 0;
}

bool
PersistentStore::readRecord(const Location &loc, uint64_t &key,
                            std::string &value) const
{
    const Segment &seg = segments_[loc.segment];
    if (seg.path.empty())
        return false;
    int fd = ::open(seg.path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    std::string line(loc.length, '\0');
    size_t done = 0;
    while (done < loc.length) {
        ssize_t r = ::pread(fd, line.data() + done,
                            loc.length - done, loc.offset + done);
        if (r > 0) {
            done += static_cast<size_t>(r);
            continue;
        }
        if (r < 0 && errno == EINTR)
            continue;
        break;
    }
    ::close(fd);
    if (done != loc.length || line.back() != '\n')
        return false;
    line.pop_back();
    uint64_t got_key;
    if (!parseRecordLine(line, got_key, value) || got_key != key)
        return false;
    return true;
}

bool
PersistentStore::lookup(uint64_t key, std::string &value)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        PersistCounters::instance().misses.inc();
        return false;
    }
    uint64_t want = key;
    if (!readRecord(it->second, want, value)) {
        // The record rotted (or its segment vanished) after
        // indexing: better a recompute than a wrong answer.
        index_.erase(it);
        ++stats_.readFailures;
        ++stats_.misses;
        PersistCounters::instance().misses.inc();
        return false;
    }
    ++stats_.hits;
    PersistCounters::instance().hits.inc();
    return true;
}

void
PersistentStore::append(uint64_t key, const std::string &value)
{
    std::lock_guard<std::mutex> lock(mu);
    if (index_.count(key)) {
        ++stats_.dedupSkipped;
        return;
    }
    if (activeFd_ < 0) {
        // Appending was disabled by an earlier unrecoverable write
        // failure; the store keeps serving lookups.
        ++stats_.writeFailures;
        PersistCounters::instance().writeFailures.inc();
        return;
    }
    std::string line = buildRecordLine(key, value);
    line += '\n';
    if (activeSize_ > 0 &&
        activeSize_ + line.size() > cfg.maxSegmentBytes) {
        rotateLocked();
    }
    uint64_t offset = activeSize_;
    if (!writeAll(activeFd_, line.data(), line.size())) {
        // ENOSPC or a short write: the segment tail may now hold a
        // torn record. Truncate back to the last good byte so the
        // on-disk offsets stay truthful, drop this record (a future
        // cache miss), and never fail the request that computed it.
        int saved = errno;
        ++stats_.writeFailures;
        PersistCounters::instance().writeFailures.inc();
        if (::ftruncate(activeFd_, static_cast<off_t>(activeSize_)) !=
                0 ||
            ::lseek(activeFd_, static_cast<off_t>(activeSize_),
                    SEEK_SET) < 0) {
            // Cannot restore the tail: stop appending entirely
            // rather than risk indexing records at wrong offsets.
            ::close(activeFd_);
            activeFd_ = -1;
            warn("cache: append failed (%s) and the segment tail "
                 "could not be restored; appends disabled, lookups "
                 "unaffected",
                 std::strerror(saved));
        } else {
            warn("cache: append to segment failed (%s); record "
                 "dropped, cache degrades to a miss",
                 std::strerror(saved));
        }
        return;
    }
    activeSize_ += line.size();
    index_[key] = Location{activeSegment_, offset,
                           static_cast<uint32_t>(line.size())};
    ++stats_.appends;
    PersistCounters::instance().appends.inc();
}

void
PersistentStore::breakActiveSegmentForTesting()
{
    std::lock_guard<std::mutex> lock(mu);
    if (activeFd_ >= 0)
        ::close(activeFd_);
    // /dev/full makes write(2) return a genuine ENOSPC; ftruncate on
    // a character device then fails too, so the store walks the full
    // degradation path: record dropped, tail unrestorable, appends
    // disabled, lookups untouched.
    activeFd_ = ::open("/dev/full", O_WRONLY);
}

void
PersistentStore::compact()
{
    std::lock_guard<std::mutex> lock(mu);

    // Collect the live records currently resident in own segments.
    std::vector<std::pair<uint64_t, std::string>> live;
    for (const auto &kv : index_) {
        if (!segments_[kv.second.segment].owned)
            continue;
        uint64_t key = kv.first;
        std::string value;
        if (readRecord(kv.second, key, value))
            live.emplace_back(kv.first, std::move(value));
    }
    // Deterministic segment layout regardless of hash-map order.
    std::sort(live.begin(), live.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });

    std::string finalPath =
        cfg.dir + "/" + segmentFileName(cfg.owner, nextGen_);
    std::string tmpPath = finalPath + ".tmp";
    ++nextGen_;
    int fd = ::open(tmpPath.c_str(),
                    O_CREAT | O_WRONLY | O_TRUNC, 0666);
    if (fd < 0) {
        warn("cache: compaction cannot create '%s': %s",
             tmpPath.c_str(), std::strerror(errno));
        return;
    }
    struct Written
    {
        uint64_t key;
        uint64_t offset;
        uint32_t length;
    };
    std::vector<Written> written;
    written.reserve(live.size());
    uint64_t offset = 0;
    for (const auto &kv : live) {
        std::string line = buildRecordLine(kv.first, kv.second);
        line += '\n';
        if (!writeAll(fd, line.data(), line.size())) {
            warn("cache: compaction write failed: %s",
                 std::strerror(errno));
            ::close(fd);
            ::unlink(tmpPath.c_str());
            return;
        }
        written.push_back({kv.first, offset,
                           static_cast<uint32_t>(line.size())});
        offset += line.size();
    }
    // The rename is the commit point: fsync first so the replacement
    // is fully on disk before it becomes visible under its real name.
    ::fsync(fd);
    ::close(fd);
    if (::rename(tmpPath.c_str(), finalPath.c_str()) != 0) {
        warn("cache: compaction rename failed: %s",
             std::strerror(errno));
        ::unlink(tmpPath.c_str());
        return;
    }

    // Retire every old own segment: close the active fd, unlink the
    // files, and dead-mark their slots (index entries pointing at
    // them are all being repointed below).
    if (activeFd_ >= 0) {
        ::close(activeFd_);
        activeFd_ = -1;
    }
    for (Segment &seg : segments_) {
        if (!seg.owned || seg.path.empty())
            continue;
        ::unlink(seg.path.c_str());
        seg.path.clear();
        seg.owned = false;
    }

    segments_.push_back(Segment{finalPath, true});
    uint32_t seg = static_cast<uint32_t>(segments_.size() - 1);
    for (const Written &rec : written)
        index_[rec.key] = Location{seg, rec.offset, rec.length};

    // The compacted segment doubles as the new active segment.
    activeFd_ = ::open(finalPath.c_str(), O_WRONLY | O_APPEND);
    if (activeFd_ < 0)
        fatal("cache: cannot reopen compacted segment '%s': %s",
              finalPath.c_str(), std::strerror(errno));
    activeSegment_ = seg;
    activeSize_ = offset;

    ++stats_.compactions;
    PersistCounters::instance().compactions.inc();
}

PersistentStore::Stats
PersistentStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stats_;
}

size_t
PersistentStore::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return index_.size();
}

} // namespace cache
} // namespace elag
