/**
 * @file
 * Disk-backed, content-addressed result cache that survives crashes.
 *
 * The serving tier memoizes pure computations (a simulate request is
 * a deterministic function of the program text and machine knobs),
 * but the in-memory sim::RunCache dies with its process — one wild
 * simulation used to cost the whole warm set. PersistentStore is the
 * durable tier layered under it: results are appended to on-disk
 * JSONL segments as they are computed, and a restarted (or freshly
 * respawned) process recovers the index by replaying the segments,
 * so previously computed results are served without re-simulation.
 *
 * Durability model — crash-safe, not power-safe:
 *
 *  - Segments are append-only; a record is one JSONL line carrying
 *    the 64-bit content key, a CRC32 of the value, and the value
 *    itself. Appends never rewrite existing bytes, so a SIGKILL can
 *    only ever damage the tail of one segment.
 *  - Recovery validates every line (shape + CRC). A torn tail — a
 *    partial last line, or a final line whose CRC fails — is
 *    truncated off, dropping exactly the torn record; everything
 *    before it stays served. Mid-file corruption (bit rot) skips the
 *    damaged record without truncating what follows.
 *  - fsync happens on rotation and compaction, not per append: the
 *    threat model is process death (page cache survives), not power
 *    loss.
 *
 * Sharing model: every process (each shard worker, or an embedded
 * single-process daemon) writes only its own segments — the owner
 * tag is part of the segment file name — so concurrent writers never
 * interleave bytes. All processes read all segments at startup,
 * which is what makes the cache shared across shards and warm after
 * restart. Values are kept on disk, not in memory: the in-memory
 * index maps key -> (segment, offset, length) and hits re-read and
 * re-verify the record, so a billion-entry cache costs index entries,
 * not value bytes.
 *
 * Compaction folds an owner's segments into one (duplicate keys and
 * torn survivors dropped), writes the replacement to a temp file,
 * fsyncs, and renames atomically — a crash mid-compaction leaves
 * either the old segments or the new one, never a half state.
 */

#ifndef ELAG_CACHE_PERSISTENT_STORE_HH
#define ELAG_CACHE_PERSISTENT_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace elag {
namespace cache {

/** CRC32 (IEEE 802.3 polynomial) of @p data; guards stored values. */
uint32_t crc32(const void *data, size_t n);

struct PersistentStoreConfig
{
    /** Cache directory (created, parents included, if missing). */
    std::string dir;
    /**
     * Writer identity, part of this process's segment file names;
     * must be unique among concurrent writers of one directory
     * (shard workers use "shard<index>", the embedded daemon "main").
     * Must match [A-Za-z0-9_-]+.
     */
    std::string owner = "main";
    /** Rotate the active segment past this many bytes. */
    size_t maxSegmentBytes = 8u << 20;
    /** Auto-compact at open when own segments exceed this count. */
    size_t compactSegmentThreshold = 8;
};

class PersistentStore
{
  public:
    /**
     * Open @p config.dir: create it if needed, replay every segment
     * into the index (truncating torn tails), auto-compact when this
     * owner's segment count passed the threshold, and start the
     * active segment. Throws FatalError on an unusable directory or
     * a malformed owner tag.
     */
    explicit PersistentStore(const PersistentStoreConfig &config);
    ~PersistentStore();

    PersistentStore(const PersistentStore &) = delete;
    PersistentStore &operator=(const PersistentStore &) = delete;

    /**
     * Fetch the value stored under @p key: re-reads the record from
     * its segment and re-verifies the CRC, so a record that rotted
     * on disk after indexing is a miss, never a wrong answer.
     */
    bool lookup(uint64_t key, std::string &value);

    /**
     * Durably record @p value under @p key (append + index update).
     * A key already present is skipped — values are content-addressed
     * and deterministic, so the first write wins and duplicates from
     * shard failover cost nothing.
     *
     * Write failures (ENOSPC, short write) never propagate to the
     * caller: the torn bytes are truncated back off the segment, the
     * record is dropped (a future cache miss), and the failure is
     * counted. If even the truncate-back fails the store stops
     * appending — lookups of everything already stored keep working.
     */
    void append(uint64_t key, const std::string &value);

    /**
     * Close the active segment fd out from under the store, forcing
     * every subsequent append down the write-failure path (tests
     * only; simulates ENOSPC/short-write degradation).
     */
    void breakActiveSegmentForTesting();

    /**
     * Fold this owner's segments into one: live records only, temp
     * file + fsync + atomic rename, then unlink the replaced
     * segments. Records living in other owners' segments are left
     * untouched.
     */
    void compact();

    struct Stats
    {
        uint64_t appends = 0;
        /** append() calls skipped because the key was present. */
        uint64_t dedupSkipped = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        /** Records replayed into the index at open. */
        uint64_t recovered = 0;
        /** Torn tails truncated off segments at open. */
        uint64_t tornTruncated = 0;
        /** Mid-file records skipped for bad shape/CRC at open. */
        uint64_t corruptSkipped = 0;
        /** Hits that failed re-verification and became misses. */
        uint64_t readFailures = 0;
        /**
         * Appends dropped because the segment write failed (ENOSPC,
         * short write, dead fd). The record simply stays uncached —
         * a future miss — the request that computed it is unharmed.
         */
        uint64_t writeFailures = 0;
        uint64_t compactions = 0;
    };

    Stats stats() const;

    /** Indexed entries. */
    size_t size() const;

    const std::string &dir() const { return cfg.dir; }

  private:
    /** Where one value lives on disk. */
    struct Location
    {
        uint32_t segment = 0; ///< index into segments_
        uint64_t offset = 0;  ///< byte offset of the record line
        uint32_t length = 0;  ///< record line length, newline included
    };

    struct Segment
    {
        std::string path;
        bool owned = false; ///< written by this process's owner tag
    };

    /** Replay one segment file into the index. Lock held. */
    void loadSegment(const std::string &path, bool owned);

    /** Open (creating) the active own segment for appending. */
    void openActiveSegment();

    /** Rotate to a fresh own segment. Lock held. */
    void rotateLocked();

    /** Read+verify the record at @p loc; false on any damage. */
    bool readRecord(const Location &loc, uint64_t &key,
                    std::string &value) const;

    PersistentStoreConfig cfg;

    mutable std::mutex mu;
    std::vector<Segment> segments_;
    std::unordered_map<uint64_t, Location> index_;
    /** Next generation number for this owner's segment files. */
    uint64_t nextGen_ = 1;
    /** Active own segment: fd, index into segments_, current size. */
    int activeFd_ = -1;
    uint32_t activeSegment_ = 0;
    uint64_t activeSize_ = 0;
    Stats stats_;
};

} // namespace cache
} // namespace elag

#endif // ELAG_CACHE_PERSISTENT_STORE_HH
