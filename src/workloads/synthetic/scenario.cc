#include "workloads/synthetic/scenario.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "support/strings.hh"
#include "workloads/synthetic/distributions.hh"

namespace elag {
namespace workloads {
namespace synthetic {

namespace {

const FamilyInfo familyTable[] = {
    {KernelFamily::StridedWalk, "strided",
     "strided array walks over seeded stride alphabets (ld_p-heavy)"},
    {KernelFamily::PointerChase, "chase",
     "pointer chasing through a scrambled permutation (serial loads)"},
    {KernelFamily::IndirectGather, "gather",
     "indirect gathers whose addresses come from an index array"},
    {KernelFamily::BranchInterleaved, "branchy",
     "loads interleaved with data-dependent branches"},
};

} // namespace

const char *
name(KernelFamily family)
{
    for (const FamilyInfo &info : familyTable) {
        if (info.family == family)
            return info.name;
    }
    fatal("unknown kernel family %d", int(family));
}

bool
familyByName(const std::string &text, KernelFamily &out)
{
    for (const FamilyInfo &info : familyTable) {
        if (text == info.name) {
            out = info.family;
            return true;
        }
    }
    return false;
}

const std::vector<FamilyInfo> &
kernelFamilies()
{
    static const std::vector<FamilyInfo> table(
        familyTable, familyTable + sizeof(familyTable) /
                                       sizeof(familyTable[0]));
    return table;
}

std::string
ScenarioSpec::toJson() const
{
    JsonWriter w(0);
    w.beginObject();
    w.field("family", synthetic::name(family));
    w.field("seed", seed);
    w.field("working_set", workingSet);
    w.field("hot_loads", hotLoads);
    w.key("strides").beginArray();
    for (uint32_t s : strides)
        w.value(s);
    w.endArray();
    w.field("alias_density", aliasDensity);
    w.field("chase_depth", chaseDepth);
    w.field("branch_ratio", branchRatio);
    w.field("iterations", iterations);
    w.endObject();
    return w.str();
}

std::string
ScenarioSpec::name() const
{
    char buf[96];
    snprintf(buf, sizeof(buf), "%s-s%llu-h%u-w%u",
             synthetic::name(family),
             static_cast<unsigned long long>(seed), hotLoads, workingSet);
    return buf;
}

std::string
validateSpec(const ScenarioSpec &spec)
{
    if (spec.seed == 0)
        return "seed must be nonzero";
    if (spec.workingSet < 256 || spec.workingSet > (1u << 18))
        return "working_set out of range [256, 262144]";
    if ((spec.workingSet & (spec.workingSet - 1)) != 0)
        return "working_set must be a power of two";
    if (spec.hotLoads < 1 || spec.hotLoads > 2048)
        return "hot_loads out of range [1, 2048]";
    if (spec.strides.empty() || spec.strides.size() > 8)
        return "strides must list 1-8 entries";
    for (uint32_t s : spec.strides) {
        if (s < 1 || s > 256)
            return "stride out of range [1, 256]";
    }
    if (!(spec.aliasDensity >= 0.0 && spec.aliasDensity <= 1.0))
        return "alias_density out of range [0, 1]";
    if (spec.chaseDepth < 1 || spec.chaseDepth > 64)
        return "chase_depth out of range [1, 64]";
    if (!(spec.branchRatio >= 0.0 && spec.branchRatio <= 1.0))
        return "branch_ratio out of range [0, 1]";
    if (spec.iterations < 1 || spec.iterations > 65536)
        return "iterations out of range [1, 65536]";
    return "";
}

namespace {

/**
 * Strict cursor-based reader for the flat scenario-spec object. The
 * generic jsonExtract* helpers are first-occurrence textual probes;
 * spec parsing instead walks every member exactly once so unknown
 * and duplicated keys can be rejected.
 */
struct SpecReader
{
    const std::string &doc;
    size_t pos = 0;
    std::string error;

    explicit SpecReader(const std::string &d) : doc(d) {}

    void
    skipWs()
    {
        while (pos < doc.size() &&
               std::isspace(static_cast<unsigned char>(doc[pos])))
            ++pos;
    }

    bool
    fail(const std::string &why)
    {
        if (error.empty())
            error = why;
        return false;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (pos >= doc.size() || doc[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    /** Peek the next non-space character without consuming it. */
    char
    peek()
    {
        skipWs();
        return pos < doc.size() ? doc[pos] : '\0';
    }

    bool
    readString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos < doc.size() && doc[pos] != '"') {
            char c = doc[pos++];
            if (c == '\\') {
                if (pos >= doc.size())
                    return fail("bad string escape");
                char esc = doc[pos++];
                switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                default: return fail("unsupported string escape");
                }
            } else {
                out += c;
            }
        }
        if (pos >= doc.size())
            return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool
    readUint(const char *key, uint64_t max, uint64_t &out)
    {
        skipWs();
        size_t start = pos;
        while (pos < doc.size() &&
               std::isdigit(static_cast<unsigned char>(doc[pos])))
            ++pos;
        if (pos == start)
            return fail(std::string(key) +
                        " must be an unsigned integer");
        if (pos < doc.size() &&
            (doc[pos] == '.' || doc[pos] == 'e' || doc[pos] == 'E'))
            return fail(std::string(key) +
                        " must be an unsigned integer");
        uint64_t value = 0;
        if (!parseUint64(doc.substr(start, pos - start), value) ||
            value > max)
            return fail(std::string(key) + " out of range");
        out = value;
        return true;
    }

    bool
    readDouble(const char *key, double &out)
    {
        skipWs();
        size_t start = pos;
        if (pos < doc.size() && (doc[pos] == '-' || doc[pos] == '+'))
            ++pos;
        while (pos < doc.size() &&
               (std::isdigit(static_cast<unsigned char>(doc[pos])) ||
                doc[pos] == '.' || doc[pos] == 'e' || doc[pos] == 'E' ||
                doc[pos] == '-' || doc[pos] == '+'))
            ++pos;
        if (pos == start)
            return fail(std::string(key) + " must be a number");
        std::string text = doc.substr(start, pos - start);
        char *end = nullptr;
        double value = strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size() || !std::isfinite(value))
            return fail(std::string(key) + " must be a finite number");
        out = value;
        return true;
    }

    bool
    readUintArray(const char *key, uint64_t max,
                  std::vector<uint32_t> &out)
    {
        if (!expect('['))
            return false;
        out.clear();
        if (peek() == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            uint64_t value = 0;
            if (!readUint(key, max, value))
                return false;
            out.push_back(static_cast<uint32_t>(value));
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            if (c == ']') {
                ++pos;
                return true;
            }
            return fail(std::string("expected ',' or ']' in ") + key);
        }
    }
};

} // namespace

bool
parseScenarioSpec(const std::string &doc, ScenarioSpec &spec,
                  std::string &error)
{
    ScenarioSpec parsed;
    SpecReader r(doc);
    bool seen_family = false, seen_seed = false, seen_ws = false,
         seen_hot = false, seen_strides = false, seen_alias = false,
         seen_chase = false, seen_branch = false, seen_iter = false;

    auto failWith = [&](const std::string &why) {
        error = why.empty() ? r.error : why;
        if (error.empty())
            error = "malformed scenario spec";
        return false;
    };

    if (!r.expect('{'))
        return failWith("");
    if (r.peek() != '}') {
        for (;;) {
            std::string key;
            if (!r.readString(key))
                return failWith("");
            if (!r.expect(':'))
                return failWith("");

            auto once = [&](bool &seen) {
                if (seen) {
                    r.fail("duplicate member '" + key + "'");
                    return false;
                }
                seen = true;
                return true;
            };

            uint64_t u = 0;
            if (key == "family") {
                std::string text;
                if (!once(seen_family) || !r.readString(text))
                    return failWith("");
                if (!familyByName(text, parsed.family))
                    return failWith("unknown family '" + text + "'");
            } else if (key == "seed") {
                if (!once(seen_seed) ||
                    !r.readUint("seed", UINT64_MAX, parsed.seed))
                    return failWith("");
            } else if (key == "working_set") {
                if (!once(seen_ws) ||
                    !r.readUint("working_set", UINT32_MAX, u))
                    return failWith("");
                parsed.workingSet = static_cast<uint32_t>(u);
            } else if (key == "hot_loads") {
                if (!once(seen_hot) ||
                    !r.readUint("hot_loads", UINT32_MAX, u))
                    return failWith("");
                parsed.hotLoads = static_cast<uint32_t>(u);
            } else if (key == "strides") {
                if (!once(seen_strides) ||
                    !r.readUintArray("strides", UINT32_MAX,
                                     parsed.strides))
                    return failWith("");
            } else if (key == "alias_density") {
                if (!once(seen_alias) ||
                    !r.readDouble("alias_density", parsed.aliasDensity))
                    return failWith("");
            } else if (key == "chase_depth") {
                if (!once(seen_chase) ||
                    !r.readUint("chase_depth", UINT32_MAX, u))
                    return failWith("");
                parsed.chaseDepth = static_cast<uint32_t>(u);
            } else if (key == "branch_ratio") {
                if (!once(seen_branch) ||
                    !r.readDouble("branch_ratio", parsed.branchRatio))
                    return failWith("");
            } else if (key == "iterations") {
                if (!once(seen_iter) ||
                    !r.readUint("iterations", UINT32_MAX, u))
                    return failWith("");
                parsed.iterations = static_cast<uint32_t>(u);
            } else {
                return failWith("unknown member '" + key + "'");
            }

            char c = r.peek();
            if (c == ',') {
                ++r.pos;
                continue;
            }
            if (c == '}')
                break;
            return failWith("expected ',' or '}'");
        }
    }
    ++r.pos; // closing brace
    r.skipWs();
    if (r.pos != doc.size())
        return failWith("trailing content after spec object");

    if (!seen_family)
        return failWith("missing required member 'family'");
    if (!seen_seed)
        return failWith("missing required member 'seed'");

    std::string invalid = validateSpec(parsed);
    if (!invalid.empty())
        return failWith(invalid);

    spec = parsed;
    error.clear();
    return true;
}

ScenarioSpec
sampleSpec(KernelFamily family, uint64_t seed)
{
    elag_assert(seed != 0);
    // A family-selected stream keeps the knob draws for different
    // families at the same seed decorrelated.
    Pcg32 rng(seed, 0x9e3779b97f4a7c15ULL + uint64_t(family));

    ScenarioSpec spec;
    spec.family = family;
    spec.seed = seed;
    spec.workingSet = logUniformPow2(rng, 10, 14);
    spec.strides = sampleStrideMix(rng);

    static const std::vector<double> alias_weights = {3, 2, 2, 1};
    static const double alias_levels[] = {0.0, 0.1, 0.25, 0.5};
    spec.aliasDensity = alias_levels[weightedChoice(rng, alias_weights)];

    switch (family) {
    case KernelFamily::StridedWalk:
        spec.hotLoads = uniformInRange(rng, 16, 128);
        spec.chaseDepth = uniformInRange(rng, 1, 4);
        spec.branchRatio = rng.nextBool(0.25) ? 0.1 : 0.0;
        break;
    case KernelFamily::PointerChase:
        spec.hotLoads = uniformInRange(rng, 8, 48);
        spec.chaseDepth = uniformInRange(rng, 2, 12);
        spec.branchRatio = rng.nextBool(0.25) ? 0.1 : 0.0;
        break;
    case KernelFamily::IndirectGather:
        spec.hotLoads = uniformInRange(rng, 16, 96);
        spec.chaseDepth = uniformInRange(rng, 1, 4);
        spec.branchRatio = rng.nextBool(0.25) ? 0.1 : 0.0;
        break;
    case KernelFamily::BranchInterleaved: {
        spec.hotLoads = uniformInRange(rng, 16, 96);
        spec.chaseDepth = uniformInRange(rng, 1, 4);
        static const double branch_levels[] = {0.25, 0.5, 0.75};
        spec.branchRatio = branch_levels[rng.nextBounded(3)];
        break;
    }
    }
    spec.iterations = uniformInRange(rng, 2, 8);

    elag_assert(validateSpec(spec).empty());
    return spec;
}

std::vector<ScenarioSpec>
expandMatrix(const MatrixOptions &options)
{
    elag_assert(!options.seeds.empty());

    std::vector<KernelFamily> families = options.families;
    if (families.empty()) {
        for (const FamilyInfo &info : kernelFamilies())
            families.push_back(info.family);
    }

    std::vector<ScenarioSpec> specs;
    for (KernelFamily family : families) {
        for (uint64_t seed : options.seeds) {
            ScenarioSpec base = sampleSpec(family, seed);
            if (options.workingSet != 0)
                base.workingSet = options.workingSet;
            if (options.hotLoads.empty()) {
                specs.push_back(base);
                continue;
            }
            for (uint32_t hot : options.hotLoads) {
                ScenarioSpec spec = base;
                spec.hotLoads = hot;
                specs.push_back(spec);
            }
        }
    }
    for (const ScenarioSpec &spec : specs)
        elag_assert(validateSpec(spec).empty());
    return specs;
}

} // namespace synthetic
} // namespace workloads
} // namespace elag
