/**
 * @file
 * Seeded sampling distributions for the synthetic workload generator.
 *
 * Scenario parameters are drawn from explicit distributions over the
 * knobs the paper's evaluation axis cares about (working-set size,
 * stride mix, alias density, hot-static-load count), in the style of
 * scarab's synthetic frontend. Everything is driven by the
 * deterministic Pcg32 stream, so the same seed always samples the
 * same scenario on every platform.
 */

#ifndef ELAG_WORKLOADS_SYNTHETIC_DISTRIBUTIONS_HH
#define ELAG_WORKLOADS_SYNTHETIC_DISTRIBUTIONS_HH

#include <cstdint>
#include <vector>

#include "support/logging.hh"
#include "support/random.hh"

namespace elag {
namespace workloads {
namespace synthetic {

/** Uniform integer in [lo, hi] (inclusive; lo <= hi). */
inline uint32_t
uniformInRange(Pcg32 &rng, uint32_t lo, uint32_t hi)
{
    elag_assert(lo <= hi);
    return lo + rng.nextBounded(hi - lo + 1);
}

/**
 * Log2-uniform power of two: 2^k with k uniform in
 * [lo_log2, hi_log2]. Working-set sizes are sampled this way so
 * small cache-resident and large cache-busting sets are equally
 * likely, instead of the linear-uniform bias toward large sets.
 */
inline uint32_t
logUniformPow2(Pcg32 &rng, uint32_t lo_log2, uint32_t hi_log2)
{
    return 1u << uniformInRange(rng, lo_log2, hi_log2);
}

/**
 * Index into @p weights chosen with probability proportional to the
 * entry. Weights must be non-negative with a positive sum.
 */
inline size_t
weightedChoice(Pcg32 &rng, const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        elag_assert(w >= 0.0);
        total += w;
    }
    elag_assert(total > 0.0);
    double roll = rng.nextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        roll -= weights[i];
        if (roll < 0.0)
            return i;
    }
    return weights.size() - 1;
}

/**
 * A stride mix: 1-4 distinct strides drawn from the alphabet the
 * paper's strided loops exhibit (unit, small-constant, and
 * row-length strides), ordered as drawn.
 */
inline std::vector<uint32_t>
sampleStrideMix(Pcg32 &rng)
{
    static const uint32_t alphabet[] = {1, 1, 1, 2, 3, 4, 8, 16, 64};
    size_t count = 1 + rng.nextBounded(4);
    std::vector<uint32_t> mix;
    mix.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        mix.push_back(
            alphabet[rng.nextBounded(sizeof(alphabet) /
                                     sizeof(alphabet[0]))]);
    }
    return mix;
}

} // namespace synthetic
} // namespace workloads
} // namespace elag

#endif // ELAG_WORKLOADS_SYNTHETIC_DISTRIBUTIONS_HH
