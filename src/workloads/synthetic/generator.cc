#include "workloads/synthetic/generator.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metrics.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "workloads/synthetic/distributions.hh"

namespace elag {
namespace workloads {
namespace synthetic {

namespace {

/**
 * Total strided trips each site makes per outer iteration, and the
 * grain at which the kernel set interleaves. Every kernel runs
 * kGrainTrips of its stride sequence per call and main rotates
 * through all kernels each grain, so the program's whole static
 * load population stays concurrently live — the table-pressure
 * regime bench_crossover sweeps. The grain is small relative to
 * the stride FSM's ~2-trip training time: a site whose table entry
 * was evicted since its last visit loses a real fraction of its
 * window retraining, which is exactly the conflict cost
 * compiler-directed allocation avoids.
 */
constexpr int kInnerTrips = 256;
constexpr int kGrainTrips = 4;

/** Static load sites per kernel function (last one takes the rest). */
constexpr uint32_t kSitesPerFn = 8;

/** Data arrays strided sites rotate over. */
const char *const kArrays[] = {"A", "B", "C", "D"};

std::string
num(int64_t v)
{
    return std::to_string(v);
}

/**
 * Emitter for one scenario: owns the spec-seeded stream and the
 * running static-load-site count, which must land exactly on
 * spec.hotLoads.
 */
struct Emitter
{
    const ScenarioSpec &spec;
    Pcg32 rng;
    uint32_t mask;
    uint32_t sites = 0;

    explicit Emitter(const ScenarioSpec &s)
        : spec(s),
          // A distinct stream per family keeps equal-seed programs of
          // different families decorrelated.
          rng(s.seed, 0x5851f42d4c957f2dULL ^ uint64_t(s.family)),
          mask(s.workingSet - 1)
    {
    }

    /** A stride from the spec's alphabet. */
    uint32_t
    stride()
    {
        return spec.strides[rng.nextBounded(
            static_cast<uint32_t>(spec.strides.size()))];
    }

    /** `(i * S + O) & mask` — a stride-predictable address. */
    std::string
    stridedAddr()
    {
        return "(i * " + num(stride()) + " + " +
               num(rng.nextBounded(spec.workingSet)) + ") & " +
               num(mask);
    }

    /** `sum += ARR[strided];` — one ld_p-friendly site. */
    std::string
    stridedSite()
    {
        ++sites;
        return std::string("sum += ") + kArrays[rng.nextBounded(4)] +
               "[" + stridedAddr() + "];";
    }

    /**
     * `sum += ARR[(x * K + C) & mask];` — a pollution site whose
     * address is data-dependent on the shared x load, so it defeats
     * stride training (and classifies ld_n) while still occupying a
     * hot static PC.
     */
    std::string
    aliasSite()
    {
        ++sites;
        uint32_t k = 3 + 2 * rng.nextBounded(30); // odd in [3, 61]
        return std::string("sum += ") + kArrays[rng.nextBounded(4)] +
               "[(x * " + num(k) + " + " +
               num(rng.nextBounded(spec.workingSet)) + ") & " +
               num(mask) + "];";
    }

    /** `sum += ARR[IDX[strided] & mask];` — two sites: the strided
     * index fetch plus the data-dependent gather it feeds. */
    std::string
    gatherSite()
    {
        sites += 2;
        return std::string("sum += ") + kArrays[rng.nextBounded(4)] +
               "[IDX[" + stridedAddr() + "] & " + num(mask) + "];";
    }

    /** `p = (int*)p[0];` — one serially dependent chase link, the
     * pointer idiom the classifier recognizes as ld_e. */
    std::string
    chaseSite()
    {
        ++sites;
        return "p = (int*)p[0];";
    }

    /** The shared data-dependent value alias/branch sites hang off. */
    std::string
    xSite()
    {
        ++sites;
        return "int x = IDX[" + stridedAddr() + "];";
    }

    /**
     * One kernel function with exactly @p budget static load sites.
     * The body is a kGrainTrips-trip loop whose induction variable
     * starts at the `base` parameter: sites stay inside a loop in
     * their own function (so the classifier's cyclic heuristic sees
     * the x data dependence and marks alias sites ld_n), while
     * main advances base and rotates through every kernel each
     * grain, keeping the whole hot-site population of the program
     * concurrently live — the table-pressure axis bench_crossover
     * sweeps. Shape: an optional shared x load, an optional chase
     * chain, then strided/alias/gather sites — alias and
     * branch-guarded sites draw on x, so x is emitted first
     * whenever the spec can use it.
     */
    std::string
    function(uint32_t index, uint32_t budget)
    {
        elag_assert(budget >= 1);
        bool chase = spec.family == KernelFamily::PointerChase;
        bool want_x = (spec.aliasDensity > 0.0 ||
                       spec.branchRatio > 0.0) &&
                      budget >= 2;

        std::string body;
        uint32_t left = budget;
        bool have_x = false;
        if (want_x) {
            // Fold x into sum so the site survives dead-code
            // elimination even when no alias/branch site draws on it.
            body += "    " + xSite() + "\n"
                    "    sum += x & 15;\n";
            have_x = true;
            --left;
        }
        if (chase && left >= 2) {
            // A strided head load into the node ring, then a serial
            // chain of dependent links off it.
            ++sites;
            body += "    int *p = NODES[" + stridedAddr() + "];\n";
            --left;
            uint32_t links = std::min(left, spec.chaseDepth);
            for (uint32_t c = 0; c < links; ++c)
                body += "    " + chaseSite() + "\n";
            left -= links;
            body += "    sum += (int)p;\n";
        }
        while (left > 0) {
            bool guarded = have_x && rng.nextBool(spec.branchRatio);
            std::string stmt;
            if (have_x && rng.nextBool(spec.aliasDensity)) {
                stmt = aliasSite();
                --left;
            } else if (spec.family == KernelFamily::IndirectGather &&
                       left >= 2 && rng.nextBool(0.6)) {
                stmt = gatherSite();
                left -= 2;
            } else {
                stmt = stridedSite();
                --left;
            }
            if (guarded) {
                // Data-dependent direction: x comes from memory.
                body += "    if ((x & 7) < " +
                        num(1 + rng.nextBounded(7)) + ") {\n"
                        "        " + stmt + "\n"
                        "    } else {\n"
                        "        sum += i;\n"
                        "    }\n";
            } else {
                body += "    " + stmt + "\n";
            }
        }

        return "int kern" + num(index) + "(int base) {\n"
               "    int sum = 0;\n"
               "    for (int i = base; i < base + " +
               num(kGrainTrips) + "; i++) {\n" + body +
               "    }\n"
               "    return sum;\n"
               "}\n";
    }

    std::string
    program()
    {
        uint32_t ws = spec.workingSet;
        uint32_t fns = (spec.hotLoads + kSitesPerFn - 1) / kSitesPerFn;
        bool chase = spec.family == KernelFamily::PointerChase;

        // The chase successor order is a permutation of [0, ws): an
        // odd multiplier is a bijection mod a power of two, so rings
        // close and chases never leave range.
        uint32_t odd_mul = 2 * rng.nextBounded(ws / 2) + 1;
        uint32_t phase = rng.nextBounded(ws);
        int32_t seed0 =
            static_cast<int32_t>(rng.next() & 0x7fffffff) | 1;

        std::string src;
        src += "int A[" + num(ws) + "];\n"
               "int B[" + num(ws) + "];\n"
               "int C[" + num(ws) + "];\n"
               "int D[" + num(ws) + "];\n"
               "int IDX[" + num(ws) + "];\n";
        if (chase)
            src += "int *NODES[" + num(ws) + "];\n";

        std::string fn_bodies;
        for (uint32_t f = 0; f < fns; ++f) {
            uint32_t done = f * kSitesPerFn;
            uint32_t budget =
                std::min(kSitesPerFn, spec.hotLoads - done);
            fn_bodies += function(f, budget);
        }
        src += fn_bodies;

        src += "int main() {\n"
               "    int seed = " + num(seed0) + ";\n"
               "    for (int i = 0; i < " + num(ws) + "; i++) {\n"
               "        seed = seed * 1103515245 + 12345;\n"
               "        A[i] = seed & 65535;\n"
               "        B[i] = (seed >> 3) & 65535;\n"
               "        C[i] = (seed >> 5) & 65535;\n"
               "        D[i] = (seed >> 7) & 65535;\n"
               "        IDX[i] = (seed >> 9) & " + num(mask) + ";\n";
        if (chase) {
            // Two passes: every node exists before any link targets
            // it, then word 0 of each node points at its successor.
            src += "        NODES[i] = (int*)alloc(8);\n"
                   "    }\n"
                   "    for (int i = 0; i < " + num(ws) +
                   "; i++) {\n"
                   "        NODES[i][0] = (int)NODES[(i * " +
                   num(odd_mul) + " + " + num(phase) + ") & " +
                   num(mask) + "];\n";
        }
        src += "    }\n"
               "    int sum = 0;\n"
               "    for (int r = 0; r < " + num(spec.iterations) +
               "; r++) {\n"
               "        for (int t = 0; t < " + num(kInnerTrips) +
               "; t = t + " + num(kGrainTrips) + ") {\n";
        for (uint32_t f = 0; f < fns; ++f)
            src += "            sum += kern" + num(f) + "(t);\n";
        src += "        }\n"
               "    }\n"
               "    print(sum);\n"
               "    return 0;\n"
               "}\n";

        elag_assert(sites == spec.hotLoads);
        return src;
    }
};

} // namespace

std::string
sourceHash(const std::string &source)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : source) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    snprintf(buf, sizeof(buf), "%016llx",
             static_cast<unsigned long long>(h));
    return buf;
}

GeneratedScenario
generateScenario(const ScenarioSpec &spec)
{
    std::string invalid = validateSpec(spec);
    if (!invalid.empty())
        fatal("invalid scenario spec: %s", invalid.c_str());

    auto start = std::chrono::steady_clock::now();
    Emitter emitter(spec);

    GeneratedScenario out;
    out.spec = spec;
    out.name = spec.name();
    out.source = emitter.program();
    out.contentHash = sourceHash(out.source);

    auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    obs::Labels labels{{"family", name(spec.family)}};
    obs::Registry &registry = obs::Registry::process();
    registry
        .counter("elag_workgen_scenarios_generated_total",
                 "Synthetic scenarios expanded to source, by kernel "
                 "family.",
                 labels)
        .inc();
    // 64 buckets x 128 us => 0..8 ms + overflow.
    registry
        .histogram("elag_workgen_generate_latency_us",
                   "Scenario generation latency in microseconds, by "
                   "kernel family.",
                   64, 128, labels)
        .observe(static_cast<uint64_t>(micros));
    return out;
}

} // namespace synthetic
} // namespace workloads
} // namespace elag
