/**
 * @file
 * Deterministic kernel-family generators: ScenarioSpec -> mini-C.
 *
 * Each generator expands a validated ScenarioSpec into an
 * `elag::lang` program whose static load-site population matches the
 * spec exactly: `hot_loads` distinct load instructions, spread over
 * small kernel functions, with stride mix, alias density, chase
 * depth, and branch interleave drawn from the spec's seeded stream.
 * Generation is pure: the same spec always emits a byte-identical
 * program (enforced by test_workgen the same way bench determinism
 * is), so the emitted source can be content-hashed and served from
 * caches like any other request payload.
 *
 * All emitted address arithmetic is masked to the power-of-two
 * working set, so generated programs are guest-trap-free by
 * construction — test_workgen sweeps seeded specs through the
 * emulator to enforce this.
 */

#ifndef ELAG_WORKLOADS_SYNTHETIC_GENERATOR_HH
#define ELAG_WORKLOADS_SYNTHETIC_GENERATOR_HH

#include <string>

#include "workloads/synthetic/scenario.hh"

namespace elag {
namespace workloads {
namespace synthetic {

/** One generated workload: spec, program text, and identity. */
struct GeneratedScenario
{
    ScenarioSpec spec;
    /** Self-describing scenario name (spec.name()). */
    std::string name;
    /** The generated `elag::lang` program. */
    std::string source;
    /** 16-hex-digit FNV-1a hash of the source bytes. */
    std::string contentHash;
};

/**
 * Expand @p spec into its program. The spec must validate
 * (validateSpec() == ""); generation is deterministic in the spec
 * alone. Records `elag_workgen_scenarios_generated_total{family}`
 * and the per-family generation-latency histogram in the process
 * metrics registry.
 */
GeneratedScenario generateScenario(const ScenarioSpec &spec);

/** FNV-1a content hash of @p source, as 16 lowercase hex digits. */
std::string sourceHash(const std::string &source);

} // namespace synthetic
} // namespace workloads
} // namespace elag

#endif // ELAG_WORKLOADS_SYNTHETIC_GENERATOR_HH
