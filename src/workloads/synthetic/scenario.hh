/**
 * @file
 * Scenario specifications for the synthetic workload generator.
 *
 * A ScenarioSpec pins every knob of one generated workload: kernel
 * family, seed, working-set size, stride mix, alias density,
 * pointer-chase depth, branch-interleave ratio, and — the axis the
 * paper's Figure-5a crossover lives on — the hot-static-load count.
 * Specs round-trip through a strictly validated JSON form (unknown
 * members, wrong types, and out-of-range values are all rejected
 * with a one-line reason), so the same document drives the
 * elag_workgen CLI, the elagd `generate` verb, and the campaign
 * runner's scenario axis interchangeably.
 *
 * Specs are sampled from seeded distributions (sampleSpec) or
 * written by hand; either way the spec alone determines the emitted
 * program byte for byte.
 */

#ifndef ELAG_WORKLOADS_SYNTHETIC_SCENARIO_HH
#define ELAG_WORKLOADS_SYNTHETIC_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

namespace elag {
namespace workloads {
namespace synthetic {

/** The parameterized kernel families the generator can emit. */
enum class KernelFamily : uint8_t
{
    /** Strided array walks: the bread-and-butter ld_p population. */
    StridedWalk,
    /** Pointer chasing through a scrambled permutation. */
    PointerChase,
    /** Indirect/gather: addresses loaded from an index array. */
    IndirectGather,
    /** Loads interleaved with data-dependent branches. */
    BranchInterleaved,
};

/** Canonical (JSON) name of a family. */
const char *name(KernelFamily family);

/** @return true and set @p out when @p text names a family. */
bool familyByName(const std::string &text, KernelFamily &out);

/** One family's registry entry for `elagc --list-workloads`. */
struct FamilyInfo
{
    KernelFamily family;
    const char *name;
    /** One-line description of the behaviour the family generates. */
    const char *description;
};

/** All kernel families, in enum order. */
const std::vector<FamilyInfo> &kernelFamilies();

/** Full parameterization of one synthetic scenario. */
struct ScenarioSpec
{
    KernelFamily family = KernelFamily::StridedWalk;
    /** Seeds every generation-time draw; part of the identity. */
    uint64_t seed = 1;
    /** Words per data array (power of two, [256, 262144]). */
    uint32_t workingSet = 4096;
    /** Target count of distinct hot static load sites ([1, 2048]). */
    uint32_t hotLoads = 32;
    /** Stride alphabet for strided sites (1-8 entries in [1, 256]). */
    std::vector<uint32_t> strides{1};
    /**
     * Fraction of sites emitted as data-dependent "pollution" loads
     * whose addresses defeat stride training ([0, 1]).
     */
    double aliasDensity = 0.0;
    /** Chained dependent loads per chase step ([1, 64]). */
    uint32_t chaseDepth = 4;
    /** Fraction of sites guarded by data-dependent branches ([0,1]). */
    double branchRatio = 0.0;
    /** Outer repetitions of the whole kernel set ([1, 65536]). */
    uint32_t iterations = 8;

    /**
     * Canonical JSON form: every field, fixed order and formatting,
     * so equal specs serialize identically and the document is a
     * stable cache/routing key.
     */
    std::string toJson() const;

    /** Short self-describing name, e.g. "strided-s7-h320-w4096". */
    std::string name() const;
};

/**
 * Validate every field of @p spec against the documented bounds.
 * @return "" when valid, else a one-line reason.
 */
std::string validateSpec(const ScenarioSpec &spec);

/**
 * Strictly parse @p doc as a ScenarioSpec. `family` and `seed` are
 * required; all other members are optional and default as in the
 * struct. Unknown members, duplicated members, type mismatches, and
 * out-of-range values fail with @p error set to a one-line reason.
 */
bool parseScenarioSpec(const std::string &doc, ScenarioSpec &spec,
                       std::string &error);

/**
 * Sample a spec for @p family from the seeded knob distributions
 * (log2-uniform working sets, weighted stride alphabets, family-
 * dependent hot-load ranges). Deterministic per (family, seed); the
 * sampled spec embeds @p seed so generation stays reproducible.
 */
ScenarioSpec sampleSpec(KernelFamily family, uint64_t seed);

/** Axes of a scenario-matrix expansion (`elag_workgen --matrix`). */
struct MatrixOptions
{
    /** Families to cover; empty = all. */
    std::vector<KernelFamily> families;
    /** Seeds per family (at least one required). */
    std::vector<uint64_t> seeds;
    /** Hot-load overrides; empty keeps each sampled value. */
    std::vector<uint32_t> hotLoads;
    /** Working-set override; 0 keeps each sampled value. */
    uint32_t workingSet = 0;
};

/**
 * Expand the cross product families x seeds x hotLoads into
 * concrete sampled specs, in deterministic order.
 */
std::vector<ScenarioSpec> expandMatrix(const MatrixOptions &options);

} // namespace synthetic
} // namespace workloads
} // namespace elag

#endif // ELAG_WORKLOADS_SYNTHETIC_SCENARIO_HH
