/**
 * @file
 * SPEC92/SPEC95-integer-like workloads.
 *
 * Each program reproduces the dominant memory behaviour of the SPEC
 * benchmark it is named after (see DESIGN.md). All programs are
 * deterministic and print a checksum so optimizer correctness can be
 * cross-checked between configurations.
 */

#include "workloads/workloads.hh"

namespace elag {
namespace workloads {

std::vector<Workload>
makeSpecWorkloads()
{
    std::vector<Workload> list;

    // 008.espresso: two-level logic minimization. Dominated by
    // strided scans over cube bit-vectors with occasional indexed
    // indirection through a column permutation.
    // The cube cover is reached through a pointer reloaded inside
    // store-containing loops, so the compiler conservatively marks
    // those strided loads load-dependent (ld_n) — the exact
    // misclassification the paper reports for espresso, which
    // address profiling then repairs (Section 5.3).
    list.push_back({"008.espresso", Suite::SpecInt, R"(
int cubes[4096];
int perm[64];
int *g_cover;
int litcount[256];
int sharp[512];
int unate[64];
/* cofactor extraction: split the cover against a literal */
int cofactor(int lit) {
    int kept = 0;
    for (int c = 0; c < 64; c++) {
        int word = cubes[c * 64 + (lit >> 4)];
        int bit = (word >> (lit & 15)) & 1;
        if (bit) {
            sharp[kept & 511] = word ^ lit;
            kept++;
        }
        unate[c] = (unate[c] << 1) | bit;
    }
    return kept;
}
/* literal frequency counting over the cube matrix */
int countLiterals() {
    int max = 0;
    for (int i = 0; i < 256; i++)
        litcount[i] = 0;
    for (int c = 0; c < 4096; c++) {
        int w = cubes[c];
        litcount[w & 255] += 1;
        litcount[(w >> 8) & 255] += 1;
    }
    for (int i = 0; i < 256; i++) {
        if (litcount[i] > litcount[max])
            max = i;
    }
    return max;
}
/* sharp operation: subtract one cover row from another */
int sharpOp(int a, int b) {
    int produced = 0;
    for (int i = 0; i < 64; i++) {
        int x = cubes[a * 64 + i];
        int y = cubes[b * 64 + i];
        int d = x & ~y;
        if (d) {
            sharp[(produced + i) & 511] = d;
            produced++;
        }
    }
    return produced;
}
int main() {
    g_cover = (int*)alloc(256);
    int seed = 12345;
    for (int i = 0; i < 4096; i++) {
        seed = seed * 1103515245 + 12345;
        cubes[i] = seed & 0xffff;
    }
    for (int i = 0; i < 64; i++)
        perm[i] = (i * 37 + 11) % 64;
    int onset = 0;
    for (int pass = 0; pass < 6; pass++) {
        /* cube intersection sweep: strided, cover via pointer */
        for (int c = 0; c < 63; c++) {
            int live = 0;
            for (int i = 0; i < 64; i++) {
                int a = cubes[c * 64 + i];
                int b = cubes[c * 64 + 64 + i];
                int meet = a & b;
                if (meet)
                    live++;
                g_cover[i] = meet | (g_cover[i] >> 1);
            }
            onset += live;
        }
        /* column permutation: indexed */
        for (int i = 0; i < 64; i++) {
            int j = perm[i];
            int t = g_cover[i];
            g_cover[i] = g_cover[j] ^ t;
        }
        /* containment check: strided with early exit */
        for (int c = 0; c < 64; c++) {
            int contained = 1;
            for (int i = 0; i < 64; i++) {
                int cov = g_cover[i & 63];
                if ((cubes[c * 64 + i] & cov) != cov) {
                    contained = 0;
                    break;
                }
            }
            onset += contained;
        }
        onset += countLiterals();
        onset += cofactor((pass * 29 + 5) & 255);
        onset += sharpOp(pass & 63, (pass * 7 + 3) & 63);
    }
    print(onset);
    return 0;
}
)", "bit-vector cube scans + pointer-reached cover rows", {}});

    // 022.li: a lisp interpreter. Cons-cell pointer chasing through
    // alloc()ed pairs dominates; the evaluator walks list structures
    // built once and traversed many times.
    list.push_back({"022.li", Suite::SpecInt, R"(
int nil;
int *freebuf[16];
int freecount = 0;
int rotor = 0;
/* Cells come from a scrambled free buffer, like a real lisp heap
   after garbage collection: successor addresses are not strided. */
int *cell() {
    if (freecount == 0) {
        for (int i = 0; i < 16; i++)
            freebuf[i] = (int*)alloc(8);
        freecount = 16;
    }
    rotor = (rotor * 5 + 3) & 15;
    while ((int)freebuf[rotor] == 0)
        rotor = (rotor + 1) & 15;
    int *c = freebuf[rotor];
    freebuf[rotor] = (int*)0;
    freecount--;
    return c;
}
int *cons(int car, int cdr) {
    int *c = cell();
    c[0] = car;
    c[1] = cdr;
    return c;
}
int sumlist(int *p) {
    int s = 0;
    while ((int)p != nil) {
        s += p[0];
        p = (int*)p[1];
    }
    return s;
}
int revappend(int l, int acc) {
    int *p = (int*)l;
    while ((int)p != nil) {
        acc = (int)cons(p[0], acc);
        p = (int*)p[1];
    }
    return acc;
}
int main() {
    nil = 0;
    int total = 0;
    for (int round = 0; round < 24; round++) {
        int l = nil;
        for (int i = 0; i < 200; i++)
            l = (int)cons(i + round, l);
        int r = revappend(l, nil);
        total += sumlist((int*)l);
        total -= sumlist((int*)r);
        /* nested structure: list of lists */
        int outer = nil;
        for (int i = 0; i < 20; i++) {
            int inner = nil;
            for (int j = 0; j < 10; j++)
                inner = (int)cons(i * j, inner);
            outer = (int)cons((int)inner, outer);
        }
        int *q = (int*)outer;
        while ((int)q != nil) {
            total += sumlist((int*)q[0]);
            q = (int*)q[1];
        }
    }
    print(total);
    return 0;
}
)", "cons-cell pointer chasing (lisp interpreter heaps)", {}});

    // 023.eqntott: truth-table generation; overwhelmingly strided
    // comparisons over large integer vectors (the qsort comparator).
    list.push_back({"023.eqntott", Suite::SpecInt, R"(
int table[8192];
int tmp[8192];
int main() {
    int seed = 777;
    int n = 8192;
    for (int i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        table[i] = (seed >> 8) & 0xffff;
    }
    /* bottom-up merge sort: long strided streams */
    for (int width = 1; width < n; width = width * 2) {
        for (int lo = 0; lo < n; lo += width * 2) {
            int i = lo;
            int mid = lo + width;
            int j = mid;
            int hi = lo + width * 2;
            if (hi > n) hi = n;
            if (mid > n) mid = n;
            int k = lo;
            while (i < mid && j < hi) {
                if (table[i] <= table[j]) tmp[k++] = table[i++];
                else tmp[k++] = table[j++];
            }
            while (i < mid) tmp[k++] = table[i++];
            while (j < hi) tmp[k++] = table[j++];
        }
        for (int i = 0; i < n; i++)
            table[i] = tmp[i];
    }
    int check = 0;
    for (int i = 0; i < n; i++)
        check += table[i] * (i & 15);
    print(check);
    return 0;
}
)", "merge-sorting large vectors (strided comparator streams)", {}});

    // 026.compress: LZW compression; hash-table probes whose slots
    // are data-dependent but re-visited, plus strided input scans.
    list.push_back({"026.compress", Suite::SpecInt, R"(
int htab[4096];
int codetab[4096];
char input[16384];
int main() {
    int seed = 99;
    for (int i = 0; i < 16384; i++) {
        seed = seed * 1103515245 + 12345;
        input[i] = (char)((seed >> 16) & 63);
    }
    for (int i = 0; i < 4096; i++)
        htab[i] = -1;
    int next_code = 256;
    int prefix = input[0];
    int out = 0;
    for (int i = 1; i < 16384; i++) {
        int c = input[i];
        int key = ((c << 6) ^ prefix) & 4095;
        int probes = 0;
        int found = -1;
        while (probes < 6) {
            int slot = htab[key];
            if (slot == -1)
                break;
            if (slot == (prefix << 8) + c) {
                found = codetab[key];
                break;
            }
            key = (key + 61) & 4095;
            probes++;
        }
        if (found >= 0) {
            prefix = found;
        } else {
            out += prefix;
            if (next_code < 65536) {
                htab[key] = (prefix << 8) + c;
                codetab[key] = next_code++;
            }
            prefix = c;
        }
    }
    print(out);
    print(next_code);
    return 0;
}
)", "LZW hash probing + byte input scan", {}});

    // 072.sc: spreadsheet recalculation over a sparse grid of cells
    // linked by dependency pointers; mixed strided/pointer loads.
    list.push_back({"072.sc", Suite::SpecInt, R"(
int grid[2048];
int colsum[16];
int fmtwidth[16];
char screen[2048];
/* column range sums (SUM() formulas) */
int rangeSums(int rows, int cols) {
    int total = 0;
    for (int c = 0; c < cols; c++) {
        int acc = 0;
        for (int r = 0; r < rows; r++)
            acc += grid[(r * cols + c) * 4];
        colsum[c] = acc;
        total += acc;
    }
    return total;
}
/* render the sheet into a character screen buffer */
int render(int rows, int cols) {
    int painted = 0;
    for (int r = 0; r < rows; r++) {
        for (int c = 0; c < cols; c++) {
            int v = grid[(r * cols + c) * 4];
            int w = fmtwidth[c];
            int pos = r * 64 + c * 4;
            screen[pos] = (char)(32 + (v & 63));
            if (w > 1)
                screen[pos + 1] = (char)(32 + ((v >> 6) & 63));
            painted++;
        }
    }
    return painted;
}
/* topological dependency walk along the up-pointers */
int topoWalk(int rows, int cols) {
    int depth = 0;
    for (int c = 0; c < cols; c++) {
        int idx = ((rows - 1) * cols + c) * 4;
        while (idx > 0 && grid[idx + 1] != 0) {
            idx = grid[idx + 2];
            depth++;
            if (depth > 100000)
                return depth;
        }
    }
    return depth;
}
int main() {
    /* each cell: value, formula kind, two dependency indices */
    int rows = 32;
    int cols = 16;
    int seed = 4242;
    for (int r = 0; r < rows; r++) {
        for (int c = 0; c < cols; c++) {
            int idx = (r * cols + c) * 4;
            seed = seed * 1103515245 + 12345;
            grid[idx] = (seed >> 20) & 255;
            grid[idx + 1] = c == 0 ? 0 : ((seed >> 8) & 3);
            grid[idx + 2] = r > 0 ? ((r - 1) * cols + c) * 4 : 0;
            grid[idx + 3] = c > 0 ? (r * cols + c - 1) * 4 : 0;
        }
    }
    int total = 0;
    for (int pass = 0; pass < 200; pass++) {
        for (int r = 0; r < rows; r++) {
            for (int c = 0; c < cols; c++) {
                int idx = (r * cols + c) * 4;
                int kind = grid[idx + 1];
                if (kind == 0)
                    continue;
                int *up = &grid[0] + grid[idx + 2];
                int *left = &grid[0] + grid[idx + 3];
                if (kind == 1)
                    grid[idx] = up[0] + left[0];
                else if (kind == 2)
                    grid[idx] = up[0] - left[0];
                else
                    grid[idx] = (up[0] + left[0]) >> 1;
            }
        }
        total += grid[(rows * cols - 1) * 4];
        if ((pass & 7) == 0) {
            for (int c = 0; c < cols; c++)
                fmtwidth[c] = 1 + (c & 3);
            total += rangeSums(rows, cols);
            total += render(rows, cols);
            total += topoWalk(rows, cols);
        }
    }
    print(total);
    return 0;
}
)", "spreadsheet recalc over dependency-linked cells", {}});

    // 085.cc1: the gcc core; walks allocated tree/DAG nodes (parse
    // trees, RTL) with moderate pointer chasing plus symbol-table
    // array accesses.
    list.push_back({"085.cc1", Suite::SpecInt, R"(
int symtab[1024];
char srcbuf[4096];
int toktab[128];
int code[2048];
int interference[256];
/* lexer: scan a byte buffer classifying characters */
int lex() {
    int tokens = 0;
    int i = 0;
    while (i < 4096) {
        int c = srcbuf[i];
        int klass = toktab[c & 127];
        if (klass == 0) {
            i++;
        } else if (klass == 1) {
            while (i < 4096 && toktab[srcbuf[i] & 127] == 1)
                i++;
            tokens++;
        } else {
            i++;
            tokens++;
        }
    }
    return tokens;
}
/* register allocation: interference bit matrix sweeps */
int colorRegs() {
    int spills = 0;
    for (int v = 0; v < 256; v++) {
        int row = interference[v];
        int color = 0;
        while (color < 16 && ((row >> color) & 1))
            color++;
        if (color == 16)
            spills++;
        interference[v] = row | (1 << (color & 15));
    }
    return spills;
}
/* peephole pass over a linear code array */
int peephole() {
    int rewrites = 0;
    for (int i = 0; i + 1 < 2048; i++) {
        int a = code[i];
        int b = code[i + 1];
        if ((a & 255) == (b & 255)) {
            code[i] = a | 0x10000;
            rewrites++;
        }
    }
    return rewrites;
}
int *mknode(int kind, int value, int *l, int *r) {
    int *n = (int*)alloc(16);
    n[0] = kind;
    n[1] = value;
    n[2] = (int)l;
    n[3] = (int)r;
    return n;
}
int *build(int depth, int seed) {
    if (depth == 0)
        return mknode(0, seed & 255, (int*)0, (int*)0);
    int s2 = seed * 1103515245 + 12345;
    int *l = build(depth - 1, s2);
    int *r = build(depth - 1, s2 * 31 + 7);
    return mknode(1 + (s2 & 3), (s2 >> 8) & 255, l, r);
}
int eval(int *n) {
    int kind = n[0];
    if (kind == 0)
        return n[1] + symtab[n[1] & 1023];
    int a = eval((int*)n[2]);
    int b = eval((int*)n[3]);
    symtab[n[1] & 1023] = a;
    if (kind == 1) return a + b;
    if (kind == 2) return a - b;
    if (kind == 3) return a ^ b;
    return a + b - (a & b);
}
int main() {
    for (int i = 0; i < 1024; i++)
        symtab[i] = i * 17;
    int seed = 11;
    for (int i = 0; i < 4096; i++) {
        seed = seed * 1103515245 + 12345;
        srcbuf[i] = (char)((seed >> 16) & 127);
    }
    for (int i = 0; i < 128; i++)
        toktab[i] = (i >= 97 && i <= 122) ? 1 : ((i & 3) == 0 ? 0 : 2);
    for (int i = 0; i < 2048; i++) {
        seed = seed * 1103515245 + 12345;
        code[i] = seed & 0xffff;
    }
    int total = 0;
    for (int fn = 0; fn < 40; fn++) {
        int *tree = build(7, fn * 2654435761);
        total += eval(tree);
        total += eval(tree);
        total += lex();
        for (int i = 0; i < 256; i++)
            interference[i] = (total >> (i & 7)) & 0xffff;
        total += colorRegs();
        total += peephole();
    }
    print(total);
    return 0;
}
)", "AST construction + recursive evaluation (compiler IR walks)", {}});

    // 124.m88ksim: a CPU simulator; fetch-decode-dispatch loop with
    // strided instruction-memory reads and register-file indexing.
    list.push_back({"124.m88ksim", Suite::SpecInt, R"(
int imem[4096];
int regs[32];
int dmem[1024];
int ctags[256];
int tlb[64];
int histo[64];
/* simulated cache lookup: tag compare + LRU touch */
int cacheProbe(int addr) {
    int set = (addr >> 4) & 127;
    int tag = addr >> 11;
    int a = ctags[set * 2];
    int b = ctags[set * 2 + 1];
    if ((a & 0xffffff) == tag)
        return 1;
    if ((b & 0xffffff) == tag) {
        ctags[set * 2 + 1] = a;
        ctags[set * 2] = b;
        return 1;
    }
    ctags[set * 2 + 1] = a;
    ctags[set * 2] = tag;
    return 0;
}
/* simulated TLB lookup */
int tlbProbe(int addr) {
    int vpn = (addr >> 12) & 63;
    int entry = tlb[vpn];
    if ((entry & 0xfff) == ((addr >> 12) & 0xfff))
        return entry >> 12;
    tlb[vpn] = ((addr >> 12) & 0xfff) | (addr << 12);
    return 0;
}
int main() {
    int seed = 31415;
    for (int i = 0; i < 4096; i++) {
        seed = seed * 1103515245 + 12345;
        imem[i] = seed;
    }
    for (int i = 0; i < 32; i++)
        regs[i] = i;
    int pc = 0;
    int retired = 0;
    int check = 0;
    while (retired < 120000) {
        int inst = imem[pc & 4095];
        int op = (inst >> 26) & 7;
        int rd = (inst >> 21) & 31;
        int ra = (inst >> 16) & 31;
        int rb = (inst >> 11) & 31;
        if (op == 0)
            regs[rd] = regs[ra] + regs[rb];
        else if (op == 1)
            regs[rd] = regs[ra] - regs[rb];
        else if (op == 2)
            regs[rd] = regs[ra] & regs[rb];
        else if (op == 3) {
            int ea = (regs[ra] + inst) & 1023;
            check += cacheProbe(ea * 4) + tlbProbe(ea * 64);
            regs[rd] = dmem[ea];
        } else if (op == 4) {
            int ea = (regs[ra] + inst) & 1023;
            check += cacheProbe(ea * 4);
            dmem[ea] = regs[rb];
        } else if (op == 5)
            pc = pc + 2;
        else
            regs[rd] = inst >> 8;
        regs[0] = 0;
        histo[op * 8] += 1;
        /* per-cycle bookkeeping: strided trace + stats reads */
        check += imem[(pc + 1) & 4095] & 1;
        check += dmem[retired & 1023] & 1;
        pc++;
        retired++;
        check += regs[rd & 31];
    }
    for (int i = 0; i < 64; i++)
        check += histo[i] * (i & 3);
    print(check);
    return 0;
}
)", "fetch/decode/dispatch CPU-simulator loop", {}});

    // 129.compress: the SPEC95 compress; same LZW core as 026 but
    // with a larger input and a decompression verification pass.
    list.push_back({"129.compress", Suite::SpecInt, R"(
int htab[8192];
char buf[32768];
int main() {
    int seed = 555;
    for (int i = 0; i < 32768; i++) {
        seed = seed * 1103515245 + 12345;
        /* skewed distribution: repetitive text-like input */
        int v = (seed >> 16) & 255;
        if (v > 64) v = v & 15;
        buf[i] = (char)v;
    }
    for (int i = 0; i < 8192; i++)
        htab[i] = 0;
    int checksum = 0;
    int state = buf[0];
    for (int i = 1; i < 32768; i++) {
        int c = buf[i];
        int key = ((state * 33) ^ c) & 8191;
        int h = htab[key];
        if ((h >> 9) == ((state << 1) | (c & 1))) {
            state = h & 511;
        } else {
            htab[key] = (((state << 1) | (c & 1)) << 9) | (c & 511);
            checksum += state;
            state = c;
        }
    }
    print(checksum);
    return 0;
}
)", "LZW with text-like skewed input (SPEC95 variant)", {}});

    // 130.li: the SPEC95 xlisp; garbage-collected cons heaps with a
    // mark phase (heavy pointer chasing, ~50% EC loads in the paper).
    list.push_back({"130.li", Suite::SpecInt, R"(
int nil;
int *freelist;
int *newbuf[8];
int bufrot = 0;
/* Fresh cells come from a scrambled batch buffer so heap order is
   fragmented, as after real garbage collection. */
int *freshcell() {
    if ((int)newbuf[0] == 0) {
        for (int i = 0; i < 8; i++)
            newbuf[i] = (int*)alloc(12);
    }
    bufrot = (bufrot * 3 + 1) & 7;
    int tries = 0;
    while ((int)newbuf[bufrot] == 0 && tries < 8) {
        bufrot = (bufrot + 1) & 7;
        tries++;
    }
    int *c = newbuf[bufrot];
    if ((int)c == 0)
        c = (int*)alloc(12);
    else
        newbuf[bufrot] = (int*)0;
    return c;
}
int *mkcell(int car, int cdr) {
    int *c;
    if ((int)freelist != nil) {
        c = freelist;
        freelist = (int*)c[1];
    } else {
        c = freshcell();
    }
    c[0] = car;
    c[1] = cdr;
    c[2] = 0;
    return c;
}
int mark(int *p) {
    int n = 0;
    while ((int)p != nil) {
        if (p[2])
            break;
        p[2] = 1;
        n++;
        p = (int*)p[1];
    }
    return n;
}
int sweep(int *p) {
    int freed = 0;
    while ((int)p != nil) {
        int *next = (int*)p[1];
        if (p[2] == 0) {
            p[1] = (int)freelist;
            freelist = p;
            freed++;
        } else {
            p[2] = 0;
        }
        p = next;
    }
    return freed;
}
int main() {
    nil = 0;
    freelist = (int*)nil;
    int total = 0;
    int all = nil;
    for (int gen = 0; gen < 60; gen++) {
        int keep = nil;
        for (int i = 0; i < 150; i++) {
            int *c = mkcell(i ^ gen, keep);
            keep = (int)c;
        }
        all = keep;
        total += mark((int*)all);
        /* unmark half so sweep recycles them */
        int *p = (int*)all;
        int k = 0;
        while ((int)p != nil) {
            if (k & 1)
                p[2] = 0;
            k++;
            p = (int*)p[1];
        }
        total += sweep((int*)all);
    }
    print(total);
    return 0;
}
)", "mark/sweep over cons heaps (xlisp GC)", {}});

    // 132.ijpeg: JPEG coding; block DCT-like kernels over image
    // arrays. Strided nested loops with small reused coefficient
    // tables; some reg+reg indexing survives strength reduction.
    list.push_back({"132.ijpeg", Suite::SpecInt, R"(
int image[16384];
int coef[64];
int block[64];
int out[64];
int main() {
    int seed = 271828;
    for (int i = 0; i < 16384; i++) {
        seed = seed * 1103515245 + 12345;
        image[i] = (seed >> 12) & 255;
    }
    for (int i = 0; i < 64; i++)
        coef[i] = ((i * 13) % 17) - 8;
    int energy = 0;
    for (int by = 0; by < 16; by++) {
        for (int bx = 0; bx < 16; bx++) {
            /* gather 8x8 block (strided rows) */
            for (int y = 0; y < 8; y++)
                for (int x = 0; x < 8; x++)
                    block[y * 8 + x] = image[(by * 8 + y) * 128 + bx * 8 + x];
            /* separable transform: rows then columns */
            for (int y = 0; y < 8; y++) {
                for (int u = 0; u < 8; u++) {
                    int acc = 0;
                    for (int x = 0; x < 8; x++)
                        acc += block[y * 8 + x] * coef[(u * 8 + x) & 63];
                    out[y * 8 + u] = acc >> 3;
                }
            }
            for (int x = 0; x < 8; x++) {
                for (int v = 0; v < 8; v++) {
                    int acc = 0;
                    for (int y = 0; y < 8; y++)
                        acc += out[y * 8 + x] * coef[(v * 8 + y) & 63];
                    block[v * 8 + x] = acc >> 6;
                }
            }
            energy += block[0] + block[63];
        }
    }
    print(energy);
    return 0;
}
)", "8x8 block transforms over an image (JPEG DCT)", {}});

    // 134.perl: bytecode interpreter with a hash-based symbol table;
    // dispatch-table loads are strided/constant, hash-node walks are
    // pointer loads.
    list.push_back({"134.perl", Suite::SpecInt, R"(
int prog[2048];
int *buckets[256];
char sbuf[1024];
char pattern[16];
int digits[10];
/* string concatenation / case folding over byte buffers */
int strops(int seed) {
    int len = 64 + (seed & 63);
    for (int i = 0; i < len; i++)
        sbuf[i] = (char)(97 + ((seed >> (i & 15)) & 15));
    int hash = 0;
    for (int i = 0; i < len; i++) {
        int c = sbuf[i];
        if (c >= 97)
            c -= 32;
        sbuf[(i + len) & 1023] = (char)c;
        hash = hash * 33 + c;
    }
    return hash;
}
/* naive substring matcher (regex literal scan) */
int match(int len) {
    int hits = 0;
    for (int i = 0; i + 4 < len; i++) {
        int j = 0;
        while (j < 4 && sbuf[i + j] == pattern[j])
            j++;
        if (j == 4)
            hits++;
    }
    return hits;
}
/* integer-to-decimal formatting (sprintf %d) */
int format(int value) {
    int n = 0;
    if (value < 0)
        value = -value;
    while (value > 0 && n < 10) {
        digits[n] = value % 10;
        value /= 10;
        n++;
    }
    int out = 0;
    for (int i = n - 1; i >= 0; i--)
        out = out * 10 + digits[i];
    return out + n;
}
int *mkentry(int key, int val, int *next) {
    int *e = (int*)alloc(12);
    e[0] = key;
    e[1] = val;
    e[2] = (int)next;
    return e;
}
int lookup(int key) {
    int *e = buckets[key & 255];
    while (e) {
        if (e[0] == key)
            return e[1];
        e = (int*)e[2];
    }
    return 0;
}
int insert(int key, int val) {
    int h = key & 255;
    int *e = buckets[h];
    while (e) {
        if (e[0] == key) {
            e[1] = val;
            return 0;
        }
        e = (int*)e[2];
    }
    buckets[h] = mkentry(key, val, buckets[h]);
    return 1;
}
int main() {
    int seed = 13579;
    for (int i = 0; i < 2048; i++) {
        seed = seed * 1103515245 + 12345;
        prog[i] = seed;
    }
    int acc = 0;
    int pc = 0;
    for (int steps = 0; steps < 60000; steps++) {
        int inst = prog[pc & 2047];
        int op = (inst >> 28) & 3;
        int key = (inst >> 8) & 4095;
        if (op == 0)
            acc += lookup(key);
        else if (op == 1)
            insert(key, acc & 65535);
        else if (op == 2) {
            acc = (acc << 1) ^ key;
            if ((steps & 255) == 0) {
                acc += strops(inst);
                pattern[0] = 'a'; pattern[1] = 'b';
                pattern[2] = 'a'; pattern[3] = 'c';
                acc += match(128);
                acc += format(acc);
            }
        } else
            pc += inst & 7;
        pc++;
    }
    print(acc);
    return 0;
}
)", "bytecode dispatch + chained hash symbol table", {}});

    // 147.vortex: an object-oriented database; dominated by walks of
    // allocated object graphs (the highest EC fraction in Table 2).
    list.push_back({"147.vortex", Suite::SpecInt, R"(
int *db[512];
int btree[2048];
char recbuf[512];
/* sorted-index binary search (the Vortex keyed index) */
int indexSearch(int key) {
    int lo = 0;
    int hi = 1023;
    while (lo < hi) {
        int mid = (lo + hi) >> 1;
        if (btree[mid * 2] < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return btree[lo * 2 + 1];
}
/* pack an object into a flat record buffer (byte stores/loads) */
int packRecord(int *o) {
    int sum = 0;
    for (int f = 0; f < 4; f++) {
        int v = o[f];
        recbuf[f * 4] = (char)(v & 255);
        recbuf[f * 4 + 1] = (char)((v >> 8) & 255);
        recbuf[f * 4 + 2] = (char)((v >> 16) & 255);
        recbuf[f * 4 + 3] = (char)((v >> 24) & 255);
    }
    for (int i = 0; i < 16; i++)
        sum += recbuf[i];
    return sum;
}
int *mkobj(int id, int a, int b, int *link) {
    int *o = (int*)alloc(20);
    o[0] = id;
    o[1] = a;
    o[2] = b;
    o[3] = (int)link;
    o[4] = 0;
    return o;
}
int main() {
    int seed = 86420;
    /* build 512 chains of small objects */
    for (int c = 0; c < 512; c++) {
        int *chain = (int*)0;
        for (int i = 0; i < 12; i++) {
            seed = seed * 1103515245 + 12345;
            chain = mkobj(c * 16 + i, (seed >> 8) & 1023, seed & 255, chain);
        }
        db[c] = chain;
    }
    for (int i = 0; i < 1024; i++) {
        btree[i * 2] = i * 3;
        btree[i * 2 + 1] = i ^ 21;
    }
    int found = 0;
    int sum = 0;
    for (int q = 0; q < 12000; q++) {
        seed = seed * 1103515245 + 12345;
        int want = (seed >> 10) & 1023;
        int *o = db[(seed >> 3) & 511];
        while (o) {
            if (o[1] == want) {
                found++;
                o[4] = o[4] + 1;
                sum += o[2];
                sum += packRecord(o);
                break;
            }
            o = (int*)o[3];
        }
        if ((q & 7) == 0)
            sum += indexSearch(want * 3);
    }
    print(found);
    print(sum);
    return 0;
}
)", "object-graph queries over chained records (OODB)", {}});

    return list;
}

} // namespace workloads
} // namespace elag
