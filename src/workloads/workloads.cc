#include "workloads/workloads.hh"

#include <algorithm>

namespace elag {
namespace workloads {

// Defined in spec_workloads.cc / media_workloads.cc.
std::vector<Workload> makeSpecWorkloads();
std::vector<Workload> makeMediaWorkloads();

const std::vector<Workload> &
specWorkloads()
{
    static const std::vector<Workload> list = makeSpecWorkloads();
    return list;
}

const std::vector<Workload> &
mediaWorkloads()
{
    static const std::vector<Workload> list = makeMediaWorkloads();
    return list;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const auto &w : specWorkloads()) {
        if (w.name == name)
            return &w;
    }
    for (const auto &w : mediaWorkloads()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

std::vector<const Workload *>
allWorkloads()
{
    std::vector<const Workload *> all;
    for (const auto &w : specWorkloads())
        all.push_back(&w);
    for (const auto &w : mediaWorkloads())
        all.push_back(&w);
    return all;
}

namespace {

/** Levenshtein distance, early-exiting via the row minimum. */
size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<size_t> row(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
        size_t diag = row[0];
        row[0] = i;
        for (size_t j = 1; j <= b.size(); ++j) {
            size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
        }
    }
    return row[b.size()];
}

} // namespace

std::string
suggestWorkload(const std::string &name)
{
    std::string best;
    size_t best_distance = 3; // hint only within edit distance 2
    for (const Workload *w : allWorkloads()) {
        size_t d = editDistance(name, w->name);
        if (d < best_distance) {
            best_distance = d;
            best = w->name;
        }
    }
    return best;
}

} // namespace workloads
} // namespace elag
