#include "workloads/workloads.hh"

namespace elag {
namespace workloads {

// Defined in spec_workloads.cc / media_workloads.cc.
std::vector<Workload> makeSpecWorkloads();
std::vector<Workload> makeMediaWorkloads();

const std::vector<Workload> &
specWorkloads()
{
    static const std::vector<Workload> list = makeSpecWorkloads();
    return list;
}

const std::vector<Workload> &
mediaWorkloads()
{
    static const std::vector<Workload> list = makeMediaWorkloads();
    return list;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const auto &w : specWorkloads()) {
        if (w.name == name)
            return &w;
    }
    for (const auto &w : mediaWorkloads()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

} // namespace workloads
} // namespace elag
