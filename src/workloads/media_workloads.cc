/**
 * @file
 * MediaBench-like workloads (paper Table 4).
 *
 * Embedded media kernels are dominated by strided DSP loops over
 * sample buffers and small constant lookup tables, with little
 * pointer chasing — which is why the paper's classifier marks far
 * more of their loads ld_p and why overall speedup is lower (loads
 * are a smaller fraction of the instruction mix).
 */

#include "workloads/workloads.hh"

namespace elag {
namespace workloads {

std::vector<Workload>
makeMediaWorkloads()
{
    std::vector<Workload> list;

    // ADPCM: 4-bit adaptive differential PCM. The simplest kernel:
    // one pass over the sample buffer with two small index tables.
    const char *adpcm_tables = R"(
int indexTable[16];
int stepTable[89];
int samples[8192];
int codes[8192];
int initTables() {
    int idx[16];
    idx[0] = -1; idx[1] = -1; idx[2] = -1; idx[3] = -1;
    idx[4] = 2; idx[5] = 4; idx[6] = 6; idx[7] = 8;
    for (int i = 0; i < 8; i++) {
        indexTable[i] = idx[i];
        indexTable[i + 8] = idx[i];
    }
    int step = 7;
    for (int i = 0; i < 89; i++) {
        stepTable[i] = step;
        step = step + (step >> 1) + (step >> 3) + 1;
        if (step > 32767) step = 32767;
    }
    return 0;
}
)";

    list.push_back({"adpcm_enc", Suite::MediaBench,
                    std::string(adpcm_tables) + R"(
int main() {
    initTables();
    int seed = 1234;
    for (int i = 0; i < 8192; i++) {
        seed = seed * 1103515245 + 12345;
        samples[i] = ((seed >> 8) & 4095) - 2048;
    }
    int valpred = 0;
    int index = 0;
    int check = 0;
    for (int rep = 0; rep < 8; rep++) {
        valpred = 0;
        index = 0;
        for (int i = 0; i < 8192; i++) {
            int step = stepTable[index];
            int diff = samples[i] - valpred;
            int sign = 0;
            if (diff < 0) { sign = 8; diff = -diff; }
            int delta = 0;
            int vpdiff = step >> 3;
            if (diff >= step) { delta = 4; diff -= step; vpdiff += step; }
            step = step >> 1;
            if (diff >= step) { delta |= 2; diff -= step; vpdiff += step; }
            step = step >> 1;
            if (diff >= step) { delta |= 1; vpdiff += step; }
            if (sign) valpred -= vpdiff;
            else valpred += vpdiff;
            if (valpred > 32767) valpred = 32767;
            else if (valpred < -32768) valpred = -32768;
            delta |= sign;
            index += indexTable[delta];
            if (index < 0) index = 0;
            if (index > 88) index = 88;
            codes[i] = delta;
            check += delta;
        }
    }
    print(check);
    return 0;
}
)", "ADPCM encode: strided samples + step tables", {}});

    list.push_back({"adpcm_dec", Suite::MediaBench,
                    std::string(adpcm_tables) + R"(
int main() {
    initTables();
    int seed = 4321;
    for (int i = 0; i < 8192; i++) {
        seed = seed * 1103515245 + 12345;
        codes[i] = (seed >> 9) & 15;
    }
    int check = 0;
    for (int rep = 0; rep < 8; rep++) {
        int valpred = 0;
        int index = 0;
        for (int i = 0; i < 8192; i++) {
            int delta = codes[i];
            int step = stepTable[index];
            index += indexTable[delta];
            if (index < 0) index = 0;
            if (index > 88) index = 88;
            int sign = delta & 8;
            delta = delta & 7;
            int vpdiff = step >> 3;
            if (delta & 4) vpdiff += step;
            if (delta & 2) vpdiff += step >> 1;
            if (delta & 1) vpdiff += step >> 2;
            if (sign) valpred -= vpdiff;
            else valpred += vpdiff;
            if (valpred > 32767) valpred = 32767;
            else if (valpred < -32768) valpred = -32768;
            samples[i] = valpred;
            check += valpred;
        }
    }
    print(check);
    return 0;
}
)", "ADPCM decode: code stream to samples", {}});

    // G.721: CCITT ADPCM with an adaptive predictor (fixed-point
    // multiply-accumulate over short coefficient arrays).
    const char *g721_common = R"(
int b[6];
int dq[6];
int input[4096];
int quan(int val) {
    int i = 0;
    while (i < 15) {
        if (val < ((i + 1) * (i + 1) * 8))
            break;
        i++;
    }
    return i;
}
int predict() {
    int acc = 0;
    for (int i = 0; i < 6; i++)
        acc += b[i] * dq[i];
    return acc >> 14;
}
int adapt(int d) {
    for (int i = 5; i > 0; i--)
        dq[i] = dq[i - 1];
    dq[0] = d;
    for (int i = 0; i < 6; i++) {
        if ((d ^ dq[i]) >= 0)
            b[i] += 32;
        else
            b[i] -= 32;
        if (b[i] > 8192) b[i] = 8192;
        if (b[i] < -8192) b[i] = -8192;
    }
    return 0;
}
)";

    list.push_back({"g721_enc", Suite::MediaBench,
                    std::string(g721_common) + R"(
int main() {
    int seed = 2020;
    for (int i = 0; i < 4096; i++) {
        seed = seed * 1103515245 + 12345;
        input[i] = ((seed >> 10) & 8191) - 4096;
    }
    int check = 0;
    for (int rep = 0; rep < 10; rep++) {
        for (int i = 0; i < 6; i++) { b[i] = 0; dq[i] = 32; }
        for (int i = 0; i < 4096; i++) {
            int se = predict();
            int d = input[i] - se;
            int sign = 0;
            if (d < 0) { sign = 1; d = -d; }
            int code = quan(d);
            adapt(sign ? -(code * 8) : code * 8);
            check += code;
        }
    }
    print(check);
    return 0;
}
)", "G.721 encode: adaptive predictor MACs", {}});

    list.push_back({"g721_dec", Suite::MediaBench,
                    std::string(g721_common) + R"(
int main() {
    int seed = 7070;
    for (int i = 0; i < 4096; i++) {
        seed = seed * 1103515245 + 12345;
        input[i] = (seed >> 13) & 31;
    }
    int check = 0;
    for (int rep = 0; rep < 10; rep++) {
        for (int i = 0; i < 6; i++) { b[i] = 0; dq[i] = 32; }
        for (int i = 0; i < 4096; i++) {
            int code = input[i];
            int sign = code & 16;
            int mag = (code & 15) * 8;
            int se = predict();
            int rec = sign ? se - mag : se + mag;
            adapt(sign ? -mag : mag);
            check += rec & 4095;
        }
    }
    print(check);
    return 0;
}
)", "G.721 decode: reconstruct + adapt", {}});

    // EPIC: pyramid (wavelet) image coding; strided filtering with
    // decimation, then run-length-ish coding.
    const char *epic_common = R"(
int img[16384];
int tmp[16384];
int filt(int n, int stride, int base) {
    int acc = 0;
    for (int i = 2; i < n - 2; i++) {
        int lo = img[base + (i - 2) * stride] + img[base + (i + 2) * stride];
        int mid = img[base + (i - 1) * stride] + img[base + (i + 1) * stride];
        int c = img[base + i * stride];
        tmp[base + i * stride] = (6 * c + 4 * mid - lo) >> 4;
        acc += tmp[base + i * stride];
    }
    return acc;
}
)";

    list.push_back({"epic_enc", Suite::MediaBench,
                    std::string(epic_common) + R"(
int main() {
    int seed = 909;
    for (int i = 0; i < 16384; i++) {
        seed = seed * 1103515245 + 12345;
        img[i] = (seed >> 16) & 255;
    }
    int check = 0;
    for (int level = 0; level < 3; level++) {
        int n = 128 >> level;
        for (int r = 0; r < n; r++)
            check += filt(n, 1, r * 128);
        for (int c = 0; c < n; c++)
            check += filt(n, 128, c);
        /* decimate into the top-left quadrant */
        for (int r = 0; r < n / 2; r++)
            for (int c = 0; c < n / 2; c++)
                img[r * 128 + c] = tmp[(r * 2) * 128 + c * 2];
    }
    print(check);
    return 0;
}
)", "EPIC encode: separable pyramid filtering", {}});

    list.push_back({"epic_dec", Suite::MediaBench,
                    std::string(epic_common) + R"(
int main() {
    int seed = 606;
    for (int i = 0; i < 16384; i++) {
        seed = seed * 1103515245 + 12345;
        img[i] = (seed >> 18) & 63;
    }
    int check = 0;
    for (int level = 2; level >= 0; level--) {
        int n = 128 >> level;
        /* upsample from quadrant */
        for (int r = n / 2 - 1; r >= 0; r--)
            for (int c = n / 2 - 1; c >= 0; c--) {
                int v = img[r * 128 + c];
                img[(r * 2) * 128 + c * 2] = v;
                img[(r * 2) * 128 + c * 2 + 1] = v;
                img[(r * 2 + 1) * 128 + c * 2] = v;
                img[(r * 2 + 1) * 128 + c * 2 + 1] = v;
            }
        for (int r = 0; r < n; r++)
            check += filt(n, 1, r * 128);
    }
    print(check);
    return 0;
}
)", "EPIC decode: upsample + smoothing filter", {}});

    // GSM 06.10: LPC analysis — autocorrelation and short-term
    // filtering, long MAC chains over sample windows.
    const char *gsm_common = R"(
int frame[160];
int lar[8];
int hist[8];
)";

    list.push_back({"gsm_enc", Suite::MediaBench,
                    std::string(gsm_common) + R"(
int main() {
    int seed = 160160;
    int check = 0;
    for (int f = 0; f < 300; f++) {
        for (int i = 0; i < 160; i++) {
            seed = seed * 1103515245 + 12345;
            frame[i] = ((seed >> 9) & 2047) - 1024;
        }
        /* autocorrelation lags 0..7 */
        for (int k = 0; k < 8; k++) {
            int acc = 0;
            for (int i = k; i < 160; i++)
                acc += frame[i] * frame[i - k];
            lar[k] = acc >> 10;
        }
        /* reflection-coefficient-ish recursion */
        for (int k = 1; k < 8; k++) {
            int denom = lar[0] + hist[k];
            if (denom == 0) denom = 1;
            hist[k] = (hist[k] * 3 + lar[k] * 1024 / denom) >> 2;
            check += hist[k] & 255;
        }
        /* short-term analysis filter */
        int s1 = 0;
        for (int i = 0; i < 160; i++) {
            int u = frame[i] - ((s1 * hist[1]) >> 12);
            s1 = frame[i];
            check += u & 3;
        }
    }
    print(check);
    return 0;
}
)", "GSM encode: autocorrelation + short-term filter", {}});

    list.push_back({"gsm_dec", Suite::MediaBench,
                    std::string(gsm_common) + R"(
int main() {
    int seed = 616;
    int check = 0;
    for (int f = 0; f < 300; f++) {
        for (int k = 0; k < 8; k++) {
            seed = seed * 1103515245 + 12345;
            lar[k] = ((seed >> 12) & 255) - 128;
        }
        /* synthesis filter over the frame */
        int s1 = 0;
        int s2 = 0;
        for (int i = 0; i < 160; i++) {
            seed = seed * 1103515245 + 12345;
            int e = ((seed >> 14) & 127) - 64;
            int v = e + ((s1 * lar[1] - s2 * lar[2]) >> 8);
            s2 = s1;
            s1 = v;
            frame[i] = v;
            check += v & 7;
        }
        /* post-filter pass */
        for (int i = 2; i < 160; i++)
            check += (frame[i] + frame[i - 1] + frame[i - 2]) & 1;
    }
    print(check);
    return 0;
}
)", "GSM decode: synthesis + post filter", {}});

    // Ghostscript: PostScript rendering — span filling driven by an
    // edge list (mixed strided framebuffer writes + sorted-edge
    // walks; the most pointer-heavy MediaBench member).
    list.push_back({"gs", Suite::MediaBench, R"(
int fb[16384];
int *edges[128];
int *mkedge(int y0, int y1, int x, int dx, int *next) {
    int *e = (int*)alloc(20);
    e[0] = y0; e[1] = y1; e[2] = x << 8; e[3] = dx; e[4] = (int)next;
    return e;
}
int main() {
    int seed = 3333;
    /* build per-scanline edge buckets */
    for (int i = 0; i < 128; i++)
        edges[i] = (int*)0;
    for (int p = 0; p < 300; p++) {
        seed = seed * 1103515245 + 12345;
        int y0 = (seed >> 8) & 63;
        int len = ((seed >> 20) & 31) + 2;
        int y1 = y0 + len;
        if (y1 > 127) y1 = 127;
        int x = (seed >> 14) & 127;
        int dx = ((seed >> 26) & 15) - 8;
        edges[y0] = mkedge(y0, y1, x, dx, edges[y0]);
    }
    int painted = 0;
    for (int y = 0; y < 128; y++) {
        int *e = edges[y];
        while (e) {
            int span = e[1] - e[0];
            int x = e[2];
            for (int s = 0; s < span; s++) {
                int xi = (x >> 8) & 127;
                fb[(y + s) * 128 + xi] += 1;
                x += e[3];
            }
            painted += span;
            e = (int*)e[4];
        }
    }
    int check = painted;
    for (int i = 0; i < 16384; i++)
        check += fb[i] * (i & 7);
    print(check);
    return 0;
}
)", "scanline span fill from edge lists (renderer)", {}});

    // JPEG decode: inverse DCT + dequantization over blocks.
    list.push_back({"jpeg_dec", Suite::MediaBench, R"(
int qtab[64];
int coeffs[16384];
int out[16384];
int block[64];
int main() {
    int seed = 5150;
    for (int i = 0; i < 64; i++)
        qtab[i] = 1 + ((i * 7) & 31);
    for (int i = 0; i < 16384; i++) {
        seed = seed * 1103515245 + 12345;
        coeffs[i] = ((seed >> 12) & 63) - 32;
    }
    int check = 0;
    for (int b = 0; b < 256; b++) {
        /* dequantize */
        for (int i = 0; i < 64; i++)
            block[i] = coeffs[b * 64 + i] * qtab[i];
        /* butterfly-ish row pass */
        for (int r = 0; r < 8; r++) {
            int base = r * 8;
            for (int k = 0; k < 4; k++) {
                int a = block[base + k];
                int c = block[base + 7 - k];
                block[base + k] = a + c;
                block[base + 7 - k] = (a - c) * (k + 1);
            }
        }
        /* column pass */
        for (int c = 0; c < 8; c++) {
            for (int k = 0; k < 4; k++) {
                int a = block[k * 8 + c];
                int d = block[(7 - k) * 8 + c];
                block[k * 8 + c] = a + d;
                block[(7 - k) * 8 + c] = (a - d) >> 1;
            }
        }
        for (int i = 0; i < 64; i++) {
            int v = block[i] >> 3;
            if (v < -128) v = -128;
            if (v > 127) v = 127;
            out[b * 64 + i] = v + 128;
            check += v & 15;
        }
    }
    print(check);
    return 0;
}
)", "JPEG decode: dequant + inverse transform", {}});

    // MPEG decode: motion compensation (block copies at data-
    // dependent offsets) + IDCT-like mixing.
    list.push_back({"mpeg_dec", Suite::MediaBench, R"(
int ref[16384];
int cur[16384];
int mv[512];
int main() {
    int seed = 24601;
    for (int i = 0; i < 16384; i++) {
        seed = seed * 1103515245 + 12345;
        ref[i] = (seed >> 16) & 255;
    }
    for (int i = 0; i < 512; i++) {
        seed = seed * 1103515245 + 12345;
        mv[i] = seed;
    }
    int check = 0;
    for (int frame = 0; frame < 6; frame++) {
        for (int by = 0; by < 16; by++) {
            for (int bx = 0; bx < 16; bx++) {
                int v = mv[(frame * 256 + by * 16 + bx) & 511];
                int dy = ((v >> 4) & 7) - 4;
                int dx = (v & 7) - 4;
                int sy = by * 8 + dy;
                int sx = bx * 8 + dx;
                if (sy < 0) sy = 0;
                if (sy > 120) sy = 120;
                if (sx < 0) sx = 0;
                if (sx > 120) sx = 120;
                /* motion-compensated copy + residual */
                for (int y = 0; y < 8; y++) {
                    for (int x = 0; x < 8; x++) {
                        int p = ref[(sy + y) * 128 + sx + x];
                        int r = ((v >> (x & 15)) & 3) - 1;
                        int o = p + r;
                        if (o < 0) o = 0;
                        if (o > 255) o = 255;
                        cur[(by * 8 + y) * 128 + bx * 8 + x] = o;
                    }
                }
            }
        }
        /* swap roles: cur becomes ref */
        for (int i = 0; i < 16384; i++)
            ref[i] = cur[i];
        check += cur[(frame * 997) & 16383];
    }
    print(check);
    return 0;
}
)", "MPEG decode: motion compensation block copies", {}});

    // PGP: multiprecision arithmetic (RSA-style modular multiply)
    // over word arrays — highly strided inner products.
    const char *pgp_common = R"(
int a[64];
int b[64];
int prod[128];
int mpmul() {
    for (int i = 0; i < 128; i++)
        prod[i] = 0;
    for (int i = 0; i < 64; i++) {
        int carry = 0;
        int ai = a[i];
        for (int j = 0; j < 64; j++) {
            int t = prod[i + j] + ai * b[j] + carry;
            prod[i + j] = t & 65535;
            carry = (t >> 16) & 65535;
        }
        prod[i + 64] += carry;
    }
    return prod[64];
}
)";

    list.push_back({"pgp_enc", Suite::MediaBench,
                    std::string(pgp_common) + R"(
int main() {
    int seed = 65537;
    int check = 0;
    for (int round = 0; round < 40; round++) {
        for (int i = 0; i < 64; i++) {
            seed = seed * 1103515245 + 12345;
            a[i] = (seed >> 8) & 65535;
            b[i] = (seed >> 12) & 65535;
        }
        check += mpmul();
        /* fold product back (modular-reduction-ish) */
        for (int i = 0; i < 64; i++)
            a[i] = (prod[i] + prod[i + 64]) & 65535;
        check += a[(round * 31) & 63];
    }
    print(check);
    return 0;
}
)", "PGP encrypt: multiprecision multiply kernels", {}});

    list.push_back({"pgp_dec", Suite::MediaBench,
                    std::string(pgp_common) + R"(
int main() {
    int seed = 99991;
    int check = 0;
    for (int i = 0; i < 64; i++) {
        seed = seed * 1103515245 + 12345;
        a[i] = (seed >> 8) & 65535;
        b[i] = (seed >> 4) & 65535;
    }
    /* square-and-multiply-like ladder */
    for (int bit = 0; bit < 48; bit++) {
        check += mpmul();
        for (int i = 0; i < 64; i++)
            b[i] = prod[i * 2 & 127] & 65535;
        if (check & 1) {
            for (int i = 0; i < 64; i++)
                a[i] = (a[i] + b[i]) & 65535;
        }
    }
    print(check);
    return 0;
}
)", "PGP decrypt: modular exponentiation ladder", {}});

    // RASTA: speech feature extraction — filterbank over spectral
    // frames (fixed-point, strided, table-driven).
    list.push_back({"rasta", Suite::MediaBench, R"(
int spec[256];
int bands[32];
int weights[256];
int history[160];
int main() {
    int seed = 8080;
    for (int i = 0; i < 256; i++)
        weights[i] = 1 + ((i * 11) & 63);
    int check = 0;
    for (int frame = 0; frame < 600; frame++) {
        for (int i = 0; i < 256; i++) {
            seed = seed * 1103515245 + 12345;
            spec[i] = (seed >> 14) & 1023;
        }
        /* critical-band integration */
        for (int b = 0; b < 32; b++) {
            int acc = 0;
            for (int k = 0; k < 8; k++)
                acc += spec[b * 8 + k] * weights[(b * 8 + k) & 255];
            bands[b] = acc >> 6;
        }
        /* RASTA IIR filtering across frames */
        for (int b = 0; b < 32; b++) {
            int h = history[b * 5 + (frame % 5)];
            int v = bands[b] - h + ((h * 94) >> 7);
            history[b * 5 + (frame % 5)] = bands[b];
            check += v & 31;
        }
    }
    print(check);
    return 0;
}
)", "RASTA-PLP filterbank over spectral frames", {}});

    return list;
}

} // namespace workloads
} // namespace elag
