/**
 * @file
 * Workload registry.
 *
 * The paper evaluates SPEC92/SPEC95 integer programs and the
 * MediaBench suite; neither is redistributable here, so each
 * benchmark is replaced by a mini-C program engineered to reproduce
 * the dominant load behaviour of its namesake (see DESIGN.md,
 * "Substitutions"). Every workload is a self-contained source string
 * compiled by the elag toolchain at bench time.
 */

#ifndef ELAG_WORKLOADS_WORKLOADS_HH
#define ELAG_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

namespace elag {
namespace workloads {

/** Which suite a workload imitates. */
enum class Suite { SpecInt, MediaBench };

/** One registered workload. */
struct Workload
{
    /** Name styled after the benchmark it imitates. */
    std::string name;
    Suite suite;
    /** Mini-C source. */
    std::string source;
    /** One-line description of the behaviour it reproduces. */
    std::string description;
    /** Expected print() output (checksums), for correctness tests. */
    std::vector<int32_t> expectedOutput;
};

/** All SPEC-like workloads (Table 2 / Table 3 / Figure 5 inputs). */
const std::vector<Workload> &specWorkloads();

/** All MediaBench-like workloads (Table 4 inputs). */
const std::vector<Workload> &mediaWorkloads();

/** Look up a workload by name in both suites (null if absent). */
const Workload *findWorkload(const std::string &name);

/** Both suites concatenated, SPEC first — `--list-workloads` order. */
std::vector<const Workload *> allWorkloads();

/**
 * The closest registered workload name to a misspelled @p name
 * (edit distance <= 2), or "" when nothing is close enough — the
 * did-you-mean hint behind elagc's unknown-workload usage error.
 */
std::string suggestWorkload(const std::string &name);

} // namespace workloads
} // namespace elag

#endif // ELAG_WORKLOADS_WORKLOADS_HH
