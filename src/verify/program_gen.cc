#include "verify/program_gen.hh"

namespace elag {
namespace verify {

namespace {

std::string
num(int64_t v)
{
    return std::to_string(v);
}

} // anonymous namespace

ProgramGen::ProgramGen(uint64_t seed) : rng(seed)
{
}

std::string
ProgramGen::kernel(int index)
{
    // Index the loop variables per kernel so nothing shadows.
    std::string i = "i" + num(index);
    std::string j = "j" + num(index);
    switch (rng.nextBounded(7)) {
      case 0: {
        // Strided scan: the bread-and-butter ld_p / ld_e case.
        int stride = 1 << rng.nextBounded(3);
        return "    for (int " + i + " = 0; " + i + " < 256; " + i +
               " += " + num(stride) + ")\n"
               "        sum += A[" + i + "] - B[" + i + "];\n";
      }
      case 1: {
        // Loop-carried recurrence: load feeds the next store.
        return "    for (int " + i + " = 1; " + i + " < 256; " + i +
               "++)\n"
               "        B[" + i + "] = B[" + i + " - 1] ^ A[" + i +
               "];\n"
               "    sum += B[255];\n";
      }
      case 2: {
        // Masked gather: address depends on a multiply, defeating
        // stride prediction part of the time.
        int k = 3 + 2 * static_cast<int>(rng.nextBounded(6));
        return "    for (int " + i + " = 0; " + i + " < 256; " + i +
               "++)\n"
               "        sum += A[(" + i + " * " + num(k) +
               ") & 255];\n";
      }
      case 3: {
        // Sub-word traffic: byte loads/stores interleaved with word
        // loads, exercising partial-overlap mem-interlock probes.
        return "    for (int " + i + " = 0; " + i + " < 256; " + i +
               "++) {\n"
               "        bytes[" + i + "] = bytes[" + i + "] + A[" + i +
               "];\n"
               "        sum += bytes[(" + i + " + 1) & 255];\n"
               "    }\n";
      }
      case 4: {
        // Store-to-load conflict: the store at i+1 is in flight when
        // the next iteration's load issues.
        return "    for (int " + i + " = 0; " + i + " < 255; " + i +
               "++) {\n"
               "        A[" + i + " + 1] = A[" + i + "] + " +
               num(1 + rng.nextBounded(9)) + ";\n"
               "        sum += A[" + i + "];\n"
               "    }\n";
      }
      case 5: {
        // Nested 2D walk with a short row, retraining the predictor
        // at every row boundary.
        int rows = 4 + static_cast<int>(rng.nextBounded(13));
        return "    for (int " + j + " = 0; " + j + " < " + num(rows) +
               "; " + j + "++)\n"
               "        for (int " + i + " = 0; " + i + " < 16; " + i +
               "++)\n"
               "            sum += C[(" + j + " * 16 + " + i +
               ") & 255];\n";
      }
      default: {
        // Indirect chase: B holds indices into A (all in range).
        return "    for (int " + i + " = 0; " + i + " < 256; " + i +
               "++)\n"
               "        sum += A[B[" + i + "] & 255];\n";
      }
    }
}

void
ProgramGen::skip(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        generate();
}

std::string
ProgramGen::generate()
{
    int32_t seed_const = static_cast<int32_t>(rng.next() & 0x7fffffff);
    int kernels = 2 + static_cast<int>(rng.nextBounded(4));

    std::string src;
    src += "int A[256];\n"
           "int B[256];\n"
           "int C[256];\n"
           "char bytes[256];\n"
           "int main() {\n"
           "    int seed = " + num(seed_const) + ";\n"
           "    for (int i = 0; i < 256; i++) {\n"
           "        seed = seed * 1103515245 + 12345;\n"
           "        A[i] = seed & 0xffff;\n"
           "        B[i] = (seed >> 8) & 255;\n"
           "        C[i] = (seed >> 4) & 4095;\n"
           "        bytes[i] = seed & 127;\n"
           "    }\n"
           "    int sum = 0;\n";
    for (int k = 0; k < kernels; ++k)
        src += kernel(k);
    src += "    print(sum);\n"
           "    print(sum ^ A[17] ^ B[91] ^ C[203] ^ bytes[5]);\n"
           "    return 0;\n"
           "}\n";
    return src;
}

} // namespace verify
} // namespace elag
