/**
 * @file
 * Differential kill-resume equivalence check.
 *
 * The checkpoint subsystem's correctness anchor: an uninterrupted
 * stats run and a run interrupted at every snapshot boundary — each
 * leg restored into freshly constructed simulator and observer
 * objects, exactly as a new process would — must produce
 * byte-identical stats documents. Any divergence means some piece of
 * simulation state escaped the serialize/restore hooks, which is the
 * one failure mode a checkpoint format cannot tolerate silently.
 *
 * Built as its own library (elag_ckptdiff) because it drives full
 * simulations: elag_verify itself is linked *by* the pipeline and
 * cannot depend back on elag_sim.
 */

#ifndef ELAG_VERIFY_CKPT_DIFF_HH
#define ELAG_VERIFY_CKPT_DIFF_HH

#include <cstdint>
#include <string>

namespace elag {
namespace verify {

/** Outcome of one differential check. */
struct CkptDiffResult
{
    /** The two stats documents were byte-identical. */
    bool equivalent = false;
    /** Interrupt-resume legs executed (0 means it never stopped). */
    uint32_t legs = 0;
    /** Stats JSON of the uninterrupted reference run. */
    std::string reference;
    /** Stats JSON of the interrupted-and-resumed run. */
    std::string resumed;
    /** Human-readable divergence summary (empty when equivalent). */
    std::string detail;
};

/**
 * Compile @p source, run it once uninterrupted and once interrupted
 * at every @p boundary_retires chunk boundary (snapshot to
 * @p ckpt_path, discard all live state, restore into fresh objects,
 * continue), and compare the two final stats documents byte for
 * byte. When @p with_checker is set the lockstep invariant checker
 * rides along on both sides, proving its shadow state survives the
 * round trip too. The snapshot file is removed on success.
 */
CkptDiffResult
checkKillResumeEquivalence(const std::string &source,
                           const std::string &ckpt_path,
                           uint64_t max_instructions,
                           uint64_t boundary_retires,
                           bool with_checker = false);

} // namespace verify
} // namespace elag

#endif // ELAG_VERIFY_CKPT_DIFF_HH
