#include "verify/ckpt_diff.hh"

#include <cstdio>

#include "sim/ckpt_run.hh"
#include "support/logging.hh"
#include "verify/invariant_checker.hh"

namespace elag {
namespace verify {

namespace {

/** First byte offset where @p a and @p b differ, with context. */
std::string
describeDivergence(const std::string &a, const std::string &b)
{
    size_t limit = a.size() < b.size() ? a.size() : b.size();
    size_t at = 0;
    while (at < limit && a[at] == b[at])
        ++at;
    size_t from = at > 30 ? at - 30 : 0;
    return formatString(
        "documents diverge at byte %zu (sizes %zu vs %zu): "
        "\"...%s\" vs \"...%s\"",
        at, a.size(), b.size(),
        a.substr(from, 60).c_str(), b.substr(from, 60).c_str());
}

} // anonymous namespace

CkptDiffResult
checkKillResumeEquivalence(const std::string &source,
                           const std::string &ckpt_path,
                           uint64_t max_instructions,
                           uint64_t boundary_retires,
                           bool with_checker)
{
    CkptDiffResult result;

    sim::CompiledProgram prog = sim::compile(source);
    const auto machine = pipeline::MachineConfig::proposed();
    const auto baseline = pipeline::MachineConfig::baseline();
    const sim::Watchdog watchdog;

    // Reference: one uninterrupted run through the same checkpointed
    // driver (with no snapshot path), so both sides share chunking.
    std::string reference;
    {
        pipeline::LoadTelemetry telemetry;
        InvariantChecker checker;
        sim::CkptPolicy policy;
        policy.everyRetires = boundary_retires;
        sim::CkptStatsOutcome ref = sim::runTimedCheckpointed(
            prog, machine, baseline, max_instructions, &telemetry,
            with_checker ? &checker : nullptr, nullptr, watchdog,
            policy);
        if (with_checker)
            checker.finish(ref.timed.pipe);
        reference = sim::statsReportJson("ckptdiff", "proposed", "",
                                         prog, ref.base, ref.timed,
                                         telemetry);
    }

    // Interrupted side: stop at the first boundary of every leg,
    // discard all live objects, restore from the file into fresh
    // ones — the in-process equivalent of SIGKILL + re-exec.
    std::string resumed;
    {
        std::string resume_from;
        for (;;) {
            pipeline::LoadTelemetry telemetry;
            InvariantChecker checker;
            sim::CkptPolicy policy;
            policy.path = ckpt_path;
            policy.everyRetires = boundary_retires;
            bool stop = true;
            policy.interrupted = [&stop] { return stop; };
            sim::CkptStatsOutcome leg = sim::runTimedCheckpointed(
                prog, machine, baseline, max_instructions, &telemetry,
                with_checker ? &checker : nullptr, nullptr, watchdog,
                policy, resume_from);
            if (!leg.interrupted) {
                if (with_checker)
                    checker.finish(leg.timed.pipe);
                resumed = sim::statsReportJson("ckptdiff", "proposed",
                                               "", prog, leg.base,
                                               leg.timed, telemetry);
                break;
            }
            ++result.legs;
            resume_from = ckpt_path;
        }
    }

    result.reference = reference;
    result.resumed = resumed;
    result.equivalent = reference == resumed;
    if (!result.equivalent)
        result.detail = describeDivergence(reference, resumed);
    else
        std::remove(ckpt_path.c_str());
    return result;
}

} // namespace verify
} // namespace elag
