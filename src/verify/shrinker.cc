#include "verify/shrinker.hh"

#include <algorithm>
#include <map>

namespace elag {
namespace verify {

namespace {

/** Memoizing wrapper so no subset is probed twice. */
class CachedOracle
{
  public:
    CachedOracle(const SubsetOracle &oracle, ShrinkStats *stats)
        : oracle(oracle), stats(stats)
    {}

    bool
    fails(const std::vector<size_t> &keep)
    {
        auto it = cache.find(keep);
        if (it != cache.end()) {
            if (stats)
                ++stats->cacheHits;
            return it->second;
        }
        bool result = oracle(keep);
        if (stats)
            ++stats->probes;
        cache.emplace(keep, result);
        return result;
    }

  private:
    const SubsetOracle &oracle;
    ShrinkStats *stats;
    std::map<std::vector<size_t>, bool> cache;
};

std::vector<size_t>
complementOf(const std::vector<size_t> &current,
             const std::vector<size_t> &chunk)
{
    std::vector<size_t> out;
    out.reserve(current.size() - chunk.size());
    std::set_difference(current.begin(), current.end(), chunk.begin(),
                        chunk.end(), std::back_inserter(out));
    return out;
}

} // namespace

std::vector<size_t>
ddmin(size_t n, const SubsetOracle &stillFails, ShrinkStats *stats)
{
    std::vector<size_t> current(n);
    for (size_t i = 0; i < n; ++i)
        current[i] = i;
    if (n == 0)
        return current;

    CachedOracle oracle(stillFails, stats);
    // Guard against flaky failures: if the full set no longer fails,
    // shrinking would "minimize" toward an unrelated subset.
    if (!oracle.fails(current))
        return current;

    size_t granularity = 2;
    while (current.size() >= 2) {
        size_t chunkCount = std::min(granularity, current.size());
        size_t base = current.size() / chunkCount;
        size_t extra = current.size() % chunkCount;

        // Split current into chunkCount nearly-equal chunks.
        std::vector<std::vector<size_t>> chunks;
        chunks.reserve(chunkCount);
        size_t pos = 0;
        for (size_t c = 0; c < chunkCount; ++c) {
            size_t len = base + (c < extra ? 1 : 0);
            chunks.emplace_back(current.begin() + pos,
                                current.begin() + pos + len);
            pos += len;
        }

        bool reduced = false;
        // Try each chunk alone ("reduce to subset").
        for (const auto &chunk : chunks) {
            if (chunk.size() < current.size() && oracle.fails(chunk)) {
                current = chunk;
                granularity = 2;
                reduced = true;
                break;
            }
        }
        if (!reduced && chunkCount > 2) {
            // Try each complement ("reduce to complement").
            for (const auto &chunk : chunks) {
                std::vector<size_t> rest = complementOf(current, chunk);
                if (!rest.empty() && oracle.fails(rest)) {
                    current = rest;
                    granularity = std::max<size_t>(granularity - 1, 2);
                    reduced = true;
                    break;
                }
            }
        }
        if (!reduced) {
            if (granularity >= current.size())
                break; // 1-minimal
            granularity = std::min(granularity * 2, current.size());
        }
    }
    return current;
}

uint64_t
shrinkScalar(uint64_t lo, uint64_t hi, const ScalarOracle &stillFails,
             ShrinkStats *stats)
{
    // Invariant: hi fails (caller-established), [lo, best) unknown.
    uint64_t best = hi;
    while (lo < best) {
        uint64_t mid = lo + (best - lo) / 2;
        bool fails = stillFails(mid);
        if (stats)
            ++stats->probes;
        if (fails)
            best = mid;
        else
            lo = mid + 1;
    }
    return best;
}

} // namespace verify
} // namespace elag
