#include "verify/invariant_checker.hh"

#include "ckpt/serial.hh"
#include "pipeline/pipeline.hh"
#include "support/logging.hh"

namespace elag {
namespace verify {

using pipeline::LoadPath;
using pipeline::PipelineStats;
using pipeline::RetiredInst;
using pipeline::SpecCounters;
using pipeline::SpecOutcome;
using pipeline::VerifyConditions;

namespace {

/** True for verdicts that imply a speculative access was dispatched. */
bool
dispatchedOutcome(SpecOutcome outcome)
{
    switch (outcome) {
      case SpecOutcome::Forwarded:
      case SpecOutcome::RegInterlock:
      case SpecOutcome::MemInterlock:
      case SpecOutcome::WrongAddress:
      case SpecOutcome::CacheMiss:
        return true;
      case SpecOutcome::NotAttempted:
      case SpecOutcome::NoPrediction:
      case SpecOutcome::NotBound:
      case SpecOutcome::PortDenied:
        return false;
    }
    return false;
}

} // anonymous namespace

InvariantChecker::Shadow &
InvariantChecker::shadowFor(LoadPath path)
{
    switch (path) {
      case LoadPath::Predict:
        return predict;
      case LoadPath::EarlyCalc:
        return earlyCalc;
      case LoadPath::Normal:
        break;
    }
    return normal;
}

void
InvariantChecker::onSpecDispatch(const RetiredInst &ri, LoadPath path,
                                 uint32_t specAddr, uint64_t cycle)
{
    ++checked;
    if (dispatchPending) {
        panic("invariant: pc=%u dispatches while pc=%u is still "
              "unresolved (dispatch without verdict)",
              ri.pc, pendingPc);
    }
    if (forwardPending) {
        panic("invariant: pc=%u dispatches while a Forwarded verdict "
              "for pc=%u has no forward event",
              ri.pc, forwardPc);
    }
    if (path == LoadPath::Normal)
        panic("invariant: speculative dispatch on the normal path "
              "(pc=%u)", ri.pc);
    dispatchPending = true;
    pendingPc = ri.pc;
    pendingAddr = specAddr;
    pendingCycle = cycle;
    pendingPath = path;
    shadowFor(path).speculated++;
}

void
InvariantChecker::onVerifyConditions(const RetiredInst &ri,
                                     LoadPath path, SpecOutcome outcome,
                                     const VerifyConditions &cond,
                                     uint64_t exeCycle)
{
    ++checked;
    (void)exeCycle;
    if (!dispatchPending || pendingPc != ri.pc || pendingPath != path) {
        panic("invariant: conditions event for pc=%u without a "
              "matching dispatch", ri.pc);
    }
    if (conditionsPending) {
        panic("invariant: duplicate conditions event for pc=%u",
              ri.pc);
    }
    if (!dispatchedOutcome(outcome)) {
        panic("invariant: conditions event carries non-dispatched "
              "verdict '%s' (pc=%u)", name(outcome), ri.pc);
    }
    conditionsPending = true;
    pendingConditions = cond;
    conditionsOutcome = outcome;
}

void
InvariantChecker::onVerify(const RetiredInst &ri, LoadPath path,
                           SpecOutcome outcome, uint64_t exeCycle)
{
    ++checked;
    if (forwardPending) {
        panic("invariant: verdict for pc=%u while a Forwarded verdict "
              "for pc=%u has no forward event", ri.pc, forwardPc);
    }
    if (exeCycle < lastExeCycle) {
        panic("invariant: verdict cycles run backwards (%llu after "
              "%llu, pc=%u)",
              static_cast<unsigned long long>(exeCycle),
              static_cast<unsigned long long>(lastExeCycle), ri.pc);
    }
    lastExeCycle = exeCycle;

    Shadow &shadow = shadowFor(path);
    shadow.executed++;
    shadow.outcomes[static_cast<size_t>(outcome)]++;

    if (dispatchedOutcome(outcome)) {
        // Conservation: this verdict must resolve the one pending
        // dispatch, and the hardware must have published its
        // condition measurements for it.
        if (!dispatchPending || pendingPc != ri.pc ||
            pendingPath != path) {
            panic("invariant: verdict '%s' for pc=%u without a "
                  "matching dispatch", name(outcome), ri.pc);
        }
        if (!conditionsPending || conditionsOutcome != outcome) {
            panic("invariant: verdict '%s' for pc=%u has no matching "
                  "conditions event", name(outcome), ri.pc);
        }
        if (pendingCycle >= exeCycle) {
            panic("invariant: dispatch at cycle %llu does not precede "
                  "its verdict at %llu (pc=%u)",
                  static_cast<unsigned long long>(pendingCycle),
                  static_cast<unsigned long long>(exeCycle), ri.pc);
        }
        const VerifyConditions &c = pendingConditions;
        switch (outcome) {
          case SpecOutcome::Forwarded:
            // THE Section-3.2 safety invariant: forwarding requires
            // all four conditions. First against the hardware's own
            // measurements...
            if (!c.allHold()) {
                panic("invariant: forwarded at pc=%u with a safety "
                      "condition violated (port=%d addr=%d hit=%d "
                      "reg_free=%d mem_free=%d)",
                      ri.pc, c.portAllocated, c.addrMatch, c.cacheHit,
                      c.regInterlockFree, c.memInterlockFree);
            }
            // ...then independently: the address dispatched early
            // must equal the committed effective address.
            if (pendingAddr != ri.effAddr) {
                panic("invariant: forwarded at pc=%u from speculative "
                      "address 0x%x but the committed address is 0x%x",
                      ri.pc, pendingAddr, ri.effAddr);
            }
            break;
          case SpecOutcome::WrongAddress:
            if (c.addrMatch) {
                panic("invariant: wrong-address verdict at pc=%u but "
                      "the hardware measured an address match", ri.pc);
            }
            break;
          case SpecOutcome::CacheMiss:
            if (c.cacheHit) {
                panic("invariant: cache-miss verdict at pc=%u but the "
                      "hardware measured a hit", ri.pc);
            }
            break;
          case SpecOutcome::RegInterlock:
            if (c.regInterlockFree) {
                panic("invariant: reg-interlock verdict at pc=%u but "
                      "the hardware measured no interlock", ri.pc);
            }
            break;
          case SpecOutcome::MemInterlock:
            if (c.memInterlockFree) {
                panic("invariant: mem-interlock verdict at pc=%u but "
                      "the hardware measured no interlock", ri.pc);
            }
            break;
          default:
            break;
        }
        dispatchPending = false;
        conditionsPending = false;
        if (outcome == SpecOutcome::Forwarded) {
            forwardPending = true;
            forwardPc = ri.pc;
            forwardExeCycle = exeCycle;
        }
    } else {
        if (dispatchPending) {
            panic("invariant: skip verdict '%s' for pc=%u leaves the "
                  "dispatch for pc=%u unresolved",
                  name(outcome), ri.pc, pendingPc);
        }
        if (conditionsPending) {
            panic("invariant: conditions event without a dispatched "
                  "verdict (pc=%u)", ri.pc);
        }
    }
}

void
InvariantChecker::onForward(const RetiredInst &ri, LoadPath path,
                            int latency, uint64_t readyCycle)
{
    ++checked;
    (void)path;
    if (!forwardPending || forwardPc != ri.pc) {
        panic("invariant: forward event for pc=%u without a Forwarded "
              "verdict", ri.pc);
    }
    if (latency < 0 || latency > 1) {
        panic("invariant: forward latency %d outside [0,1] (pc=%u)",
              latency, ri.pc);
    }
    if (readyCycle < forwardExeCycle ||
        readyCycle - forwardExeCycle !=
            static_cast<uint64_t>(latency)) {
        panic("invariant: forward ready cycle %llu inconsistent with "
              "verdict cycle %llu and latency %d (pc=%u)",
              static_cast<unsigned long long>(readyCycle),
              static_cast<unsigned long long>(forwardExeCycle),
              latency, ri.pc);
    }
    forwardPending = false;
    ++forwards;
}

void
InvariantChecker::checkShadow(const char *label, const Shadow &shadow,
                              const SpecCounters &counters)
{
    struct Pair
    {
        const char *what;
        uint64_t shadowed;
        uint64_t counted;
    };
    const Pair pairs[] = {
        {"executed", shadow.executed, counters.executed},
        {"speculated", shadow.speculated, counters.speculated},
        {"forwarded", shadow.count(SpecOutcome::Forwarded),
         counters.forwarded},
        {"no_prediction", shadow.count(SpecOutcome::NoPrediction),
         counters.noPrediction},
        {"not_bound", shadow.count(SpecOutcome::NotBound),
         counters.notBound},
        {"port_denied", shadow.count(SpecOutcome::PortDenied),
         counters.portDenied},
        {"reg_interlock", shadow.count(SpecOutcome::RegInterlock),
         counters.regInterlock},
        {"mem_interlock", shadow.count(SpecOutcome::MemInterlock),
         counters.memInterlock},
        {"wrong_address", shadow.count(SpecOutcome::WrongAddress),
         counters.wrongAddress},
        {"cache_miss", shadow.count(SpecOutcome::CacheMiss),
         counters.cacheMiss},
    };
    for (const Pair &p : pairs) {
        if (p.shadowed != p.counted) {
            panic("invariant: %s.%s diverged — observer stream says "
                  "%llu, PipelineStats says %llu",
                  label, p.what,
                  static_cast<unsigned long long>(p.shadowed),
                  static_cast<unsigned long long>(p.counted));
        }
    }
}

void
InvariantChecker::finish(const PipelineStats &stats) const
{
    if (dispatchPending) {
        panic("invariant: run finished with an unresolved dispatch "
              "for pc=%u", pendingPc);
    }
    if (forwardPending) {
        panic("invariant: run finished with an undelivered forward "
              "for pc=%u", forwardPc);
    }
    checkShadow("normal", normal, stats.normal);
    checkShadow("predict", predict, stats.predict);
    checkShadow("early_calc", earlyCalc, stats.earlyCalc);
    uint64_t executed =
        normal.executed + predict.executed + earlyCalc.executed;
    if (executed != stats.loads) {
        panic("invariant: verdicts cover %llu loads but the pipeline "
              "counted %llu",
              static_cast<unsigned long long>(executed),
              static_cast<unsigned long long>(stats.loads));
    }
    if (executed > 0 && stats.cycles < lastExeCycle) {
        panic("invariant: final cycle count %llu precedes the last "
              "verdict cycle %llu",
              static_cast<unsigned long long>(stats.cycles),
              static_cast<unsigned long long>(lastExeCycle));
    }
}

void
InvariantChecker::serialize(ckpt::Writer &w) const
{
    for (const Shadow *shadow : {&normal, &predict, &earlyCalc}) {
        w.varint(shadow->executed);
        w.varint(shadow->speculated);
        for (uint64_t count : shadow->outcomes)
            w.varint(count);
    }

    w.b(dispatchPending);
    w.varint(pendingPc);
    w.varint(pendingAddr);
    w.varint(pendingCycle);
    w.u8(static_cast<uint8_t>(pendingPath));

    w.b(conditionsPending);
    w.b(pendingConditions.portAllocated);
    w.b(pendingConditions.addrMatch);
    w.b(pendingConditions.cacheHit);
    w.b(pendingConditions.regInterlockFree);
    w.b(pendingConditions.memInterlockFree);
    w.u8(static_cast<uint8_t>(conditionsOutcome));

    w.b(forwardPending);
    w.varint(forwardPc);
    w.varint(forwardExeCycle);

    w.varint(lastExeCycle);
    w.varint(forwards);
    w.varint(checked);
}

void
InvariantChecker::restore(ckpt::Reader &r)
{
    for (Shadow *shadow : {&normal, &predict, &earlyCalc}) {
        shadow->executed = r.varint();
        shadow->speculated = r.varint();
        for (uint64_t &count : shadow->outcomes)
            count = r.varint();
    }

    dispatchPending = r.b();
    pendingPc = static_cast<uint32_t>(r.varint());
    pendingAddr = static_cast<uint32_t>(r.varint());
    pendingCycle = r.varint();
    pendingPath = static_cast<pipeline::LoadPath>(r.u8());

    conditionsPending = r.b();
    pendingConditions.portAllocated = r.b();
    pendingConditions.addrMatch = r.b();
    pendingConditions.cacheHit = r.b();
    pendingConditions.regInterlockFree = r.b();
    pendingConditions.memInterlockFree = r.b();
    conditionsOutcome = static_cast<pipeline::SpecOutcome>(r.u8());

    forwardPending = r.b();
    forwardPc = static_cast<uint32_t>(r.varint());
    forwardExeCycle = r.varint();

    lastExeCycle = r.varint();
    forwards = r.varint();
    checked = r.varint();
}

} // namespace verify
} // namespace elag
