/**
 * @file
 * Deterministic soak-program generation.
 *
 * ProgramGen emits random mini-C programs shaped like the paper's
 * workloads — global arrays walked by strided scans, dependent
 * recurrences, masked gathers, store/load conflicts and sub-word
 * byte traffic — so the soak driver can hammer every speculation
 * path. Programs are terminating by construction: every loop bound
 * is a literal constant and induction variables are only advanced by
 * the loop header. The same seed always yields the same source.
 */

#ifndef ELAG_VERIFY_PROGRAM_GEN_HH
#define ELAG_VERIFY_PROGRAM_GEN_HH

#include <cstdint>
#include <string>

#include "support/random.hh"

namespace elag {
namespace verify {

/** Seeded generator of terminating, memory-heavy mini-C programs. */
class ProgramGen
{
  public:
    explicit ProgramGen(uint64_t seed);

    /**
     * Generate one program. Deterministic per constructor seed; each
     * call continues the stream, so gen.generate() N times yields N
     * distinct reproducible programs.
     */
    std::string generate();

    /**
     * Generate and discard @p n programs, advancing the stream so the
     * next generate() yields program index n of this seed. Lets a
     * reproducer name one failing program as (seed, skip) without
     * re-materializing its predecessors at every probe site.
     */
    void skip(uint64_t n);

  private:
    std::string kernel(int index);

    Pcg32 rng;
};

} // namespace verify
} // namespace elag

#endif // ELAG_VERIFY_PROGRAM_GEN_HH
