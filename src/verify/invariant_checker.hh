/**
 * @file
 * Lockstep invariant checking for the timing model.
 *
 * InvariantChecker is a pipeline::Observer that shadows every load's
 * speculation lifecycle and panics (PanicError, via the standard
 * panic() taxonomy) the moment a Section-3.2 condition is violated:
 *
 *  - forwarding safety: a Forwarded verdict requires a dispatched
 *    port, a matching address, a cache hit, and clear register and
 *    memory interlocks — checked both against the hardware's own
 *    published VerifyConditions and, independently, against the
 *    dispatch address vs. the committed effective address;
 *  - event conservation: every speculative dispatch is resolved by
 *    exactly one verdict, every verdict belongs to exactly one
 *    executed load, and every Forwarded verdict produces exactly one
 *    forward — no event is dropped or duplicated;
 *  - cycle monotonicity: verdict cycles never run backwards, a
 *    dispatch precedes its verdict, and a forward's ready cycle and
 *    latency are consistent with its verdict cycle;
 *  - end-of-run conservation: finish() cross-checks the shadow
 *    counters against the pipeline's aggregate PipelineStats.
 *
 * The checker holds no reference to the pipeline's internals; it
 * sees only the public observer stream, so it validates the model
 * the way an external proof obligation would.
 */

#ifndef ELAG_VERIFY_INVARIANT_CHECKER_HH
#define ELAG_VERIFY_INVARIANT_CHECKER_HH

#include <cstdint>

#include "pipeline/observer.hh"
#include "pipeline/stats.hh"

namespace elag {

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

namespace verify {

/** The lockstep checker. Attach with Pipeline::attach(). */
class InvariantChecker : public pipeline::Observer
{
  public:
    void onSpecDispatch(const pipeline::RetiredInst &ri,
                        pipeline::LoadPath path, uint32_t specAddr,
                        uint64_t cycle) override;
    void onVerifyConditions(const pipeline::RetiredInst &ri,
                            pipeline::LoadPath path,
                            pipeline::SpecOutcome outcome,
                            const pipeline::VerifyConditions &cond,
                            uint64_t exeCycle) override;
    void onVerify(const pipeline::RetiredInst &ri,
                  pipeline::LoadPath path,
                  pipeline::SpecOutcome outcome,
                  uint64_t exeCycle) override;
    void onForward(const pipeline::RetiredInst &ri,
                   pipeline::LoadPath path, int latency,
                   uint64_t readyCycle) override;

    /**
     * End-of-run conservation: the shadow counters must agree with
     * the pipeline's aggregate statistics field by field, no event
     * may still be pending, and the cycle count must cover the last
     * verdict. Panics on any mismatch.
     */
    void finish(const pipeline::PipelineStats &stats) const;

    /** Total observer events validated (for "not vacuous" checks). */
    uint64_t eventsChecked() const { return checked; }

    /**
     * Checkpoint the shadow state (per-path counters, pending
     * events, cycle watermark), so a resumed verified run passes the
     * same end-of-run conservation checks as an uninterrupted one.
     */
    void serialize(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    /** Shadow of one path's SpecCounters, rebuilt from events. */
    struct Shadow
    {
        uint64_t executed = 0;
        uint64_t speculated = 0;
        uint64_t outcomes[pipeline::NumSpecOutcomes] = {};

        uint64_t
        count(pipeline::SpecOutcome o) const
        {
            return outcomes[static_cast<size_t>(o)];
        }
    };

    Shadow &shadowFor(pipeline::LoadPath path);
    static void checkShadow(const char *label, const Shadow &shadow,
                            const pipeline::SpecCounters &counters);

    Shadow normal, predict, earlyCalc;

    // In-flight dispatch (at most one: verdicts are synchronous).
    bool dispatchPending = false;
    uint32_t pendingPc = 0;
    uint32_t pendingAddr = 0;
    uint64_t pendingCycle = 0;
    pipeline::LoadPath pendingPath = pipeline::LoadPath::Normal;

    // Conditions event awaiting its verdict.
    bool conditionsPending = false;
    pipeline::VerifyConditions pendingConditions;
    pipeline::SpecOutcome conditionsOutcome =
        pipeline::SpecOutcome::NotAttempted;

    // Forwarded verdict awaiting its onForward.
    bool forwardPending = false;
    uint32_t forwardPc = 0;
    uint64_t forwardExeCycle = 0;

    uint64_t lastExeCycle = 0;
    uint64_t forwards = 0;
    uint64_t checked = 0;
};

} // namespace verify
} // namespace elag

#endif // ELAG_VERIFY_INVARIANT_CHECKER_HH
