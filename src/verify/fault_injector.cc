#include "verify/fault_injector.hh"

#include "ckpt/serial.hh"
#include "support/logging.hh"

namespace elag {
namespace verify {

namespace {

/** The named plan registry. Rates are deliberately aggressive: the
 *  soak's point is to hammer the failure arms of Section 3.2, not to
 *  model realistic fault frequencies. */
const std::vector<FaultPlan> &
registry()
{
    static const std::vector<FaultPlan> plans = [] {
        std::vector<FaultPlan> v;

        FaultPlan none;
        v.push_back(none);

        FaultPlan alias;
        alias.name = "tag-alias";
        alias.tagAliasRate = 0.15;
        v.push_back(alias);

        FaultPlan corrupt;
        corrupt.name = "corrupt";
        corrupt.entryCorruptRate = 0.15;
        v.push_back(corrupt);

        FaultPlan storm;
        storm.name = "raddr-storm";
        storm.raddrInvalidateRate = 0.25;
        storm.forceInterlockRate = 0.25;
        v.push_back(storm);

        FaultPlan starve;
        starve.name = "port-starve";
        starve.portStealRate = 0.5;
        v.push_back(starve);

        FaultPlan jitter;
        jitter.name = "jitter";
        jitter.latencyJitterRate = 0.3;
        jitter.latencyJitterMax = 40;
        v.push_back(jitter);

        FaultPlan vfail;
        vfail.name = "verify-fail";
        vfail.verifyFailRate = 0.3;
        v.push_back(vfail);

        FaultPlan chaos;
        chaos.name = "chaos";
        chaos.tagAliasRate = 0.05;
        chaos.entryCorruptRate = 0.05;
        chaos.raddrInvalidateRate = 0.1;
        chaos.forceInterlockRate = 0.1;
        chaos.portStealRate = 0.2;
        chaos.verifyFailRate = 0.1;
        chaos.latencyJitterRate = 0.1;
        chaos.latencyJitterMax = 24;
        v.push_back(chaos);

        FaultPlan bug_addr;
        bug_addr.name = "bug-addr-bypass";
        bug_addr.bypassAddressCheck = true;
        v.push_back(bug_addr);

        FaultPlan bug_lock;
        bug_lock.name = "bug-interlock-bypass";
        bug_lock.bypassInterlockCheck = true;
        v.push_back(bug_lock);

        return v;
    }();
    return plans;
}

bool
isGraceful(const FaultPlan &plan)
{
    return plan.name != "none" && !plan.bypassAddressCheck &&
           !plan.bypassInterlockCheck;
}

} // anonymous namespace

FaultPlan
planByName(const std::string &name)
{
    for (const FaultPlan &plan : registry()) {
        if (plan.name == name)
            return plan;
    }
    fatal("unknown fault plan '%s'", name.c_str());
}

std::vector<std::string>
gracefulPlanNames()
{
    std::vector<std::string> names;
    for (const FaultPlan &plan : registry()) {
        if (isGraceful(plan))
            names.push_back(plan.name);
    }
    return names;
}

std::vector<std::string>
allPlanNames()
{
    std::vector<std::string> names;
    for (const FaultPlan &plan : registry())
        names.push_back(plan.name);
    return names;
}

FaultInjector::FaultInjector(const FaultPlan &plan, uint64_t seed)
    : plan_(plan), seed_(seed), rng(seed)
{
}

bool
FaultInjector::fire(double rate, uint64_t &counter)
{
    if (rate <= 0.0)
        return false;
    if (!rng.nextBool(rate))
        return false;
    ++counter;
    return true;
}

bool
FaultInjector::fireTagAlias()
{
    return fire(plan_.tagAliasRate, counts_.tagAlias);
}

bool
FaultInjector::fireEntryCorrupt()
{
    return fire(plan_.entryCorruptRate, counts_.entryCorrupt);
}

bool
FaultInjector::fireRaddrInvalidate()
{
    return fire(plan_.raddrInvalidateRate, counts_.raddrInvalidate);
}

bool
FaultInjector::fireForceInterlock()
{
    return fire(plan_.forceInterlockRate, counts_.forceInterlock);
}

bool
FaultInjector::firePortSteal()
{
    return fire(plan_.portStealRate, counts_.portSteal);
}

bool
FaultInjector::fireVerifyFail()
{
    return fire(plan_.verifyFailRate, counts_.verifyFail);
}

uint32_t
FaultInjector::latencyJitter()
{
    if (plan_.latencyJitterMax == 0 ||
        !fire(plan_.latencyJitterRate, counts_.latencyJitter)) {
        return 0;
    }
    return 1 + rng.nextBounded(plan_.latencyJitterMax);
}

uint32_t
FaultInjector::corruptAddress(uint32_t addr)
{
    // Flip a random low bit plus a random block-sized bit so both
    // same-block and cross-block mispredictions are exercised.
    uint32_t low = 1u << rng.nextBounded(6);
    uint32_t high = 1u << (6 + rng.nextBounded(10));
    return addr ^ low ^ high;
}

void
FaultInjector::serialize(ckpt::Writer &w) const
{
    w.str(plan_.name);
    w.f64(plan_.tagAliasRate);
    w.f64(plan_.entryCorruptRate);
    w.f64(plan_.raddrInvalidateRate);
    w.f64(plan_.forceInterlockRate);
    w.f64(plan_.portStealRate);
    w.f64(plan_.verifyFailRate);
    w.f64(plan_.latencyJitterRate);
    w.varint(plan_.latencyJitterMax);
    w.b(plan_.bypassAddressCheck);
    w.b(plan_.bypassInterlockCheck);
    w.u64(seed_);
    w.u64(rng.rawState());
    w.u64(rng.rawInc());
    w.varint(counts_.tagAlias);
    w.varint(counts_.entryCorrupt);
    w.varint(counts_.raddrInvalidate);
    w.varint(counts_.forceInterlock);
    w.varint(counts_.portSteal);
    w.varint(counts_.verifyFail);
    w.varint(counts_.latencyJitter);
}

void
FaultInjector::restore(ckpt::Reader &r)
{
    plan_.name = r.str();
    plan_.tagAliasRate = r.f64();
    plan_.entryCorruptRate = r.f64();
    plan_.raddrInvalidateRate = r.f64();
    plan_.forceInterlockRate = r.f64();
    plan_.portStealRate = r.f64();
    plan_.verifyFailRate = r.f64();
    plan_.latencyJitterRate = r.f64();
    plan_.latencyJitterMax = static_cast<uint32_t>(r.varint());
    plan_.bypassAddressCheck = r.b();
    plan_.bypassInterlockCheck = r.b();
    seed_ = r.u64();
    uint64_t state = r.u64();
    uint64_t inc = r.u64();
    rng.setRaw(state, inc);
    counts_.tagAlias = r.varint();
    counts_.entryCorrupt = r.varint();
    counts_.raddrInvalidate = r.varint();
    counts_.forceInterlock = r.varint();
    counts_.portSteal = r.varint();
    counts_.verifyFail = r.varint();
    counts_.latencyJitter = r.varint();
}

} // namespace verify
} // namespace elag
