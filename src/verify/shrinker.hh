/**
 * @file
 * Automatic failure shrinking by delta debugging.
 *
 * When a campaign job fails, the raw reproducer is usually too big to
 * debug: dozens of generated programs times a list of fault plans.
 * ddmin() (Zeller & Hildebrandt's minimizing delta debugging) reduces
 * any index set whose failure is decided by an oracle callback to a
 * 1-minimal failing subset — removing any single remaining element
 * makes the failure disappear. shrinkScalar() binary-searches the
 * smallest failing value of a monotone numeric parameter (e.g. a
 * watchdog budget or program count).
 *
 * Both are oracle-agnostic: tools/elag_campaign plugs in "re-run the
 * job in a sandboxed subprocess and compare the failure taxonomy",
 * tests plug in cheap synthetic predicates or in-process simulation.
 */

#ifndef ELAG_VERIFY_SHRINKER_HH
#define ELAG_VERIFY_SHRINKER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace elag {
namespace verify {

/**
 * Failure oracle over a candidate subset (ascending indices into the
 * original item list). Returns true when the configuration built
 * from exactly these items still exhibits the original failure.
 */
using SubsetOracle =
    std::function<bool(const std::vector<size_t> &keep)>;

/** Bookkeeping from one shrink run. */
struct ShrinkStats
{
    uint64_t probes = 0;    ///< oracle invocations actually executed
    uint64_t cacheHits = 0; ///< subsets answered from the probe cache
};

/**
 * Minimize the failing index set [0, n) with ddmin.
 *
 * Preconditions: the full set fails (callers have already observed
 * the failure; this is re-checked and the full set is returned if the
 * failure no longer reproduces — a flaky failure must not shrink to
 * nonsense). The oracle must be deterministic for the result to be
 * 1-minimal. Duplicate subsets are cached, so oracles backed by
 * expensive subprocess runs are probed at most once per candidate.
 *
 * @return ascending minimal failing indices (empty only when n == 0).
 */
std::vector<size_t> ddmin(size_t n, const SubsetOracle &stillFails,
                          ShrinkStats *stats = nullptr);

/** Failure oracle over a scalar parameter value. */
using ScalarOracle = std::function<bool(uint64_t value)>;

/**
 * Smallest value in [lo, hi] for which @p stillFails holds, assuming
 * failure is monotone in the value (if v fails, every v' >= v fails).
 * Returns hi when only hi fails; callers should verify hi fails
 * before asking.
 */
uint64_t shrinkScalar(uint64_t lo, uint64_t hi,
                      const ScalarOracle &stillFails,
                      ShrinkStats *stats = nullptr);

} // namespace verify
} // namespace elag

#endif // ELAG_VERIFY_SHRINKER_HH
