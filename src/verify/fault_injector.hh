/**
 * @file
 * Deterministic, seeded fault injection for the timing model.
 *
 * A FaultInjector perturbs the speculation hardware through narrow,
 * named decision points — stride-table tag aliasing and entry
 * corruption, forced R_addr invalidation and interlock storms, data-
 * cache port starvation, memory-latency jitter, and forced
 * verification failures. Every fault is *graceful* by Section 3.2's
 * argument: it can only suppress or mis-steer speculation, never
 * corrupt architectural state, so under any plan the emulator-
 * committed results must stay bit-identical while timing moves.
 *
 * Two deliberate *bug* switches (bypassAddressCheck,
 * bypassInterlockCheck) break the forwarding safety conditions
 * themselves; they exist so tests can prove the InvariantChecker
 * detects a broken implementation, and are excluded from the
 * graceful plan set.
 */

#ifndef ELAG_VERIFY_FAULT_INJECTOR_HH
#define ELAG_VERIFY_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/random.hh"

namespace elag {

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

namespace verify {

/** Per-fault firing rates; all zero means a no-op injector. */
struct FaultPlan
{
    std::string name = "none";
    /** Address-table probe ignores a tag mismatch (aliased entry). */
    double tagAliasRate = 0.0;
    /** Address-table probe returns a bit-flipped predicted address. */
    double entryCorruptRate = 0.0;
    /** R_addr binding dropped right before an ld_e probe. */
    double raddrInvalidateRate = 0.0;
    /** Base register treated as interlocked at ID1. */
    double forceInterlockRate = 0.0;
    /** Early-stage data-cache port reported busy. */
    double portStealRate = 0.0;
    /** Verification forced to fail despite a matching address. */
    double verifyFailRate = 0.0;
    /** Probability a cache miss gets extra latency. */
    double latencyJitterRate = 0.0;
    /** Maximum extra miss cycles when jitter fires. */
    uint32_t latencyJitterMax = 0;

    // --- deliberate bugs (NOT graceful; the checker must catch) ---
    /** Forward even when the speculative address mismatches. */
    bool bypassAddressCheck = false;
    /** Forward even when the base register is interlocked. */
    bool bypassInterlockCheck = false;
};

/** @return the plan registered under @p name; fatal() if unknown. */
FaultPlan planByName(const std::string &name);

/** Names of all graceful plans (excludes "none" and bug plans). */
std::vector<std::string> gracefulPlanNames();

/** Names of every registered plan, graceful and bug alike. */
std::vector<std::string> allPlanNames();

/**
 * Seeded fault source. The hardware models query it at each decision
 * point; identical (plan, seed) pairs replay identical fault
 * sequences, so every soak failure is reproducible from its seed.
 */
class FaultInjector
{
  public:
    /** How often each fault class actually fired. */
    struct Counts
    {
        uint64_t tagAlias = 0;
        uint64_t entryCorrupt = 0;
        uint64_t raddrInvalidate = 0;
        uint64_t forceInterlock = 0;
        uint64_t portSteal = 0;
        uint64_t verifyFail = 0;
        uint64_t latencyJitter = 0;

        uint64_t
        total() const
        {
            return tagAlias + entryCorrupt + raddrInvalidate +
                   forceInterlock + portSteal + verifyFail +
                   latencyJitter;
        }
    };

    explicit FaultInjector(const FaultPlan &plan, uint64_t seed);

    // Decision points (one rng draw each; order is deterministic).
    bool fireTagAlias();
    bool fireEntryCorrupt();
    bool fireRaddrInvalidate();
    bool fireForceInterlock();
    bool firePortSteal();
    bool fireVerifyFail();
    /** @return extra miss-penalty cycles (0 when jitter is quiet). */
    uint32_t latencyJitter();

    bool bypassAddressCheck() const { return plan_.bypassAddressCheck; }
    bool
    bypassInterlockCheck() const
    {
        return plan_.bypassInterlockCheck;
    }

    /** Deterministic bit-flip used for corrupted addresses. */
    uint32_t corruptAddress(uint32_t addr);

    const FaultPlan &plan() const { return plan_; }
    uint64_t seed() const { return seed_; }
    const Counts &counts() const { return counts_; }

    /**
     * Checkpoint the full injector: plan, seed, raw PRNG state and
     * fired counts. Restoring resumes the fault stream exactly where
     * the snapshot left it, so an injected run replayed from a
     * checkpoint sees the identical fault sequence.
     */
    void serialize(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    bool fire(double rate, uint64_t &counter);

    FaultPlan plan_;
    uint64_t seed_;
    Pcg32 rng;
    Counts counts_;
};

} // namespace verify
} // namespace elag

#endif // ELAG_VERIFY_FAULT_INJECTOR_HH
