#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <vector>

namespace elag {

namespace {
// Atomic so worker threads may consult it while the main thread
// flips it (relaxed: it only gates diagnostics).
std::atomic<bool> quietFlag{false};
} // anonymous namespace

std::string
vformatString(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
formatString(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    throw PanicError("panic: " + msg);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    throw FatalError("fatal: " + msg);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool q)
{
    quietFlag.store(q, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

} // namespace elag
