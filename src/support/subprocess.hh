/**
 * @file
 * Sandboxed subprocess execution for crash-isolated job running.
 *
 * runSubprocess() forks a child into its own process group, applies
 * optional rlimit caps (CPU seconds, address space), captures stdout
 * and stderr through pipes with a per-stream truncation cap, and
 * enforces a wall-clock timeout by SIGKILLing the whole group. The
 * parent never blocks uninterruptibly: pipes are drained with poll()
 * against the deadline, so a child that hangs with open descriptors
 * is still killed on time.
 *
 * This is the isolation layer under tools/elag_campaign: a crashed,
 * hung, or memory-exploding job takes down only its own process, and
 * the caller gets enough of the exit status back to classify the
 * failure (clean exit / signal / timeout / suspected OOM kill).
 */

#ifndef ELAG_SUPPORT_SUBPROCESS_HH
#define ELAG_SUPPORT_SUBPROCESS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace elag {

/** Resource caps applied to one subprocess run; 0 means unlimited. */
struct SubprocessLimits
{
    /** Wall-clock budget; past it the process group is SIGKILLed. */
    uint64_t wallTimeoutMs = 0;
    /** RLIMIT_CPU in seconds (kernel delivers SIGXCPU/SIGKILL). */
    uint64_t cpuSeconds = 0;
    /** RLIMIT_AS in bytes (allocations past it fail in the child). */
    uint64_t addressSpaceBytes = 0;
    /** Per-stream capture cap; excess output is drained, not stored. */
    size_t maxCaptureBytes = 1 << 20;
};

/** How a subprocess run ended, in classification priority order. */
enum class SubprocessStatus {
    Exited,      ///< normal exit; see exitCode
    Signaled,    ///< killed by a signal it raised itself; see termSignal
    TimedOut,    ///< wall-clock cap hit; we SIGKILLed the group
    StartFailed, ///< fork/pipe failure in the parent; see error
};

/** Everything the caller needs to classify and log one run. */
struct SubprocessResult
{
    SubprocessStatus status = SubprocessStatus::StartFailed;
    /** Exit code when status == Exited (127 = exec failed). */
    int exitCode = -1;
    /** Terminating signal when status is Signaled or TimedOut. */
    int termSignal = 0;
    std::string out; ///< captured stdout (possibly truncated)
    std::string err; ///< captured stderr (possibly truncated)
    bool outTruncated = false;
    bool errTruncated = false;
    uint64_t wallMs = 0; ///< wall-clock duration of the run
    std::string error; ///< parent-side failure detail (StartFailed)

    /**
     * A SIGKILL we did not send ourselves: on Linux this is the OOM
     * killer's signature (the kernel never SIGKILLs for RLIMIT_AS —
     * that surfaces as allocation failure — but it does for cgroup /
     * system OOM, and RLIMIT_CPU hard-limit overrun).
     */
    bool
    oomSuspected() const
    {
        return status == SubprocessStatus::Signaled &&
               termSignal == 9 /* SIGKILL */;
    }
};

/**
 * Run @p argv (argv[0] is the executable, resolved via PATH) under
 * @p limits and block until it finishes or times out. Thread-safe:
 * only async-signal-safe calls happen between fork and exec, so
 * worker-pool threads may call this concurrently.
 */
SubprocessResult runSubprocess(const std::vector<std::string> &argv,
                               const SubprocessLimits &limits = {});

/** "exit 7", "signal 11 (SIGSEGV)", "timeout after 1200 ms", ... */
std::string describeSubprocessResult(const SubprocessResult &result);

/**
 * Resource caps applied to a long-lived spawned child. Unlike
 * SubprocessLimits there is no wall-clock cap: supervision-tree
 * children live until their supervisor stops them, and hang
 * detection is the supervisor's job (heartbeats, per-request
 * deadlines), not the spawn layer's.
 */
struct SpawnLimits
{
    /** RLIMIT_CPU in seconds (kernel delivers SIGXCPU/SIGKILL). */
    uint64_t cpuSeconds = 0;
    /** RLIMIT_AS in bytes (allocations past it fail in the child). */
    uint64_t addressSpaceBytes = 0;
};

/**
 * Fork+exec @p argv as a long-lived child in its own process group,
 * with @p limits applied before exec and stdio inherited from the
 * parent. The same fork discipline as runSubprocess applies (only
 * async-signal-safe calls before exec), so a multithreaded
 * supervisor may spawn and respawn workers at any time.
 *
 * @return the child pid, or -1 with @p error set when fork failed.
 * An exec failure surfaces as the child exiting 127, observable
 * through pollSpawned().
 */
pid_t spawnSubprocess(const std::vector<std::string> &argv,
                      const SpawnLimits &limits, std::string &error);

/** Snapshot of a spawned child's state from a non-blocking poll. */
struct SpawnedStatus
{
    /** False once the child has been reaped (exit/signal below). */
    bool running = true;
    /** Exit code when the child exited normally, else -1. */
    int exitCode = -1;
    /** Terminating signal when the child was killed, else 0. */
    int termSignal = 0;
};

/**
 * waitpid(WNOHANG) for a child created with spawnSubprocess. Once a
 * poll reports the child down it has been reaped; further polls on
 * that pid are invalid.
 */
SpawnedStatus pollSpawned(pid_t pid);

/**
 * Block up to @p timeout_ms for the child to exit, reaping it.
 * @return running == true when the deadline passed first.
 */
SpawnedStatus waitSpawned(pid_t pid, uint64_t timeout_ms);

/**
 * Deliver @p sig to the child's whole process group (spawned
 * children are their own group leaders), so helpers the worker
 * forked die with it. Safe on an already-dead group.
 */
void killSpawnedGroup(pid_t pid, int sig);

} // namespace elag

#endif // ELAG_SUPPORT_SUBPROCESS_HH
