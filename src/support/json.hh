/**
 * @file
 * Minimal JSON emission for machine-readable statistics.
 *
 * JsonWriter is a push-style serializer: begin/end nesting calls plus
 * typed value calls, with commas and indentation handled internally.
 * It covers exactly what the stats exporters need (objects, arrays,
 * strings, numbers, booleans, null) with no external dependency.
 * jsonValid() is a structural validator used by tests and tools to
 * assert that emitted documents parse.
 */

#ifndef ELAG_SUPPORT_JSON_HH
#define ELAG_SUPPORT_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace elag {

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/** @return true if @p text is one complete, valid JSON value. */
bool jsonValid(const std::string &text);

/**
 * Pull the value of the first member named @p key out of a flat JSON
 * document — a line-oriented complement to JsonWriter for consumers
 * of our own JSONL manifests, not a general JSON parser. The match
 * is textual (first `"key":` occurrence), so it is only reliable on
 * documents whose shape the caller controls, e.g. campaign manifest
 * records where each key appears once.
 *
 * jsonExtractString unescapes the standard JSON escapes; it fails on
 * non-string values. jsonExtractUint fails unless the value is a
 * bare unsigned integer.
 *
 * @return true and set @p out on success; false otherwise.
 */
bool jsonExtractString(const std::string &doc, const std::string &key,
                       std::string &out);
bool jsonExtractUint(const std::string &doc, const std::string &key,
                     uint64_t &out);

/**
 * Extract the raw text of the first member named @p key — the exact
 * bytes of its value, balanced across nested objects/arrays and
 * escape-aware inside strings. Unlike jsonExtractString this works
 * for any value kind and performs no unescaping, so a sub-document
 * spliced in with JsonWriter::rawValue() can be recovered verbatim.
 * Subject to the same first-occurrence caveat as the extractors
 * above.
 */
bool jsonExtractRaw(const std::string &doc, const std::string &key,
                    std::string &out);

/**
 * Incremental JSON document writer.
 *
 * Usage:
 *     JsonWriter w;
 *     w.beginObject();
 *     w.field("cycles", stats.cycles);
 *     w.key("ipc").value(stats.ipc());
 *     w.endObject();
 *     std::string doc = w.str();
 *
 * Misuse (a value with no pending key inside an object, unbalanced
 * end calls, str() on an unfinished document) reports through
 * panic().
 */
class JsonWriter
{
  public:
    /** @param indent spaces per nesting level; 0 emits compact JSON */
    explicit JsonWriter(int indent = 2);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object member key; the next call must emit its value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(uint32_t v) { return value(uint64_t{v}); }
    JsonWriter &value(int v) { return value(int64_t{v}); }
    JsonWriter &value(bool v);
    JsonWriter &nullValue();

    /**
     * Splice a pre-rendered JSON document in as a value, verbatim.
     * The caller guarantees @p json is one complete valid JSON value;
     * its internal indentation is preserved untouched, so the exact
     * bytes can later be recovered with jsonExtractRaw(). Used to
     * embed an independently generated report inside a response
     * envelope without re-serializing it.
     */
    JsonWriter &rawValue(const std::string &json);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

    /** The finished document; panics if nesting is still open. */
    std::string str() const;

  private:
    struct Level
    {
        bool object = false;
        bool first = true;
    };

    /** Emit separators/indent before a value or key. */
    void prepare(bool is_key);
    void newline();

    std::string out;
    std::vector<Level> stack;
    int indentWidth;
    bool keyPending = false;
    bool done = false;
};

} // namespace elag

#endif // ELAG_SUPPORT_JSON_HH
