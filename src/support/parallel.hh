/**
 * @file
 * Fixed-size worker thread pool and an ordered parallel-map
 * primitive for fan-out of independent simulation jobs.
 *
 * The benchmark sweeps (workload x MachineConfig grids) and the
 * campaign/soak drivers are embarrassingly parallel: every cell is an
 * independent, deterministic simulation. parallelMap() runs such a
 * grid on a pool of worker threads while keeping the *results* in
 * input order, so callers produce byte-identical tables and JSON at
 * any job count.
 *
 * Contract:
 *  - Results are returned in input order regardless of completion
 *    order.
 *  - If one or more jobs throw, the exception of the lowest-index
 *    failing job is rethrown after every in-flight job has drained
 *    (deterministic error reporting at any job count).
 *  - An effective job count of 1 bypasses the pool entirely: jobs
 *    run inline on the calling thread and no worker threads are ever
 *    created.
 *  - Calls nested inside a pool worker run inline on that worker (a
 *    worker blocking on sub-jobs it cannot steal would deadlock the
 *    fixed-size pool).
 *
 * The effective job count resolves, in order: setJobs() (e.g. from a
 * --jobs=N flag), the ELAG_JOBS environment variable, then
 * std::thread::hardware_concurrency().
 */

#ifndef ELAG_SUPPORT_PARALLEL_HH
#define ELAG_SUPPORT_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace elag {
namespace parallel {

/**
 * Job count from the environment: a strictly-parsed positive
 * ELAG_JOBS if set (invalid values warn and are ignored), else
 * hardware_concurrency(), else 1.
 */
unsigned defaultJobs();

/** The configured effective job count (setJobs value or defaultJobs). */
unsigned jobs();

/**
 * Set the effective job count (from --jobs=N). Must be >= 1; call it
 * before the first parallelMap so the shared pool is sized to match.
 */
void setJobs(unsigned n);

/** @return true when called from inside a pool worker thread. */
bool inWorker();

/** A fixed-size worker thread pool executing queued tasks. */
class ThreadPool
{
  public:
    /** Spawn @p workers persistent worker threads (>= 1). */
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workers() const
    {
        return static_cast<unsigned>(threads.size());
    }

    /** Enqueue one task for execution on a worker thread. */
    void submit(std::function<void()> task);

    /**
     * The process-wide pool, created on first use with jobs()
     * workers. Size is fixed at creation; configure with setJobs()
     * before the first parallel call.
     */
    static ThreadPool &shared();

  private:
    void workerLoop();

    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> threads;
    bool stopping = false;
};

namespace detail {

/**
 * Run @p run(0..count-1) on @p pool and block until all indices have
 * finished; rethrows the lowest-index exception, if any.
 */
void runIndexed(ThreadPool &pool, size_t count,
                const std::function<void(size_t)> &run);

} // namespace detail

/**
 * Apply @p fn to every element of @p items and return the results in
 * input order. Runs on @p pool; pass jobs_override=1 (or configure
 * jobs()==1) to run inline on the calling thread with no pool.
 */
template <typename T, typename Fn>
auto
parallelMap(ThreadPool &pool, const std::vector<T> &items, Fn fn)
    -> std::vector<decltype(fn(items[0]))>
{
    using R = decltype(fn(items[0]));
    std::vector<R> results(items.size());
    if (items.empty())
        return results;
    if (inWorker() || items.size() == 1 || pool.workers() <= 1) {
        for (size_t i = 0; i < items.size(); ++i)
            results[i] = fn(items[i]);
        return results;
    }
    detail::runIndexed(pool, items.size(),
                       [&](size_t i) { results[i] = fn(items[i]); });
    return results;
}

/**
 * parallelMap on the shared pool sized by the configured job count.
 * When the effective job count is 1, runs inline and never touches
 * (or creates) the pool.
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn fn)
    -> std::vector<decltype(fn(items[0]))>
{
    using R = decltype(fn(items[0]));
    if (jobs() <= 1 || inWorker() || items.size() <= 1) {
        std::vector<R> results(items.size());
        for (size_t i = 0; i < items.size(); ++i)
            results[i] = fn(items[i]);
        return results;
    }
    return parallelMap(ThreadPool::shared(), items, fn);
}

} // namespace parallel
} // namespace elag

#endif // ELAG_SUPPORT_PARALLEL_HH
