/**
 * @file
 * Small string helpers shared across the toolchain.
 */

#ifndef ELAG_SUPPORT_STRINGS_HH
#define ELAG_SUPPORT_STRINGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace elag {

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> splitString(const std::string &s, char sep);

/** Strip leading and trailing whitespace. */
std::string trimString(const std::string &s);

/** Join strings with a separator. */
std::string joinStrings(const std::vector<std::string> &parts,
                        const std::string &sep);

/** true if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** true if @p s ends with @p suffix. */
bool endsWith(const std::string &s, const std::string &suffix);

/** Left-pad with spaces to @p width. */
std::string padLeft(const std::string &s, size_t width);

/** Right-pad with spaces to @p width. */
std::string padRight(const std::string &s, size_t width);

/**
 * Strict decimal parse of an unsigned integer: the whole string must
 * be digits (one optional leading '+') and fit the result type.
 * Rejects empty input, signs, whitespace, trailing garbage, and
 * overflow — unlike std::stoull, which accepts "12abc" and negatives.
 * @return false (leaving @p out untouched) on any violation.
 */
bool parseUint64(const std::string &s, uint64_t &out);

/** parseUint64 with an additional max bound of UINT32_MAX. */
bool parseUint32(const std::string &s, uint32_t &out);

/** Format a double with fixed precision. */
std::string formatDouble(double v, int precision);

/** Format a fraction (0..1) as a percentage string like "93.01". */
std::string formatPercent(double fraction, int precision = 2);

} // namespace elag

#endif // ELAG_SUPPORT_STRINGS_HH
