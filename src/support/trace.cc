#include "support/trace.hh"

#include <cstdarg>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "support/logging.hh"
#include "support/strings.hh"

namespace elag {
namespace trace {

/** Process-wide channel registry (function-local singleton). */
class Registry
{
  public:
    static Registry &
    instance()
    {
        static Registry registry;
        return registry;
    }

    Channel &
    get(const std::string &name)
    {
        // Channel references are handed out for the process lifetime;
        // only the registry map itself needs the lock (concurrent
        // Pipeline constructions resolve their channels in parallel).
        std::lock_guard<std::mutex> lock(mu);
        return getLocked(name);
    }

    void
    enable(const std::string &name, bool on)
    {
        std::lock_guard<std::mutex> lock(mu);
        enableLocked(name, on);
    }

    void
    disableAll()
    {
        std::lock_guard<std::mutex> lock(mu);
        allEnabled = false;
        for (auto &kv : channels)
            kv.second->enabled_ = false;
    }

    void
    applyEnvironment()
    {
        std::lock_guard<std::mutex> lock(mu);
        if (envApplied)
            return;
        envApplied = true;
        const char *spec = std::getenv("ELAG_TRACE");
        if (!spec || !*spec)
            return;
        for (const std::string &name : splitString(spec, ',')) {
            std::string trimmed = trimString(name);
            if (!trimmed.empty())
                enableLocked(trimmed, true);
        }
    }

    std::vector<std::string>
    names() const
    {
        std::lock_guard<std::mutex> lock(mu);
        std::vector<std::string> out;
        out.reserve(channels.size());
        for (const auto &kv : channels)
            out.push_back(kv.first); // map keeps them sorted
        return out;
    }

    std::FILE *
    out() const
    {
        std::FILE *f = output.load(std::memory_order_relaxed);
        return f ? f : stderr;
    }

    /**
     * Write one fully assembled line. Serialized under its own
     * mutex (not the registry lock: channel lookups must not stall
     * behind I/O) so lines from concurrent --jobs=N workers never
     * interleave or tear mid-line.
     */
    void
    writeLine(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(outMu);
        std::FILE *f = out();
        std::fwrite(line.data(), 1, line.size(), f);
    }
    void
    setOutput(std::FILE *file)
    {
        output.store(file, std::memory_order_relaxed);
    }

  private:
    Registry() { applyEnvironment(); }

    Channel &
    getLocked(const std::string &name)
    {
        auto it = channels.find(name);
        if (it == channels.end()) {
            it = channels
                     .emplace(name, std::unique_ptr<Channel>(
                                        new Channel(name)))
                     .first;
            it->second->enabled_ = allEnabled;
        }
        return *it->second;
    }

    void
    enableLocked(const std::string &name, bool on)
    {
        if (name == "all") {
            allEnabled = on;
            for (auto &kv : channels)
                kv.second->enabled_ = on;
            return;
        }
        getLocked(name).enabled_ = on;
    }

    mutable std::mutex mu;
    std::mutex outMu;
    std::map<std::string, std::unique_ptr<Channel>> channels;
    bool allEnabled = false;
    bool envApplied = false;
    std::atomic<std::FILE *> output{nullptr};
};

void
Channel::log(uint64_t cycle, const char *fmt, ...)
{
    if (!enabled_)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    // Assemble the whole line first and emit it as one serialized
    // write: concurrent --jobs=N workers used to interleave their
    // cycle stamps and messages mid-line through stdio.
    std::string line =
        formatString("%10llu: %s: %s\n",
                     static_cast<unsigned long long>(cycle),
                     name_.c_str(), msg.c_str());
    Registry::instance().writeLine(line);
}

Channel &
channel(const std::string &name)
{
    return Registry::instance().get(name);
}

void
enable(const std::string &name, bool on)
{
    Registry::instance().enable(name, on);
}

void
enableSpec(const std::string &spec)
{
    for (const std::string &name : splitString(spec, ',')) {
        std::string trimmed = trimString(name);
        if (!trimmed.empty())
            enable(trimmed, true);
    }
}

void
disableAll()
{
    Registry::instance().disableAll();
}

void
applyEnvironment()
{
    Registry::instance().applyEnvironment();
}

std::vector<std::string>
channelNames()
{
    return Registry::instance().names();
}

void
setOutput(std::FILE *out)
{
    Registry::instance().setOutput(out);
}

} // namespace trace
} // namespace elag
