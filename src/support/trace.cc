#include "support/trace.hh"

#include <cstdarg>
#include <cstdlib>
#include <map>
#include <memory>

#include "support/logging.hh"
#include "support/strings.hh"

namespace elag {
namespace trace {

/** Process-wide channel registry (function-local singleton). */
class Registry
{
  public:
    static Registry &
    instance()
    {
        static Registry registry;
        return registry;
    }

    Channel &
    get(const std::string &name)
    {
        auto it = channels.find(name);
        if (it == channels.end()) {
            it = channels
                     .emplace(name, std::unique_ptr<Channel>(
                                        new Channel(name)))
                     .first;
            it->second->enabled_ = allEnabled;
        }
        return *it->second;
    }

    void
    enable(const std::string &name, bool on)
    {
        if (name == "all") {
            allEnabled = on;
            for (auto &kv : channels)
                kv.second->enabled_ = on;
            return;
        }
        get(name).enabled_ = on;
    }

    void
    disableAll()
    {
        allEnabled = false;
        for (auto &kv : channels)
            kv.second->enabled_ = false;
    }

    void
    applyEnvironment()
    {
        if (envApplied)
            return;
        envApplied = true;
        const char *spec = std::getenv("ELAG_TRACE");
        if (!spec || !*spec)
            return;
        for (const std::string &name : splitString(spec, ',')) {
            std::string trimmed = trimString(name);
            if (!trimmed.empty())
                enable(trimmed, true);
        }
    }

    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        out.reserve(channels.size());
        for (const auto &kv : channels)
            out.push_back(kv.first); // map keeps them sorted
        return out;
    }

    std::FILE *out() const { return output ? output : stderr; }
    void setOutput(std::FILE *file) { output = file; }

  private:
    Registry() { applyEnvironment(); }

    std::map<std::string, std::unique_ptr<Channel>> channels;
    bool allEnabled = false;
    bool envApplied = false;
    std::FILE *output = nullptr;
};

void
Channel::log(uint64_t cycle, const char *fmt, ...)
{
    if (!enabled_)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(Registry::instance().out(), "%10llu: %s: %s\n",
                 static_cast<unsigned long long>(cycle),
                 name_.c_str(), msg.c_str());
}

Channel &
channel(const std::string &name)
{
    return Registry::instance().get(name);
}

void
enable(const std::string &name, bool on)
{
    Registry::instance().enable(name, on);
}

void
enableSpec(const std::string &spec)
{
    for (const std::string &name : splitString(spec, ',')) {
        std::string trimmed = trimString(name);
        if (!trimmed.empty())
            enable(trimmed, true);
    }
}

void
disableAll()
{
    Registry::instance().disableAll();
}

void
applyEnvironment()
{
    Registry::instance().applyEnvironment();
}

std::vector<std::string>
channelNames()
{
    return Registry::instance().names();
}

void
setOutput(std::FILE *out)
{
    Registry::instance().setOutput(out);
}

} // namespace trace
} // namespace elag
