/**
 * @file
 * gem5-style trace channels.
 *
 * A Channel is a named, runtime-switchable debug stream. Simulator
 * code holds a reference to its channel and emits cycle-stamped
 * lines through the ELAG_TRACE_EVT macro; when the channel is
 * disabled the macro costs one predictable branch and evaluates no
 * arguments, so tracing can stay compiled into release builds.
 *
 * Channels are enabled programmatically (trace::enableSpec), from
 * the command line (elagc --trace=pipeline,raddr) or from the
 * environment:
 *
 *     ELAG_TRACE=pipeline,predict ./build/tools/elagc --stats prog.c
 *     ELAG_TRACE=all              ./build/tools/elagc prog.c
 *
 * Output goes to stderr by default and can be redirected with
 * trace::setOutput(). Line format:
 *
 *     <cycle>: <channel>: <message>
 */

#ifndef ELAG_SUPPORT_TRACE_HH
#define ELAG_SUPPORT_TRACE_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace elag {
namespace trace {

/** One named trace stream. Obtain instances via trace::channel(). */
class Channel
{
  public:
    const std::string &name() const { return name_; }
    bool
    enabled() const
    {
        // Relaxed: enable/disable are configuration actions, not
        // synchronization points; concurrent simulations only need a
        // tear-free read on their per-event fast path.
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Emit one cycle-stamped line. Does nothing when disabled;
     * prefer ELAG_TRACE_EVT, which also skips argument evaluation.
     */
    void log(uint64_t cycle, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

  private:
    friend class Registry;
    explicit Channel(const std::string &name) : name_(name) {}

    std::string name_;
    std::atomic<bool> enabled_{false};
};

/**
 * Get (creating if needed) the channel named @p name. The first
 * registry access also applies the ELAG_TRACE environment variable,
 * so env-enabled tracing needs no tool support. References stay
 * valid for the process lifetime.
 */
Channel &channel(const std::string &name);

/** Enable or disable one channel by name ("all" matches every one). */
void enable(const std::string &name, bool on = true);

/**
 * Enable channels from a comma-separated spec, e.g.
 * "pipeline,raddr" or "all". Empty names are ignored.
 */
void enableSpec(const std::string &spec);

/** Disable every channel (including ones created later). */
void disableAll();

/** Apply the ELAG_TRACE environment variable (idempotent). */
void applyEnvironment();

/** Names of all registered channels, sorted. */
std::vector<std::string> channelNames();

/** Redirect trace output (default stderr); nullptr resets. */
void setOutput(std::FILE *out);

} // namespace trace
} // namespace elag

/**
 * Emit a trace event on @p chan. Arguments are not evaluated when
 * the channel is disabled.
 */
#define ELAG_TRACE_EVT(chan, cycle, ...)                                \
    do {                                                                \
        if ((chan).enabled())                                           \
            (chan).log((cycle), __VA_ARGS__);                           \
    } while (0)

#endif // ELAG_SUPPORT_TRACE_HH
