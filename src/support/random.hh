/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload generators and property tests need reproducible streams
 * that do not depend on the standard library's unspecified
 * distributions, so a small PCG32 implementation is provided.
 */

#ifndef ELAG_SUPPORT_RANDOM_HH
#define ELAG_SUPPORT_RANDOM_HH

#include <cstdint>

namespace elag {

/**
 * PCG32 pseudo-random generator (O'Neill, 2014). Deterministic across
 * platforms for a given seed, unlike std::default_random_engine.
 */
class Pcg32
{
  public:
    /** Construct with a seed and optional stream selector. */
    explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                   uint64_t seq = 0xda3e39cb94b95bdbULL);

    /** @return the next 32 random bits. */
    uint32_t next();

    /** @return a uniform integer in [0, bound) (bound > 0). */
    uint32_t nextBounded(uint32_t bound);

    /** @return a uniform integer in [lo, hi] (inclusive). */
    int32_t nextRange(int32_t lo, int32_t hi);

    /** @return a uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability p. */
    bool nextBool(double p = 0.5);

    /**
     * Raw generator state, for checkpointing. setRaw() with values
     * from rawState()/rawInc() resumes the stream exactly where the
     * snapshot left it.
     */
    uint64_t rawState() const { return state; }
    uint64_t rawInc() const { return inc; }
    void
    setRaw(uint64_t raw_state, uint64_t raw_inc)
    {
        state = raw_state;
        inc = raw_inc;
    }

  private:
    uint64_t state;
    uint64_t inc;
};

} // namespace elag

#endif // ELAG_SUPPORT_RANDOM_HH
