#include "support/strings.hh"

#include <cctype>
#include <cstdio>

namespace elag {

std::vector<std::string>
splitString(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

bool
parseUint64(const std::string &s, uint64_t &out)
{
    size_t i = 0;
    if (i < s.size() && s[i] == '+')
        ++i;
    if (i == s.size())
        return false;
    uint64_t value = 0;
    for (; i < s.size(); ++i) {
        if (s[i] < '0' || s[i] > '9')
            return false;
        uint64_t digit = static_cast<uint64_t>(s[i] - '0');
        if (value > (UINT64_MAX - digit) / 10)
            return false; // overflow
        value = value * 10 + digit;
    }
    out = value;
    return true;
}

bool
parseUint32(const std::string &s, uint32_t &out)
{
    uint64_t wide = 0;
    if (!parseUint64(s, wide) || wide > UINT32_MAX)
        return false;
    out = static_cast<uint32_t>(wide);
    return true;
}

std::string
trimString(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
joinStrings(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
padLeft(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
formatDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return std::string(buf);
}

std::string
formatPercent(double fraction, int precision)
{
    return formatDouble(fraction * 100.0, precision);
}

} // namespace elag
