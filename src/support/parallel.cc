#include "support/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>

#include "support/logging.hh"
#include "support/strings.hh"

namespace elag {
namespace parallel {

namespace {

/** Explicit setJobs() override; 0 means "not set". */
std::atomic<unsigned> configuredJobs{0};

/** Set for the lifetime of a pool worker thread. */
thread_local bool insideWorker = false;

} // anonymous namespace

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("ELAG_JOBS")) {
        uint32_t n = 0;
        if (parseUint32(env, n) && n >= 1)
            return n;
        warn("ignoring invalid ELAG_JOBS value '%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

unsigned
jobs()
{
    unsigned n = configuredJobs.load(std::memory_order_relaxed);
    return n != 0 ? n : defaultJobs();
}

void
setJobs(unsigned n)
{
    if (n == 0)
        panic("parallel::setJobs: job count must be >= 1");
    configuredJobs.store(n, std::memory_order_relaxed);
}

bool
inWorker()
{
    return insideWorker;
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        panic("ThreadPool: worker count must be >= 1");
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping)
            panic("ThreadPool::submit on a stopping pool");
        queue.push_back(std::move(task));
    }
    cv.notify_one();
}

void
ThreadPool::workerLoop()
{
    insideWorker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
    }
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool(jobs());
    return pool;
}

namespace detail {

void
runIndexed(ThreadPool &pool, size_t count,
           const std::function<void(size_t)> &run)
{
    struct State
    {
        std::atomic<size_t> next{0};
        std::mutex mu;
        std::condition_variable done;
        size_t activeDrivers = 0;
        size_t firstFailure = std::numeric_limits<size_t>::max();
        std::exception_ptr error;
    } state;

    // One driver task per worker (bounded by the item count); each
    // driver pulls indices from the shared counter until the range is
    // exhausted. Every index still runs after a failure: only that
    // keeps "which exception propagates" (the lowest-index one)
    // identical at any job count.
    size_t drivers = pool.workers() < count ? pool.workers() : count;
    {
        std::lock_guard<std::mutex> lock(state.mu);
        state.activeDrivers = drivers;
    }
    for (size_t d = 0; d < drivers; ++d) {
        pool.submit([&state, count, &run] {
            for (;;) {
                size_t i =
                    state.next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    break;
                try {
                    run(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state.mu);
                    if (i < state.firstFailure) {
                        state.firstFailure = i;
                        state.error = std::current_exception();
                    }
                }
            }
            std::lock_guard<std::mutex> lock(state.mu);
            if (--state.activeDrivers == 0)
                state.done.notify_all();
        });
    }

    std::unique_lock<std::mutex> lock(state.mu);
    state.done.wait(lock, [&state] { return state.activeDrivers == 0; });
    if (state.error)
        std::rethrow_exception(state.error);
}

} // namespace detail

} // namespace parallel
} // namespace elag
