#include "support/table.hh"

#include "support/strings.hh"

#include <algorithm>

namespace elag {

void
TextTable::setHeader(const std::vector<std::string> &cols)
{
    header = cols;
}

void
TextTable::addRow(const std::vector<std::string> &cols)
{
    Row r;
    r.cells = cols;
    rows.push_back(std::move(r));
}

void
TextTable::addSeparator()
{
    Row r;
    r.separator = true;
    rows.push_back(std::move(r));
}

std::vector<std::vector<std::string>>
TextTable::dataRows() const
{
    std::vector<std::vector<std::string>> out;
    out.reserve(rows.size());
    for (const auto &r : rows)
        if (!r.separator)
            out.push_back(r.cells);
    return out;
}

std::string
TextTable::render() const
{
    size_t ncols = header.size();
    for (const auto &r : rows)
        ncols = std::max(ncols, r.cells.size());

    std::vector<size_t> widths(ncols, 0);
    auto measure = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    measure(header);
    for (const auto &r : rows)
        if (!r.separator)
            measure(r.cells);

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (size_t i = 0; i < ncols; ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            if (i == 0)
                line += padRight(cell, widths[i]);
            else
                line += padLeft(cell, widths[i]);
            if (i + 1 < ncols)
                line += "  ";
        }
        return line + "\n";
    };

    size_t total = 0;
    for (size_t i = 0; i < ncols; ++i)
        total += widths[i] + (i + 1 < ncols ? 2 : 0);
    std::string sep(total, '-');
    sep += "\n";

    std::string out;
    if (!header.empty()) {
        out += renderRow(header);
        out += sep;
    }
    for (const auto &r : rows)
        out += r.separator ? sep : renderRow(r.cells);
    return out;
}

} // namespace elag
