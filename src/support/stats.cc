#include "support/stats.hh"

#include "support/json.hh"
#include "support/logging.hh"

namespace elag {

Histogram::Histogram(size_t num_buckets, uint64_t bucket_width)
    : buckets(num_buckets, 0), width(bucket_width)
{
    elag_assert(num_buckets > 0 && bucket_width > 0);
    if ((width & (width - 1)) == 0)
        shift = __builtin_ctzll(width);
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0
                         : static_cast<double>(total_) /
                               static_cast<double>(samples_);
}

uint64_t
Histogram::bucket(size_t i) const
{
    elag_assert(i < buckets.size());
    return buckets[i];
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b = 0;
    overflow_ = samples_ = total_ = 0;
}

void
Histogram::restoreRaw(const std::vector<uint64_t> &counts,
                      uint64_t overflow, uint64_t samples,
                      uint64_t total)
{
    elag_assert(counts.size() == buckets.size());
    buckets = counts;
    overflow_ = overflow;
    samples_ = samples;
    total_ = total;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters[name];
}

uint64_t
StatGroup::value(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

double
StatGroup::ratio(const std::string &a, const std::string &b) const
{
    uint64_t den = value(b);
    if (den == 0)
        return 0.0;
    return static_cast<double>(value(a)) / static_cast<double>(den);
}

std::vector<std::pair<std::string, uint64_t>>
StatGroup::dump() const
{
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(counters.size());
    for (const auto &kv : counters)
        out.emplace_back(kv.first, kv.second.value());
    return out;
}

void
StatGroup::reset()
{
    for (auto &kv : counters)
        kv.second.reset();
}

void
writeJson(JsonWriter &w, const Histogram &h)
{
    w.beginObject();
    w.field("samples", h.samples());
    w.field("mean", h.mean());
    w.field("bucket_width", h.bucketWidth());
    w.key("buckets").beginArray();
    for (size_t i = 0; i < h.numBuckets(); ++i)
        w.value(h.bucket(i));
    w.endArray();
    w.field("overflow", h.overflow());
    w.endObject();
}

void
writeJson(JsonWriter &w, const StatGroup &g)
{
    w.beginObject();
    for (const auto &kv : g.dump())
        w.field(kv.first, kv.second);
    w.endObject();
}

} // namespace elag
