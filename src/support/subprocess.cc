#include "support/subprocess.hh"

#include <cerrno>
#include <cstring>
#include <csignal>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "support/logging.hh"

namespace elag {

namespace {

uint64_t
monotonicMs()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000 +
           static_cast<uint64_t>(ts.tv_nsec) / 1'000'000;
}

/** Append from @p fd into @p dest honouring the capture cap. */
void
drainFd(int fd, std::string &dest, bool &truncated, size_t cap)
{
    char buf[4096];
    for (;;) {
        ssize_t n = read(fd, buf, sizeof(buf));
        if (n <= 0)
            return; // EOF, EAGAIN, or error: caller's poll loop decides
        size_t room = dest.size() < cap ? cap - dest.size() : 0;
        if (room == 0) {
            truncated = true; // keep draining so the child never blocks
        } else {
            size_t take = std::min(static_cast<size_t>(n), room);
            dest.append(buf, take);
            if (take < static_cast<size_t>(n))
                truncated = true;
        }
    }
}

void
setLimit(int resource, uint64_t value)
{
    struct rlimit rl;
    rl.rlim_cur = value;
    rl.rlim_max = value;
    setrlimit(resource, &rl); // best-effort inside the child
}

} // namespace

SubprocessResult
runSubprocess(const std::vector<std::string> &argv,
              const SubprocessLimits &limits)
{
    SubprocessResult result;
    if (argv.empty()) {
        result.error = "empty argv";
        return result;
    }

    int outPipe[2];
    int errPipe[2];
    if (pipe(outPipe) != 0) {
        result.error = std::string("pipe: ") + std::strerror(errno);
        return result;
    }
    if (pipe(errPipe) != 0) {
        result.error = std::string("pipe: ") + std::strerror(errno);
        close(outPipe[0]);
        close(outPipe[1]);
        return result;
    }

    // argv must be materialized before fork: only async-signal-safe
    // calls are allowed in the child of a multithreaded parent.
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &arg : argv)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);

    uint64_t start = monotonicMs();
    pid_t pid = fork();
    if (pid < 0) {
        result.error = std::string("fork: ") + std::strerror(errno);
        close(outPipe[0]);
        close(outPipe[1]);
        close(errPipe[0]);
        close(errPipe[1]);
        return result;
    }

    if (pid == 0) {
        // Child: own process group so a timeout kill reaps helpers
        // the job spawned too (e.g. /bin/sh wrappers).
        setpgid(0, 0);
        dup2(outPipe[1], STDOUT_FILENO);
        dup2(errPipe[1], STDERR_FILENO);
        close(outPipe[0]);
        close(outPipe[1]);
        close(errPipe[0]);
        close(errPipe[1]);
        if (limits.cpuSeconds)
            setLimit(RLIMIT_CPU, limits.cpuSeconds);
        if (limits.addressSpaceBytes)
            setLimit(RLIMIT_AS, limits.addressSpaceBytes);
        execvp(cargv[0], cargv.data());
        // exec failed; 127 is the shell convention for command-not-found.
        _exit(127);
    }

    // Parent.
    close(outPipe[1]);
    close(errPipe[1]);
    fcntl(outPipe[0], F_SETFL, O_NONBLOCK);
    fcntl(errPipe[0], F_SETFL, O_NONBLOCK);

    bool killed = false;
    int openFds = 2;
    struct pollfd fds[2];
    fds[0] = {outPipe[0], POLLIN, 0};
    fds[1] = {errPipe[0], POLLIN, 0};

    // Drain both pipes until EOF; enforce the wall deadline while
    // draining so a hung child with open descriptors still dies.
    while (openFds > 0) {
        int timeout = -1;
        if (limits.wallTimeoutMs && !killed) {
            uint64_t elapsed = monotonicMs() - start;
            if (elapsed >= limits.wallTimeoutMs) {
                kill(-pid, SIGKILL);
                killed = true;
                timeout = -1;
            } else {
                timeout = static_cast<int>(
                    std::min<uint64_t>(limits.wallTimeoutMs - elapsed,
                                       1 << 30));
            }
        }
        int rv = poll(fds, 2, timeout);
        if (rv < 0 && errno != EINTR)
            break;
        for (int i = 0; i < 2; ++i) {
            if (fds[i].fd < 0 || !(fds[i].revents & (POLLIN | POLLHUP)))
                continue;
            std::string &dest = i == 0 ? result.out : result.err;
            bool &trunc =
                i == 0 ? result.outTruncated : result.errTruncated;
            drainFd(fds[i].fd, dest, trunc, limits.maxCaptureBytes);
            if (fds[i].revents & POLLHUP) {
                // Writer closed; drainFd above consumed what was left.
                close(fds[i].fd);
                fds[i].fd = -1;
                --openFds;
            }
        }
    }
    if (fds[0].fd >= 0)
        close(fds[0].fd);
    if (fds[1].fd >= 0)
        close(fds[1].fd);

    // Reap, still honouring the deadline: the child may have closed
    // its pipes but kept running.
    int status = 0;
    for (;;) {
        pid_t w = waitpid(pid, &status, killed ? 0 : WNOHANG);
        if (w == pid)
            break;
        if (w < 0 && errno != EINTR) {
            result.error =
                std::string("waitpid: ") + std::strerror(errno);
            break;
        }
        if (w == 0) {
            uint64_t elapsed = monotonicMs() - start;
            if (limits.wallTimeoutMs && elapsed >= limits.wallTimeoutMs) {
                kill(-pid, SIGKILL);
                killed = true;
                continue;
            }
            struct timespec nap = {0, 2'000'000}; // 2 ms
            nanosleep(&nap, nullptr);
        }
    }

    result.wallMs = monotonicMs() - start;
    if (killed) {
        result.status = SubprocessStatus::TimedOut;
        result.termSignal =
            WIFSIGNALED(status) ? WTERMSIG(status) : SIGKILL;
    } else if (WIFSIGNALED(status)) {
        result.status = SubprocessStatus::Signaled;
        result.termSignal = WTERMSIG(status);
    } else if (WIFEXITED(status)) {
        result.status = SubprocessStatus::Exited;
        result.exitCode = WEXITSTATUS(status);
    } else {
        result.error = "unrecognized wait status";
    }
    return result;
}

pid_t
spawnSubprocess(const std::vector<std::string> &argv,
                const SpawnLimits &limits, std::string &error)
{
    if (argv.empty()) {
        error = "empty argv";
        return -1;
    }
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &arg : argv)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);

    pid_t pid = fork();
    if (pid < 0) {
        error = std::string("fork: ") + std::strerror(errno);
        return -1;
    }
    if (pid == 0) {
        setpgid(0, 0);
        if (limits.cpuSeconds)
            setLimit(RLIMIT_CPU, limits.cpuSeconds);
        if (limits.addressSpaceBytes)
            setLimit(RLIMIT_AS, limits.addressSpaceBytes);
        execvp(cargv[0], cargv.data());
        _exit(127);
    }
    return pid;
}

namespace {

SpawnedStatus
statusFromWait(int status)
{
    SpawnedStatus s;
    s.running = false;
    if (WIFEXITED(status))
        s.exitCode = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        s.termSignal = WTERMSIG(status);
    return s;
}

} // anonymous namespace

SpawnedStatus
pollSpawned(pid_t pid)
{
    int status = 0;
    for (;;) {
        pid_t w = waitpid(pid, &status, WNOHANG);
        if (w == pid)
            return statusFromWait(status);
        if (w == 0)
            return SpawnedStatus{};
        if (errno != EINTR) {
            // ECHILD: already reaped (or never ours). Report it down
            // with neither exit code nor signal known.
            SpawnedStatus s;
            s.running = false;
            return s;
        }
    }
}

SpawnedStatus
waitSpawned(pid_t pid, uint64_t timeout_ms)
{
    uint64_t start = monotonicMs();
    for (;;) {
        SpawnedStatus s = pollSpawned(pid);
        if (!s.running)
            return s;
        if (monotonicMs() - start >= timeout_ms)
            return s;
        struct timespec nap = {0, 2'000'000}; // 2 ms
        nanosleep(&nap, nullptr);
    }
}

void
killSpawnedGroup(pid_t pid, int sig)
{
    if (pid > 0)
        kill(-pid, sig);
}

std::string
describeSubprocessResult(const SubprocessResult &result)
{
    switch (result.status) {
      case SubprocessStatus::Exited:
        return formatString("exit %d", result.exitCode);
      case SubprocessStatus::Signaled:
        return formatString("signal %d (%s)", result.termSignal,
                            strsignal(result.termSignal));
      case SubprocessStatus::TimedOut:
        return formatString(
            "timeout after %llu ms",
            static_cast<unsigned long long>(result.wallMs));
      case SubprocessStatus::StartFailed:
        return "start failed: " + result.error;
    }
    return "?";
}

} // namespace elag
