#include "support/random.hh"

#include "support/logging.hh"

namespace elag {

Pcg32::Pcg32(uint64_t seed, uint64_t seq)
    : state(0), inc((seq << 1) | 1u)
{
    next();
    state += seed;
    next();
}

uint32_t
Pcg32::next()
{
    uint64_t old = state;
    state = old * 6364136223846793005ULL + inc;
    uint32_t xorshifted =
        static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

uint32_t
Pcg32::nextBounded(uint32_t bound)
{
    elag_assert(bound > 0);
    // Debiased modulo (Lemire-style rejection).
    uint32_t threshold = (0u - bound) % bound;
    for (;;) {
        uint32_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int32_t
Pcg32::nextRange(int32_t lo, int32_t hi)
{
    elag_assert(lo <= hi);
    uint32_t span = static_cast<uint32_t>(hi - lo) + 1u;
    if (span == 0) // full 32-bit range
        return static_cast<int32_t>(next());
    return lo + static_cast<int32_t>(nextBounded(span));
}

double
Pcg32::nextDouble()
{
    return next() * (1.0 / 4294967296.0);
}

bool
Pcg32::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace elag
