#include "support/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "support/logging.hh"

namespace elag {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

// --- validator -------------------------------------------------------

namespace {

/** Recursive-descent JSON syntax checker (no value materialization). */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s(text) {}

    bool
    check()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos == s.size();
    }

  private:
    bool
    value()
    {
        if (depth > 256 || pos >= s.size())
            return false;
        switch (s[pos]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++depth;
        ++pos; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos;
            --depth;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                --depth;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++depth;
        ++pos; // '['
        skipWs();
        if (peek() == ']') {
            ++pos;
            --depth;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                --depth;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos;
        while (pos < s.size()) {
            unsigned char c = static_cast<unsigned char>(s[pos]);
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c < 0x20)
                return false; // raw control character
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return false;
                char e = s[pos];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos + i >= s.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s[pos + i]))) {
                            return false;
                        }
                    }
                    pos += 4;
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            }
            ++pos;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        size_t start = pos;
        if (peek() == '-')
            ++pos;
        if (!std::isdigit(peekByte()))
            return false;
        if (s[pos] == '0')
            ++pos;
        else
            while (std::isdigit(peekByte()))
                ++pos;
        if (peek() == '.') {
            ++pos;
            if (!std::isdigit(peekByte()))
                return false;
            while (std::isdigit(peekByte()))
                ++pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos;
            if (peek() == '+' || peek() == '-')
                ++pos;
            if (!std::isdigit(peekByte()))
                return false;
            while (std::isdigit(peekByte()))
                ++pos;
        }
        return pos > start;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::strlen(word);
        if (s.compare(pos, len, word) != 0)
            return false;
        pos += len;
        return true;
    }

    char peek() const { return pos < s.size() ? s[pos] : '\0'; }
    unsigned char
    peekByte() const
    {
        return static_cast<unsigned char>(peek());
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r')) {
            ++pos;
        }
    }

    const std::string &s;
    size_t pos = 0;
    int depth = 0;
};

} // anonymous namespace

bool
jsonValid(const std::string &text)
{
    return JsonChecker(text).check();
}

// --- flat-document field extraction ----------------------------------

namespace {

/** Position just past `"key"` + ws + ':' + ws, or npos. */
size_t
findMemberValue(const std::string &doc, const std::string &key)
{
    std::string needle = "\"" + key + "\"";
    size_t pos = doc.find(needle);
    while (pos != std::string::npos) {
        size_t p = pos + needle.size();
        while (p < doc.size() &&
               (doc[p] == ' ' || doc[p] == '\t' || doc[p] == '\n' ||
                doc[p] == '\r')) {
            ++p;
        }
        if (p < doc.size() && doc[p] == ':') {
            ++p;
            while (p < doc.size() &&
                   (doc[p] == ' ' || doc[p] == '\t' ||
                    doc[p] == '\n' || doc[p] == '\r')) {
                ++p;
            }
            return p;
        }
        pos = doc.find(needle, pos + 1); // quoted string, not a key
    }
    return std::string::npos;
}

} // anonymous namespace

bool
jsonExtractString(const std::string &doc, const std::string &key,
                  std::string &out)
{
    size_t p = findMemberValue(doc, key);
    if (p == std::string::npos || p >= doc.size() || doc[p] != '"')
        return false;
    ++p;
    std::string value;
    while (p < doc.size() && doc[p] != '"') {
        char c = doc[p++];
        if (c != '\\') {
            value += c;
            continue;
        }
        if (p >= doc.size())
            return false;
        char esc = doc[p++];
        switch (esc) {
          case '"': value += '"'; break;
          case '\\': value += '\\'; break;
          case '/': value += '/'; break;
          case 'b': value += '\b'; break;
          case 'f': value += '\f'; break;
          case 'n': value += '\n'; break;
          case 'r': value += '\r'; break;
          case 't': value += '\t'; break;
          case 'u': {
            if (p + 4 > doc.size())
                return false;
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
                char h = doc[p++];
                cp <<= 4;
                if (h >= '0' && h <= '9')
                    cp |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    cp |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    cp |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return false;
            }
            // Manifest strings are ASCII; keep non-ASCII escapes as a
            // replacement byte rather than growing a UTF-8 encoder.
            value += cp < 0x80 ? static_cast<char>(cp) : '?';
            break;
          }
          default:
            return false;
        }
    }
    if (p >= doc.size())
        return false; // unterminated string
    out = value;
    return true;
}

bool
jsonExtractRaw(const std::string &doc, const std::string &key,
               std::string &out)
{
    size_t p = findMemberValue(doc, key);
    if (p == std::string::npos || p >= doc.size())
        return false;

    size_t start = p;
    char c = doc[p];
    if (c == '{' || c == '[') {
        // Balanced scan, skipping over string contents.
        int depth = 0;
        bool in_string = false;
        while (p < doc.size()) {
            char ch = doc[p];
            if (in_string) {
                if (ch == '\\')
                    ++p; // skip the escaped character
                else if (ch == '"')
                    in_string = false;
            } else if (ch == '"') {
                in_string = true;
            } else if (ch == '{' || ch == '[') {
                ++depth;
            } else if (ch == '}' || ch == ']') {
                --depth;
                if (depth == 0) {
                    out = doc.substr(start, p - start + 1);
                    return true;
                }
            }
            ++p;
        }
        return false; // unbalanced
    }
    if (c == '"') {
        ++p;
        while (p < doc.size() && doc[p] != '"') {
            if (doc[p] == '\\')
                ++p;
            ++p;
        }
        if (p >= doc.size())
            return false; // unterminated
        out = doc.substr(start, p - start + 1);
        return true;
    }
    // Bare scalar: number / true / false / null.
    while (p < doc.size() && doc[p] != ',' && doc[p] != '}' &&
           doc[p] != ']' && doc[p] != ' ' && doc[p] != '\t' &&
           doc[p] != '\n' && doc[p] != '\r') {
        ++p;
    }
    if (p == start)
        return false;
    out = doc.substr(start, p - start);
    return true;
}

bool
jsonExtractUint(const std::string &doc, const std::string &key,
                uint64_t &out)
{
    size_t p = findMemberValue(doc, key);
    if (p == std::string::npos || p >= doc.size() || doc[p] < '0' ||
        doc[p] > '9') {
        return false;
    }
    uint64_t value = 0;
    while (p < doc.size() && doc[p] >= '0' && doc[p] <= '9') {
        uint64_t digit = static_cast<uint64_t>(doc[p] - '0');
        if (value > (UINT64_MAX - digit) / 10)
            return false;
        value = value * 10 + digit;
        ++p;
    }
    out = value;
    return true;
}

// --- writer ----------------------------------------------------------

JsonWriter::JsonWriter(int indent) : indentWidth(indent) {}

void
JsonWriter::newline()
{
    if (indentWidth <= 0)
        return;
    out += '\n';
    out.append(stack.size() * static_cast<size_t>(indentWidth), ' ');
}

void
JsonWriter::prepare(bool is_key)
{
    elag_assert(!done);
    if (keyPending) {
        elag_assert(!is_key); // two key() calls in a row
        keyPending = false;
        return; // separator already emitted with the key
    }
    if (!stack.empty()) {
        Level &level = stack.back();
        elag_assert(level.object == is_key ||
                    (!level.object && !is_key));
        if (!level.first)
            out += ',';
        level.first = false;
        newline();
    } else {
        elag_assert(out.empty()); // one top-level value only
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    prepare(false);
    out += '{';
    stack.push_back({true, true});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    elag_assert(!stack.empty() && stack.back().object && !keyPending);
    bool empty = stack.back().first;
    stack.pop_back();
    if (!empty)
        newline();
    out += '}';
    if (stack.empty())
        done = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepare(false);
    out += '[';
    stack.push_back({false, true});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    elag_assert(!stack.empty() && !stack.back().object);
    bool empty = stack.back().first;
    stack.pop_back();
    if (!empty)
        newline();
    out += ']';
    if (stack.empty())
        done = true;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    elag_assert(!stack.empty() && stack.back().object);
    prepare(true);
    out += '"';
    out += jsonEscape(k);
    out += indentWidth > 0 ? "\": " : "\":";
    keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    prepare(false);
    out += '"';
    out += jsonEscape(v);
    out += '"';
    if (stack.empty())
        done = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    prepare(false);
    if (!std::isfinite(v)) {
        out += "null"; // JSON has no NaN/Inf
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        out += buf;
        // %g never emits a decimal point for integral values; that is
        // still valid JSON, so leave it as-is.
    }
    if (stack.empty())
        done = true;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    prepare(false);
    out += std::to_string(v);
    if (stack.empty())
        done = true;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    prepare(false);
    out += std::to_string(v);
    if (stack.empty())
        done = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    prepare(false);
    out += v ? "true" : "false";
    if (stack.empty())
        done = true;
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    prepare(false);
    out += "null";
    if (stack.empty())
        done = true;
    return *this;
}

JsonWriter &
JsonWriter::rawValue(const std::string &json)
{
    elag_assert(!json.empty());
    prepare(false);
    out += json;
    if (stack.empty())
        done = true;
    return *this;
}

std::string
JsonWriter::str() const
{
    elag_assert(done && stack.empty());
    return out;
}

} // namespace elag
