/**
 * @file
 * ASCII table formatting for benchmark output.
 *
 * The benchmark harness prints tables shaped like the paper's
 * Tables 2-4; this helper aligns columns and draws separators.
 */

#ifndef ELAG_SUPPORT_TABLE_HH
#define ELAG_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace elag {

/** A simple right-aligned-by-default text table. */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(const std::vector<std::string> &cols);

    /** Append a data row (may be ragged; missing cells are blank). */
    void addRow(const std::vector<std::string> &cols);

    /** Append a horizontal separator before the next row. */
    void addSeparator();

    /** Render the table to a string. First column is left-aligned. */
    std::string render() const;

    /** Header cells (empty until setHeader). */
    const std::vector<std::string> &headerCells() const
    {
        return header;
    }

    /** Data rows in insertion order, separators omitted. */
    std::vector<std::vector<std::string>> dataRows() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::vector<std::string> header;
    std::vector<Row> rows;
};

} // namespace elag

#endif // ELAG_SUPPORT_TABLE_HH
