/**
 * @file
 * Lightweight statistics primitives used by the simulator.
 *
 * Modeled loosely on gem5's stats package: named scalar counters,
 * ratios (formulas over two counters), and fixed-bucket histograms,
 * all registered in a StatGroup for uniform dumping.
 */

#ifndef ELAG_SUPPORT_STATS_HH
#define ELAG_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace elag {

class JsonWriter;

/** A named monotonically increasing scalar counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++count_; return *this; }
    Counter &operator+=(uint64_t n) { count_ += n; return *this; }

    uint64_t value() const { return count_; }
    void reset() { count_ = 0; }

  private:
    uint64_t count_ = 0;
};

/** A histogram with fixed-width buckets plus an overflow bucket. */
class Histogram
{
  public:
    /**
     * @param num_buckets number of regular buckets
     * @param bucket_width width of each bucket
     */
    Histogram(size_t num_buckets = 16, uint64_t bucket_width = 1);

    /**
     * Record a sample. Inline and division-free for power-of-two
     * bucket widths: this sits on the timing model's per-load path.
     */
    void
    sample(uint64_t value, uint64_t count = 1)
    {
        size_t idx = static_cast<size_t>(
            shift >= 0 ? value >> shift : value / width);
        if (idx < buckets.size())
            buckets[idx] += count;
        else
            overflow_ += count;
        samples_ += count;
        total_ += value * count;
    }

    uint64_t samples() const { return samples_; }
    uint64_t total() const { return total_; }
    double mean() const;
    /** Count in regular bucket @p i. */
    uint64_t bucket(size_t i) const;
    /** Count of samples beyond the last regular bucket. */
    uint64_t overflow() const { return overflow_; }
    size_t numBuckets() const { return buckets.size(); }
    uint64_t bucketWidth() const { return width; }
    void reset();

    /**
     * Replace all counts wholesale (checkpoint restore). @p counts
     * must have exactly numBuckets() entries; geometry (bucket count
     * and width) is the constructed histogram's and is not changed.
     */
    void restoreRaw(const std::vector<uint64_t> &counts,
                    uint64_t overflow, uint64_t samples,
                    uint64_t total);

  private:
    std::vector<uint64_t> buckets;
    uint64_t width;
    int shift = -1; ///< log2(width) when width is a power of two
    uint64_t overflow_ = 0;
    uint64_t samples_ = 0;
    uint64_t total_ = 0;
};

/**
 * A registry of named counters, used to dump all statistics for a
 * simulation with stable names.
 */
class StatGroup
{
  public:
    /** Get (creating if needed) a counter by name. */
    Counter &counter(const std::string &name);

    /** @return counter value, or 0 if never created. */
    uint64_t value(const std::string &name) const;

    /** @return ratio a/b, or 0 when b == 0. */
    double ratio(const std::string &a, const std::string &b) const;

    /** All (name, value) pairs in name order. */
    std::vector<std::pair<std::string, uint64_t>> dump() const;

    /** Reset all counters to zero. */
    void reset();

  private:
    std::map<std::string, Counter> counters;
};

/**
 * Serialize a histogram as an object:
 * {"samples", "mean", "bucket_width", "buckets": [...], "overflow"}.
 */
void writeJson(JsonWriter &w, const Histogram &h);

/** Serialize a stat group as an object of name -> value members. */
void writeJson(JsonWriter &w, const StatGroup &g);

} // namespace elag

#endif // ELAG_SUPPORT_STATS_HH
