/**
 * @file
 * Error-reporting and status-message primitives.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user-caused
 * conditions (bad configuration, malformed source programs), and
 * warn()/inform() report non-fatal conditions.
 */

#ifndef ELAG_SUPPORT_LOGGING_HH
#define ELAG_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace elag {

/** Exception thrown by fatal(): the user supplied invalid input. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Format a printf-style message into a std::string. */
std::string vformatString(const char *fmt, va_list ap);

/** Format a printf-style message into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort-style error for conditions that indicate a bug in this library.
 * Throws PanicError so tests can assert on invariant violations.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Error for conditions caused by the user (bad program, bad config).
 * Throws FatalError.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning printed to stderr (can be silenced). */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Status message printed to stderr (can be silenced). */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() output (used by tests/benches). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() output is suppressed. */
bool quiet();

} // namespace elag

/**
 * Assert an internal invariant; active in all build types.
 * Unlike assert(3) this reports through panic() and is testable.
 */
#define elag_assert(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::elag::panic("assertion '%s' failed at %s:%d",             \
                          #cond, __FILE__, __LINE__);                   \
        }                                                               \
    } while (0)

#endif // ELAG_SUPPORT_LOGGING_HH
