/**
 * @file
 * Linear-scan register allocation.
 *
 * Maps IR virtual registers onto the 64 architected integer
 * registers. Intervals that cross a call site are constrained to
 * callee-saved registers; intervals that cannot be colored are
 * spilled to stack slots and rewritten through reserved scratch
 * registers by the lowering phase.
 */

#ifndef ELAG_CODEGEN_REGALLOC_HH
#define ELAG_CODEGEN_REGALLOC_HH

#include <map>
#include <set>
#include <vector>

#include "ir/ir.hh"

namespace elag {
namespace codegen {

/** Scratch registers reserved for spill reloads and immediates. */
constexpr int Scratch0 = 12;
constexpr int Scratch1 = 13;
constexpr int Scratch2 = 14;
/** First generally-allocatable caller-saved register. */
constexpr int AllocCallerFirst = 15;

/** Result of register allocation for one function. */
struct Allocation
{
    /** vreg -> physical register, for colored vregs. */
    std::map<int, int> assignment;
    /** vreg -> spill slot index (slot 0 is the first spill word). */
    std::map<int, int> spillSlots;
    /** Callee-saved registers written by this function. */
    std::set<int> usedCalleeSaved;
    /** Number of spill slots needed. */
    int numSpillSlots = 0;

    bool isSpilled(int vreg) const { return spillSlots.count(vreg) > 0; }

    int
    regFor(int vreg) const
    {
        auto it = assignment.find(vreg);
        return it == assignment.end() ? -1 : it->second;
    }
};

/**
 * Run linear scan over @p fn using the block order @p order (the
 * order lowering will emit them in).
 */
Allocation allocateRegisters(ir::Function &fn,
                             const std::vector<ir::BasicBlock *> &order);

} // namespace codegen
} // namespace elag

#endif // ELAG_CODEGEN_REGALLOC_HH
