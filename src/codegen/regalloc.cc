#include "codegen/regalloc.hh"

#include <algorithm>

#include "ir/liveness.hh"
#include "isa/registers.hh"
#include "support/logging.hh"

namespace elag {
namespace codegen {

using ir::BasicBlock;
using ir::Function;
using ir::IrInst;

namespace {

/** A coarse live interval [start, end] in linearized positions. */
struct Interval
{
    int vreg = 0;
    int start = INT32_MAX;
    int end = -1;
    bool crossesCall = false;

    void
    extend(int pos)
    {
        start = std::min(start, pos);
        end = std::max(end, pos);
    }
};

} // anonymous namespace

Allocation
allocateRegisters(Function &fn, const std::vector<BasicBlock *> &order)
{
    fn.recomputeCfg();
    ir::Liveness live(fn);

    // Linearize: assign each instruction a position; record block
    // extents and call positions.
    std::map<const BasicBlock *, std::pair<int, int>> block_range;
    std::vector<int> call_positions;
    int pos = 1; // position 0 is the function entry (param defs)
    for (const BasicBlock *bb : order) {
        int begin = pos;
        for (const auto &inst : bb->insts) {
            if (inst.isCall())
                call_positions.push_back(pos);
            ++pos;
        }
        block_range[bb] = {begin, pos};
    }

    std::map<int, Interval> intervals;
    auto touch = [&](int vreg, int p) {
        Interval &iv = intervals[vreg];
        iv.vreg = vreg;
        iv.extend(p);
    };

    for (int param : fn.params)
        touch(param, 0);

    for (const BasicBlock *bb : order) {
        auto [begin, end] = block_range[bb];
        // Live-in/out vregs span the whole block.
        for (int v : live.liveIn(bb))
            touch(v, begin);
        for (int v : live.liveOut(bb)) {
            touch(v, begin);
            touch(v, end - 1);
        }
        int p = begin;
        std::vector<int> srcs;
        for (const auto &inst : bb->insts) {
            if (inst.dest)
                touch(inst.dest, p);
            srcs.clear();
            inst.sourceRegs(srcs);
            for (int s : srcs)
                touch(s, p);
            ++p;
        }
    }

    for (auto &kv : intervals) {
        Interval &iv = kv.second;
        for (int cp : call_positions) {
            if (iv.start < cp && cp < iv.end) {
                iv.crossesCall = true;
                break;
            }
        }
    }

    std::vector<Interval> sorted;
    sorted.reserve(intervals.size());
    for (const auto &kv : intervals)
        sorted.push_back(kv.second);
    std::sort(sorted.begin(), sorted.end(),
              [](const Interval &a, const Interval &b) {
                  if (a.start != b.start)
                      return a.start < b.start;
                  return a.vreg < b.vreg;
              });

    // Register pools.
    std::vector<int> caller_pool;
    for (int r = AllocCallerFirst; r <= isa::reg::CallerSavedLast; ++r)
        caller_pool.push_back(r);
    std::vector<int> callee_pool;
    for (int r = isa::reg::CalleeSavedFirst;
         r <= isa::reg::CalleeSavedLast; ++r) {
        callee_pool.push_back(r);
    }

    Allocation alloc;
    std::set<int> free_caller(caller_pool.begin(), caller_pool.end());
    std::set<int> free_callee(callee_pool.begin(), callee_pool.end());
    // Active intervals ordered by end position.
    struct Active
    {
        int end;
        int vreg;
        int reg;

        bool
        operator<(const Active &o) const
        {
            return std::tie(end, vreg) < std::tie(o.end, o.vreg);
        }
    };
    std::set<Active> active;

    auto isCalleeSaved = [](int reg) {
        return reg >= isa::reg::CalleeSavedFirst;
    };

    for (const Interval &iv : sorted) {
        // Expire finished intervals.
        while (!active.empty() && active.begin()->end < iv.start) {
            const Active &a = *active.begin();
            if (isCalleeSaved(a.reg))
                free_callee.insert(a.reg);
            else
                free_caller.insert(a.reg);
            active.erase(active.begin());
        }

        int reg = -1;
        if (iv.crossesCall) {
            if (!free_callee.empty()) {
                reg = *free_callee.begin();
                free_callee.erase(free_callee.begin());
            }
        } else {
            if (!free_caller.empty()) {
                reg = *free_caller.begin();
                free_caller.erase(free_caller.begin());
            } else if (!free_callee.empty()) {
                reg = *free_callee.begin();
                free_callee.erase(free_callee.begin());
            }
        }

        if (reg < 0) {
            // Spill heuristic: evict the compatible active interval
            // with the furthest end if it outlives the current one.
            auto victim = active.end();
            for (auto it = active.begin(); it != active.end(); ++it) {
                bool compatible =
                    !iv.crossesCall || isCalleeSaved(it->reg);
                if (!compatible)
                    continue;
                if (victim == active.end() || it->end > victim->end)
                    victim = it;
            }
            if (victim != active.end() && victim->end > iv.end) {
                reg = victim->reg;
                alloc.assignment.erase(victim->vreg);
                alloc.spillSlots[victim->vreg] =
                    alloc.numSpillSlots++;
                active.erase(victim);
            } else {
                alloc.spillSlots[iv.vreg] = alloc.numSpillSlots++;
                continue;
            }
        }

        alloc.assignment[iv.vreg] = reg;
        if (isCalleeSaved(reg))
            alloc.usedCalleeSaved.insert(reg);
        active.insert({iv.end, iv.vreg, reg});
    }

    return alloc;
}

} // namespace codegen
} // namespace elag
