/**
 * @file
 * IR -> ELAG machine-code generation.
 */

#ifndef ELAG_CODEGEN_CODEGEN_HH
#define ELAG_CODEGEN_CODEGEN_HH

#include <map>

#include "ir/ir.hh"
#include "isa/program.hh"

namespace elag {
namespace codegen {

/**
 * Lower a module to a linked machine program.
 *
 * Emits a `_start` stub (stack/global pointer setup, call to main,
 * halt), then each function: prologue (frame allocation, callee-saved
 * and return-address saves, parameter moves), lowered body, epilogue.
 *
 * The returned program maps each machine load back to the IR load it
 * came from via @ref CodegenResult::loadIdOf.
 */
struct CodegenResult
{
    isa::MachineProgram program;
    /** Machine PC of each load -> IrInst::loadId. */
    std::map<uint32_t, int> loadIdOf;
};

CodegenResult generateCode(const ir::Module &mod);

} // namespace codegen
} // namespace elag

#endif // ELAG_CODEGEN_CODEGEN_HH
