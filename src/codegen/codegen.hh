/**
 * @file
 * IR -> ELAG machine-code generation.
 */

#ifndef ELAG_CODEGEN_CODEGEN_HH
#define ELAG_CODEGEN_CODEGEN_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "ir/ir.hh"
#include "isa/program.hh"

namespace elag {
namespace codegen {

/**
 * Machine PC -> IR load id, as a flat dense vector indexed by PC.
 *
 * PCs are instruction indices, so the map is a vector the length of
 * the program and at(pc) is one bounds-checked array read — this
 * lookup sits on the per-retired-load path of profiling runs and on
 * telemetry resolution, where a std::map walk used to dominate.
 */
class LoadIdMap
{
  public:
    /** Record that the instruction at @p pc is IR load @p load_id. */
    void
    set(uint32_t pc, int load_id)
    {
        if (pc >= ids_.size())
            ids_.resize(pc + 1, -1);
        ids_[pc] = load_id;
    }

    /** @return the load id at @p pc, or -1 if not a tracked load. */
    int
    at(uint32_t pc) const
    {
        return pc < ids_.size() ? ids_[pc] : -1;
    }

    /** All (pc, load id) pairs in ascending PC order. */
    std::vector<std::pair<uint32_t, int>>
    entries() const
    {
        std::vector<std::pair<uint32_t, int>> out;
        for (uint32_t pc = 0; pc < ids_.size(); ++pc) {
            if (ids_[pc] >= 0)
                out.emplace_back(pc, ids_[pc]);
        }
        return out;
    }

    void clear() { ids_.clear(); }

  private:
    std::vector<int> ids_;
};

/**
 * Lower a module to a linked machine program.
 *
 * Emits a `_start` stub (stack/global pointer setup, call to main,
 * halt), then each function: prologue (frame allocation, callee-saved
 * and return-address saves, parameter moves), lowered body, epilogue.
 *
 * The returned program maps each machine load back to the IR load it
 * came from via @ref CodegenResult::loadIdOf.
 */
struct CodegenResult
{
    isa::MachineProgram program;
    /** Machine PC of each load -> IrInst::loadId. */
    LoadIdMap loadIdOf;
};

CodegenResult generateCode(const ir::Module &mod);

} // namespace codegen
} // namespace elag

#endif // ELAG_CODEGEN_CODEGEN_HH
