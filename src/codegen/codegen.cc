#include "codegen/codegen.hh"

#include <algorithm>

#include "codegen/regalloc.hh"
#include "isa/builder.hh"
#include "isa/registers.hh"
#include "support/logging.hh"

namespace elag {
namespace codegen {

using ir::BasicBlock;
using ir::CondCode;
using ir::Function;
using ir::IrInst;
using ir::IrOpcode;
using ir::Operand;
using isa::Instruction;
using isa::LoadSpec;
using isa::Opcode;
namespace build = isa::build;
namespace reg = isa::reg;

namespace {

/** Lowers one IR function to machine code with local fixups. */
class FunctionCodegen
{
  public:
    FunctionCodegen(const Function &fn, CodegenResult &result)
        : fn(const_cast<Function &>(fn)), result(result)
    {
    }

    /** Emit into @p out; records call fixups into @p call_fixups. */
    void run(std::vector<Instruction> &out,
             std::vector<std::pair<size_t, std::string>> &call_fixups,
             std::vector<int> &load_ids);

  private:
    void computeFrame();
    void emitPrologue();
    void emitEpilogue();
    void lowerInst(const IrInst &inst, const BasicBlock *next_block);

    void emit(Instruction inst, int load_id = 0);
    /** Materialize operand into a register (maybe a scratch). */
    int srcReg(const Operand &o, int scratch);
    /** Register that will hold the dest; pairs with finishDest. */
    int destReg(int vreg);
    /** Store a spilled dest from its scratch register. */
    void finishDest(int vreg, int reg);

    int spillOffset(int slot) const { return slot * 4; }
    int objectOffset(int id) const { return objectOffsets.at(id); }

    Function &fn;
    CodegenResult &result;
    Allocation alloc;
    std::vector<BasicBlock *> order;

    std::vector<Instruction> code;
    std::vector<int> loadIds; ///< parallel to code; 0 = not a load
    /** (code index, block) pairs needing branch-target patching. */
    std::vector<std::pair<size_t, const BasicBlock *>> branchFixups;
    /** (code index) of jumps to the epilogue. */
    std::vector<size_t> epilogueFixups;
    std::vector<std::pair<size_t, std::string>> callFixups;
    std::map<const BasicBlock *, size_t> blockStart;
    std::map<int, int> objectOffsets;
    int frameSize = 0;
    int raOffset = 0;
    std::map<int, int> calleeSaveOffsets;
    bool makesCalls = false;
};

void
FunctionCodegen::emit(Instruction inst, int load_id)
{
    code.push_back(inst);
    loadIds.push_back(load_id);
}

int
FunctionCodegen::srcReg(const Operand &o, int scratch)
{
    if (o.isImm()) {
        if (o.imm == 0)
            return reg::Zero;
        emit(build::li(scratch, static_cast<int32_t>(o.imm)));
        return scratch;
    }
    elag_assert(o.isReg());
    int phys = alloc.regFor(o.reg);
    if (phys >= 0)
        return phys;
    elag_assert(alloc.isSpilled(o.reg));
    emit(build::load(LoadSpec::Normal, scratch, reg::Sp,
                     spillOffset(alloc.spillSlots.at(o.reg))));
    return scratch;
}

int
FunctionCodegen::destReg(int vreg)
{
    int phys = alloc.regFor(vreg);
    if (phys >= 0)
        return phys;
    elag_assert(alloc.isSpilled(vreg));
    return Scratch2;
}

void
FunctionCodegen::finishDest(int vreg, int dest)
{
    if (alloc.regFor(vreg) >= 0)
        return;
    emit(build::store(dest, reg::Sp,
                      spillOffset(alloc.spillSlots.at(vreg))));
}

void
FunctionCodegen::computeFrame()
{
    for (const auto &bb : fn.blocks()) {
        for (const auto &inst : bb->insts)
            makesCalls |= inst.isCall();
    }

    int offset = alloc.numSpillSlots * 4;
    for (const auto &obj : fn.stackObjects()) {
        offset = (offset + obj.align - 1) / obj.align * obj.align;
        objectOffsets[obj.id] = offset;
        offset += obj.size;
    }
    offset = (offset + 3) / 4 * 4;
    raOffset = offset;
    offset += 4; // always reserve the return-address slot
    for (int r : alloc.usedCalleeSaved) {
        calleeSaveOffsets[r] = offset;
        offset += 4;
    }
    frameSize = (offset + 7) / 8 * 8;
}

void
FunctionCodegen::emitPrologue()
{
    if (frameSize > 0)
        emit(build::addi(reg::Sp, reg::Sp, -frameSize));
    emit(build::store(reg::Ra, reg::Sp, raOffset));
    for (const auto &kv : calleeSaveOffsets)
        emit(build::store(kv.first, reg::Sp, kv.second));

    // Move incoming arguments to their allocated homes.
    if (fn.params.size() >
        static_cast<size_t>(reg::NumArgRegs)) {
        fatal("function '%s' has more than %d parameters",
              fn.name().c_str(), reg::NumArgRegs);
    }
    for (size_t i = 0; i < fn.params.size(); ++i) {
        int vreg = fn.params[i];
        int phys = alloc.regFor(vreg);
        if (phys >= 0) {
            if (phys != reg::arg(static_cast<int>(i)))
                emit(build::mov(phys, reg::arg(static_cast<int>(i))));
        } else if (alloc.isSpilled(vreg)) {
            emit(build::store(reg::arg(static_cast<int>(i)), reg::Sp,
                              spillOffset(alloc.spillSlots.at(vreg))));
        }
        // A parameter that is neither colored nor spilled is unused.
    }
}

void
FunctionCodegen::emitEpilogue()
{
    for (const auto &kv : calleeSaveOffsets) {
        emit(build::load(LoadSpec::Normal, kv.first, reg::Sp,
                         kv.second));
    }
    emit(build::load(LoadSpec::Normal, reg::Ra, reg::Sp, raOffset));
    if (frameSize > 0)
        emit(build::addi(reg::Sp, reg::Sp, frameSize));
    emit(build::jr(reg::Ra));
}

void
FunctionCodegen::lowerInst(const IrInst &inst,
                           const BasicBlock *next_block)
{
    using Op = IrOpcode;
    switch (inst.op) {
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::Rem: case Op::And: case Op::Or: case Op::Xor:
      case Op::Shl: case Op::Shr: case Op::Sra:
      case Op::SetLt: case Op::SetLtU: case Op::SetEq: {
        int a = srcReg(inst.a, Scratch0);
        int dest = destReg(inst.dest);
        // Immediate forms where the ISA has them.
        if (inst.b.isImm()) {
            int32_t imm = static_cast<int32_t>(inst.b.imm);
            bool emitted = true;
            switch (inst.op) {
              case Op::Add:
                emit(build::rri(Opcode::ADDI, dest, a, imm));
                break;
              case Op::Sub:
                emit(build::rri(Opcode::ADDI, dest, a, -imm));
                break;
              case Op::And:
                emit(build::rri(Opcode::ANDI, dest, a, imm));
                break;
              case Op::Or:
                emit(build::rri(Opcode::ORI, dest, a, imm));
                break;
              case Op::Xor:
                emit(build::rri(Opcode::XORI, dest, a, imm));
                break;
              case Op::Shl:
                emit(build::rri(Opcode::SLLI, dest, a, imm & 31));
                break;
              case Op::Shr:
                emit(build::rri(Opcode::SRLI, dest, a, imm & 31));
                break;
              case Op::Sra:
                emit(build::rri(Opcode::SRAI, dest, a, imm & 31));
                break;
              case Op::SetLt:
                emit(build::rri(Opcode::SLTI, dest, a, imm));
                break;
              default:
                emitted = false;
                break;
            }
            if (emitted) {
                finishDest(inst.dest, dest);
                return;
            }
        }
        int b = srcReg(inst.b, Scratch1);
        Opcode mop;
        switch (inst.op) {
          case Op::Add: mop = Opcode::ADD; break;
          case Op::Sub: mop = Opcode::SUB; break;
          case Op::Mul: mop = Opcode::MUL; break;
          case Op::Div: mop = Opcode::DIV; break;
          case Op::Rem: mop = Opcode::REM; break;
          case Op::And: mop = Opcode::AND; break;
          case Op::Or: mop = Opcode::OR; break;
          case Op::Xor: mop = Opcode::XOR; break;
          case Op::Shl: mop = Opcode::SLL; break;
          case Op::Shr: mop = Opcode::SRL; break;
          case Op::Sra: mop = Opcode::SRA; break;
          case Op::SetLt: mop = Opcode::SLT; break;
          case Op::SetLtU: mop = Opcode::SLTU; break;
          case Op::SetEq: mop = Opcode::SEQ; break;
          default:
            panic("lowerInst: unreachable");
        }
        emit(build::rrr(mop, dest, a, b));
        finishDest(inst.dest, dest);
        return;
      }
      case Op::Mov: {
        int dest = destReg(inst.dest);
        if (inst.a.isImm()) {
            emit(build::li(dest, static_cast<int32_t>(inst.a.imm)));
        } else {
            int a = srcReg(inst.a, Scratch0);
            emit(build::mov(dest, a));
        }
        finishDest(inst.dest, dest);
        return;
      }
      case Op::FrameAddr: {
        int dest = destReg(inst.dest);
        emit(build::addi(dest, reg::Sp,
                         objectOffset(static_cast<int>(inst.a.imm))));
        finishDest(inst.dest, dest);
        return;
      }
      case Op::GlobalAddr: {
        int dest = destReg(inst.dest);
        emit(build::addi(dest, reg::Gp,
                         static_cast<int32_t>(inst.a.imm)));
        finishDest(inst.dest, dest);
        return;
      }
      case Op::Load: {
        int base = srcReg(inst.a, Scratch0);
        int dest = destReg(inst.dest);
        if (inst.b.isImm()) {
            emit(build::load(inst.spec, dest, base,
                             static_cast<int32_t>(inst.b.imm),
                             inst.width),
                 inst.loadId);
        } else {
            int index = srcReg(inst.b, Scratch1);
            emit(build::loadx(inst.spec, dest, base, index,
                              inst.width),
                 inst.loadId);
        }
        finishDest(inst.dest, dest);
        return;
      }
      case Op::Store: {
        int base = srcReg(inst.a, Scratch0);
        int value = srcReg(inst.c, Scratch2);
        if (inst.b.isImm()) {
            emit(build::store(value, base,
                              static_cast<int32_t>(inst.b.imm),
                              inst.width));
        } else {
            int index = srcReg(inst.b, Scratch1);
            emit(build::rrr(Opcode::ADD, Scratch1, base, index));
            emit(build::store(value, Scratch1, 0, inst.width));
        }
        return;
      }
      case Op::Br: {
        int a = srcReg(inst.a, Scratch0);
        int b = srcReg(inst.b, Scratch1);
        // Prefer falling through to one of the targets.
        CondCode cc = inst.cond;
        const BasicBlock *branch_to = inst.taken;
        const BasicBlock *fall_to = inst.notTaken;
        if (inst.taken == next_block) {
            cc = ir::negateCond(cc);
            std::swap(branch_to, fall_to);
        }
        Opcode mop;
        bool swap = false;
        switch (cc) {
          case CondCode::Eq: mop = Opcode::BEQ; break;
          case CondCode::Ne: mop = Opcode::BNE; break;
          case CondCode::Lt: mop = Opcode::BLT; break;
          case CondCode::Ge: mop = Opcode::BGE; break;
          case CondCode::Le: mop = Opcode::BGE; swap = true; break;
          case CondCode::Gt: mop = Opcode::BLT; swap = true; break;
          case CondCode::LtU: mop = Opcode::BLTU; break;
          case CondCode::GeU: mop = Opcode::BGEU; break;
          default:
            panic("lowerInst: bad cond");
        }
        if (swap)
            std::swap(a, b);
        branchFixups.emplace_back(code.size(), branch_to);
        emit(build::branch(mop, a, b, 0));
        if (fall_to != next_block) {
            branchFixups.emplace_back(code.size(), fall_to);
            emit(build::jmp(0));
        }
        return;
      }
      case Op::Jump:
        if (inst.taken == next_block)
            return;
        branchFixups.emplace_back(code.size(), inst.taken);
        emit(build::jmp(0));
        return;
      case Op::Call: {
        if (inst.args.size() >
            static_cast<size_t>(reg::NumArgRegs)) {
            fatal("call to '%s' passes more than %d arguments",
                  inst.callee.c_str(), reg::NumArgRegs);
        }
        for (size_t i = 0; i < inst.args.size(); ++i) {
            Operand arg = Operand::makeReg(inst.args[i]);
            int arg_reg = reg::arg(static_cast<int>(i));
            int src = srcReg(arg, arg_reg);
            if (src != arg_reg)
                emit(build::mov(arg_reg, src));
        }
        callFixups.emplace_back(code.size(), inst.callee);
        emit(build::jal(reg::Ra, 0));
        if (inst.dest) {
            int dest = destReg(inst.dest);
            if (dest != reg::Arg0)
                emit(build::mov(dest, reg::Arg0));
            finishDest(inst.dest, dest);
        }
        return;
      }
      case Op::Ret: {
        if (!inst.a.isNone()) {
            int v = srcReg(inst.a, reg::Arg0);
            if (v != reg::Arg0)
                emit(build::mov(reg::Arg0, v));
        }
        epilogueFixups.push_back(code.size());
        emit(build::jmp(0));
        return;
      }
      case Op::Print: {
        int v = srcReg(inst.a, Scratch0);
        emit(build::print(v));
        return;
      }
      case Op::Nop:
        return;
      default:
        panic("lowerInst: unhandled IR opcode %s",
              ir::irOpcodeName(inst.op).c_str());
    }
}

void
FunctionCodegen::run(
    std::vector<Instruction> &out,
    std::vector<std::pair<size_t, std::string>> &call_fixups,
    std::vector<int> &load_ids)
{
    fn.recomputeCfg();
    order = fn.rpo();
    alloc = allocateRegisters(fn, order);
    computeFrame();

    emitPrologue();
    for (size_t i = 0; i < order.size(); ++i) {
        const BasicBlock *bb = order[i];
        const BasicBlock *next =
            i + 1 < order.size() ? order[i + 1] : nullptr;
        blockStart[bb] = code.size();
        for (const auto &inst : bb->insts)
            lowerInst(inst, next);
    }
    size_t epilogue_start = code.size();
    emitEpilogue();

    // Patch intra-function targets.
    for (const auto &fixup : branchFixups) {
        auto it = blockStart.find(fixup.second);
        elag_assert(it != blockStart.end());
        code[fixup.first].imm = static_cast<int32_t>(it->second);
    }
    for (size_t idx : epilogueFixups)
        code[idx].imm = static_cast<int32_t>(epilogue_start);

    out = std::move(code);
    call_fixups = std::move(callFixups);
    load_ids = std::move(loadIds);
}

} // anonymous namespace

CodegenResult
generateCode(const ir::Module &mod)
{
    CodegenResult result;
    isa::MachineProgram &prog = result.program;

    // _start stub.
    prog.symbols["_start"] = 0;
    prog.code.push_back(build::li(reg::Sp, isa::StackTop));
    prog.code.push_back(build::li(reg::Gp, isa::GlobalBase));
    size_t start_call_idx = prog.code.size();
    prog.code.push_back(build::jal(reg::Ra, 0));
    prog.code.push_back(build::halt());

    std::vector<std::pair<size_t, std::string>> pending_calls;
    pending_calls.emplace_back(start_call_idx, "main");

    for (const auto &fn : mod.functions) {
        uint32_t base = static_cast<uint32_t>(prog.code.size());
        prog.symbols[fn->name()] = base;

        std::vector<Instruction> body;
        std::vector<std::pair<size_t, std::string>> call_fixups;
        std::vector<int> load_ids;
        FunctionCodegen cg(*fn, result);
        cg.run(body, call_fixups, load_ids);

        for (size_t i = 0; i < body.size(); ++i) {
            Instruction inst = body[i];
            // Rebase intra-function targets.
            if (inst.isCondBranch() || inst.op == Opcode::JMP)
                inst.imm += static_cast<int32_t>(base);
            prog.code.push_back(inst);
            if (load_ids[i]) {
                result.loadIdOf.set(static_cast<uint32_t>(base + i),
                                    load_ids[i]);
            }
        }
        for (const auto &fixup : call_fixups)
            pending_calls.emplace_back(base + fixup.first,
                                       fixup.second);
    }

    for (const auto &call : pending_calls) {
        auto it = prog.symbols.find(call.second);
        if (it == prog.symbols.end())
            fatal("undefined function '%s'", call.second.c_str());
        prog.code[call.first].imm = static_cast<int32_t>(it->second);
    }

    prog.entry = 0;
    prog.globalSize = static_cast<uint32_t>(mod.globalSize);
    prog.globalInit = mod.globalInit;
    prog.verify();
    return result;
}

} // namespace codegen
} // namespace elag
