#include "irgen/irgen.hh"

#include <cstring>

#include "support/logging.hh"

namespace elag {
namespace irgen {

using lang::BinaryOp;
using lang::Expr;
using lang::ExprKind;
using lang::FuncDecl;
using lang::Stmt;
using lang::StmtKind;
using lang::Type;
using lang::UnaryOp;
using lang::VarDecl;
using ir::BasicBlock;
using ir::CondCode;
using ir::Function;
using ir::IrInst;
using ir::IrOpcode;
using ir::Operand;

namespace {

/** Where an lvalue lives. */
struct LValue
{
    enum class Kind { VReg, Mem };

    Kind kind;
    int vreg = 0;          ///< VReg home
    Operand base;          ///< Mem base (register)
    Operand offset;        ///< Mem offset (register or immediate)
    isa::MemWidth width = isa::MemWidth::Word;
    const Type *type = nullptr;
};

/** Per-function lowering state. */
class FuncLowering
{
  public:
    FuncLowering(const lang::Program &prog, lang::TypeTable &types,
                 const FuncDecl &decl, Function &fn, int heap_ptr_offset)
        : prog(prog), types(types), decl(decl), fn(fn),
          heapPtrOffset(heap_ptr_offset)
    {
    }

    void run();

  private:
    // Instruction emission into the current block.
    IrInst &emit(IrInst inst);
    int emitBin(IrOpcode op, Operand a, Operand b);
    int emitMov(Operand a);
    /** Force an operand into a register. */
    int forceReg(Operand o);
    void emitJump(BasicBlock *target);
    void emitBranch(CondCode cc, Operand a, Operand b,
                    BasicBlock *taken, BasicBlock *not_taken);

    // Statement lowering.
    void lowerStmt(const Stmt &stmt);
    void lowerDecl(const VarDecl &var);

    // Expression lowering.
    Operand lowerExpr(const Expr &expr);
    LValue lowerLValue(const Expr &expr);
    Operand loadLValue(const LValue &lv);
    void storeLValue(const LValue &lv, Operand value);
    Operand lowerBinary(const Expr &expr);
    Operand lowerShortCircuit(const Expr &expr);
    Operand lowerCall(const Expr &expr, bool want_value);
    void lowerCondBranch(const Expr &expr, BasicBlock *true_bb,
                         BasicBlock *false_bb);

    /** Scale an arithmetic operand by the pointee size of @p ptr_ty. */
    Operand scaleIndex(Operand idx, const Type *ptr_ty);
    static isa::MemWidth widthOf(const Type *type);

    const lang::Program &prog;
    lang::TypeTable &types;
    const FuncDecl &decl;
    Function &fn;
    int heapPtrOffset;

    BasicBlock *cur = nullptr;
    bool blockDone = false;
    std::map<const VarDecl *, int> varRegs;     ///< scalar homes
    std::map<const VarDecl *, int> varObjects;  ///< stack objects
    std::vector<BasicBlock *> breakTargets;
    std::vector<BasicBlock *> continueTargets;
};

isa::MemWidth
FuncLowering::widthOf(const Type *type)
{
    return type->size() == 1 ? isa::MemWidth::Byte : isa::MemWidth::Word;
}

IrInst &
FuncLowering::emit(IrInst inst)
{
    elag_assert(cur != nullptr);
    if (blockDone) {
        // Code after a terminator (e.g. after return) is unreachable;
        // park it in a fresh block that nothing jumps to.
        cur = fn.newBlock();
        blockDone = false;
    }
    cur->insts.push_back(std::move(inst));
    if (cur->insts.back().isTerminator())
        blockDone = true;
    return cur->insts.back();
}

int
FuncLowering::emitBin(IrOpcode op, Operand a, Operand b)
{
    IrInst inst;
    inst.op = op;
    inst.dest = fn.newVReg();
    // Canonical form: register first operand where possible.
    if (a.isImm() && b.isReg() &&
        (op == IrOpcode::Add || op == IrOpcode::And ||
         op == IrOpcode::Or || op == IrOpcode::Xor ||
         op == IrOpcode::Mul)) {
        std::swap(a, b);
    }
    if (a.isImm())
        a = Operand::makeReg(forceReg(a));
    inst.a = a;
    inst.b = b;
    int dest = inst.dest;
    emit(std::move(inst));
    return dest;
}

int
FuncLowering::emitMov(Operand a)
{
    IrInst inst;
    inst.op = IrOpcode::Mov;
    inst.dest = fn.newVReg();
    inst.a = a;
    int dest = inst.dest;
    emit(std::move(inst));
    return dest;
}

int
FuncLowering::forceReg(Operand o)
{
    if (o.isReg())
        return o.reg;
    return emitMov(o);
}

void
FuncLowering::emitJump(BasicBlock *target)
{
    IrInst inst;
    inst.op = IrOpcode::Jump;
    inst.taken = target;
    emit(std::move(inst));
}

void
FuncLowering::emitBranch(CondCode cc, Operand a, Operand b,
                         BasicBlock *taken, BasicBlock *not_taken)
{
    IrInst inst;
    inst.op = IrOpcode::Br;
    inst.cond = cc;
    inst.a = Operand::makeReg(forceReg(a));
    inst.b = b;
    inst.taken = taken;
    inst.notTaken = not_taken;
    emit(std::move(inst));
}

void
FuncLowering::run()
{
    cur = fn.newBlock();
    fn.setEntry(cur);

    for (const auto &param : decl.params) {
        int vreg = fn.newVReg();
        fn.params.push_back(vreg);
        if (param->addressTaken) {
            int obj = fn.newStackObject(param->type->size(), 4,
                                        param->name);
            varObjects[param.get()] = obj;
            IrInst fa;
            fa.op = IrOpcode::FrameAddr;
            fa.dest = fn.newVReg();
            fa.a = Operand::makeImm(obj);
            int addr = fa.dest;
            emit(std::move(fa));
            IrInst st;
            st.op = IrOpcode::Store;
            st.a = Operand::makeReg(addr);
            st.b = Operand::makeImm(0);
            st.c = Operand::makeReg(vreg);
            st.width = widthOf(param->type);
            emit(std::move(st));
        } else {
            varRegs[param.get()] = vreg;
        }
    }

    lowerStmt(*decl.body);

    // Implicit return at the end of the function.
    if (!blockDone) {
        IrInst ret;
        ret.op = IrOpcode::Ret;
        if (!decl.returnType->isVoid())
            ret.a = Operand::makeImm(0);
        emit(std::move(ret));
    }
}

void
FuncLowering::lowerDecl(const VarDecl &var)
{
    if (var.isArray || var.addressTaken) {
        int bytes = var.isArray ? var.type->size() * var.arraySize
                                : var.type->size();
        int obj = fn.newStackObject(bytes, 4, var.name);
        varObjects[&var] = obj;
        if (var.init) {
            Operand value = lowerExpr(*var.init);
            IrInst fa;
            fa.op = IrOpcode::FrameAddr;
            fa.dest = fn.newVReg();
            fa.a = Operand::makeImm(obj);
            int addr = fa.dest;
            emit(std::move(fa));
            IrInst st;
            st.op = IrOpcode::Store;
            st.a = Operand::makeReg(addr);
            st.b = Operand::makeImm(0);
            st.c = Operand::makeReg(forceReg(value));
            st.width = widthOf(var.type);
            emit(std::move(st));
        }
        return;
    }
    Operand init = var.init ? lowerExpr(*var.init) : Operand::makeImm(0);
    varRegs[&var] = emitMov(init);
}

void
FuncLowering::lowerStmt(const Stmt &stmt)
{
    switch (stmt.kind) {
      case StmtKind::Expr:
        lowerExpr(*stmt.expr);
        break;
      case StmtKind::Decl:
        lowerDecl(*stmt.decl);
        break;
      case StmtKind::Block:
        for (const auto &s : stmt.body)
            lowerStmt(*s);
        break;
      case StmtKind::Empty:
        break;
      case StmtKind::If: {
        BasicBlock *then_bb = fn.newBlock();
        BasicBlock *join_bb = fn.newBlock();
        BasicBlock *else_bb =
            stmt.elseStmt ? fn.newBlock() : join_bb;
        lowerCondBranch(*stmt.expr, then_bb, else_bb);
        cur = then_bb;
        blockDone = false;
        lowerStmt(*stmt.thenStmt);
        if (!blockDone)
            emitJump(join_bb);
        if (stmt.elseStmt) {
            cur = else_bb;
            blockDone = false;
            lowerStmt(*stmt.elseStmt);
            if (!blockDone)
                emitJump(join_bb);
        }
        cur = join_bb;
        blockDone = false;
        break;
      }
      case StmtKind::While: {
        BasicBlock *cond_bb = fn.newBlock();
        BasicBlock *body_bb = fn.newBlock();
        BasicBlock *exit_bb = fn.newBlock();
        emitJump(cond_bb);
        cur = cond_bb;
        blockDone = false;
        lowerCondBranch(*stmt.expr, body_bb, exit_bb);
        breakTargets.push_back(exit_bb);
        continueTargets.push_back(cond_bb);
        cur = body_bb;
        blockDone = false;
        lowerStmt(*stmt.thenStmt);
        if (!blockDone)
            emitJump(cond_bb);
        breakTargets.pop_back();
        continueTargets.pop_back();
        cur = exit_bb;
        blockDone = false;
        break;
      }
      case StmtKind::DoWhile: {
        BasicBlock *body_bb = fn.newBlock();
        BasicBlock *cond_bb = fn.newBlock();
        BasicBlock *exit_bb = fn.newBlock();
        emitJump(body_bb);
        breakTargets.push_back(exit_bb);
        continueTargets.push_back(cond_bb);
        cur = body_bb;
        blockDone = false;
        lowerStmt(*stmt.thenStmt);
        if (!blockDone)
            emitJump(cond_bb);
        cur = cond_bb;
        blockDone = false;
        lowerCondBranch(*stmt.expr, body_bb, exit_bb);
        breakTargets.pop_back();
        continueTargets.pop_back();
        cur = exit_bb;
        blockDone = false;
        break;
      }
      case StmtKind::For: {
        if (stmt.forInit)
            lowerStmt(*stmt.forInit);
        BasicBlock *cond_bb = fn.newBlock();
        BasicBlock *body_bb = fn.newBlock();
        BasicBlock *step_bb = fn.newBlock();
        BasicBlock *exit_bb = fn.newBlock();
        emitJump(cond_bb);
        cur = cond_bb;
        blockDone = false;
        if (stmt.forCond)
            lowerCondBranch(*stmt.forCond, body_bb, exit_bb);
        else
            emitJump(body_bb);
        breakTargets.push_back(exit_bb);
        continueTargets.push_back(step_bb);
        cur = body_bb;
        blockDone = false;
        lowerStmt(*stmt.thenStmt);
        if (!blockDone)
            emitJump(step_bb);
        cur = step_bb;
        blockDone = false;
        if (stmt.forStep)
            lowerExpr(*stmt.forStep);
        emitJump(cond_bb);
        breakTargets.pop_back();
        continueTargets.pop_back();
        cur = exit_bb;
        blockDone = false;
        break;
      }
      case StmtKind::Return: {
        IrInst ret;
        ret.op = IrOpcode::Ret;
        if (stmt.expr)
            ret.a = lowerExpr(*stmt.expr);
        emit(std::move(ret));
        break;
      }
      case StmtKind::Break:
        elag_assert(!breakTargets.empty());
        emitJump(breakTargets.back());
        break;
      case StmtKind::Continue:
        elag_assert(!continueTargets.empty());
        emitJump(continueTargets.back());
        break;
      default:
        panic("lowerStmt: bad statement kind");
    }
}

void
FuncLowering::lowerCondBranch(const Expr &expr, BasicBlock *true_bb,
                              BasicBlock *false_bb)
{
    if (expr.kind == ExprKind::Unary &&
        expr.unaryOp == UnaryOp::Not) {
        lowerCondBranch(*expr.lhs, false_bb, true_bb);
        return;
    }
    if (expr.kind == ExprKind::Binary) {
        BinaryOp op = expr.binaryOp;
        if (op == BinaryOp::LogAnd) {
            BasicBlock *mid = fn.newBlock();
            lowerCondBranch(*expr.lhs, mid, false_bb);
            cur = mid;
            blockDone = false;
            lowerCondBranch(*expr.rhs, true_bb, false_bb);
            return;
        }
        if (op == BinaryOp::LogOr) {
            BasicBlock *mid = fn.newBlock();
            lowerCondBranch(*expr.lhs, true_bb, mid);
            cur = mid;
            blockDone = false;
            lowerCondBranch(*expr.rhs, true_bb, false_bb);
            return;
        }
        CondCode cc;
        bool is_cmp = true;
        switch (op) {
          case BinaryOp::Eq: cc = CondCode::Eq; break;
          case BinaryOp::Ne: cc = CondCode::Ne; break;
          case BinaryOp::Lt: cc = CondCode::Lt; break;
          case BinaryOp::Le: cc = CondCode::Le; break;
          case BinaryOp::Gt: cc = CondCode::Gt; break;
          case BinaryOp::Ge: cc = CondCode::Ge; break;
          default: is_cmp = false; break;
        }
        if (is_cmp) {
            Operand a = lowerExpr(*expr.lhs);
            Operand b = lowerExpr(*expr.rhs);
            emitBranch(cc, a, b, true_bb, false_bb);
            return;
        }
    }
    Operand v = lowerExpr(expr);
    emitBranch(CondCode::Ne, v, Operand::makeImm(0), true_bb, false_bb);
}

Operand
FuncLowering::scaleIndex(Operand idx, const Type *ptr_ty)
{
    elag_assert(ptr_ty->isPtr());
    int size = ptr_ty->pointee->size();
    if (size == 1)
        return idx;
    elag_assert(size == 4);
    if (idx.isImm())
        return Operand::makeImm(idx.imm * 4);
    return Operand::makeReg(
        emitBin(IrOpcode::Shl, idx, Operand::makeImm(2)));
}

LValue
FuncLowering::lowerLValue(const Expr &expr)
{
    switch (expr.kind) {
      case ExprKind::VarRef: {
        const VarDecl *var = expr.varDecl;
        elag_assert(var != nullptr);
        LValue lv;
        lv.type = expr.type;
        if (var->isGlobal) {
            IrInst ga;
            ga.op = IrOpcode::GlobalAddr;
            ga.dest = fn.newVReg();
            ga.a = Operand::makeImm(var->globalOffset);
            int base = ga.dest;
            emit(std::move(ga));
            lv.kind = LValue::Kind::Mem;
            lv.base = Operand::makeReg(base);
            lv.offset = Operand::makeImm(0);
            lv.width = widthOf(var->type);
        } else if (var->isArray || var->addressTaken) {
            auto it = varObjects.find(var);
            elag_assert(it != varObjects.end());
            IrInst fa;
            fa.op = IrOpcode::FrameAddr;
            fa.dest = fn.newVReg();
            fa.a = Operand::makeImm(it->second);
            int base = fa.dest;
            emit(std::move(fa));
            lv.kind = LValue::Kind::Mem;
            lv.base = Operand::makeReg(base);
            lv.offset = Operand::makeImm(0);
            lv.width = widthOf(var->type);
        } else {
            auto it = varRegs.find(var);
            elag_assert(it != varRegs.end());
            lv.kind = LValue::Kind::VReg;
            lv.vreg = it->second;
        }
        return lv;
      }
      case ExprKind::Unary: {
        elag_assert(expr.unaryOp == UnaryOp::Deref);
        Operand ptr = lowerExpr(*expr.lhs);
        LValue lv;
        lv.kind = LValue::Kind::Mem;
        lv.base = Operand::makeReg(forceReg(ptr));
        lv.offset = Operand::makeImm(0);
        lv.width = widthOf(expr.type);
        lv.type = expr.type;
        return lv;
      }
      case ExprKind::Index: {
        const Expr *base_e = expr.lhs.get();
        const Expr *idx_e = expr.rhs.get();
        if (!base_e->type->isPtr())
            std::swap(base_e, idx_e);
        Operand base = lowerExpr(*base_e);
        Operand idx = lowerExpr(*idx_e);
        Operand scaled = scaleIndex(idx, base_e->type);
        LValue lv;
        lv.kind = LValue::Kind::Mem;
        lv.base = Operand::makeReg(forceReg(base));
        lv.offset = scaled;
        lv.width = widthOf(expr.type);
        lv.type = expr.type;
        return lv;
      }
      default:
        panic("lowerLValue: expression is not an lvalue");
    }
}

Operand
FuncLowering::loadLValue(const LValue &lv)
{
    if (lv.kind == LValue::Kind::VReg)
        return Operand::makeReg(lv.vreg);
    IrInst ld;
    ld.op = IrOpcode::Load;
    ld.dest = fn.newVReg();
    ld.a = lv.base;
    ld.b = lv.offset;
    ld.width = lv.width;
    int dest = ld.dest;
    emit(std::move(ld));
    return Operand::makeReg(dest);
}

void
FuncLowering::storeLValue(const LValue &lv, Operand value)
{
    if (lv.kind == LValue::Kind::VReg) {
        // Overwrite the existing home so all uses observe the value.
        IrInst mv;
        mv.op = IrOpcode::Mov;
        mv.dest = lv.vreg;
        mv.a = value;
        emit(std::move(mv));
        return;
    }
    IrInst st;
    st.op = IrOpcode::Store;
    st.a = lv.base;
    st.b = lv.offset;
    st.c = Operand::makeReg(forceReg(value));
    st.width = lv.width;
    emit(std::move(st));
}

Operand
FuncLowering::lowerShortCircuit(const Expr &expr)
{
    BasicBlock *true_bb = fn.newBlock();
    BasicBlock *false_bb = fn.newBlock();
    BasicBlock *join_bb = fn.newBlock();
    int result = fn.newVReg();
    lowerCondBranch(expr, true_bb, false_bb);
    cur = true_bb;
    blockDone = false;
    IrInst mv1;
    mv1.op = IrOpcode::Mov;
    mv1.dest = result;
    mv1.a = Operand::makeImm(1);
    emit(std::move(mv1));
    emitJump(join_bb);
    cur = false_bb;
    blockDone = false;
    IrInst mv0;
    mv0.op = IrOpcode::Mov;
    mv0.dest = result;
    mv0.a = Operand::makeImm(0);
    emit(std::move(mv0));
    emitJump(join_bb);
    cur = join_bb;
    blockDone = false;
    return Operand::makeReg(result);
}

Operand
FuncLowering::lowerBinary(const Expr &expr)
{
    BinaryOp op = expr.binaryOp;
    if (op == BinaryOp::LogAnd || op == BinaryOp::LogOr)
        return lowerShortCircuit(expr);

    const Type *lt = expr.lhs->type;
    const Type *rt = expr.rhs->type;

    // Comparisons are materialized via set instructions.
    switch (op) {
      case BinaryOp::Eq:
      case BinaryOp::Ne:
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
        return lowerShortCircuit(expr);
      default:
        break;
    }

    Operand a = lowerExpr(*expr.lhs);
    Operand b = lowerExpr(*expr.rhs);

    // Pointer arithmetic scaling.
    if (op == BinaryOp::Add && lt->isPtr() && rt->isArith()) {
        return Operand::makeReg(
            emitBin(IrOpcode::Add, a, scaleIndex(b, lt)));
    }
    if (op == BinaryOp::Add && lt->isArith() && rt->isPtr()) {
        return Operand::makeReg(
            emitBin(IrOpcode::Add, b, scaleIndex(a, rt)));
    }
    if (op == BinaryOp::Sub && lt->isPtr() && rt->isArith()) {
        Operand scaled = scaleIndex(b, lt);
        return Operand::makeReg(emitBin(IrOpcode::Sub, a, scaled));
    }
    if (op == BinaryOp::Sub && lt->isPtr() && rt->isPtr()) {
        int diff = emitBin(IrOpcode::Sub, a, b);
        int size = lt->pointee->size();
        if (size == 1)
            return Operand::makeReg(diff);
        return Operand::makeReg(emitBin(IrOpcode::Sra,
                                        Operand::makeReg(diff),
                                        Operand::makeImm(2)));
    }

    IrOpcode ir_op;
    switch (op) {
      case BinaryOp::Add: ir_op = IrOpcode::Add; break;
      case BinaryOp::Sub: ir_op = IrOpcode::Sub; break;
      case BinaryOp::Mul: ir_op = IrOpcode::Mul; break;
      case BinaryOp::Div: ir_op = IrOpcode::Div; break;
      case BinaryOp::Rem: ir_op = IrOpcode::Rem; break;
      case BinaryOp::And: ir_op = IrOpcode::And; break;
      case BinaryOp::Or: ir_op = IrOpcode::Or; break;
      case BinaryOp::Xor: ir_op = IrOpcode::Xor; break;
      case BinaryOp::Shl: ir_op = IrOpcode::Shl; break;
      case BinaryOp::Shr: ir_op = IrOpcode::Sra; break;
      default:
        panic("lowerBinary: unexpected operator");
    }
    return Operand::makeReg(emitBin(ir_op, a, b));
}

Operand
FuncLowering::lowerCall(const Expr &expr, bool want_value)
{
    const FuncDecl *callee = expr.funcDecl;
    elag_assert(callee != nullptr);

    if (callee->isBuiltin && callee->name == "print") {
        Operand v = lowerExpr(*expr.args[0]);
        IrInst pr;
        pr.op = IrOpcode::Print;
        pr.a = Operand::makeReg(forceReg(v));
        emit(std::move(pr));
        return Operand::makeImm(0);
    }

    IrInst call;
    call.op = IrOpcode::Call;
    call.callee = callee->name;
    for (const auto &arg : expr.args) {
        Operand v = lowerExpr(*arg);
        call.args.push_back(forceReg(v));
    }
    if (want_value && !callee->returnType->isVoid())
        call.dest = fn.newVReg();
    int dest = call.dest;
    emit(std::move(call));
    return dest ? Operand::makeReg(dest) : Operand::makeImm(0);
}

Operand
FuncLowering::lowerExpr(const Expr &expr)
{
    switch (expr.kind) {
      case ExprKind::IntLit:
        return Operand::makeImm(expr.intValue);
      case ExprKind::VarRef: {
        // Array names decay to the array's address, not a load.
        const VarDecl *var = expr.varDecl;
        elag_assert(var != nullptr);
        if (var->isArray) {
            IrInst addr;
            addr.op = var->isGlobal ? IrOpcode::GlobalAddr
                                    : IrOpcode::FrameAddr;
            addr.dest = fn.newVReg();
            if (var->isGlobal) {
                addr.a = Operand::makeImm(var->globalOffset);
            } else {
                auto it = varObjects.find(var);
                elag_assert(it != varObjects.end());
                addr.a = Operand::makeImm(it->second);
            }
            int dest = addr.dest;
            emit(std::move(addr));
            return Operand::makeReg(dest);
        }
        return loadLValue(lowerLValue(expr));
      }
      case ExprKind::Index:
        return loadLValue(lowerLValue(expr));
      case ExprKind::Unary:
        switch (expr.unaryOp) {
          case UnaryOp::Neg: {
            Operand v = lowerExpr(*expr.lhs);
            if (v.isImm())
                return Operand::makeImm(-v.imm);
            int zero = emitMov(Operand::makeImm(0));
            return Operand::makeReg(emitBin(
                IrOpcode::Sub, Operand::makeReg(zero), v));
          }
          case UnaryOp::Not: {
            Operand v = lowerExpr(*expr.lhs);
            return Operand::makeReg(emitBin(IrOpcode::SetEq, v,
                                            Operand::makeImm(0)));
          }
          case UnaryOp::BitNot: {
            Operand v = lowerExpr(*expr.lhs);
            return Operand::makeReg(emitBin(IrOpcode::Xor, v,
                                            Operand::makeImm(-1)));
          }
          case UnaryOp::Deref:
            return loadLValue(lowerLValue(expr));
          case UnaryOp::AddrOf: {
            LValue lv = lowerLValue(*expr.lhs);
            elag_assert(lv.kind == LValue::Kind::Mem);
            if (lv.offset.isImm() && lv.offset.imm == 0)
                return lv.base;
            return Operand::makeReg(
                emitBin(IrOpcode::Add, lv.base, lv.offset));
          }
          default:
            panic("lowerExpr: bad unary op");
        }
      case ExprKind::Binary:
        return lowerBinary(expr);
      case ExprKind::Assign: {
        LValue lv = lowerLValue(*expr.lhs);
        Operand value;
        if (expr.isCompound) {
            Operand old = loadLValue(lv);
            Operand rhs = lowerExpr(*expr.rhs);
            const Type *lt = expr.lhs->type;
            IrOpcode ir_op;
            switch (expr.binaryOp) {
              case BinaryOp::Add: ir_op = IrOpcode::Add; break;
              case BinaryOp::Sub: ir_op = IrOpcode::Sub; break;
              case BinaryOp::Mul: ir_op = IrOpcode::Mul; break;
              case BinaryOp::Div: ir_op = IrOpcode::Div; break;
              case BinaryOp::Rem: ir_op = IrOpcode::Rem; break;
              case BinaryOp::And: ir_op = IrOpcode::And; break;
              case BinaryOp::Or: ir_op = IrOpcode::Or; break;
              case BinaryOp::Xor: ir_op = IrOpcode::Xor; break;
              case BinaryOp::Shl: ir_op = IrOpcode::Shl; break;
              case BinaryOp::Shr: ir_op = IrOpcode::Sra; break;
              default:
                panic("lowerExpr: bad compound op");
            }
            if (lt->isPtr() &&
                (ir_op == IrOpcode::Add || ir_op == IrOpcode::Sub)) {
                rhs = scaleIndex(rhs, lt);
            }
            value = Operand::makeReg(emitBin(ir_op, old, rhs));
        } else {
            value = lowerExpr(*expr.rhs);
        }
        storeLValue(lv, value);
        return value;
      }
      case ExprKind::Cond: {
        BasicBlock *then_bb = fn.newBlock();
        BasicBlock *else_bb = fn.newBlock();
        BasicBlock *join_bb = fn.newBlock();
        int result = fn.newVReg();
        lowerCondBranch(*expr.lhs, then_bb, else_bb);
        cur = then_bb;
        blockDone = false;
        {
            Operand v = lowerExpr(*expr.rhs);
            IrInst mv;
            mv.op = IrOpcode::Mov;
            mv.dest = result;
            mv.a = v;
            emit(std::move(mv));
        }
        emitJump(join_bb);
        cur = else_bb;
        blockDone = false;
        {
            Operand v = lowerExpr(*expr.third);
            IrInst mv;
            mv.op = IrOpcode::Mov;
            mv.dest = result;
            mv.a = v;
            emit(std::move(mv));
        }
        emitJump(join_bb);
        cur = join_bb;
        blockDone = false;
        return Operand::makeReg(result);
      }
      case ExprKind::Call:
        return lowerCall(expr, true);
      case ExprKind::IncDec: {
        LValue lv = lowerLValue(*expr.lhs);
        // Copy the old value out of the variable's home so the
        // postfix result is not clobbered by the store-back below.
        int old_reg = emitMov(loadLValue(lv));
        Operand step = Operand::makeImm(1);
        const Type *t = expr.lhs->type;
        if (t->isPtr())
            step = Operand::makeImm(t->pointee->size());
        IrOpcode op =
            expr.isIncrement ? IrOpcode::Add : IrOpcode::Sub;
        int new_reg = emitBin(op, Operand::makeReg(old_reg), step);
        storeLValue(lv, Operand::makeReg(new_reg));
        return Operand::makeReg(expr.isPostfix ? old_reg : new_reg);
      }
      case ExprKind::Cast:
        return lowerExpr(*expr.lhs);
      default:
        panic("lowerExpr: bad expression kind");
    }
}

/** Synthesize the IR body of the builtin bump allocator. */
void
buildAllocFunction(ir::Module &mod, int heap_ptr_offset)
{
    auto fn = std::make_unique<Function>("alloc");
    BasicBlock *bb = fn->newBlock();
    int bytes = fn->newVReg();
    fn->params.push_back(bytes);

    auto push = [&](IrInst inst) { bb->insts.push_back(std::move(inst)); };

    // aligned = (bytes + 7) & ~7
    IrInst add;
    add.op = IrOpcode::Add;
    add.dest = fn->newVReg();
    add.a = Operand::makeReg(bytes);
    add.b = Operand::makeImm(7);
    int t1 = add.dest;
    push(std::move(add));
    IrInst mask;
    mask.op = IrOpcode::And;
    mask.dest = fn->newVReg();
    mask.a = Operand::makeReg(t1);
    mask.b = Operand::makeImm(~static_cast<int64_t>(7));
    int aligned = mask.dest;
    push(std::move(mask));

    // p = *__heap_ptr; *__heap_ptr = p + aligned; return p
    IrInst ga;
    ga.op = IrOpcode::GlobalAddr;
    ga.dest = fn->newVReg();
    ga.a = Operand::makeImm(heap_ptr_offset);
    int hp = ga.dest;
    push(std::move(ga));
    IrInst ld;
    ld.op = IrOpcode::Load;
    ld.dest = fn->newVReg();
    ld.a = Operand::makeReg(hp);
    ld.b = Operand::makeImm(0);
    int p = ld.dest;
    push(std::move(ld));
    IrInst bump;
    bump.op = IrOpcode::Add;
    bump.dest = fn->newVReg();
    bump.a = Operand::makeReg(p);
    bump.b = Operand::makeReg(aligned);
    int next = bump.dest;
    push(std::move(bump));
    IrInst st;
    st.op = IrOpcode::Store;
    st.a = Operand::makeReg(hp);
    st.b = Operand::makeImm(0);
    st.c = Operand::makeReg(next);
    push(std::move(st));
    IrInst ret;
    ret.op = IrOpcode::Ret;
    ret.a = Operand::makeReg(p);
    push(std::move(ret));

    fn->recomputeCfg();
    mod.functions.push_back(std::move(fn));
}

} // anonymous namespace

std::unique_ptr<ir::Module>
lowerToIr(const lang::Program &prog, lang::TypeTable &types,
          int global_size)
{
    auto mod = std::make_unique<ir::Module>();

    // Reserve a word for the heap bump pointer after user globals.
    int heap_ptr_offset = global_size;
    mod->globalSize = global_size + 4;

    // Initial global segment contents.
    mod->globalInit.assign(static_cast<size_t>(mod->globalSize), 0);
    auto poke_word = [&](int offset, uint32_t value) {
        std::memcpy(mod->globalInit.data() + offset, &value, 4);
    };
    for (const auto &g : prog.globals) {
        if (!g->hasConstInit)
            continue;
        if (g->type->size() == 1) {
            mod->globalInit[static_cast<size_t>(g->globalOffset)] =
                static_cast<uint8_t>(g->constInit);
        } else {
            poke_word(g->globalOffset,
                      static_cast<uint32_t>(g->constInit));
        }
    }
    // The loader patches __heap_ptr with the final heap base once the
    // total global size is known (isa::MachineProgram::heapBase).
    poke_word(heap_ptr_offset, 0);

    buildAllocFunction(*mod, heap_ptr_offset);

    for (const auto &fn_decl : prog.functions) {
        if (fn_decl->isBuiltin)
            continue;
        auto fn = std::make_unique<Function>(fn_decl->name);
        FuncLowering lowering(prog, types, *fn_decl, *fn,
                              heap_ptr_offset);
        lowering.run();
        fn->recomputeCfg();
        mod->functions.push_back(std::move(fn));
    }

    mod->numberLoads();
    return mod;
}

} // namespace irgen
} // namespace elag
