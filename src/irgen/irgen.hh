/**
 * @file
 * AST -> IR lowering.
 */

#ifndef ELAG_IRGEN_IRGEN_HH
#define ELAG_IRGEN_IRGEN_HH

#include <map>
#include <memory>

#include "ir/ir.hh"
#include "lang/ast.hh"
#include "lang/type.hh"

namespace elag {
namespace irgen {

/**
 * Lower a semantically-checked program to IR.
 *
 * Scalar locals and parameters become virtual registers (the
 * "virtual register allocation" promotion the paper's heuristics
 * rely on); address-taken locals and arrays become stack objects;
 * globals live in the global segment addressed through GlobalAddr.
 *
 * The runtime `alloc` builtin is synthesized as an IR function that
 * bumps the `__heap_ptr` word, which the loader initializes to the
 * heap base address.
 */
std::unique_ptr<ir::Module> lowerToIr(const lang::Program &prog,
                                      lang::TypeTable &types,
                                      int global_size);

} // namespace irgen
} // namespace elag

#endif // ELAG_IRGEN_IRGEN_HH
