/**
 * @file
 * Shared helpers for the optimization passes.
 */

#ifndef ELAG_OPT_UTIL_HH
#define ELAG_OPT_UTIL_HH

#include <cstdint>
#include <map>
#include <vector>

#include "ir/ir.hh"

namespace elag {
namespace opt {

/** Location of one instruction. */
struct InstRef
{
    ir::BasicBlock *block = nullptr;
    size_t index = 0;

    ir::IrInst &inst() const { return block->insts[index]; }
};

/** All definition sites of every vreg in the function. */
std::map<int, std::vector<InstRef>> collectDefs(ir::Function &fn);

/** Number of uses of every vreg. */
std::map<int, int> countUses(const ir::Function &fn);

/** Evaluate a binary IR op on 32-bit wrapped values. */
int32_t evalIrOp(ir::IrOpcode op, int32_t a, int32_t b);

/** @return true if @p op is a pure dest = a OP b arithmetic op. */
bool isPureBinaryOp(ir::IrOpcode op);

} // namespace opt
} // namespace elag

#endif // ELAG_OPT_UTIL_HH
