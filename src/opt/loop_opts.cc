/**
 * @file
 * Loop optimizations: loop-invariant code motion and induction-
 * variable strength reduction.
 *
 * Strength reduction is the transformation that turns
 *     t = i << 2 ; x = load [base + t] ; i = i + 1
 * into
 *     p = base + (i0 << 2)   (preheader)
 *     x = load [p + 0] ; p = p + 4
 * which is exactly the strided register+offset load shape the
 * paper's ld_p classification targets (Figure 4b).
 */

#include <optional>

#include "ir/dominators.hh"
#include "ir/loops.hh"
#include "opt/pass.hh"
#include "opt/util.hh"
#include "support/logging.hh"

namespace elag {
namespace opt {

using ir::BasicBlock;
using ir::Dominators;
using ir::Function;
using ir::IrInst;
using ir::IrOpcode;
using ir::Loop;
using ir::LoopInfo;
using ir::Operand;

namespace {

/** True if the loop contains any store or call. */
bool
loopHasMemSideEffects(const Loop &loop)
{
    for (const BasicBlock *bb : loop.blocks) {
        for (const auto &inst : bb->insts) {
            if (inst.isStore() || inst.isCall() ||
                inst.op == IrOpcode::Print) {
                return true;
            }
        }
    }
    return false;
}

/** Blocks with a back edge to the loop header. */
std::vector<BasicBlock *>
loopLatches(const Loop &loop)
{
    std::vector<BasicBlock *> latches;
    for (BasicBlock *pred : loop.header->preds) {
        if (loop.contains(pred))
            latches.push_back(pred);
    }
    return latches;
}

} // anonymous namespace

bool
loopInvariantCodeMotion(Function &fn)
{
    bool any = false;
    fn.recomputeCfg();
    LoopInfo loop_info(fn);

    for (Loop *loop : loop_info.loopsInnermostFirst()) {
        auto defs = collectDefs(fn);
        bool mem_unsafe = loopHasMemSideEffects(*loop);
        std::vector<BasicBlock *> latches = loopLatches(*loop);

        // Registers with any definition inside the loop.
        std::set<int> defined_in_loop;
        for (BasicBlock *bb : loop->blocks) {
            for (const auto &inst : bb->insts) {
                if (inst.dest)
                    defined_in_loop.insert(inst.dest);
            }
        }

        Dominators doms(fn);
        BasicBlock *preheader = nullptr;
        bool changed = true;
        while (changed) {
            changed = false;
            for (BasicBlock *bb : loop->blocks) {
                for (size_t i = 0; i < bb->insts.size(); ++i) {
                    IrInst &inst = bb->insts[i];
                    bool movable_op =
                        isPureBinaryOp(inst.op) ||
                        inst.op == IrOpcode::Mov ||
                        inst.op == IrOpcode::FrameAddr ||
                        inst.op == IrOpcode::GlobalAddr ||
                        (inst.isLoad() && !mem_unsafe);
                    if (!movable_op || !inst.dest)
                        continue;
                    // Dest must be single-def in the function.
                    auto dit = defs.find(inst.dest);
                    if (dit == defs.end() || dit->second.size() != 1)
                        continue;
                    // All sources invariant.
                    std::vector<int> srcs;
                    inst.sourceRegs(srcs);
                    bool invariant = true;
                    for (int s : srcs) {
                        if (defined_in_loop.count(s)) {
                            invariant = false;
                            break;
                        }
                    }
                    if (!invariant)
                        continue;
                    // Loads must execute on every iteration to be
                    // hoisted (they are not speculated past guards).
                    if (inst.isLoad()) {
                        bool dominates_latches = true;
                        for (BasicBlock *latch : latches) {
                            if (!doms.dominates(bb, latch)) {
                                dominates_latches = false;
                                break;
                            }
                        }
                        if (!dominates_latches)
                            continue;
                    }
                    if (!preheader) {
                        preheader = ir::ensurePreheader(fn, *loop);
                        // CFG changed; dominators must be rebuilt.
                        doms = Dominators(fn);
                    }
                    // Insert before the preheader's terminator.
                    int moved_dest = inst.dest;
                    IrInst moved = inst;
                    bb->insts.erase(bb->insts.begin() +
                                    static_cast<long>(i));
                    preheader->insts.insert(
                        preheader->insts.end() - 1, std::move(moved));
                    defined_in_loop.erase(moved_dest);
                    defs = collectDefs(fn);
                    changed = true;
                    any = true;
                    --i;
                }
            }
        }
    }
    if (any)
        fn.recomputeCfg();
    return any;
}

namespace {

/** A basic induction variable i = i + step. */
struct BasicIv
{
    int vreg = 0;
    int64_t step = 0;
    BasicBlock *incBlock = nullptr;
    size_t incIndex = 0;
};

/** Find basic IVs of @p loop: vregs with exactly one in-loop def of
 * the form v = add v, imm, that def living in a latch-dominating
 * block. */
std::vector<BasicIv>
findBasicIvs(Function &fn, const Loop &loop)
{
    std::vector<BasicIv> ivs;
    auto defs = collectDefs(fn);
    for (auto &kv : defs) {
        int vreg = kv.first;
        InstRef in_loop_def{};
        int in_loop_defs = 0;
        bool def_outside = false;
        for (const InstRef &ref : kv.second) {
            if (loop.contains(ref.block)) {
                in_loop_def = ref;
                ++in_loop_defs;
            } else {
                def_outside = true;
            }
        }
        if (in_loop_defs != 1 || !def_outside)
            continue;
        const IrInst &inst = in_loop_def.inst();
        bool is_inc = inst.op == IrOpcode::Add && inst.a.isReg() &&
                      inst.a.reg == vreg && inst.b.isImm() &&
                      inst.dest == vreg;
        bool is_dec = inst.op == IrOpcode::Sub && inst.a.isReg() &&
                      inst.a.reg == vreg && inst.b.isImm() &&
                      inst.dest == vreg;
        if (!is_inc && !is_dec)
            continue;
        BasicIv iv;
        iv.vreg = vreg;
        iv.step = is_inc ? inst.b.imm : -inst.b.imm;
        iv.incBlock = in_loop_def.block;
        iv.incIndex = in_loop_def.index;
        ivs.push_back(iv);
    }
    return ivs;
}

} // anonymous namespace

namespace {

/**
 * Transform at most one (IV, scaled-temp) candidate in @p loop.
 * @return true if a transformation was applied.
 */
bool
reduceOneCandidate(Function &fn, Loop &loop,
                   std::set<int> &reduced_temps)
{
    std::vector<BasicIv> ivs = findBasicIvs(fn, loop);
    if (ivs.empty())
        return false;
    auto defs = collectDefs(fn);
    Dominators doms(fn);

    std::set<int> defined_in_loop;
    for (BasicBlock *bb : loop.blocks) {
        for (const auto &inst : bb->insts) {
            if (inst.dest)
                defined_in_loop.insert(inst.dest);
        }
    }

    for (const BasicIv &iv : ivs) {
        // Increment must dominate every latch so the pointer update
        // executes exactly once per iteration.
        bool inc_each_iter = true;
        for (BasicBlock *latch : loopLatches(loop)) {
            if (!doms.dominates(iv.incBlock, latch)) {
                inc_each_iter = false;
                break;
            }
        }
        if (!inc_each_iter)
            continue;

        // Find scaled copies: t = shl iv, k (single-def, in loop,
        // computed with the pre-increment IV value).
        for (const auto &kv : defs) {
            if (kv.second.size() != 1 || reduced_temps.count(kv.first))
                continue;
            InstRef t_ref = kv.second[0];
            if (!loop.contains(t_ref.block))
                continue;
            const IrInst &t_inst = t_ref.inst();
            if (t_inst.op != IrOpcode::Shl || !t_inst.a.isReg() ||
                t_inst.a.reg != iv.vreg || !t_inst.b.isImm()) {
                continue;
            }
            if (t_ref.block == iv.incBlock &&
                t_ref.index > iv.incIndex) {
                continue;
            }
            int64_t shift = t_inst.b.imm;
            int t_vreg = t_inst.dest;

            // Memory accesses [base + t] with loop-invariant base.
            struct Site
            {
                BasicBlock *block;
                size_t index;
            };
            std::vector<Site> sites;
            for (BasicBlock *bb : loop.blocks) {
                for (size_t i = 0; i < bb->insts.size(); ++i) {
                    IrInst &inst = bb->insts[i];
                    bool site_ok =
                        inst.isMem() && inst.b.isReg() &&
                        inst.b.reg == t_vreg && inst.a.isReg() &&
                        !defined_in_loop.count(inst.a.reg) &&
                        // Access must observe the pre-increment IV.
                        !(bb == iv.incBlock && i > iv.incIndex) &&
                        doms.dominates(t_ref.block, bb) &&
                        !(bb == t_ref.block && i < t_ref.index);
                    if (site_ok)
                        sites.push_back({bb, i});
                }
            }
            if (sites.empty())
                continue;

            // Group sites by base register; one strided pointer per
            // base register.
            std::map<int, int> base_to_ptr;
            BasicBlock *preheader = ir::ensurePreheader(fn, loop);
            // Rewrite sites in reverse so stored indices stay valid
            // while the IV-increment block gains the bump insts.
            for (auto it = sites.rbegin(); it != sites.rend(); ++it) {
                IrInst &mem = it->block->insts[it->index];
                int base = mem.a.reg;
                int ptr;
                auto found = base_to_ptr.find(base);
                if (found == base_to_ptr.end()) {
                    int t0 = fn.newVReg();
                    ptr = fn.newVReg();
                    IrInst shl;
                    shl.op = IrOpcode::Shl;
                    shl.dest = t0;
                    shl.a = Operand::makeReg(iv.vreg);
                    shl.b = Operand::makeImm(shift);
                    IrInst addp;
                    addp.op = IrOpcode::Add;
                    addp.dest = ptr;
                    addp.a = Operand::makeReg(base);
                    addp.b = Operand::makeReg(t0);
                    preheader->insts.insert(preheader->insts.end() - 1,
                                            shl);
                    preheader->insts.insert(preheader->insts.end() - 1,
                                            addp);
                    IrInst bump;
                    bump.op = IrOpcode::Add;
                    bump.dest = ptr;
                    bump.a = Operand::makeReg(ptr);
                    bump.b = Operand::makeImm(iv.step *
                                              (1ll << shift));
                    iv.incBlock->insts.insert(
                        iv.incBlock->insts.begin() +
                            static_cast<long>(iv.incIndex) + 1,
                        bump);
                    base_to_ptr[base] = ptr;
                } else {
                    ptr = found->second;
                }
                mem.a = Operand::makeReg(ptr);
                mem.b = Operand::makeImm(0);
            }
            reduced_temps.insert(t_vreg);
            return true;
        }
    }
    return false;
}

} // anonymous namespace

bool
strengthReduceInductionVariables(Function &fn)
{
    bool any = false;
    fn.recomputeCfg();

    // Each transformation invalidates CFG-derived analyses, so loops
    // are re-discovered after every change, bounded by a generous cap.
    std::set<int> reduced_temps;
    for (int iter = 0; iter < 256; ++iter) {
        LoopInfo loop_info(fn);
        bool changed = false;
        for (Loop *loop : loop_info.loopsInnermostFirst()) {
            if (reduceOneCandidate(fn, *loop, reduced_temps)) {
                changed = true;
                break;
            }
        }
        if (!changed)
            break;
        fn.recomputeCfg();
        any = true;
    }
    return any;
}

} // namespace opt
} // namespace elag
