/**
 * @file
 * Optimization pass interfaces and the standard pipeline.
 *
 * The paper (Section 4) applies its load-classification heuristics
 * after "classical optimizations including function inlining, virtual
 * register allocation, local/global constant propagation, local/global
 * copy propagation, local/global redundant load elimination, loop
 * invariant code removal, and induction variable elimination/strength
 * reduction", because those passes promote variables to registers and
 * expose the load-dependence structure. This module implements that
 * pipeline.
 */

#ifndef ELAG_OPT_PASS_HH
#define ELAG_OPT_PASS_HH

#include <string>

#include "ir/ir.hh"

namespace elag {
namespace opt {

/** Configuration for the standard optimization pipeline. */
struct OptConfig
{
    bool inlining = true;
    bool constProp = true;
    bool copyProp = true;
    bool redundantLoadElim = true;
    bool licm = true;
    bool strengthReduction = true;
    bool dce = true;
    bool simplifyCfg = true;
    /** Callee instruction-count cap for inlining. */
    int inlineThreshold = 48;
    /** Maximum caller growth factor for inlining. */
    int inlineGrowthLimit = 6;

    /** All passes off (for the "unoptimized" ablation). */
    static OptConfig noneEnabled();
};

/**
 * Run the standard pipeline over the module and re-number loads.
 * The module is verified before and after.
 */
void runStandardPipeline(ir::Module &mod,
                         const OptConfig &config = OptConfig());

// Individual passes (exposed for unit testing). Each returns true if
// it changed the function/module.
bool simplifyCfg(ir::Function &fn);
bool constantPropagation(ir::Function &fn);
bool copyPropagation(ir::Function &fn);
/**
 * Rewrite adjacent "t = op ...; x = mov t" pairs (t used only by the
 * mov) into "x = op ...". Restores the canonical loop-carried update
 * form "iv = add iv, k" that induction-variable detection expects.
 */
bool coalesceMoves(ir::Function &fn);
bool deadCodeElimination(ir::Function &fn);
bool redundantLoadElimination(ir::Function &fn);
bool loopInvariantCodeMotion(ir::Function &fn);
bool strengthReduceInductionVariables(ir::Function &fn);
bool inlineFunctions(ir::Module &mod, const OptConfig &config);

} // namespace opt
} // namespace elag

#endif // ELAG_OPT_PASS_HH
