/**
 * @file
 * Scalar cleanup passes: constant propagation, copy propagation,
 * dead-code elimination, and local redundant-load elimination with
 * store-to-load forwarding.
 */

#include <optional>

#include "ir/dominators.hh"
#include "ir/liveness.hh"
#include "opt/pass.hh"
#include "opt/util.hh"
#include "support/logging.hh"

namespace elag {
namespace opt {

using ir::BasicBlock;
using ir::Dominators;
using ir::Function;
using ir::IrInst;
using ir::IrOpcode;
using ir::Operand;

namespace {

/** Substitute a known-constant register operand with an immediate. */
bool
substConst(Operand &o, const std::map<int, int32_t> &consts,
           bool keep_reg)
{
    if (!o.isReg() || keep_reg)
        return false;
    auto it = consts.find(o.reg);
    if (it == consts.end())
        return false;
    o = Operand::makeImm(it->second);
    return true;
}

/** Try to fold @p inst into a simpler form; true if changed. */
bool
foldInst(IrInst &inst)
{
    using Op = IrOpcode;
    // Fully-constant pure ops (and div/rem with non-zero divisor).
    bool foldable =
        isPureBinaryOp(inst.op) ||
        ((inst.op == Op::Div || inst.op == Op::Rem) && inst.b.isImm() &&
         inst.b.imm != 0);
    if (foldable && inst.a.isImm() && inst.b.isImm()) {
        int32_t v = evalIrOp(inst.op, static_cast<int32_t>(inst.a.imm),
                             static_cast<int32_t>(inst.b.imm));
        inst.op = Op::Mov;
        inst.a = Operand::makeImm(v);
        inst.b = Operand::none();
        return true;
    }
    // Algebraic identities with a register operand.
    if (inst.b.isImm()) {
        int64_t k = inst.b.imm;
        bool identity =
            ((inst.op == Op::Add || inst.op == Op::Sub ||
              inst.op == Op::Or || inst.op == Op::Xor ||
              inst.op == Op::Shl || inst.op == Op::Shr ||
              inst.op == Op::Sra) &&
             k == 0) ||
            ((inst.op == Op::Mul || inst.op == Op::Div) && k == 1);
        if (identity && inst.a.isReg()) {
            inst.op = Op::Mov;
            inst.b = Operand::none();
            return true;
        }
        if (inst.op == Op::Mul && k == 0) {
            inst.op = Op::Mov;
            inst.a = Operand::makeImm(0);
            inst.b = Operand::none();
            return true;
        }
        // Multiplication by a power of two becomes a shift.
        if (inst.op == Op::Mul && k > 1 && (k & (k - 1)) == 0) {
            int shift = 0;
            while ((1ll << shift) < k)
                ++shift;
            inst.op = Op::Shl;
            inst.b = Operand::makeImm(shift);
            return true;
        }
    }
    // Constant-foldable branches are handled by simplifyCfg via the
    // Br-with-equal-targets rule; fold the condition here.
    if (inst.op == Op::Br && inst.a.isImm() && inst.b.isImm()) {
        int32_t a = static_cast<int32_t>(inst.a.imm);
        int32_t b = static_cast<int32_t>(inst.b.imm);
        bool taken;
        switch (inst.cond) {
          case ir::CondCode::Eq: taken = a == b; break;
          case ir::CondCode::Ne: taken = a != b; break;
          case ir::CondCode::Lt: taken = a < b; break;
          case ir::CondCode::Le: taken = a <= b; break;
          case ir::CondCode::Gt: taken = a > b; break;
          case ir::CondCode::Ge: taken = a >= b; break;
          case ir::CondCode::LtU:
            taken = static_cast<uint32_t>(a) < static_cast<uint32_t>(b);
            break;
          case ir::CondCode::GeU:
            taken = static_cast<uint32_t>(a) >= static_cast<uint32_t>(b);
            break;
          default:
            panic("foldInst: bad cond code");
        }
        inst.op = Op::Jump;
        inst.taken = taken ? inst.taken : inst.notTaken;
        inst.notTaken = nullptr;
        inst.a = Operand::none();
        inst.b = Operand::none();
        return true;
    }
    return false;
}

bool
dominatesRef(const Dominators &doms, const InstRef &def,
             const BasicBlock *use_bb, size_t use_idx)
{
    if (def.block == use_bb)
        return def.index < use_idx;
    return doms.dominates(def.block, use_bb);
}

} // anonymous namespace

bool
constantPropagation(Function &fn)
{
    bool any = false;

    // Local propagation and folding within each block.
    for (auto &bb : fn.blocks()) {
        std::map<int, int32_t> consts;
        for (auto &inst : bb->insts) {
            bool mem_base =
                inst.op == IrOpcode::Load || inst.op == IrOpcode::Store;
            any |= substConst(inst.a, consts, mem_base);
            any |= substConst(inst.b, consts, false);
            any |= substConst(inst.c, consts, false);
            any |= foldInst(inst);
            if (inst.dest) {
                if (inst.op == IrOpcode::Mov && inst.a.isImm()) {
                    consts[inst.dest] =
                        static_cast<int32_t>(inst.a.imm);
                } else {
                    consts.erase(inst.dest);
                }
            }
        }
    }

    // Global propagation of single-def constants (with dominance).
    fn.recomputeCfg();
    auto defs = collectDefs(fn);
    std::map<int, std::pair<InstRef, int32_t>> constant_defs;
    for (auto &kv : defs) {
        if (kv.second.size() != 1)
            continue;
        const IrInst &inst = kv.second[0].inst();
        if (inst.op == IrOpcode::Mov && inst.a.isImm()) {
            constant_defs[kv.first] = {
                kv.second[0], static_cast<int32_t>(inst.a.imm)};
        }
    }
    if (!constant_defs.empty()) {
        Dominators doms(fn);
        for (auto &bb : fn.blocks()) {
            for (size_t i = 0; i < bb->insts.size(); ++i) {
                IrInst &inst = bb->insts[i];
                auto subst = [&](Operand &o, bool keep_reg) {
                    if (!o.isReg() || keep_reg)
                        return;
                    auto it = constant_defs.find(o.reg);
                    if (it == constant_defs.end())
                        return;
                    if (!dominatesRef(doms, it->second.first, bb.get(),
                                      i)) {
                        return;
                    }
                    o = Operand::makeImm(it->second.second);
                    any = true;
                };
                bool mem_base = inst.op == IrOpcode::Load ||
                                inst.op == IrOpcode::Store;
                subst(inst.a, mem_base);
                subst(inst.b, false);
                subst(inst.c, false);
                any |= foldInst(inst);
            }
        }
    }
    return any;
}

bool
copyPropagation(Function &fn)
{
    bool any = false;

    // Local window: map copy dest -> source while both are unchanged.
    for (auto &bb : fn.blocks()) {
        std::map<int, int> copies;
        for (auto &inst : bb->insts) {
            auto subst = [&](Operand &o) {
                if (!o.isReg())
                    return;
                auto it = copies.find(o.reg);
                if (it != copies.end()) {
                    o = Operand::makeReg(it->second);
                    any = true;
                }
            };
            subst(inst.a);
            subst(inst.b);
            subst(inst.c);
            for (auto &arg : inst.args) {
                auto it = copies.find(arg);
                if (it != copies.end()) {
                    arg = it->second;
                    any = true;
                }
            }
            if (inst.dest) {
                // Kill mappings involving the redefined register.
                copies.erase(inst.dest);
                for (auto it = copies.begin(); it != copies.end();) {
                    if (it->second == inst.dest)
                        it = copies.erase(it);
                    else
                        ++it;
                }
                if (inst.op == IrOpcode::Mov && inst.a.isReg() &&
                    inst.a.reg != inst.dest) {
                    copies[inst.dest] = inst.a.reg;
                }
            }
        }
    }

    // Global single-def copy propagation.
    fn.recomputeCfg();
    auto defs = collectDefs(fn);
    Dominators doms(fn);
    for (auto &kv : defs) {
        if (kv.second.size() != 1)
            continue;
        IrInst &def_inst = kv.second[0].inst();
        if (def_inst.op != IrOpcode::Mov || !def_inst.a.isReg())
            continue;
        int src = def_inst.a.reg;
        auto src_defs = defs.find(src);
        if (src_defs == defs.end() || src_defs->second.size() != 1)
            continue;
        // src's unique def must dominate the copy itself.
        if (!dominatesRef(doms, src_defs->second[0],
                          kv.second[0].block, kv.second[0].index)) {
            continue;
        }
        int dest = kv.first;
        for (auto &bb : fn.blocks()) {
            for (size_t i = 0; i < bb->insts.size(); ++i) {
                IrInst &inst = bb->insts[i];
                if (&inst == &def_inst)
                    continue;
                auto subst = [&](Operand &o) {
                    if (o.isReg() && o.reg == dest &&
                        dominatesRef(doms, kv.second[0], bb.get(), i)) {
                        o = Operand::makeReg(src);
                        any = true;
                    }
                };
                subst(inst.a);
                subst(inst.b);
                subst(inst.c);
                for (auto &arg : inst.args) {
                    if (arg == dest &&
                        dominatesRef(doms, kv.second[0], bb.get(), i)) {
                        arg = src;
                        any = true;
                    }
                }
            }
        }
    }
    return any;
}

bool
coalesceMoves(Function &fn)
{
    bool any = false;
    auto uses = countUses(fn);
    for (auto &bb : fn.blocks()) {
        for (size_t i = 0; i + 1 < bb->insts.size(); ++i) {
            IrInst &def = bb->insts[i];
            IrInst &mv = bb->insts[i + 1];
            if (mv.op != IrOpcode::Mov || !mv.a.isReg() || !mv.dest)
                continue;
            if (!def.dest || def.dest != mv.a.reg)
                continue;
            if (def.dest == mv.dest)
                continue;
            // t must be consumed only by the mov.
            auto it = uses.find(def.dest);
            if (it == uses.end() || it->second != 1)
                continue;
            def.dest = mv.dest;
            bb->insts.erase(bb->insts.begin() +
                            static_cast<long>(i) + 1);
            any = true;
            uses = countUses(fn);
        }
    }
    return any;
}

bool
deadCodeElimination(Function &fn)
{
    fn.recomputeCfg();
    ir::Liveness live(fn);
    bool any = false;
    std::vector<int> srcs;
    for (auto &bb : fn.blocks()) {
        std::set<int> live_now = live.liveOut(bb.get());
        for (size_t i = bb->insts.size(); i-- > 0;) {
            IrInst &inst = bb->insts[i];
            bool dead = inst.dest && !live_now.count(inst.dest) &&
                        !inst.hasSideEffects() && !inst.isLoad();
            // Dead loads are removable too: this machine's loads have
            // no observable side effects at the IR level.
            if (inst.dest && !live_now.count(inst.dest) &&
                inst.isLoad()) {
                dead = true;
            }
            if (dead) {
                bb->insts.erase(bb->insts.begin() +
                                static_cast<long>(i));
                any = true;
                continue;
            }
            if (inst.op == IrOpcode::Nop) {
                bb->insts.erase(bb->insts.begin() +
                                static_cast<long>(i));
                any = true;
                continue;
            }
            // A call whose result is unused keeps running for its
            // side effects, but the dest can be dropped.
            if (inst.isCall() && inst.dest &&
                !live_now.count(inst.dest)) {
                inst.dest = 0;
                any = true;
            }
            if (inst.dest)
                live_now.erase(inst.dest);
            srcs.clear();
            inst.sourceRegs(srcs);
            for (int s : srcs)
                live_now.insert(s);
        }
    }
    return any;
}

bool
redundantLoadElimination(Function &fn)
{
    bool any = false;
    struct MemKey
    {
        int base;
        bool offIsReg;
        int64_t off;
        isa::MemWidth width;

        bool
        operator<(const MemKey &o) const
        {
            return std::tie(base, offIsReg, off, width) <
                   std::tie(o.base, o.offIsReg, o.off, o.width);
        }
    };
    for (auto &bb : fn.blocks()) {
        std::map<MemKey, int> available; // key -> vreg holding value
        auto keyFor = [](const IrInst &inst) {
            MemKey k;
            k.base = inst.a.reg;
            k.offIsReg = inst.b.isReg();
            k.off = k.offIsReg ? inst.b.reg : inst.b.imm;
            k.width = inst.width;
            return k;
        };
        for (auto &inst : bb->insts) {
            bool was_load = inst.isLoad();
            MemKey load_key{};
            bool load_hit = false;
            if (was_load) {
                load_key = keyFor(inst);
                auto it = available.find(load_key);
                if (it != available.end()) {
                    inst.op = IrOpcode::Mov;
                    inst.a = Operand::makeReg(it->second);
                    inst.b = Operand::none();
                    any = true;
                    load_hit = true;
                }
            } else if (inst.isStore()) {
                // Conservative: a store may alias anything.
                available.clear();
            } else if (inst.isCall()) {
                available.clear();
            }

            // Kill cached values that mention the redefined vreg.
            if (inst.dest) {
                for (auto it = available.begin();
                     it != available.end();) {
                    bool stale =
                        it->first.base == inst.dest ||
                        (it->first.offIsReg &&
                         it->first.off == inst.dest) ||
                        it->second == inst.dest;
                    if (stale)
                        it = available.erase(it);
                    else
                        ++it;
                }
            }

            // Record new availability after the kill.
            if (was_load && !load_hit) {
                bool self_clobber =
                    inst.dest == load_key.base ||
                    (load_key.offIsReg && inst.dest == load_key.off);
                if (!self_clobber)
                    available[load_key] = inst.dest;
            } else if (inst.isStore() && inst.c.isReg()) {
                // Store-to-load forwarding for the exact location.
                available[keyFor(inst)] = inst.c.reg;
            }
        }
    }
    return any;
}

} // namespace opt
} // namespace elag
