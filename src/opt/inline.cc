/**
 * @file
 * Function inlining.
 *
 * The paper applies inlining before load classification so that small
 * helpers called from loops do not hide arithmetic-dependent loads
 * behind call boundaries (Section 6 notes remaining calls are the
 * main classification obstacle).
 */

#include <map>
#include <set>

#include "opt/pass.hh"
#include "support/logging.hh"

namespace elag {
namespace opt {

using ir::BasicBlock;
using ir::Function;
using ir::IrInst;
using ir::IrOpcode;
using ir::Module;
using ir::Operand;

namespace {

/** Direct callees of a function. */
std::set<std::string>
calleesOf(const Function &fn)
{
    std::set<std::string> out;
    for (const auto &bb : fn.blocks()) {
        for (const auto &inst : bb->insts) {
            if (inst.isCall())
                out.insert(inst.callee);
        }
    }
    return out;
}

/** Functions on a call-graph cycle (conservative DFS per node). */
std::set<std::string>
findRecursive(const Module &mod)
{
    std::map<std::string, std::set<std::string>> graph;
    for (const auto &fn : mod.functions)
        graph[fn->name()] = calleesOf(*fn);

    std::set<std::string> recursive;
    for (const auto &root : graph) {
        // Can 'root' reach itself?
        std::set<std::string> visited;
        std::vector<std::string> work(root.second.begin(),
                                      root.second.end());
        bool cyclic = false;
        while (!work.empty()) {
            std::string cur = work.back();
            work.pop_back();
            if (cur == root.first) {
                cyclic = true;
                break;
            }
            if (!visited.insert(cur).second)
                continue;
            auto it = graph.find(cur);
            if (it == graph.end())
                continue;
            for (const auto &next : it->second)
                work.push_back(next);
        }
        if (cyclic)
            recursive.insert(root.first);
    }
    return recursive;
}

/**
 * Inline one call site.
 * @param caller the function containing the call
 * @param bb the block containing the call
 * @param call_idx index of the call instruction in @p bb
 * @param callee the function to inline (must not be @p caller)
 */
void
inlineCallSite(Function &caller, BasicBlock *bb, size_t call_idx,
               const Function &callee)
{
    IrInst call = bb->insts[call_idx];
    elag_assert(call.isCall());
    elag_assert(call.args.size() == callee.params.size());

    // Split the call block: bb keeps [0, call_idx); 'after' gets the
    // remainder.
    BasicBlock *after = caller.newBlock();
    after->insts.assign(bb->insts.begin() +
                            static_cast<long>(call_idx) + 1,
                        bb->insts.end());
    bb->insts.erase(bb->insts.begin() + static_cast<long>(call_idx),
                    bb->insts.end());

    // Remap callee vregs and stack objects into the caller.
    int vreg_base = caller.vregLimit();
    caller.reserveVRegs(vreg_base + callee.vregLimit());
    auto mapReg = [&](int vreg) { return vreg ? vreg + vreg_base : 0; };

    std::map<int, int> object_map;
    for (const auto &obj : callee.stackObjects()) {
        object_map[obj.id] = caller.newStackObject(
            obj.size, obj.align, callee.name() + "." + obj.name);
    }

    std::map<const BasicBlock *, BasicBlock *> block_map;
    for (const auto &cbb : callee.blocks())
        block_map[cbb.get()] = caller.newBlock();

    for (const auto &cbb : callee.blocks()) {
        BasicBlock *nbb = block_map[cbb.get()];
        for (const auto &cinst : cbb->insts) {
            IrInst inst = cinst;
            inst.dest = mapReg(inst.dest);
            auto remapOperand = [&](Operand &o) {
                if (o.isReg())
                    o.reg = mapReg(o.reg);
            };
            remapOperand(inst.a);
            remapOperand(inst.b);
            remapOperand(inst.c);
            for (auto &arg : inst.args)
                arg = mapReg(arg);
            if (inst.op == IrOpcode::FrameAddr)
                inst.a = Operand::makeImm(object_map.at(
                    static_cast<int>(cinst.a.imm)));
            if (inst.taken)
                inst.taken = block_map.at(inst.taken);
            if (inst.notTaken)
                inst.notTaken = block_map.at(inst.notTaken);
            if (inst.op == IrOpcode::Ret) {
                // Return becomes: result move (if used) + jump out.
                if (call.dest) {
                    IrInst mv;
                    mv.op = IrOpcode::Mov;
                    mv.dest = call.dest;
                    mv.a = inst.a.isNone() ? Operand::makeImm(0)
                                           : inst.a;
                    nbb->insts.push_back(std::move(mv));
                }
                IrInst jump;
                jump.op = IrOpcode::Jump;
                jump.taken = after;
                nbb->insts.push_back(std::move(jump));
                continue;
            }
            nbb->insts.push_back(std::move(inst));
        }
    }

    // Bind arguments and enter the inlined body.
    for (size_t i = 0; i < call.args.size(); ++i) {
        IrInst mv;
        mv.op = IrOpcode::Mov;
        mv.dest = mapReg(callee.params[i]);
        mv.a = Operand::makeReg(call.args[i]);
        bb->insts.push_back(std::move(mv));
    }
    IrInst enter;
    enter.op = IrOpcode::Jump;
    enter.taken = block_map.at(callee.entry());
    bb->insts.push_back(std::move(enter));

    caller.recomputeCfg();
}

} // anonymous namespace

bool
inlineFunctions(Module &mod, const OptConfig &config)
{
    bool any = false;
    std::set<std::string> recursive = findRecursive(mod);

    for (auto &caller : mod.functions) {
        size_t original_size = caller->instCount();
        size_t budget =
            original_size *
                static_cast<size_t>(config.inlineGrowthLimit) +
            static_cast<size_t>(config.inlineThreshold) * 4;

        // Repeatedly inline eligible call sites until none remain or
        // the growth budget is exhausted. Newly inlined calls are
        // considered too (enables transitive inlining of small
        // helpers), which terminates because recursion is excluded.
        bool changed = true;
        while (changed && caller->instCount() < budget) {
            changed = false;
            for (auto &bb : caller->blocks()) {
                for (size_t i = 0; i < bb->insts.size(); ++i) {
                    const IrInst &inst = bb->insts[i];
                    if (!inst.isCall())
                        continue;
                    if (inst.callee == caller->name())
                        continue;
                    if (recursive.count(inst.callee) ||
                        recursive.count(caller->name())) {
                        continue;
                    }
                    Function *callee = mod.findFunction(inst.callee);
                    if (!callee)
                        continue;
                    if (callee->instCount() >
                        static_cast<size_t>(config.inlineThreshold)) {
                        continue;
                    }
                    inlineCallSite(*caller, bb.get(), i, *callee);
                    changed = true;
                    any = true;
                    break;
                }
                if (changed)
                    break;
            }
        }
    }
    return any;
}

} // namespace opt
} // namespace elag
