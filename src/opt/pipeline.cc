#include "opt/pass.hh"

#include "ir/verify.hh"

namespace elag {
namespace opt {

OptConfig
OptConfig::noneEnabled()
{
    OptConfig c;
    c.inlining = false;
    c.constProp = false;
    c.copyProp = false;
    c.redundantLoadElim = false;
    c.licm = false;
    c.strengthReduction = false;
    c.dce = false;
    c.simplifyCfg = false;
    return c;
}

namespace {

/** One scalar-cleanup round; returns true if anything changed. */
bool
cleanupRound(ir::Function &fn, const OptConfig &config)
{
    bool changed = false;
    if (config.constProp)
        changed |= constantPropagation(fn);
    if (config.copyProp) {
        changed |= copyPropagation(fn);
        changed |= coalesceMoves(fn);
    }
    if (config.redundantLoadElim)
        changed |= redundantLoadElimination(fn);
    if (config.dce)
        changed |= deadCodeElimination(fn);
    return changed;
}

} // anonymous namespace

void
runStandardPipeline(ir::Module &mod, const OptConfig &config)
{
    ir::verify(mod);

    if (config.inlining)
        inlineFunctions(mod, config);

    for (auto &fn : mod.functions) {
        fn->removeUnreachable();
        if (config.simplifyCfg)
            simplifyCfg(*fn);

        for (int round = 0; round < 4; ++round) {
            if (!cleanupRound(*fn, config))
                break;
        }

        if (config.licm)
            loopInvariantCodeMotion(*fn);
        if (config.strengthReduction)
            strengthReduceInductionVariables(*fn);

        for (int round = 0; round < 4; ++round) {
            if (!cleanupRound(*fn, config))
                break;
        }
        if (config.simplifyCfg)
            simplifyCfg(*fn);
        fn->removeUnreachable();
    }

    mod.numberLoads();
    ir::verify(mod);
}

} // namespace opt
} // namespace elag
