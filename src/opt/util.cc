#include "opt/util.hh"

#include "support/logging.hh"

namespace elag {
namespace opt {

std::map<int, std::vector<InstRef>>
collectDefs(ir::Function &fn)
{
    std::map<int, std::vector<InstRef>> defs;
    for (auto &bb : fn.blocks()) {
        for (size_t i = 0; i < bb->insts.size(); ++i) {
            if (bb->insts[i].dest)
                defs[bb->insts[i].dest].push_back({bb.get(), i});
        }
    }
    return defs;
}

std::map<int, int>
countUses(const ir::Function &fn)
{
    std::map<int, int> uses;
    std::vector<int> srcs;
    for (const auto &bb : fn.blocks()) {
        for (const auto &inst : bb->insts) {
            srcs.clear();
            inst.sourceRegs(srcs);
            for (int s : srcs)
                ++uses[s];
        }
    }
    return uses;
}

int32_t
evalIrOp(ir::IrOpcode op, int32_t a, int32_t b)
{
    using Op = ir::IrOpcode;
    uint32_t ua = static_cast<uint32_t>(a);
    uint32_t ub = static_cast<uint32_t>(b);
    switch (op) {
      case Op::Add: return static_cast<int32_t>(ua + ub);
      case Op::Sub: return static_cast<int32_t>(ua - ub);
      case Op::Mul: return static_cast<int32_t>(ua * ub);
      case Op::Div:
        elag_assert(b != 0);
        if (a == INT32_MIN && b == -1)
            return INT32_MIN;
        return a / b;
      case Op::Rem:
        elag_assert(b != 0);
        if (a == INT32_MIN && b == -1)
            return 0;
        return a % b;
      case Op::And: return a & b;
      case Op::Or: return a | b;
      case Op::Xor: return a ^ b;
      case Op::Shl: return static_cast<int32_t>(ua << (ub & 31));
      case Op::Shr: return static_cast<int32_t>(ua >> (ub & 31));
      case Op::Sra: return a >> (ub & 31);
      case Op::SetLt: return a < b;
      case Op::SetLtU: return ua < ub;
      case Op::SetEq: return a == b;
      default:
        panic("evalIrOp: not a foldable op");
    }
}

bool
isPureBinaryOp(ir::IrOpcode op)
{
    using Op = ir::IrOpcode;
    switch (op) {
      case Op::Add: case Op::Sub: case Op::Mul:
      case Op::And: case Op::Or: case Op::Xor:
      case Op::Shl: case Op::Shr: case Op::Sra:
      case Op::SetLt: case Op::SetLtU: case Op::SetEq:
        return true;
      case Op::Div:
      case Op::Rem:
        return false; // may trap; handled specially
      default:
        return false;
    }
}

} // namespace opt
} // namespace elag
