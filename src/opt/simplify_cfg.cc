#include "opt/pass.hh"

#include "support/logging.hh"

namespace elag {
namespace opt {

using ir::BasicBlock;
using ir::Function;
using ir::IrInst;
using ir::IrOpcode;

namespace {

/** Follow chains of blocks containing only a single jump. */
BasicBlock *
jumpThreadTarget(BasicBlock *bb)
{
    // Limit the walk so jump cycles cannot hang us.
    for (int hops = 0; hops < 64; ++hops) {
        if (bb->insts.size() != 1)
            return bb;
        const IrInst &inst = bb->insts.front();
        if (inst.op != IrOpcode::Jump || inst.taken == bb)
            return bb;
        bb = inst.taken;
    }
    return bb;
}

} // anonymous namespace

bool
simplifyCfg(Function &fn)
{
    bool any = false;
    bool changed = true;
    while (changed) {
        changed = false;
        fn.recomputeCfg();

        // Thread jumps through empty forwarding blocks.
        for (auto &bb : fn.blocks()) {
            IrInst *term = bb->terminator();
            if (!term)
                continue;
            if (term->taken) {
                BasicBlock *target = jumpThreadTarget(term->taken);
                if (target != term->taken) {
                    term->taken = target;
                    changed = true;
                }
            }
            if (term->notTaken) {
                BasicBlock *target = jumpThreadTarget(term->notTaken);
                if (target != term->notTaken) {
                    term->notTaken = target;
                    changed = true;
                }
            }
            // A conditional branch to the same place is a jump.
            if (term->op == IrOpcode::Br &&
                term->taken == term->notTaken) {
                term->op = IrOpcode::Jump;
                term->notTaken = nullptr;
                term->a = ir::Operand::none();
                term->b = ir::Operand::none();
                changed = true;
            }
        }
        if (fn.entry()) {
            BasicBlock *target = jumpThreadTarget(fn.entry());
            if (target != fn.entry()) {
                fn.setEntry(target);
                changed = true;
            }
        }
        fn.removeUnreachable();

        // Merge a block into its unique successor when it is that
        // successor's unique predecessor.
        for (auto &bb : fn.blocks()) {
            IrInst *term = bb->terminator();
            if (!term || term->op != IrOpcode::Jump)
                continue;
            BasicBlock *succ = term->taken;
            if (succ == bb.get() || succ->preds.size() != 1)
                continue;
            if (succ == fn.entry())
                continue;
            bb->insts.pop_back();
            for (auto &inst : succ->insts)
                bb->insts.push_back(std::move(inst));
            succ->insts.clear();
            // Leave succ empty and unreachable; give it a jump to
            // itself so the verifier's terminator rule holds until
            // removeUnreachable prunes it.
            IrInst self_jump;
            self_jump.op = IrOpcode::Jump;
            self_jump.taken = succ;
            succ->insts.push_back(self_jump);
            changed = true;
            break; // block list invalidated; restart scan
        }
        fn.removeUnreachable();
        any |= changed;
    }
    return any;
}

} // namespace opt
} // namespace elag
