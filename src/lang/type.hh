/**
 * @file
 * The mini-C type system.
 *
 * Types are interned in a TypeTable; semantic analysis compares types
 * by pointer identity.
 */

#ifndef ELAG_LANG_TYPE_HH
#define ELAG_LANG_TYPE_HH

#include <memory>
#include <string>
#include <vector>

namespace elag {
namespace lang {

/** A mini-C type: void, int, char, or pointer-to-T. */
class Type
{
  public:
    enum class Kind { Void, Int, Char, Ptr };

    Kind kind;
    /** Pointee type for Kind::Ptr; null otherwise. */
    const Type *pointee = nullptr;

    bool isVoid() const { return kind == Kind::Void; }
    bool isInt() const { return kind == Kind::Int; }
    bool isChar() const { return kind == Kind::Char; }
    bool isPtr() const { return kind == Kind::Ptr; }
    bool isArith() const { return isInt() || isChar(); }
    /** true for anything usable in a condition or as a scalar value. */
    bool isScalar() const { return isArith() || isPtr(); }

    /** Size in bytes of a value of this type. */
    int size() const;

    /** Render like C, e.g. "int**". */
    std::string toString() const;
};

/** Owner and interner of Type instances. */
class TypeTable
{
  public:
    TypeTable();

    const Type *voidType() const { return &voidTy; }
    const Type *intType() const { return &intTy; }
    const Type *charType() const { return &charTy; }

    /** Interned pointer-to-@p pointee. */
    const Type *ptrTo(const Type *pointee);

  private:
    Type voidTy;
    Type intTy;
    Type charTy;
    std::vector<std::unique_ptr<Type>> ptrTypes;
};

} // namespace lang
} // namespace elag

#endif // ELAG_LANG_TYPE_HH
