/**
 * @file
 * Recursive-descent parser for the mini-C frontend.
 */

#ifndef ELAG_LANG_PARSER_HH
#define ELAG_LANG_PARSER_HH

#include <memory>
#include <vector>

#include "lang/ast.hh"
#include "lang/token.hh"
#include "lang/type.hh"

namespace elag {
namespace lang {

/**
 * Parse a token stream into an AST.
 *
 * Grammar (informal):
 *   program    := (global-var | function)*
 *   function   := type ident '(' params ')' block
 *   global-var := type ident ('[' intlit ']')? ('=' expr)? ';'
 *   stmt       := decl | if | while | do-while | for | return |
 *                 break | continue | block | expr ';' | ';'
 *   expr       := standard C precedence, including ?:, short-circuit
 *                 && / ||, compound assignment, ++/--, casts, a[i]
 *
 * @throws FatalError with source location on syntax errors.
 */
class Parser
{
  public:
    Parser(std::vector<Token> tokens, TypeTable &types);

    /** Parse the whole translation unit. */
    std::unique_ptr<Program> parseProgram();

  private:
    const Token &peek(int ahead = 0) const;
    const Token &advance();
    bool check(TokKind kind) const;
    bool accept(TokKind kind);
    const Token &expect(TokKind kind, const char *context);
    [[noreturn]] void error(const std::string &msg) const;

    bool atTypeName() const;
    const Type *parseTypeName();

    std::unique_ptr<FuncDecl> parseFunction(const Type *ret,
                                            const std::string &name,
                                            SrcLoc loc);
    std::unique_ptr<VarDecl> parseVarDeclTail(const Type *base,
                                              const std::string &name,
                                              SrcLoc loc);

    StmtPtr parseStmt();
    StmtPtr parseBlock();
    StmtPtr parseIf();
    StmtPtr parseWhile();
    StmtPtr parseDoWhile();
    StmtPtr parseFor();

    ExprPtr parseExpr();
    ExprPtr parseAssignment();
    ExprPtr parseConditional();
    ExprPtr parseBinary(int min_prec);
    ExprPtr parseUnary();
    ExprPtr parsePostfix();
    ExprPtr parsePrimary();

    std::vector<Token> toks;
    size_t pos = 0;
    TypeTable &types;
};

/** Convenience: lex and parse source text. */
std::unique_ptr<Program> parseSource(const std::string &source,
                                     TypeTable &types);

} // namespace lang
} // namespace elag

#endif // ELAG_LANG_PARSER_HH
