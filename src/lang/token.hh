/**
 * @file
 * Tokens for the mini-C frontend.
 */

#ifndef ELAG_LANG_TOKEN_HH
#define ELAG_LANG_TOKEN_HH

#include <cstdint>
#include <string>

namespace elag {
namespace lang {

/** Kinds of lexical tokens. */
enum class TokKind : uint8_t
{
    EndOfFile,
    Ident,
    IntLit,
    CharLit,
    // Keywords.
    KwInt, KwChar, KwVoid,
    KwIf, KwElse, KwWhile, KwFor, KwDo,
    KwReturn, KwBreak, KwContinue,
    // Punctuation / operators.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semi, Comma,
    Assign,                       // =
    PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
    AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde,
    AmpAmp, PipePipe, Bang,
    Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,
    PlusPlus, MinusMinus,
    Question, Colon,
};

/** Source location (1-based line/column). */
struct SrcLoc
{
    int line = 0;
    int col = 0;
};

/** One lexical token. */
struct Token
{
    TokKind kind = TokKind::EndOfFile;
    SrcLoc loc;
    std::string text;    ///< identifier spelling
    int64_t intValue = 0; ///< for IntLit / CharLit
};

/** Human-readable name of a token kind, for diagnostics. */
std::string tokKindName(TokKind kind);

} // namespace lang
} // namespace elag

#endif // ELAG_LANG_TOKEN_HH
