#include "lang/lexer.hh"

#include <cctype>
#include <map>

#include "support/logging.hh"

namespace elag {
namespace lang {

std::string
tokKindName(TokKind kind)
{
    switch (kind) {
      case TokKind::EndOfFile: return "end of file";
      case TokKind::Ident: return "identifier";
      case TokKind::IntLit: return "integer literal";
      case TokKind::CharLit: return "character literal";
      case TokKind::KwInt: return "'int'";
      case TokKind::KwChar: return "'char'";
      case TokKind::KwVoid: return "'void'";
      case TokKind::KwIf: return "'if'";
      case TokKind::KwElse: return "'else'";
      case TokKind::KwWhile: return "'while'";
      case TokKind::KwFor: return "'for'";
      case TokKind::KwDo: return "'do'";
      case TokKind::KwReturn: return "'return'";
      case TokKind::KwBreak: return "'break'";
      case TokKind::KwContinue: return "'continue'";
      case TokKind::LParen: return "'('";
      case TokKind::RParen: return "')'";
      case TokKind::LBrace: return "'{'";
      case TokKind::RBrace: return "'}'";
      case TokKind::LBracket: return "'['";
      case TokKind::RBracket: return "']'";
      case TokKind::Semi: return "';'";
      case TokKind::Comma: return "','";
      case TokKind::Assign: return "'='";
      case TokKind::PlusAssign: return "'+='";
      case TokKind::MinusAssign: return "'-='";
      case TokKind::StarAssign: return "'*='";
      case TokKind::SlashAssign: return "'/='";
      case TokKind::PercentAssign: return "'%='";
      case TokKind::AmpAssign: return "'&='";
      case TokKind::PipeAssign: return "'|='";
      case TokKind::CaretAssign: return "'^='";
      case TokKind::ShlAssign: return "'<<='";
      case TokKind::ShrAssign: return "'>>='";
      case TokKind::Plus: return "'+'";
      case TokKind::Minus: return "'-'";
      case TokKind::Star: return "'*'";
      case TokKind::Slash: return "'/'";
      case TokKind::Percent: return "'%'";
      case TokKind::Amp: return "'&'";
      case TokKind::Pipe: return "'|'";
      case TokKind::Caret: return "'^'";
      case TokKind::Tilde: return "'~'";
      case TokKind::AmpAmp: return "'&&'";
      case TokKind::PipePipe: return "'||'";
      case TokKind::Bang: return "'!'";
      case TokKind::Shl: return "'<<'";
      case TokKind::Shr: return "'>>'";
      case TokKind::Eq: return "'=='";
      case TokKind::Ne: return "'!='";
      case TokKind::Lt: return "'<'";
      case TokKind::Le: return "'<='";
      case TokKind::Gt: return "'>'";
      case TokKind::Ge: return "'>='";
      case TokKind::PlusPlus: return "'++'";
      case TokKind::MinusMinus: return "'--'";
      case TokKind::Question: return "'?'";
      case TokKind::Colon: return "':'";
      default: return "<unknown token>";
    }
}

Lexer::Lexer(const std::string &source)
    : src(source)
{
}

char
Lexer::peek(int ahead) const
{
    size_t p = pos + static_cast<size_t>(ahead);
    return p < src.size() ? src[p] : '\0';
}

char
Lexer::advance()
{
    char c = peek();
    ++pos;
    if (c == '\n') {
        ++line;
        col = 1;
    } else {
        ++col;
    }
    return c;
}

bool
Lexer::match(char expected)
{
    if (peek() != expected)
        return false;
    advance();
    return true;
}

void
Lexer::error(const std::string &msg) const
{
    fatal("lex error at %d:%d: %s", tokenStart.line, tokenStart.col,
          msg.c_str());
}

void
Lexer::skipWhitespaceAndComments()
{
    for (;;) {
        char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (peek() != '\n' && peek() != '\0')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            while (!(peek() == '*' && peek(1) == '/')) {
                if (peek() == '\0') {
                    tokenStart = {line, col};
                    error("unterminated block comment");
                }
                advance();
            }
            advance();
            advance();
        } else {
            return;
        }
    }
}

Token
Lexer::makeToken(TokKind kind)
{
    Token t;
    t.kind = kind;
    t.loc = tokenStart;
    return t;
}

Token
Lexer::lexNumber()
{
    int64_t value = 0;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        advance();
        advance();
        if (!std::isxdigit(static_cast<unsigned char>(peek())))
            error("expected hex digits after 0x");
        while (std::isxdigit(static_cast<unsigned char>(peek()))) {
            char c = advance();
            int digit = std::isdigit(static_cast<unsigned char>(c))
                            ? c - '0'
                            : std::tolower(c) - 'a' + 10;
            value = value * 16 + digit;
        }
    } else {
        while (std::isdigit(static_cast<unsigned char>(peek())))
            value = value * 10 + (advance() - '0');
    }
    Token t = makeToken(TokKind::IntLit);
    t.intValue = value;
    return t;
}

Token
Lexer::lexIdentOrKeyword()
{
    static const std::map<std::string, TokKind> keywords = {
        {"int", TokKind::KwInt},       {"char", TokKind::KwChar},
        {"void", TokKind::KwVoid},     {"if", TokKind::KwIf},
        {"else", TokKind::KwElse},     {"while", TokKind::KwWhile},
        {"for", TokKind::KwFor},       {"do", TokKind::KwDo},
        {"return", TokKind::KwReturn}, {"break", TokKind::KwBreak},
        {"continue", TokKind::KwContinue},
    };
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) ||
           peek() == '_') {
        text.push_back(advance());
    }
    auto it = keywords.find(text);
    Token t = makeToken(it != keywords.end() ? it->second
                                             : TokKind::Ident);
    t.text = text;
    return t;
}

Token
Lexer::lexCharLit()
{
    advance(); // opening quote
    char c = peek();
    int64_t value;
    if (c == '\\') {
        advance();
        char esc = advance();
        switch (esc) {
          case 'n': value = '\n'; break;
          case 't': value = '\t'; break;
          case 'r': value = '\r'; break;
          case '0': value = '\0'; break;
          case '\\': value = '\\'; break;
          case '\'': value = '\''; break;
          default:
            error(formatString("unknown escape '\\%c'", esc));
        }
    } else if (c == '\0' || c == '\'') {
        error("empty character literal");
    } else {
        value = advance();
    }
    if (!match('\''))
        error("unterminated character literal");
    Token t = makeToken(TokKind::CharLit);
    t.intValue = value;
    return t;
}

std::vector<Token>
Lexer::tokenize()
{
    std::vector<Token> tokens;
    for (;;) {
        skipWhitespaceAndComments();
        tokenStart = {line, col};
        char c = peek();
        if (c == '\0') {
            tokens.push_back(makeToken(TokKind::EndOfFile));
            return tokens;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            tokens.push_back(lexNumber());
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            tokens.push_back(lexIdentOrKeyword());
            continue;
        }
        if (c == '\'') {
            tokens.push_back(lexCharLit());
            continue;
        }
        advance();
        TokKind kind;
        switch (c) {
          case '(': kind = TokKind::LParen; break;
          case ')': kind = TokKind::RParen; break;
          case '{': kind = TokKind::LBrace; break;
          case '}': kind = TokKind::RBrace; break;
          case '[': kind = TokKind::LBracket; break;
          case ']': kind = TokKind::RBracket; break;
          case ';': kind = TokKind::Semi; break;
          case ',': kind = TokKind::Comma; break;
          case '?': kind = TokKind::Question; break;
          case ':': kind = TokKind::Colon; break;
          case '~': kind = TokKind::Tilde; break;
          case '+':
            kind = match('+') ? TokKind::PlusPlus
                 : match('=') ? TokKind::PlusAssign
                              : TokKind::Plus;
            break;
          case '-':
            kind = match('-') ? TokKind::MinusMinus
                 : match('=') ? TokKind::MinusAssign
                              : TokKind::Minus;
            break;
          case '*':
            kind = match('=') ? TokKind::StarAssign : TokKind::Star;
            break;
          case '/':
            kind = match('=') ? TokKind::SlashAssign : TokKind::Slash;
            break;
          case '%':
            kind = match('=') ? TokKind::PercentAssign
                              : TokKind::Percent;
            break;
          case '&':
            kind = match('&') ? TokKind::AmpAmp
                 : match('=') ? TokKind::AmpAssign
                              : TokKind::Amp;
            break;
          case '|':
            kind = match('|') ? TokKind::PipePipe
                 : match('=') ? TokKind::PipeAssign
                              : TokKind::Pipe;
            break;
          case '^':
            kind = match('=') ? TokKind::CaretAssign : TokKind::Caret;
            break;
          case '!':
            kind = match('=') ? TokKind::Ne : TokKind::Bang;
            break;
          case '=':
            kind = match('=') ? TokKind::Eq : TokKind::Assign;
            break;
          case '<':
            if (match('<')) {
                kind = match('=') ? TokKind::ShlAssign : TokKind::Shl;
            } else {
                kind = match('=') ? TokKind::Le : TokKind::Lt;
            }
            break;
          case '>':
            if (match('>')) {
                kind = match('=') ? TokKind::ShrAssign : TokKind::Shr;
            } else {
                kind = match('=') ? TokKind::Ge : TokKind::Gt;
            }
            break;
          default:
            error(formatString("unexpected character '%c'", c));
        }
        tokens.push_back(makeToken(kind));
    }
}

} // namespace lang
} // namespace elag
