/**
 * @file
 * Abstract syntax tree for the mini-C frontend.
 *
 * The parser builds this tree; semantic analysis annotates expression
 * nodes with types and resolves identifiers to declarations; IR
 * generation consumes the annotated tree.
 */

#ifndef ELAG_LANG_AST_HH
#define ELAG_LANG_AST_HH

#include <memory>
#include <string>
#include <vector>

#include "lang/token.hh"
#include "lang/type.hh"

namespace elag {
namespace lang {

struct VarDecl;
struct FuncDecl;

/** Expression node kinds. */
enum class ExprKind : uint8_t
{
    IntLit,    ///< integer / character constant
    VarRef,    ///< identifier
    Unary,     ///< - ! ~  and * (deref), & (address-of)
    Binary,    ///< arithmetic / comparison / logical
    Assign,    ///< = and compound assignments (lowered to = in sema)
    Cond,      ///< ?:
    Call,      ///< f(args) or builtin
    Index,     ///< a[i]
    IncDec,    ///< ++/-- (pre or post)
    Cast,      ///< (type)expr
};

/** Unary operators. */
enum class UnaryOp : uint8_t { Neg, Not, BitNot, Deref, AddrOf };

/** Binary operators (logical && / || are short-circuit). */
enum class BinaryOp : uint8_t
{
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,
    LogAnd, LogOr,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** An expression node (kind-discriminated variant). */
struct Expr
{
    ExprKind kind;
    SrcLoc loc;

    // Filled by semantic analysis:
    const Type *type = nullptr;  ///< value type after decay
    bool isLvalue = false;       ///< may appear on the left of '='

    // IntLit
    int64_t intValue = 0;

    // VarRef
    std::string name;
    VarDecl *varDecl = nullptr;   ///< resolved by sema
    FuncDecl *funcDecl = nullptr; ///< for Call callees, set by sema

    // Unary / IncDec / Cast operand; Binary/Assign/Index lhs; Cond cond.
    ExprPtr lhs;
    // Binary/Assign/Index rhs; Cond then-branch.
    ExprPtr rhs;
    // Cond else-branch.
    ExprPtr third;

    UnaryOp unaryOp = UnaryOp::Neg;
    BinaryOp binaryOp = BinaryOp::Add;
    bool isCompound = false; ///< Assign: '+=' etc. (op in binaryOp)
    bool isPostfix = false;  ///< IncDec: post vs pre
    bool isIncrement = true; ///< IncDec: ++ vs --

    // Call arguments.
    std::vector<ExprPtr> args;

    // Cast target (written type; sema copies it to this->type).
    const Type *castType = nullptr;
};

/** Statement node kinds. */
enum class StmtKind : uint8_t
{
    Expr,      ///< expression statement
    Decl,      ///< local variable declaration
    Block,
    If,
    While,
    DoWhile,
    For,
    Return,
    Break,
    Continue,
    Empty,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** A statement node (kind-discriminated variant). */
struct Stmt
{
    StmtKind kind;
    SrcLoc loc;

    ExprPtr expr;          ///< Expr / If cond / While cond / Return value
    std::unique_ptr<VarDecl> decl; ///< Decl
    std::vector<StmtPtr> body;     ///< Block statements
    StmtPtr thenStmt;      ///< If then / While body / For body
    StmtPtr elseStmt;      ///< If else
    StmtPtr forInit;       ///< For init (Expr or Decl statement)
    ExprPtr forCond;       ///< For condition (may be null)
    ExprPtr forStep;       ///< For step (may be null)
};

/** A variable declaration (global, local, or parameter). */
struct VarDecl
{
    std::string name;
    SrcLoc loc;
    const Type *type = nullptr;   ///< element type for arrays
    bool isArray = false;
    int arraySize = 0;            ///< elements, for arrays
    ExprPtr init;                 ///< optional initializer

    // Filled by semantic analysis:
    bool isGlobal = false;
    bool isParam = false;
    bool addressTaken = false;    ///< forces a memory home
    int globalOffset = 0;         ///< byte offset in global segment
    int paramIndex = 0;
    bool hasConstInit = false;    ///< global with folded initializer
    int64_t constInit = 0;        ///< folded initial value

    /** @return the type as seen by expressions (arrays decay). */
    const Type *valueType(TypeTable &types) const;
};

/** A function definition. */
struct FuncDecl
{
    std::string name;
    SrcLoc loc;
    const Type *returnType = nullptr;
    std::vector<std::unique_ptr<VarDecl>> params;
    StmtPtr body;  ///< null for builtins
    bool isBuiltin = false;
};

/** A whole translation unit. */
struct Program
{
    std::vector<std::unique_ptr<VarDecl>> globals;
    std::vector<std::unique_ptr<FuncDecl>> functions;

    /** Find a function by name (null if absent). */
    FuncDecl *findFunction(const std::string &name) const;
};

} // namespace lang
} // namespace elag

#endif // ELAG_LANG_AST_HH
