#include "lang/parser.hh"

#include "lang/lexer.hh"
#include "support/logging.hh"

namespace elag {
namespace lang {

namespace {

ExprPtr
makeExpr(ExprKind kind, SrcLoc loc)
{
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->loc = loc;
    return e;
}

StmtPtr
makeStmt(StmtKind kind, SrcLoc loc)
{
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->loc = loc;
    return s;
}

/** Binary operator precedence; higher binds tighter; -1 = not binary. */
int
binPrec(TokKind kind)
{
    switch (kind) {
      case TokKind::PipePipe: return 1;
      case TokKind::AmpAmp: return 2;
      case TokKind::Pipe: return 3;
      case TokKind::Caret: return 4;
      case TokKind::Amp: return 5;
      case TokKind::Eq:
      case TokKind::Ne: return 6;
      case TokKind::Lt:
      case TokKind::Le:
      case TokKind::Gt:
      case TokKind::Ge: return 7;
      case TokKind::Shl:
      case TokKind::Shr: return 8;
      case TokKind::Plus:
      case TokKind::Minus: return 9;
      case TokKind::Star:
      case TokKind::Slash:
      case TokKind::Percent: return 10;
      default: return -1;
    }
}

BinaryOp
binOpFor(TokKind kind)
{
    switch (kind) {
      case TokKind::PipePipe: return BinaryOp::LogOr;
      case TokKind::AmpAmp: return BinaryOp::LogAnd;
      case TokKind::Pipe: return BinaryOp::Or;
      case TokKind::Caret: return BinaryOp::Xor;
      case TokKind::Amp: return BinaryOp::And;
      case TokKind::Eq: return BinaryOp::Eq;
      case TokKind::Ne: return BinaryOp::Ne;
      case TokKind::Lt: return BinaryOp::Lt;
      case TokKind::Le: return BinaryOp::Le;
      case TokKind::Gt: return BinaryOp::Gt;
      case TokKind::Ge: return BinaryOp::Ge;
      case TokKind::Shl: return BinaryOp::Shl;
      case TokKind::Shr: return BinaryOp::Shr;
      case TokKind::Plus: return BinaryOp::Add;
      case TokKind::Minus: return BinaryOp::Sub;
      case TokKind::Star: return BinaryOp::Mul;
      case TokKind::Slash: return BinaryOp::Div;
      case TokKind::Percent: return BinaryOp::Rem;
      default:
        panic("binOpFor: not a binary operator");
    }
}

/** Compound-assignment operator, or nullopt. */
bool
compoundOpFor(TokKind kind, BinaryOp &op)
{
    switch (kind) {
      case TokKind::PlusAssign: op = BinaryOp::Add; return true;
      case TokKind::MinusAssign: op = BinaryOp::Sub; return true;
      case TokKind::StarAssign: op = BinaryOp::Mul; return true;
      case TokKind::SlashAssign: op = BinaryOp::Div; return true;
      case TokKind::PercentAssign: op = BinaryOp::Rem; return true;
      case TokKind::AmpAssign: op = BinaryOp::And; return true;
      case TokKind::PipeAssign: op = BinaryOp::Or; return true;
      case TokKind::CaretAssign: op = BinaryOp::Xor; return true;
      case TokKind::ShlAssign: op = BinaryOp::Shl; return true;
      case TokKind::ShrAssign: op = BinaryOp::Shr; return true;
      default: return false;
    }
}

} // anonymous namespace

Parser::Parser(std::vector<Token> tokens, TypeTable &types)
    : toks(std::move(tokens)), types(types)
{
    elag_assert(!toks.empty() &&
                toks.back().kind == TokKind::EndOfFile);
}

const Token &
Parser::peek(int ahead) const
{
    size_t p = pos + static_cast<size_t>(ahead);
    if (p >= toks.size())
        return toks.back();
    return toks[p];
}

const Token &
Parser::advance()
{
    const Token &t = peek();
    if (pos + 1 < toks.size())
        ++pos;
    return t;
}

bool
Parser::check(TokKind kind) const
{
    return peek().kind == kind;
}

bool
Parser::accept(TokKind kind)
{
    if (!check(kind))
        return false;
    advance();
    return true;
}

const Token &
Parser::expect(TokKind kind, const char *context)
{
    if (!check(kind)) {
        error(formatString("expected %s %s, found %s",
                           tokKindName(kind).c_str(), context,
                           tokKindName(peek().kind).c_str()));
    }
    return advance();
}

void
Parser::error(const std::string &msg) const
{
    fatal("parse error at %d:%d: %s", peek().loc.line, peek().loc.col,
          msg.c_str());
}

bool
Parser::atTypeName() const
{
    TokKind k = peek().kind;
    return k == TokKind::KwInt || k == TokKind::KwChar ||
           k == TokKind::KwVoid;
}

const Type *
Parser::parseTypeName()
{
    const Type *base;
    if (accept(TokKind::KwInt)) {
        base = types.intType();
    } else if (accept(TokKind::KwChar)) {
        base = types.charType();
    } else if (accept(TokKind::KwVoid)) {
        base = types.voidType();
    } else {
        error("expected type name");
    }
    while (accept(TokKind::Star))
        base = types.ptrTo(base);
    return base;
}

std::unique_ptr<Program>
Parser::parseProgram()
{
    auto prog = std::make_unique<Program>();
    while (!check(TokKind::EndOfFile)) {
        SrcLoc loc = peek().loc;
        const Type *type = parseTypeName();
        const Token &name_tok = expect(TokKind::Ident, "in declaration");
        std::string name = name_tok.text;
        if (check(TokKind::LParen)) {
            prog->functions.push_back(parseFunction(type, name, loc));
        } else {
            if (type->isVoid())
                error("variable '" + name + "' declared void");
            prog->globals.push_back(parseVarDeclTail(type, name, loc));
            prog->globals.back()->isGlobal = true;
        }
    }
    return prog;
}

std::unique_ptr<FuncDecl>
Parser::parseFunction(const Type *ret, const std::string &name,
                      SrcLoc loc)
{
    auto fn = std::make_unique<FuncDecl>();
    fn->name = name;
    fn->loc = loc;
    fn->returnType = ret;

    expect(TokKind::LParen, "after function name");
    if (!check(TokKind::RParen)) {
        if (check(TokKind::KwVoid) &&
            peek(1).kind == TokKind::RParen) {
            advance(); // f(void)
        } else {
            do {
                SrcLoc ploc = peek().loc;
                const Type *ptype = parseTypeName();
                if (ptype->isVoid())
                    error("parameter declared void");
                const Token &pname =
                    expect(TokKind::Ident, "in parameter list");
                auto param = std::make_unique<VarDecl>();
                param->name = pname.text;
                param->loc = ploc;
                param->type = ptype;
                param->isParam = true;
                param->paramIndex =
                    static_cast<int>(fn->params.size());
                fn->params.push_back(std::move(param));
            } while (accept(TokKind::Comma));
        }
    }
    expect(TokKind::RParen, "after parameters");
    fn->body = parseBlock();
    return fn;
}

std::unique_ptr<VarDecl>
Parser::parseVarDeclTail(const Type *base, const std::string &name,
                         SrcLoc loc)
{
    auto var = std::make_unique<VarDecl>();
    var->name = name;
    var->loc = loc;
    var->type = base;
    if (accept(TokKind::LBracket)) {
        const Token &size = expect(TokKind::IntLit, "as array size");
        if (size.intValue <= 0)
            error("array size must be positive");
        var->isArray = true;
        var->arraySize = static_cast<int>(size.intValue);
        expect(TokKind::RBracket, "after array size");
    }
    if (accept(TokKind::Assign)) {
        if (var->isArray)
            error("array initializers are not supported");
        var->init = parseAssignment();
    }
    expect(TokKind::Semi, "after declaration");
    return var;
}

StmtPtr
Parser::parseBlock()
{
    SrcLoc loc = peek().loc;
    expect(TokKind::LBrace, "to open block");
    auto block = makeStmt(StmtKind::Block, loc);
    while (!check(TokKind::RBrace)) {
        if (check(TokKind::EndOfFile))
            error("unterminated block");
        block->body.push_back(parseStmt());
    }
    expect(TokKind::RBrace, "to close block");
    return block;
}

StmtPtr
Parser::parseStmt()
{
    SrcLoc loc = peek().loc;
    if (check(TokKind::LBrace))
        return parseBlock();
    if (check(TokKind::KwIf))
        return parseIf();
    if (check(TokKind::KwWhile))
        return parseWhile();
    if (check(TokKind::KwDo))
        return parseDoWhile();
    if (check(TokKind::KwFor))
        return parseFor();
    if (accept(TokKind::KwReturn)) {
        auto stmt = makeStmt(StmtKind::Return, loc);
        if (!check(TokKind::Semi))
            stmt->expr = parseExpr();
        expect(TokKind::Semi, "after return");
        return stmt;
    }
    if (accept(TokKind::KwBreak)) {
        expect(TokKind::Semi, "after break");
        return makeStmt(StmtKind::Break, loc);
    }
    if (accept(TokKind::KwContinue)) {
        expect(TokKind::Semi, "after continue");
        return makeStmt(StmtKind::Continue, loc);
    }
    if (accept(TokKind::Semi))
        return makeStmt(StmtKind::Empty, loc);
    if (atTypeName()) {
        const Type *type = parseTypeName();
        if (type->isVoid())
            error("variable declared void");
        const Token &name = expect(TokKind::Ident, "in declaration");
        auto stmt = makeStmt(StmtKind::Decl, loc);
        stmt->decl = parseVarDeclTail(type, name.text, loc);
        return stmt;
    }
    auto stmt = makeStmt(StmtKind::Expr, loc);
    stmt->expr = parseExpr();
    expect(TokKind::Semi, "after expression");
    return stmt;
}

StmtPtr
Parser::parseIf()
{
    SrcLoc loc = peek().loc;
    expect(TokKind::KwIf, "");
    expect(TokKind::LParen, "after 'if'");
    auto stmt = makeStmt(StmtKind::If, loc);
    stmt->expr = parseExpr();
    expect(TokKind::RParen, "after condition");
    stmt->thenStmt = parseStmt();
    if (accept(TokKind::KwElse))
        stmt->elseStmt = parseStmt();
    return stmt;
}

StmtPtr
Parser::parseWhile()
{
    SrcLoc loc = peek().loc;
    expect(TokKind::KwWhile, "");
    expect(TokKind::LParen, "after 'while'");
    auto stmt = makeStmt(StmtKind::While, loc);
    stmt->expr = parseExpr();
    expect(TokKind::RParen, "after condition");
    stmt->thenStmt = parseStmt();
    return stmt;
}

StmtPtr
Parser::parseDoWhile()
{
    SrcLoc loc = peek().loc;
    expect(TokKind::KwDo, "");
    auto stmt = makeStmt(StmtKind::DoWhile, loc);
    stmt->thenStmt = parseStmt();
    expect(TokKind::KwWhile, "after do body");
    expect(TokKind::LParen, "after 'while'");
    stmt->expr = parseExpr();
    expect(TokKind::RParen, "after condition");
    expect(TokKind::Semi, "after do-while");
    return stmt;
}

StmtPtr
Parser::parseFor()
{
    SrcLoc loc = peek().loc;
    expect(TokKind::KwFor, "");
    expect(TokKind::LParen, "after 'for'");
    auto stmt = makeStmt(StmtKind::For, loc);
    if (!check(TokKind::Semi)) {
        if (atTypeName()) {
            SrcLoc dloc = peek().loc;
            const Type *type = parseTypeName();
            if (type->isVoid())
                error("variable declared void");
            const Token &name =
                expect(TokKind::Ident, "in for-init declaration");
            auto init = makeStmt(StmtKind::Decl, dloc);
            init->decl = parseVarDeclTail(type, name.text, dloc);
            stmt->forInit = std::move(init);
        } else {
            auto init = makeStmt(StmtKind::Expr, peek().loc);
            init->expr = parseExpr();
            expect(TokKind::Semi, "after for-init");
            stmt->forInit = std::move(init);
        }
    } else {
        advance();
    }
    if (!check(TokKind::Semi))
        stmt->forCond = parseExpr();
    expect(TokKind::Semi, "after for-condition");
    if (!check(TokKind::RParen))
        stmt->forStep = parseExpr();
    expect(TokKind::RParen, "after for-step");
    stmt->thenStmt = parseStmt();
    return stmt;
}

ExprPtr
Parser::parseExpr()
{
    return parseAssignment();
}

ExprPtr
Parser::parseAssignment()
{
    ExprPtr lhs = parseConditional();
    BinaryOp compound_op;
    if (accept(TokKind::Assign)) {
        auto e = makeExpr(ExprKind::Assign, lhs->loc);
        e->lhs = std::move(lhs);
        e->rhs = parseAssignment();
        return e;
    }
    if (compoundOpFor(peek().kind, compound_op)) {
        advance();
        auto e = makeExpr(ExprKind::Assign, lhs->loc);
        e->lhs = std::move(lhs);
        e->rhs = parseAssignment();
        e->isCompound = true;
        e->binaryOp = compound_op;
        return e;
    }
    return lhs;
}

ExprPtr
Parser::parseConditional()
{
    ExprPtr cond = parseBinary(1);
    if (!accept(TokKind::Question))
        return cond;
    auto e = makeExpr(ExprKind::Cond, cond->loc);
    e->lhs = std::move(cond);
    e->rhs = parseExpr();
    expect(TokKind::Colon, "in conditional expression");
    e->third = parseConditional();
    return e;
}

ExprPtr
Parser::parseBinary(int min_prec)
{
    ExprPtr lhs = parseUnary();
    for (;;) {
        int prec = binPrec(peek().kind);
        if (prec < min_prec)
            return lhs;
        TokKind op_tok = advance().kind;
        ExprPtr rhs = parseBinary(prec + 1);
        auto e = makeExpr(ExprKind::Binary, lhs->loc);
        e->binaryOp = binOpFor(op_tok);
        e->lhs = std::move(lhs);
        e->rhs = std::move(rhs);
        lhs = std::move(e);
    }
}

ExprPtr
Parser::parseUnary()
{
    SrcLoc loc = peek().loc;
    // A cast: '(' type-name ')' unary.
    if (check(TokKind::LParen)) {
        TokKind next = peek(1).kind;
        if (next == TokKind::KwInt || next == TokKind::KwChar ||
            next == TokKind::KwVoid) {
            advance();
            const Type *type = parseTypeName();
            expect(TokKind::RParen, "after cast type");
            auto e = makeExpr(ExprKind::Cast, loc);
            e->castType = type;
            e->lhs = parseUnary();
            return e;
        }
    }
    UnaryOp op;
    if (accept(TokKind::Minus)) {
        op = UnaryOp::Neg;
    } else if (accept(TokKind::Bang)) {
        op = UnaryOp::Not;
    } else if (accept(TokKind::Tilde)) {
        op = UnaryOp::BitNot;
    } else if (accept(TokKind::Star)) {
        op = UnaryOp::Deref;
    } else if (accept(TokKind::Amp)) {
        op = UnaryOp::AddrOf;
    } else if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
        bool inc = advance().kind == TokKind::PlusPlus;
        auto e = makeExpr(ExprKind::IncDec, loc);
        e->isIncrement = inc;
        e->isPostfix = false;
        e->lhs = parseUnary();
        return e;
    } else {
        return parsePostfix();
    }
    auto e = makeExpr(ExprKind::Unary, loc);
    e->unaryOp = op;
    e->lhs = parseUnary();
    return e;
}

ExprPtr
Parser::parsePostfix()
{
    ExprPtr e = parsePrimary();
    for (;;) {
        SrcLoc loc = peek().loc;
        if (accept(TokKind::LBracket)) {
            auto idx = makeExpr(ExprKind::Index, loc);
            idx->lhs = std::move(e);
            idx->rhs = parseExpr();
            expect(TokKind::RBracket, "after index");
            e = std::move(idx);
        } else if (accept(TokKind::LParen)) {
            auto call = makeExpr(ExprKind::Call, loc);
            if (e->kind != ExprKind::VarRef)
                error("called object is not a function name");
            call->name = e->name;
            if (!check(TokKind::RParen)) {
                do {
                    call->args.push_back(parseAssignment());
                } while (accept(TokKind::Comma));
            }
            expect(TokKind::RParen, "after call arguments");
            e = std::move(call);
        } else if (accept(TokKind::PlusPlus)) {
            auto inc = makeExpr(ExprKind::IncDec, loc);
            inc->isIncrement = true;
            inc->isPostfix = true;
            inc->lhs = std::move(e);
            e = std::move(inc);
        } else if (accept(TokKind::MinusMinus)) {
            auto dec = makeExpr(ExprKind::IncDec, loc);
            dec->isIncrement = false;
            dec->isPostfix = true;
            dec->lhs = std::move(e);
            e = std::move(dec);
        } else {
            return e;
        }
    }
}

ExprPtr
Parser::parsePrimary()
{
    SrcLoc loc = peek().loc;
    if (check(TokKind::IntLit) || check(TokKind::CharLit)) {
        auto e = makeExpr(ExprKind::IntLit, loc);
        e->intValue = advance().intValue;
        return e;
    }
    if (check(TokKind::Ident)) {
        auto e = makeExpr(ExprKind::VarRef, loc);
        e->name = advance().text;
        return e;
    }
    if (accept(TokKind::LParen)) {
        ExprPtr e = parseExpr();
        expect(TokKind::RParen, "after expression");
        return e;
    }
    error(formatString("expected expression, found %s",
                       tokKindName(peek().kind).c_str()));
}

std::unique_ptr<Program>
parseSource(const std::string &source, TypeTable &types)
{
    Lexer lexer(source);
    Parser parser(lexer.tokenize(), types);
    return parser.parseProgram();
}

} // namespace lang
} // namespace elag
