#include "lang/ast.hh"

namespace elag {
namespace lang {

const Type *
VarDecl::valueType(TypeTable &types) const
{
    if (isArray)
        return types.ptrTo(type);
    return type;
}

FuncDecl *
Program::findFunction(const std::string &name) const
{
    for (const auto &f : functions) {
        if (f->name == name)
            return f.get();
    }
    return nullptr;
}

} // namespace lang
} // namespace elag
