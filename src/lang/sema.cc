#include "lang/sema.hh"

#include "support/logging.hh"

namespace elag {
namespace lang {

Sema::Sema(Program &program, TypeTable &types)
    : prog(program), types(types)
{
}

void
Sema::error(SrcLoc loc, const std::string &msg) const
{
    fatal("semantic error at %d:%d: %s", loc.line, loc.col, msg.c_str());
}

void
Sema::pushScope()
{
    scopes.emplace_back();
}

void
Sema::popScope()
{
    scopes.pop_back();
}

void
Sema::declare(VarDecl *var)
{
    elag_assert(!scopes.empty());
    auto &scope = scopes.back();
    if (scope.count(var->name))
        error(var->loc, "redefinition of '" + var->name + "'");
    scope[var->name] = var;
}

VarDecl *
Sema::lookup(const std::string &name) const
{
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
        auto found = it->find(name);
        if (found != it->end())
            return found->second;
    }
    return nullptr;
}

void
Sema::declareBuiltins()
{
    // char *alloc(int bytes): bump allocation from the heap.
    {
        auto fn = std::make_unique<FuncDecl>();
        fn->name = "alloc";
        fn->returnType = types.ptrTo(types.charType());
        fn->isBuiltin = true;
        auto param = std::make_unique<VarDecl>();
        param->name = "bytes";
        param->type = types.intType();
        param->isParam = true;
        fn->params.push_back(std::move(param));
        prog.functions.push_back(std::move(fn));
    }
    // void print(int value): emit to the emulator output channel.
    {
        auto fn = std::make_unique<FuncDecl>();
        fn->name = "print";
        fn->returnType = types.voidType();
        fn->isBuiltin = true;
        auto param = std::make_unique<VarDecl>();
        param->name = "value";
        param->type = types.intType();
        param->isParam = true;
        fn->params.push_back(std::move(param));
        prog.functions.push_back(std::move(fn));
    }
}

int64_t
Sema::foldConst(const Expr &expr) const
{
    switch (expr.kind) {
      case ExprKind::IntLit:
        return expr.intValue;
      case ExprKind::Unary:
        switch (expr.unaryOp) {
          case UnaryOp::Neg: return -foldConst(*expr.lhs);
          case UnaryOp::Not: return !foldConst(*expr.lhs);
          case UnaryOp::BitNot: return ~foldConst(*expr.lhs);
          default:
            error(expr.loc, "initializer is not a constant");
        }
      case ExprKind::Binary: {
        int64_t a = foldConst(*expr.lhs);
        int64_t b = foldConst(*expr.rhs);
        switch (expr.binaryOp) {
          case BinaryOp::Add: return a + b;
          case BinaryOp::Sub: return a - b;
          case BinaryOp::Mul: return a * b;
          case BinaryOp::Div:
            if (b == 0)
                error(expr.loc, "division by zero in constant");
            return a / b;
          case BinaryOp::Rem:
            if (b == 0)
                error(expr.loc, "division by zero in constant");
            return a % b;
          case BinaryOp::And: return a & b;
          case BinaryOp::Or: return a | b;
          case BinaryOp::Xor: return a ^ b;
          case BinaryOp::Shl: return a << (b & 31);
          case BinaryOp::Shr: return a >> (b & 31);
          case BinaryOp::Eq: return a == b;
          case BinaryOp::Ne: return a != b;
          case BinaryOp::Lt: return a < b;
          case BinaryOp::Le: return a <= b;
          case BinaryOp::Gt: return a > b;
          case BinaryOp::Ge: return a >= b;
          case BinaryOp::LogAnd: return a && b;
          case BinaryOp::LogOr: return a || b;
        }
        error(expr.loc, "initializer is not a constant");
      }
      default:
        error(expr.loc, "initializer is not a constant");
    }
}

void
Sema::layoutGlobals()
{
    int offset = 0;
    for (auto &g : prog.globals) {
        int align = g->type->size();
        offset = (offset + align - 1) / align * align;
        g->globalOffset = offset;
        int bytes = g->isArray ? g->type->size() * g->arraySize
                               : g->type->size();
        offset += bytes;
        if (g->init) {
            g->hasConstInit = true;
            g->constInit = foldConst(*g->init);
        }
    }
    globalBytes = (offset + 7) / 8 * 8;
}

void
Sema::analyze()
{
    declareBuiltins();

    // Check for duplicate function definitions.
    for (size_t i = 0; i < prog.functions.size(); ++i) {
        for (size_t j = i + 1; j < prog.functions.size(); ++j) {
            if (prog.functions[i]->name == prog.functions[j]->name) {
                error(prog.functions[j]->loc,
                      "redefinition of function '" +
                          prog.functions[j]->name + "'");
            }
        }
    }

    pushScope(); // global scope
    for (auto &g : prog.globals)
        declare(g.get());
    layoutGlobals();

    FuncDecl *main_fn = prog.findFunction("main");
    if (!main_fn)
        error({0, 0}, "program has no 'main' function");
    if (!main_fn->returnType->isInt() || !main_fn->params.empty())
        error(main_fn->loc, "'main' must be declared as int main()");

    for (auto &fn : prog.functions) {
        if (!fn->isBuiltin)
            checkFunction(*fn);
    }
    popScope();
}

void
Sema::checkFunction(FuncDecl &fn)
{
    currentFn = &fn;
    pushScope();
    for (auto &param : fn.params)
        declare(param.get());
    checkStmt(*fn.body);
    popScope();
    currentFn = nullptr;
}

void
Sema::checkStmt(Stmt &stmt)
{
    switch (stmt.kind) {
      case StmtKind::Expr:
        checkExpr(*stmt.expr);
        break;
      case StmtKind::Decl: {
        VarDecl &var = *stmt.decl;
        if (var.init) {
            checkExpr(*var.init);
            const Type *target = var.valueType(types);
            if (!implicitlyConvertible(*var.init, target)) {
                error(var.loc,
                      "cannot initialize '" + target->toString() +
                          "' from '" + var.init->type->toString() + "'");
            }
        }
        declare(&var);
        break;
      }
      case StmtKind::Block:
        pushScope();
        for (auto &s : stmt.body)
            checkStmt(*s);
        popScope();
        break;
      case StmtKind::If:
        checkExpr(*stmt.expr);
        requireScalar(*stmt.expr, "if condition");
        checkStmt(*stmt.thenStmt);
        if (stmt.elseStmt)
            checkStmt(*stmt.elseStmt);
        break;
      case StmtKind::While:
      case StmtKind::DoWhile:
        checkExpr(*stmt.expr);
        requireScalar(*stmt.expr, "loop condition");
        ++loopDepth;
        checkStmt(*stmt.thenStmt);
        --loopDepth;
        break;
      case StmtKind::For:
        pushScope();
        if (stmt.forInit)
            checkStmt(*stmt.forInit);
        if (stmt.forCond) {
            checkExpr(*stmt.forCond);
            requireScalar(*stmt.forCond, "for condition");
        }
        if (stmt.forStep)
            checkExpr(*stmt.forStep);
        ++loopDepth;
        checkStmt(*stmt.thenStmt);
        --loopDepth;
        popScope();
        break;
      case StmtKind::Return: {
        const Type *ret = currentFn->returnType;
        if (stmt.expr) {
            checkExpr(*stmt.expr);
            if (ret->isVoid()) {
                error(stmt.loc, "void function '" + currentFn->name +
                                    "' returns a value");
            }
            if (!implicitlyConvertible(*stmt.expr, ret)) {
                error(stmt.loc,
                      "cannot return '" + stmt.expr->type->toString() +
                          "' from function returning '" +
                          ret->toString() + "'");
            }
        } else if (!ret->isVoid()) {
            error(stmt.loc, "non-void function '" + currentFn->name +
                                "' returns no value");
        }
        break;
      }
      case StmtKind::Break:
        if (loopDepth == 0)
            error(stmt.loc, "'break' outside of a loop");
        break;
      case StmtKind::Continue:
        if (loopDepth == 0)
            error(stmt.loc, "'continue' outside of a loop");
        break;
      case StmtKind::Empty:
        break;
      default:
        panic("checkStmt: bad statement kind");
    }
}

bool
Sema::implicitlyConvertible(const Expr &value, const Type *to) const
{
    const Type *from = value.type;
    if (from == to)
        return true;
    if (from->isArith() && to->isArith())
        return true;
    // Integer literal zero is a null pointer constant.
    if (to->isPtr() && value.kind == ExprKind::IntLit &&
        value.intValue == 0) {
        return true;
    }
    return false;
}

void
Sema::requireScalar(const Expr &expr, const char *what) const
{
    if (!expr.type->isScalar())
        error(expr.loc, std::string(what) + " must have scalar type");
}

void
Sema::checkExpr(Expr &expr)
{
    switch (expr.kind) {
      case ExprKind::IntLit:
        expr.type = types.intType();
        expr.isLvalue = false;
        break;
      case ExprKind::VarRef: {
        VarDecl *var = lookup(expr.name);
        if (!var)
            error(expr.loc, "use of undeclared '" + expr.name + "'");
        expr.varDecl = var;
        expr.type = var->valueType(types);
        // Arrays decay to pointers and are not assignable.
        expr.isLvalue = !var->isArray;
        break;
      }
      case ExprKind::Unary:
        checkUnary(expr);
        break;
      case ExprKind::Binary:
        checkBinary(expr);
        break;
      case ExprKind::Assign:
        checkAssign(expr);
        break;
      case ExprKind::Cond: {
        checkExpr(*expr.lhs);
        requireScalar(*expr.lhs, "'?:' condition");
        checkExpr(*expr.rhs);
        checkExpr(*expr.third);
        const Type *a = expr.rhs->type;
        const Type *b = expr.third->type;
        if (a->isArith() && b->isArith()) {
            expr.type = types.intType();
        } else if (a == b) {
            expr.type = a;
        } else if (a->isPtr() &&
                   implicitlyConvertible(*expr.third, a)) {
            expr.type = a;
        } else if (b->isPtr() &&
                   implicitlyConvertible(*expr.rhs, b)) {
            expr.type = b;
        } else {
            error(expr.loc, "incompatible '?:' operand types");
        }
        expr.isLvalue = false;
        break;
      }
      case ExprKind::Call:
        checkCall(expr);
        break;
      case ExprKind::Index:
        checkIndex(expr);
        break;
      case ExprKind::IncDec:
        checkIncDec(expr);
        break;
      case ExprKind::Cast: {
        checkExpr(*expr.lhs);
        const Type *target = expr.castType;
        if (target->isVoid()) {
            expr.type = target;
            expr.isLvalue = false;
            break;
        }
        if (!expr.lhs->type->isScalar())
            error(expr.loc, "cast of non-scalar value");
        expr.type = target;
        expr.isLvalue = false;
        break;
      }
      default:
        panic("checkExpr: bad expression kind");
    }
    elag_assert(expr.type != nullptr);
}

void
Sema::checkUnary(Expr &expr)
{
    checkExpr(*expr.lhs);
    const Type *opnd = expr.lhs->type;
    switch (expr.unaryOp) {
      case UnaryOp::Neg:
      case UnaryOp::BitNot:
        if (!opnd->isArith())
            error(expr.loc, "operand must be arithmetic");
        expr.type = types.intType();
        break;
      case UnaryOp::Not:
        if (!opnd->isScalar())
            error(expr.loc, "operand of '!' must be scalar");
        expr.type = types.intType();
        break;
      case UnaryOp::Deref:
        if (!opnd->isPtr())
            error(expr.loc, "cannot dereference non-pointer type '" +
                                opnd->toString() + "'");
        if (opnd->pointee->isVoid())
            error(expr.loc, "cannot dereference 'void*'");
        expr.type = opnd->pointee;
        expr.isLvalue = true;
        return;
      case UnaryOp::AddrOf:
        if (!expr.lhs->isLvalue)
            error(expr.loc, "cannot take the address of an rvalue");
        if (expr.lhs->kind == ExprKind::VarRef)
            expr.lhs->varDecl->addressTaken = true;
        expr.type = types.ptrTo(opnd);
        break;
      default:
        panic("checkUnary: bad unary op");
    }
    expr.isLvalue = false;
}

void
Sema::checkBinary(Expr &expr)
{
    checkExpr(*expr.lhs);
    checkExpr(*expr.rhs);
    const Type *lt = expr.lhs->type;
    const Type *rt = expr.rhs->type;
    BinaryOp op = expr.binaryOp;

    expr.isLvalue = false;

    if (op == BinaryOp::LogAnd || op == BinaryOp::LogOr) {
        requireScalar(*expr.lhs, "logical operand");
        requireScalar(*expr.rhs, "logical operand");
        expr.type = types.intType();
        return;
    }

    if (op == BinaryOp::Add) {
        if (lt->isPtr() && rt->isArith()) {
            expr.type = lt;
            return;
        }
        if (lt->isArith() && rt->isPtr()) {
            expr.type = rt;
            return;
        }
    }
    if (op == BinaryOp::Sub) {
        if (lt->isPtr() && rt->isArith()) {
            expr.type = lt;
            return;
        }
        if (lt->isPtr() && rt->isPtr()) {
            if (lt != rt)
                error(expr.loc, "subtraction of incompatible pointers");
            expr.type = types.intType();
            return;
        }
    }

    bool comparison = op == BinaryOp::Eq || op == BinaryOp::Ne ||
                      op == BinaryOp::Lt || op == BinaryOp::Le ||
                      op == BinaryOp::Gt || op == BinaryOp::Ge;
    if (comparison) {
        bool ok = (lt->isArith() && rt->isArith()) || lt == rt ||
                  (lt->isPtr() && implicitlyConvertible(*expr.rhs, lt)) ||
                  (rt->isPtr() && implicitlyConvertible(*expr.lhs, rt));
        if (!ok)
            error(expr.loc, "comparison of incompatible types");
        expr.type = types.intType();
        return;
    }

    if (!lt->isArith() || !rt->isArith()) {
        error(expr.loc,
              "invalid operand types '" + lt->toString() + "' and '" +
                  rt->toString() + "'");
    }
    expr.type = types.intType();
}

void
Sema::checkAssign(Expr &expr)
{
    checkExpr(*expr.lhs);
    checkExpr(*expr.rhs);
    if (!expr.lhs->isLvalue)
        error(expr.loc, "assignment target is not an lvalue");
    const Type *lt = expr.lhs->type;

    if (expr.isCompound) {
        // Validate the implied binary operation.
        const Type *rt = expr.rhs->type;
        bool pointer_adjust =
            lt->isPtr() && rt->isArith() &&
            (expr.binaryOp == BinaryOp::Add ||
             expr.binaryOp == BinaryOp::Sub);
        if (!pointer_adjust && (!lt->isArith() || !rt->isArith())) {
            error(expr.loc, "invalid compound assignment operands");
        }
    } else if (!implicitlyConvertible(*expr.rhs, lt)) {
        error(expr.loc,
              "cannot assign '" + expr.rhs->type->toString() +
                  "' to '" + lt->toString() + "'");
    }
    expr.type = lt;
    expr.isLvalue = false;
}

void
Sema::checkCall(Expr &expr)
{
    FuncDecl *fn = prog.findFunction(expr.name);
    if (!fn)
        error(expr.loc, "call to undefined function '" + expr.name + "'");
    expr.funcDecl = fn;
    if (expr.args.size() != fn->params.size()) {
        error(expr.loc,
              formatString("'%s' expects %zu arguments, got %zu",
                           fn->name.c_str(), fn->params.size(),
                           expr.args.size()));
    }
    for (size_t i = 0; i < expr.args.size(); ++i) {
        checkExpr(*expr.args[i]);
        const Type *want = fn->params[i]->valueType(types);
        if (!implicitlyConvertible(*expr.args[i], want)) {
            error(expr.args[i]->loc,
                  formatString("argument %zu to '%s': cannot convert "
                               "'%s' to '%s'",
                               i + 1, fn->name.c_str(),
                               expr.args[i]->type->toString().c_str(),
                               want->toString().c_str()));
        }
    }
    expr.type = fn->returnType;
    expr.isLvalue = false;
}

void
Sema::checkIndex(Expr &expr)
{
    checkExpr(*expr.lhs);
    checkExpr(*expr.rhs);
    const Type *base = expr.lhs->type;
    const Type *idx = expr.rhs->type;
    if (base->isArith() && idx->isPtr())
        std::swap(base, idx);
    if (!base->isPtr() || !idx->isArith())
        error(expr.loc, "invalid array subscript types");
    if (base->pointee->isVoid())
        error(expr.loc, "cannot index 'void*'");
    expr.type = base->pointee;
    expr.isLvalue = true;
}

void
Sema::checkIncDec(Expr &expr)
{
    checkExpr(*expr.lhs);
    if (!expr.lhs->isLvalue)
        error(expr.loc, "operand of ++/-- must be an lvalue");
    if (!expr.lhs->type->isScalar())
        error(expr.loc, "operand of ++/-- must be scalar");
    expr.type = expr.lhs->type;
    expr.isLvalue = false;
}

} // namespace lang
} // namespace elag
