/**
 * @file
 * Lexer for the mini-C frontend.
 */

#ifndef ELAG_LANG_LEXER_HH
#define ELAG_LANG_LEXER_HH

#include <string>
#include <vector>

#include "lang/token.hh"

namespace elag {
namespace lang {

/**
 * Convert mini-C source text into a token stream.
 *
 * Supports // and block comments, decimal and hex integer literals,
 * and character literals with the common escapes.
 * @throws FatalError on a lexical error with line/column info.
 */
class Lexer
{
  public:
    explicit Lexer(const std::string &source);

    /** Lex the whole input; the last token is EndOfFile. */
    std::vector<Token> tokenize();

  private:
    char peek(int ahead = 0) const;
    char advance();
    bool match(char expected);
    void skipWhitespaceAndComments();
    Token lexNumber();
    Token lexIdentOrKeyword();
    Token lexCharLit();
    Token makeToken(TokKind kind);
    [[noreturn]] void error(const std::string &msg) const;

    std::string src;
    size_t pos = 0;
    int line = 1;
    int col = 1;
    SrcLoc tokenStart;
};

} // namespace lang
} // namespace elag

#endif // ELAG_LANG_LEXER_HH
