/**
 * @file
 * Semantic analysis for the mini-C frontend.
 *
 * Resolves identifiers, checks and annotates types, enforces lvalue
 * rules, lays out the global data segment, and registers the runtime
 * builtins (`alloc`, `print`).
 */

#ifndef ELAG_LANG_SEMA_HH
#define ELAG_LANG_SEMA_HH

#include <map>
#include <string>
#include <vector>

#include "lang/ast.hh"
#include "lang/type.hh"

namespace elag {
namespace lang {

/**
 * Semantic analyzer. Construct, then call analyze() once.
 * @throws FatalError with source location on semantic errors.
 */
class Sema
{
  public:
    Sema(Program &program, TypeTable &types);

    /** Run all checks and annotations. */
    void analyze();

    /** @return total bytes of global data after layout. */
    int globalSize() const { return globalBytes; }

  private:
    void declareBuiltins();
    void layoutGlobals();
    void checkFunction(FuncDecl &fn);
    void checkStmt(Stmt &stmt);
    void checkExpr(Expr &expr);

    void checkAssign(Expr &expr);
    void checkBinary(Expr &expr);
    void checkUnary(Expr &expr);
    void checkCall(Expr &expr);
    void checkIndex(Expr &expr);
    void checkIncDec(Expr &expr);

    /** Check implicit convertibility of @p from into @p to. */
    bool implicitlyConvertible(const Expr &value, const Type *to) const;
    /** Require a scalar-typed condition expression. */
    void requireScalar(const Expr &expr, const char *what) const;
    /** Fold a constant expression for global initializers. */
    int64_t foldConst(const Expr &expr) const;

    [[noreturn]] void error(SrcLoc loc, const std::string &msg) const;

    void pushScope();
    void popScope();
    void declare(VarDecl *var);
    VarDecl *lookup(const std::string &name) const;

    Program &prog;
    TypeTable &types;
    std::vector<std::map<std::string, VarDecl *>> scopes;
    FuncDecl *currentFn = nullptr;
    int loopDepth = 0;
    int globalBytes = 0;
};

} // namespace lang
} // namespace elag

#endif // ELAG_LANG_SEMA_HH
