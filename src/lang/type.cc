#include "lang/type.hh"

#include "support/logging.hh"

namespace elag {
namespace lang {

int
Type::size() const
{
    switch (kind) {
      case Kind::Void:
        panic("size of void type");
      case Kind::Int:
        return 4;
      case Kind::Char:
        return 1;
      case Kind::Ptr:
        return 4;
      default:
        panic("size: bad type kind");
    }
}

std::string
Type::toString() const
{
    switch (kind) {
      case Kind::Void: return "void";
      case Kind::Int: return "int";
      case Kind::Char: return "char";
      case Kind::Ptr: return pointee->toString() + "*";
      default:
        panic("toString: bad type kind");
    }
}

TypeTable::TypeTable()
{
    voidTy.kind = Type::Kind::Void;
    intTy.kind = Type::Kind::Int;
    charTy.kind = Type::Kind::Char;
}

const Type *
TypeTable::ptrTo(const Type *pointee)
{
    elag_assert(pointee != nullptr);
    for (const auto &t : ptrTypes) {
        if (t->pointee == pointee)
            return t.get();
    }
    auto t = std::make_unique<Type>();
    t->kind = Type::Kind::Ptr;
    t->pointee = pointee;
    ptrTypes.push_back(std::move(t));
    return ptrTypes.back().get();
}

} // namespace lang
} // namespace elag
