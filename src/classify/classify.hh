/**
 * @file
 * Compiler-directed load classification — the paper's core
 * contribution (Section 4).
 *
 * Assigns one of the three load specifiers to every static load:
 *
 *  - ld_p (Predict): arithmetic-dependent loads whose addresses are
 *    expected to be constant or strided, served by the table-based
 *    address prediction path;
 *  - ld_e (EarlyCalc): load-dependent loads (pointer chasing) in the
 *    largest base-register group, served by the R_addr early
 *    calculation path;
 *  - ld_n (Normal): everything else, kept out of both structures so
 *    they are not polluted.
 *
 * Cyclic code uses the S_load closure heuristic of Section 4.1;
 * acyclic code uses the absolute-address heuristic of Section 4.2;
 * address profiles optionally upgrade mispredicted-as-unpredictable
 * loads per Section 4.3.
 */

#ifndef ELAG_CLASSIFY_CLASSIFY_HH
#define ELAG_CLASSIFY_CLASSIFY_HH

#include <map>

#include "ir/ir.hh"

namespace elag {
namespace classify {

/** Classifier tuning knobs. */
struct ClassifyConfig
{
    /**
     * Minimum size of the winning base-register group before R_addr
     * is reserved for it (groups of one rarely amortize the binding).
     */
    int minEarlyCalcGroup = 1;
    /** Apply the cyclic heuristic (Section 4.1). */
    bool cyclicHeuristic = true;
    /** Apply the acyclic heuristic (Section 4.2). */
    bool acyclicHeuristic = true;
};

/** Static classification counts, per specifier. */
struct ClassifyStats
{
    int numNormal = 0;
    int numPredict = 0;
    int numEarlyCalc = 0;

    int total() const { return numNormal + numPredict + numEarlyCalc; }
};

/**
 * Classify every load in the module in place (setting
 * IrInst::spec) and return static counts.
 */
ClassifyStats classifyLoads(ir::Module &mod,
                            const ClassifyConfig &config = {});

/**
 * Reset every load to ld_n (the configuration used to model
 * hardware-only machines, where opcodes carry no hint).
 */
void clearClassification(ir::Module &mod);

/** Per-static-load address-profile record (Section 4.3). */
struct LoadProfile
{
    uint64_t executions = 0;
    /** Times the Figure-3 stride FSM predicted the address right. */
    uint64_t correct = 0;

    double
    rate() const
    {
        return executions == 0
                   ? 0.0
                   : static_cast<double>(correct) /
                         static_cast<double>(executions);
    }
};

/** Profile data keyed by IrInst::loadId. */
using AddressProfile = std::map<int, LoadProfile>;

/**
 * Profile-guided reclassification (Section 4.3): loads classified
 * ld_n whose profiled prediction rate exceeds @p threshold become
 * ld_p. Nothing else is overruled.
 * @return number of loads upgraded.
 */
int applyAddressProfile(ir::Module &mod, const AddressProfile &profile,
                        double threshold = 0.60);

} // namespace classify
} // namespace elag

#endif // ELAG_CLASSIFY_CLASSIFY_HH
