#include "classify/classify.hh"

#include <algorithm>
#include <set>

#include "ir/loops.hh"
#include "opt/util.hh"
#include "support/logging.hh"

namespace elag {
namespace classify {

using ir::BasicBlock;
using ir::Function;
using ir::IrInst;
using ir::IrOpcode;
using ir::Loop;
using ir::LoopInfo;
using isa::LoadSpec;

namespace {

/** @return true for the "arithmetic instructions" of Section 4.1. */
bool
isArithmetic(const IrInst &inst)
{
    switch (inst.op) {
      case IrOpcode::Add: case IrOpcode::Sub: case IrOpcode::Mul:
      case IrOpcode::Div: case IrOpcode::Rem:
      case IrOpcode::And: case IrOpcode::Or: case IrOpcode::Xor:
      case IrOpcode::Shl: case IrOpcode::Shr: case IrOpcode::Sra:
      case IrOpcode::SetLt: case IrOpcode::SetLtU:
      case IrOpcode::SetEq:
      case IrOpcode::Mov:
        return true;
      default:
        return false;
    }
}

/**
 * Compute the S_load closure for a set of blocks: the register
 * specifiers whose contents were loaded from memory or computed from
 * a loaded value (steps 1 and 2 of Section 4.1).
 */
std::set<int>
computeSLoad(const std::set<BasicBlock *, ir::BlockIdLess> &blocks)
{
    std::set<int> s_load;
    // Step 1: destination registers of loads. Call results are
    // treated like loads: their values are data-dependent on memory.
    for (const BasicBlock *bb : blocks) {
        for (const auto &inst : bb->insts) {
            if ((inst.isLoad() || inst.isCall()) && inst.dest)
                s_load.insert(inst.dest);
        }
    }
    // Step 2: propagate through arithmetic instructions to a
    // fixpoint.
    bool changed = true;
    std::vector<int> srcs;
    while (changed) {
        changed = false;
        for (const BasicBlock *bb : blocks) {
            for (const auto &inst : bb->insts) {
                if (!isArithmetic(inst) || !inst.dest)
                    continue;
                if (s_load.count(inst.dest))
                    continue;
                srcs.clear();
                inst.sourceRegs(srcs);
                for (int s : srcs) {
                    if (s_load.count(s)) {
                        s_load.insert(inst.dest);
                        changed = true;
                        break;
                    }
                }
            }
        }
    }
    return s_load;
}

/** Pointers to every load in a block set, in program order. */
std::vector<IrInst *>
loadsIn(const std::set<BasicBlock *, ir::BlockIdLess> &blocks)
{
    std::vector<IrInst *> loads;
    for (BasicBlock *bb : blocks) {
        for (auto &inst : bb->insts) {
            if (inst.isLoad())
                loads.push_back(&inst);
        }
    }
    return loads;
}

/**
 * Step 3 of Section 4.1: given the loads of one region and its
 * S_load set, pick specifiers. Already-classified loads (from inner
 * loops) are skipped but still counted toward group sizes.
 */
void
assignSpecifiers(const std::vector<IrInst *> &loads,
                 const std::set<int> &s_load,
                 const std::set<int> &classified,
                 const ClassifyConfig &config,
                 std::set<int> &newly_classified)
{
    // Partition into load-dependent and arithmetic-dependent.
    std::vector<IrInst *> load_dep;
    std::vector<IrInst *> arith_dep;
    for (IrInst *load : loads) {
        bool base_dep = load->a.isReg() && s_load.count(load->a.reg);
        bool index_dep = load->b.isReg() && s_load.count(load->b.reg);
        if (base_dep || index_dep)
            load_dep.push_back(load);
        else
            arith_dep.push_back(load);
    }

    // Group register+offset load-dependent loads by base register;
    // the largest group gets R_addr (ld_e).
    std::map<int, int> group_size;
    for (IrInst *load : load_dep) {
        if (load->b.isImm())
            ++group_size[load->a.reg];
    }
    int best_base = 0;
    int best_size = 0;
    for (const auto &kv : group_size) {
        if (kv.second > best_size) {
            best_base = kv.first;
            best_size = kv.second;
        }
    }
    bool use_early = best_size >= config.minEarlyCalcGroup;

    for (IrInst *load : load_dep) {
        if (classified.count(load->loadId))
            continue;
        bool in_winner = use_early && load->b.isImm() &&
                         load->a.reg == best_base;
        load->spec = in_winner ? LoadSpec::EarlyCalc : LoadSpec::Normal;
        newly_classified.insert(load->loadId);
    }
    for (IrInst *load : arith_dep) {
        if (classified.count(load->loadId))
            continue;
        load->spec = LoadSpec::Predict;
        newly_classified.insert(load->loadId);
    }
}

/** @return true if the base register is defined solely by
 * GlobalAddr (an absolute location, Section 4.2). */
bool
isAbsoluteLoad(Function &fn, const IrInst &load,
               const std::map<int, std::vector<opt::InstRef>> &defs)
{
    if (!load.a.isReg())
        return false;
    auto it = defs.find(load.a.reg);
    if (it == defs.end())
        return false;
    for (const auto &ref : it->second) {
        if (ref.inst().op != IrOpcode::GlobalAddr)
            return false;
    }
    (void)fn;
    return !it->second.empty();
}

void
classifyFunction(Function &fn, const ClassifyConfig &config,
                 ClassifyStats &stats)
{
    fn.recomputeCfg();
    LoopInfo loop_info(fn);
    std::set<int> classified;

    // Cyclic portion: nested loops are sorted and inner loops are
    // analyzed first (Section 4.1); inner decisions stick.
    if (config.cyclicHeuristic) {
        for (Loop *loop : loop_info.loopsInnermostFirst()) {
            std::set<int> s_load = computeSLoad(loop->blocks);
            std::vector<IrInst *> loads = loadsIn(loop->blocks);
            std::set<int> newly;
            assignSpecifiers(loads, s_load, classified, config, newly);
            classified.insert(newly.begin(), newly.end());
        }
    }

    // Acyclic portion (Section 4.2): absolute loads are predicted;
    // the largest base-register group gets early calculation; the
    // rest stay normal.
    if (config.acyclicHeuristic) {
        std::set<BasicBlock *, ir::BlockIdLess> acyclic_blocks;
        for (auto &bb : fn.blocks()) {
            if (!loop_info.loopFor(bb.get()))
                acyclic_blocks.insert(bb.get());
        }
        auto defs = opt::collectDefs(fn);
        std::vector<IrInst *> loads = loadsIn(acyclic_blocks);

        std::map<int, int> group_size;
        for (IrInst *load : loads) {
            if (classified.count(load->loadId))
                continue;
            if (!isAbsoluteLoad(fn, *load, defs) && load->b.isImm())
                ++group_size[load->a.reg];
        }
        int best_base = 0;
        int best_size = 0;
        for (const auto &kv : group_size) {
            if (kv.second > best_size) {
                best_base = kv.first;
                best_size = kv.second;
            }
        }
        bool use_early = best_size >= config.minEarlyCalcGroup;

        for (IrInst *load : loads) {
            if (classified.count(load->loadId))
                continue;
            if (isAbsoluteLoad(fn, *load, defs)) {
                load->spec = LoadSpec::Predict;
            } else if (use_early && load->b.isImm() &&
                       load->a.reg == best_base) {
                load->spec = LoadSpec::EarlyCalc;
            } else {
                load->spec = LoadSpec::Normal;
            }
            classified.insert(load->loadId);
        }
    }

    // Tally.
    for (const auto &bb : fn.blocks()) {
        for (const auto &inst : bb->insts) {
            if (!inst.isLoad())
                continue;
            switch (inst.spec) {
              case LoadSpec::Normal: ++stats.numNormal; break;
              case LoadSpec::Predict: ++stats.numPredict; break;
              case LoadSpec::EarlyCalc: ++stats.numEarlyCalc; break;
            }
        }
    }
}

} // anonymous namespace

ClassifyStats
classifyLoads(ir::Module &mod, const ClassifyConfig &config)
{
    ClassifyStats stats;
    for (auto &fn : mod.functions)
        classifyFunction(*fn, config, stats);
    return stats;
}

void
clearClassification(ir::Module &mod)
{
    for (auto &fn : mod.functions) {
        for (auto &bb : fn->blocks()) {
            for (auto &inst : bb->insts) {
                if (inst.isLoad())
                    inst.spec = LoadSpec::Normal;
            }
        }
    }
}

int
applyAddressProfile(ir::Module &mod, const AddressProfile &profile,
                    double threshold)
{
    int upgraded = 0;
    for (auto &fn : mod.functions) {
        for (auto &bb : fn->blocks()) {
            for (auto &inst : bb->insts) {
                if (!inst.isLoad() ||
                    inst.spec != LoadSpec::Normal) {
                    continue;
                }
                auto it = profile.find(inst.loadId);
                if (it == profile.end())
                    continue;
                if (it->second.executions > 0 &&
                    it->second.rate() > threshold) {
                    inst.spec = LoadSpec::Predict;
                    ++upgraded;
                }
            }
        }
    }
    return upgraded;
}

} // namespace classify
} // namespace elag
