/**
 * @file
 * Byte-level serialization primitives for checkpoints.
 *
 * Writer/Reader implement a compact little-endian codec (fixed-width
 * integers, LEB128 varints, length-prefixed strings, IEEE-754 bit
 * patterns for floats) used by every subsystem's serialize/restore
 * hook. The codec is deliberately dumb: no field names, no framing —
 * structure lives in the code on both sides, and integrity lives in
 * the checkpoint container's CRCs (ckpt/checkpoint.hh). Reads are
 * bounds-checked and throw CkptError instead of running off the
 * buffer, so a corrupt-but-CRC-colliding payload still cannot crash
 * the restoring process.
 */

#ifndef ELAG_CKPT_SERIAL_HH
#define ELAG_CKPT_SERIAL_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "support/stats.hh"

namespace elag {
namespace ckpt {

/** Why a checkpoint was rejected. */
enum class ErrorKind
{
    Io,              ///< open/write/rename/read failed
    Torn,            ///< file truncated mid-write (tail marker absent)
    Corrupt,         ///< CRC mismatch or structurally invalid content
    VersionMismatch, ///< written by an incompatible format version
    Mismatch,        ///< valid file, but for a different run/config
};

/** Stable lowercase name for an error kind (logs, JSON errors). */
const char *name(ErrorKind kind);

/** Typed checkpoint rejection; never restored past silently. */
class CkptError : public std::runtime_error
{
  public:
    CkptError(ErrorKind kind, const std::string &msg)
        : std::runtime_error(msg), kind_(kind)
    {}

    ErrorKind kind() const { return kind_; }

  private:
    ErrorKind kind_;
};

/** CRC-32 (IEEE 802.3, reflected) over @p len bytes. */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

/** Append-only byte sink. */
class Writer
{
  public:
    void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    void u32(uint32_t v);
    void u64(uint64_t v);
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void f32(float v);
    void f64(double v);
    /** LEB128 unsigned varint. */
    void varint(uint64_t v);
    /** varint length + raw bytes. */
    void str(const std::string &s);
    void bytes(const void *data, size_t len);

    const std::string &data() const { return buf_; }
    size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/** Bounds-checked reader over a byte span (not owned). */
class Reader
{
  public:
    Reader(const char *data, size_t size)
        : p_(data), end_(data + size)
    {}

    uint8_t u8();
    bool b() { return u8() != 0; }
    uint32_t u32();
    uint64_t u64();
    int32_t i32() { return static_cast<int32_t>(u32()); }
    float f32();
    double f64();
    uint64_t varint();
    std::string str();
    void bytes(void *out, size_t len);

    size_t remaining() const { return static_cast<size_t>(end_ - p_); }
    bool atEnd() const { return p_ == end_; }

  private:
    /** Throws CkptError(Corrupt) when fewer than @p n bytes remain. */
    void need(size_t n) const;

    const char *p_;
    const char *end_;
};

/**
 * Histogram state round trip. The restored histogram must have been
 * constructed with the same geometry (bucket count and width) as the
 * serialized one; a geometry difference throws CkptError(Mismatch).
 */
void serialize(Writer &w, const Histogram &h);
void restore(Reader &r, Histogram &h);

} // namespace ckpt
} // namespace elag

#endif // ELAG_CKPT_SERIAL_HH
