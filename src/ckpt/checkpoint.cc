#include "ckpt/checkpoint.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/logging.hh"

namespace elag {
namespace ckpt {

namespace {

constexpr char kHeadMagic[8] = {'E', 'L', 'A', 'G',
                                'C', 'K', 'P', 'T'};
constexpr char kTailMagic[8] = {'E', 'L', 'A', 'G',
                                'E', 'N', 'D', '.'};
constexpr size_t kMagicSize = 8;
/** head magic + version + section count. */
constexpr size_t kHeaderSize = kMagicSize + 4 + 4;
/** file CRC + tail magic. */
constexpr size_t kTrailerSize = 4 + kMagicSize;
/** tag + size + CRC. */
constexpr size_t kSectionHeaderSize = 4 + 8 + 4;

std::string
errnoString()
{
    return std::strerror(errno);
}

} // anonymous namespace

Writer &
CheckpointWriter::section(const char (&name)[5])
{
    sections_.push_back(Section{tag(name), Writer{}});
    return sections_.back().payload;
}

std::string
CheckpointWriter::container() const
{
    Writer w;
    w.bytes(kHeadMagic, kMagicSize);
    w.u32(version_);
    w.u32(static_cast<uint32_t>(sections_.size()));
    for (const Section &s : sections_) {
        w.u32(s.tag);
        w.u64(s.payload.size());
        w.u32(crc32(s.payload.data().data(), s.payload.size()));
        w.bytes(s.payload.data().data(), s.payload.size());
    }
    w.u32(crc32(w.data().data(), w.size()));
    w.bytes(kTailMagic, kMagicSize);
    return w.data();
}

void
CheckpointWriter::writeFile(const std::string &path) const
{
    std::string body = container();
    std::string tmp =
        formatString("%s.tmp.%d", path.c_str(),
                     static_cast<int>(::getpid()));

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        throw CkptError(ErrorKind::Io,
                        formatString("cannot create '%s': %s",
                                     tmp.c_str(),
                                     errnoString().c_str()));
    }
    size_t written = 0;
    while (written < body.size()) {
        ssize_t n = ::write(fd, body.data() + written,
                            body.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::string err = errnoString();
            ::close(fd);
            ::unlink(tmp.c_str());
            throw CkptError(ErrorKind::Io,
                            formatString("write '%s' failed: %s",
                                         tmp.c_str(), err.c_str()));
        }
        written += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
        std::string err = errnoString();
        ::close(fd);
        ::unlink(tmp.c_str());
        throw CkptError(ErrorKind::Io,
                        formatString("fsync '%s' failed: %s",
                                     tmp.c_str(), err.c_str()));
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        std::string err = errnoString();
        ::unlink(tmp.c_str());
        throw CkptError(ErrorKind::Io,
                        formatString("rename '%s' -> '%s' failed: %s",
                                     tmp.c_str(), path.c_str(),
                                     err.c_str()));
    }
    // Make the rename itself durable. Best effort: a missing
    // directory fsync can only lose the newest snapshot to a power
    // cut, never corrupt it.
    std::string dir = path;
    size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

CheckpointReader
CheckpointReader::fromBytes(std::string bytes)
{
    CheckpointReader cr;
    cr.data_ = std::move(bytes);
    const std::string &d = cr.data_;

    if (d.size() < kMagicSize ||
        std::memcmp(d.data(), kHeadMagic, kMagicSize) != 0) {
        throw CkptError(ErrorKind::Corrupt,
                        "not a checkpoint file (bad magic)");
    }
    if (d.size() < kHeaderSize) {
        throw CkptError(ErrorKind::Torn,
                        "checkpoint truncated inside the header");
    }
    Reader head(d.data() + kMagicSize, d.size() - kMagicSize);
    uint32_t version = head.u32();
    if (version != kFormatVersion) {
        throw CkptError(
            ErrorKind::VersionMismatch,
            formatString("checkpoint format version %u, this build "
                         "reads version %u",
                         version, kFormatVersion));
    }
    if (d.size() < kHeaderSize + kTrailerSize ||
        std::memcmp(d.data() + d.size() - kMagicSize, kTailMagic,
                    kMagicSize) != 0) {
        throw CkptError(ErrorKind::Torn,
                        "checkpoint tail marker missing (torn or "
                        "truncated write)");
    }
    size_t crcOffset = d.size() - kTrailerSize;
    Reader trailer(d.data() + crcOffset, 4);
    uint32_t fileCrc = trailer.u32();
    if (crc32(d.data(), crcOffset) != fileCrc) {
        throw CkptError(ErrorKind::Corrupt,
                        "checkpoint file CRC mismatch");
    }

    uint32_t count = head.u32();
    size_t off = kHeaderSize;
    for (uint32_t i = 0; i < count; ++i) {
        if (crcOffset - off < kSectionHeaderSize) {
            throw CkptError(ErrorKind::Corrupt,
                            "checkpoint section table overruns the "
                            "file");
        }
        Reader sh(d.data() + off, kSectionHeaderSize);
        Entry e;
        e.tag = sh.u32();
        uint64_t size = sh.u64();
        uint32_t crc = sh.u32();
        off += kSectionHeaderSize;
        if (size > crcOffset - off) {
            throw CkptError(ErrorKind::Corrupt,
                            "checkpoint section payload overruns the "
                            "file");
        }
        e.offset = off;
        e.size = static_cast<size_t>(size);
        if (crc32(d.data() + e.offset, e.size) != crc) {
            throw CkptError(
                ErrorKind::Corrupt,
                formatString("checkpoint section %u CRC mismatch",
                             i));
        }
        off += e.size;
        cr.sections_.push_back(e);
    }
    if (off != crcOffset) {
        throw CkptError(ErrorKind::Corrupt,
                        "checkpoint has trailing garbage after the "
                        "last section");
    }
    return cr;
}

CheckpointReader
CheckpointReader::fromFile(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        throw CkptError(ErrorKind::Io,
                        formatString("cannot open checkpoint '%s': "
                                     "%s",
                                     path.c_str(),
                                     errnoString().c_str()));
    }
    std::string bytes;
    char buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::string err = errnoString();
            ::close(fd);
            throw CkptError(ErrorKind::Io,
                            formatString("read '%s' failed: %s",
                                         path.c_str(), err.c_str()));
        }
        if (n == 0)
            break;
        bytes.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return fromBytes(std::move(bytes));
}

const CheckpointReader::Entry *
CheckpointReader::find(uint32_t t) const
{
    for (const Entry &e : sections_) {
        if (e.tag == t)
            return &e;
    }
    return nullptr;
}

bool
CheckpointReader::has(const char (&name)[5]) const
{
    return find(tag(name)) != nullptr;
}

Reader
CheckpointReader::section(const char (&name)[5]) const
{
    const Entry *e = find(tag(name));
    if (!e) {
        throw CkptError(ErrorKind::Corrupt,
                        formatString("checkpoint is missing section "
                                     "'%s'",
                                     name));
    }
    return Reader(data_.data() + e->offset, e->size);
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

} // namespace ckpt
} // namespace elag
