#include "ckpt/serial.hh"

#include <cstring>

#include "support/logging.hh"

namespace elag {
namespace ckpt {

const char *
name(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Io:
        return "io";
      case ErrorKind::Torn:
        return "torn";
      case ErrorKind::Corrupt:
        return "corrupt";
      case ErrorKind::VersionMismatch:
        return "version_mismatch";
      case ErrorKind::Mismatch:
        return "mismatch";
    }
    return "?";
}

namespace {

struct CrcTable
{
    uint32_t entries[256];

    CrcTable()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c >> 1) ^ ((c & 1) ? 0xedb88320u : 0);
            entries[i] = c;
        }
    }
};

} // anonymous namespace

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    static const CrcTable table;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint32_t crc = seed ^ 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        crc = (crc >> 8) ^ table.entries[(crc ^ p[i]) & 0xff];
    return crc ^ 0xffffffffu;
}

void
Writer::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        u8(static_cast<uint8_t>(v >> (8 * i)));
}

void
Writer::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        u8(static_cast<uint8_t>(v >> (8 * i)));
}

void
Writer::f32(float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, 4);
    u32(bits);
}

void
Writer::f64(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
}

void
Writer::varint(uint64_t v)
{
    while (v >= 0x80) {
        u8(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    u8(static_cast<uint8_t>(v));
}

void
Writer::str(const std::string &s)
{
    varint(s.size());
    bytes(s.data(), s.size());
}

void
Writer::bytes(const void *data, size_t len)
{
    buf_.append(static_cast<const char *>(data), len);
}

void
Reader::need(size_t n) const
{
    if (remaining() < n) {
        throw CkptError(
            ErrorKind::Corrupt,
            formatString("checkpoint payload underrun: need %zu "
                         "bytes, %zu remain",
                         n, remaining()));
    }
}

uint8_t
Reader::u8()
{
    need(1);
    return static_cast<uint8_t>(*p_++);
}

uint32_t
Reader::u32()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(static_cast<uint8_t>(*p_++))
             << (8 * i);
    return v;
}

uint64_t
Reader::u64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(static_cast<uint8_t>(*p_++))
             << (8 * i);
    return v;
}

float
Reader::f32()
{
    uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
}

double
Reader::f64()
{
    uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
}

uint64_t
Reader::varint()
{
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
        uint8_t byte = u8();
        if (shift >= 64 || (shift == 63 && (byte & 0x7e))) {
            throw CkptError(ErrorKind::Corrupt,
                            "checkpoint varint overflows 64 bits");
        }
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
    }
}

std::string
Reader::str()
{
    uint64_t len = varint();
    need(len);
    std::string s(p_, len);
    p_ += len;
    return s;
}

void
Reader::bytes(void *out, size_t len)
{
    need(len);
    std::memcpy(out, p_, len);
    p_ += len;
}

void
serialize(Writer &w, const Histogram &h)
{
    w.varint(h.numBuckets());
    w.varint(h.bucketWidth());
    for (size_t i = 0; i < h.numBuckets(); ++i)
        w.varint(h.bucket(i));
    w.varint(h.overflow());
    w.varint(h.samples());
    w.varint(h.total());
}

void
restore(Reader &r, Histogram &h)
{
    uint64_t buckets = r.varint();
    uint64_t width = r.varint();
    if (buckets != h.numBuckets() || width != h.bucketWidth()) {
        throw CkptError(
            ErrorKind::Mismatch,
            formatString("histogram geometry mismatch: checkpoint "
                         "%llux%llu vs live %zux%llu",
                         static_cast<unsigned long long>(buckets),
                         static_cast<unsigned long long>(width),
                         h.numBuckets(),
                         static_cast<unsigned long long>(
                             h.bucketWidth())));
    }
    std::vector<uint64_t> counts(buckets);
    for (uint64_t i = 0; i < buckets; ++i)
        counts[i] = r.varint();
    uint64_t overflow = r.varint();
    uint64_t samples = r.varint();
    uint64_t total = r.varint();
    h.restoreRaw(counts, overflow, samples, total);
}

} // namespace ckpt
} // namespace elag
