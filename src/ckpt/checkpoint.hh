/**
 * @file
 * The durable checkpoint container.
 *
 * A checkpoint is a single file of tagged sections:
 *
 *     "ELAGCKPT"                      8-byte magic
 *     u32 format version
 *     u32 section count
 *     per section:
 *         u32 tag (fourcc)
 *         u64 payload size
 *         u32 payload CRC-32
 *         payload bytes
 *     u32 file CRC-32 (over everything above)
 *     "ELAGEND."                      8-byte tail marker
 *
 * Integrity model, in rejection order:
 *  - bad head magic            -> Corrupt (not a checkpoint at all)
 *  - unknown format version    -> VersionMismatch
 *  - missing tail marker       -> Torn (writer died mid-write, or
 *                                 the file was truncated afterwards)
 *  - file or section CRC wrong -> Corrupt
 *
 * Files are written atomically: payload goes to a temp file in the
 * same directory, is fsync'd, and rename()d over the target, so a
 * crash during a snapshot leaves the previous snapshot intact. A
 * torn file can therefore only come from external damage — but it is
 * still detected and rejected with a typed error, never restored.
 */

#ifndef ELAG_CKPT_CHECKPOINT_HH
#define ELAG_CKPT_CHECKPOINT_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "ckpt/serial.hh"

namespace elag {
namespace ckpt {

/** Current container format version. */
constexpr uint32_t kFormatVersion = 1;

/** Section tag from a 4-character literal, e.g. tag("META"). */
constexpr uint32_t
tag(const char (&s)[5])
{
    return static_cast<uint32_t>(static_cast<uint8_t>(s[0])) |
           static_cast<uint32_t>(static_cast<uint8_t>(s[1])) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(s[2])) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(s[3])) << 24;
}

/** Assembles and atomically writes one checkpoint file. */
class CheckpointWriter
{
  public:
    /**
     * Open a new section; returns the Writer its payload goes into.
     * The reference stays valid for the CheckpointWriter's lifetime.
     * Section order is preserved; tags should be unique.
     */
    Writer &section(const char (&name)[5]);

    /** The assembled container bytes (tests, in-memory round trips). */
    std::string container() const;

    /**
     * Atomically write the container to @p path (temp file + fsync +
     * rename). Throws CkptError(Io) on any filesystem failure; the
     * previous file at @p path survives a failed or interrupted
     * write.
     */
    void writeFile(const std::string &path) const;

    /** Stamp a non-current version (version-mismatch tests only). */
    void setVersionForTesting(uint32_t version) { version_ = version; }

  private:
    struct Section
    {
        uint32_t tag;
        Writer payload;
    };

    /** deque: section() hands out stable references. */
    std::deque<Section> sections_;
    uint32_t version_ = kFormatVersion;
};

/** Validates and indexes one checkpoint file for reading. */
class CheckpointReader
{
  public:
    /** Parse @p bytes; throws typed CkptError on any defect. */
    static CheckpointReader fromBytes(std::string bytes);

    /** Read and parse @p path; throws CkptError (Io on read error). */
    static CheckpointReader fromFile(const std::string &path);

    bool has(const char (&name)[5]) const;

    /**
     * Reader over a section's (CRC-verified) payload. Throws
     * CkptError(Corrupt) when the section is absent.
     */
    Reader section(const char (&name)[5]) const;

  private:
    CheckpointReader() = default;

    struct Entry
    {
        uint32_t tag;
        size_t offset;
        size_t size;
    };

    const Entry *find(uint32_t t) const;

    std::string data_;
    std::vector<Entry> sections_;
};

/** @return true when @p path exists (resume-candidate probing). */
bool fileExists(const std::string &path);

} // namespace ckpt
} // namespace elag

#endif // ELAG_CKPT_CHECKPOINT_HH
