/**
 * @file
 * The elagd supervision tree's root: accept, route, proxy, survive.
 *
 * In sharded mode (--shards=N) the daemon process never compiles or
 * simulates anything itself. It accepts client connections, answers
 * control verbs locally, and proxies work verbs — frame in, frame
 * out — to one of N shard worker processes selected by content hash
 * (serve/routing.hh). Workers are sandboxed children (rlimit-capped,
 * own process groups) owned by a ShardManager that restarts them
 * with backoff when they crash and SIGKILLs them when they hang.
 *
 * What a client observes under failure:
 *
 *  - Worker crashes mid-request: the proxy read fails, the request
 *    is retried verbatim on a sibling shard (work verbs are pure, so
 *    the retry is safe); the client sees a normal response, just
 *    slower. A request that keeps killing workers is answered with
 *    `shard_failed`, and once its content hash has crashed workers
 *    `--quarantine-threshold` times, with `quarantined` — before
 *    ever reaching another worker.
 *  - Worker hangs mid-request: the per-request proxy deadline
 *    expires, the worker is SIGKILLed and respawned, the client gets
 *    a `timeout` error.
 *  - Partial capacity: admission scales with the live shard count —
 *    fewer workers, proportionally fewer in-flight requests, typed
 *    `overloaded` rejections for the rest. Zero live workers answer
 *    `unavailable` immediately.
 *  - Drain (SIGTERM or the `drain` verb): stop accepting, finish
 *    every in-flight proxied request, then SIGTERM the workers (they
 *    drain themselves) and reap the fleet.
 *
 * Control verbs: `health` and `stats` describe the tree (per-shard
 * pid/state/restart counts — chaos tooling reads pids from here);
 * `metrics` merges the supervisor's own counters with every live
 * shard's (scraped via the counters exposition) into one document.
 */

#ifndef ELAG_SERVE_SUPERVISOR_HH
#define ELAG_SERVE_SUPERVISOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/framing.hh"
#include "serve/metrics.hh"
#include "serve/protocol.hh"
#include "serve/shard.hh"
#include "serve/socket.hh"

namespace elag {
namespace serve {

struct SupervisorConfig
{
    /** Client-facing Unix-domain socket path (required). */
    std::string socketPath;
    /** Extra TCP listener on 127.0.0.1:tcpPort; 0 disables it. */
    uint16_t tcpPort = 0;
    /**
     * In-flight proxied requests at full capacity; the effective
     * bound scales with the live shard fraction.
     */
    uint32_t queueDepth = 64;
    /** Deadline for requests that carry none; 0 = unlimited. */
    uint64_t defaultDeadlineMs = 0;
    /** Extra proxy-read budget past the request's own deadline. */
    uint64_t proxyGraceMs = 2000;
    size_t maxFrameBytes = kMaxFramePayload;
    /** Worker fleet shape (shard count, argv, restart policy...). */
    ShardManagerConfig shards;
};

class Supervisor
{
  public:
    explicit Supervisor(const SupervisorConfig &config);
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /** Spawn the fleet, bind listeners, start accepting. */
    void start();

    /** Begin graceful drain (idempotent, any thread). */
    void beginDrain();

    bool draining() const { return draining_.load(); }

    /**
     * Block until drained: acceptor and connection threads joined
     * (in-flight proxied requests completed), workers terminated and
     * reaped, listeners closed, socket file unlinked.
     */
    void wait();

    /** SIGTERM/SIGINT -> beginDrain via self-pipe (as Server). */
    void installSignalHandlers();
    static void restoreSignalHandlers();

    /** The `stats` verb document (also flushed at daemon exit). */
    std::string statsJson() const;

    ShardManager &shards() { return *shards_; }

  private:
    void acceptLoop();
    void serveConnection(int fd, uint64_t conn_id);
    std::string handle(const Request &request,
                       const std::string &raw_payload,
                       bool &initiate_drain);

    /** Route + failover + quarantine for one work request. */
    std::string proxyWork(const Request &request,
                          const std::string &raw_payload);

    /** How one proxied exchange ended. */
    enum class ProxyOutcome
    {
        Ok,          ///< response frame received
        ConnectFail, ///< could not connect/write (worker not there)
        Died,        ///< stream broke mid-exchange (worker died)
        Timeout,     ///< proxy deadline expired (worker hung)
    };

    ProxyOutcome proxyOnce(const std::string &socket_path,
                           const std::string &raw_payload,
                           uint64_t timeout_ms,
                           std::string &response);

    /** Merged supervisor + live-shard counters, JSON or Prometheus. */
    std::string aggregateMetrics(const Request &request);

    SupervisorConfig cfg;
    std::unique_ptr<ShardManager> shards_;
    ServerMetrics metrics_;

    Fd unixListener;
    Fd tcpListener;
    Fd wakeRead, wakeWrite;

    std::thread acceptor;
    mutable std::mutex connMu;
    std::vector<std::thread> connThreads;
    std::set<int> activeFds;

    std::atomic<bool> started_{false};
    std::atomic<bool> draining_{false};
    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint32_t> inflight_{0};
    std::atomic<uint64_t> proxied_{0};
    std::atomic<uint64_t> retried_{0};
    std::atomic<uint64_t> rejectedOverload_{0};
    std::atomic<uint64_t> rejectedQuarantine_{0};
    std::atomic<uint64_t> rejectedUnavailable_{0};
    std::atomic<uint64_t> rejectedDraining_{0};
    std::chrono::steady_clock::time_point startTime_ =
        std::chrono::steady_clock::now();
};

} // namespace serve
} // namespace elag

#endif // ELAG_SERVE_SUPERVISOR_HH
