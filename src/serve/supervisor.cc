#include "serve/supervisor.hh"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include "obs/build_info.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "serve/protocol.hh"
#include "serve/routing.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/trace.hh"

namespace elag {
namespace serve {

namespace {

trace::Channel &supTrace = trace::channel("supervisor");

/** Self-pipe write end for the signal handler (as Server's). */
std::atomic<int> gSupSignalWakeFd{-1};

extern "C" void
supervisorSignalHandler(int)
{
    int fd = gSupSignalWakeFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        char byte = 's';
        ssize_t ignored = ::write(fd, &byte, 1);
        (void)ignored;
    }
}

uint64_t
elapsedMicros(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - since)
        .count();
}

obs::Counter &
quarantinedCounter()
{
    static obs::Counter &counter = obs::Registry::process().counter(
        "elag_serve_quarantined_total",
        "Requests rejected because their content hash is "
        "quarantined.");
    return counter;
}

} // anonymous namespace

Supervisor::Supervisor(const SupervisorConfig &config) : cfg(config)
{
    if (cfg.shards.shards == 0)
        fatal("elagd: supervisor needs at least one shard");
    if (cfg.queueDepth == 0)
        fatal("elagd: --queue-depth must be at least 1");
    shards_.reset(new ShardManager(cfg.shards));
}

Supervisor::~Supervisor()
{
    if (started_.load()) {
        beginDrain();
        if (acceptor.joinable())
            wait();
    }
}

void
Supervisor::start()
{
    elag_assert(!started_.load());
    ignoreSigpipe();

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0)
        fatal("elagd: cannot create wake pipe: %s", strerror(errno));
    wakeRead.reset(pipe_fds[0]);
    wakeWrite.reset(pipe_fds[1]);

    // Workers first: by the time a client can connect there is a
    // fleet to route to (workers may still be binding; admission
    // answers `unavailable` until the first heartbeat lands).
    shards_->start();

    unixListener = listenUnix(cfg.socketPath);
    if (cfg.tcpPort)
        tcpListener = listenTcpLoopback(cfg.tcpPort);

    started_.store(true);
    acceptor = std::thread([this] { acceptLoop(); });
}

void
Supervisor::installSignalHandlers()
{
    elag_assert(wakeWrite.valid());
    gSupSignalWakeFd.store(wakeWrite.get(),
                           std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = supervisorSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
}

void
Supervisor::restoreSignalHandlers()
{
    gSupSignalWakeFd.store(-1, std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = SIG_DFL;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
}

void
Supervisor::beginDrain()
{
    if (draining_.exchange(true))
        return;

    ELAG_TRACE_EVT(supTrace, 0, "supervisor drain begins");

    if (wakeWrite.valid()) {
        char byte = 'd';
        ssize_t ignored = ::write(wakeWrite.get(), &byte, 1);
        (void)ignored;
    }

    std::lock_guard<std::mutex> lock(connMu);
    for (int fd : activeFds)
        ::shutdown(fd, SHUT_RD);
}

void
Supervisor::wait()
{
    elag_assert(started_.load());
    if (acceptor.joinable())
        acceptor.join();

    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMu);
        threads.swap(connThreads);
    }
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();

    // Every in-flight proxied request has completed (its connection
    // thread is joined); only now is it safe to take the fleet down.
    shards_->stop();

    unixListener.reset();
    tcpListener.reset();
    if (!cfg.socketPath.empty())
        ::unlink(cfg.socketPath.c_str());
}

void
Supervisor::acceptLoop()
{
    while (!draining_.load()) {
        struct pollfd fds[3];
        fds[0] = {wakeRead.get(), POLLIN, 0};
        fds[1] = {unixListener.get(), POLLIN, 0};
        nfds_t nfds = 2;
        if (tcpListener.valid())
            fds[nfds++] = {tcpListener.get(), POLLIN, 0};

        int rc = ::poll(fds, nfds, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            warn("elagd: poll failed: %s", strerror(errno));
            beginDrain();
            break;
        }

        if (fds[0].revents) {
            beginDrain();
            break;
        }

        for (nfds_t i = 1; i < nfds; ++i) {
            if (!(fds[i].revents & POLLIN))
                continue;
            int conn = acceptOn(fds[i].fd);
            if (conn < 0)
                continue;
            uint64_t conn_id = accepted_.fetch_add(1) + 1;
            std::lock_guard<std::mutex> lock(connMu);
            if (draining_.load()) {
                ::close(conn);
                continue;
            }
            activeFds.insert(conn);
            connThreads.emplace_back([this, conn, conn_id] {
                serveConnection(conn, conn_id);
            });
        }
    }
}

void
Supervisor::serveConnection(int fd, uint64_t conn_id)
{
    std::string payload;
    for (;;) {
        FrameStatus status =
            readFrame(fd, payload, cfg.maxFrameBytes);
        if (status == FrameStatus::Eof)
            break;
        if (status == FrameStatus::Oversized) {
            Request anon;
            writeFrame(fd, errorResponse(
                               anon, errtype::BadRequest,
                               formatString(
                                   "frame exceeds %zu byte limit",
                                   cfg.maxFrameBytes)));
            break;
        }
        if (status != FrameStatus::Ok)
            break;

        auto started = std::chrono::steady_clock::now();

        obs::Span span("proxy", "serve");
        span.arg("conn", std::to_string(conn_id));

        Request request;
        std::string parse_error;
        std::string response;
        bool initiate_drain = false;
        if (!parseRequest(payload, request, parse_error)) {
            response = errorResponse(request, errtype::BadRequest,
                                     parse_error);
        } else {
            span.arg("verb", request.verb);
            if (!request.trace.empty())
                span.arg("trace_id", request.trace);
            response = handle(request, payload, initiate_drain);
        }

        uint64_t micros = elapsedMicros(started);
        bool ok = startsWith(response, "{\"ok\":true");
        const std::string &verb =
            request.verb.empty() ? "<invalid>" : request.verb;
        metrics_.record(verb, ok, micros);
        ELAG_TRACE_EVT(supTrace, conn_id,
                       "conn %llu verb=%s id=%llu %s %llu us",
                       (unsigned long long)conn_id, verb.c_str(),
                       (unsigned long long)request.id,
                       ok ? "ok" : "error",
                       (unsigned long long)micros);

        bool wrote = writeFrame(fd, response);
        span.end();
        if (initiate_drain) {
            beginDrain();
            break;
        }
        if (!wrote)
            break;
    }

    {
        std::lock_guard<std::mutex> lock(connMu);
        activeFds.erase(fd);
    }
    ::close(fd);
}

std::string
Supervisor::handle(const Request &request,
                   const std::string &raw_payload,
                   bool &initiate_drain)
{
    if (request.verb == "health") {
        JsonWriter w(0);
        w.beginObject();
        w.field("status", "ok");
        w.field("role", "supervisor");
        w.field("draining", draining_.load());
        w.field("shards",
                static_cast<uint64_t>(cfg.shards.shards));
        w.field("shards_live",
                static_cast<uint64_t>(shards_->liveCount()));
        w.endObject();
        return okResponse(request, w.str());
    }

    if (request.verb == "stats")
        return okResponse(request, statsJson());

    if (request.verb == "metrics")
        return aggregateMetrics(request);

    if (request.verb == "drain") {
        initiate_drain = true;
        JsonWriter w(0);
        w.beginObject();
        w.field("draining", true);
        w.endObject();
        return okResponse(request, w.str());
    }

    // Everything else — the work verbs, and any verb this supervisor
    // does not know — is the workers' business: route it. Workers
    // answer unknown verbs with the typed error themselves, so the
    // supervisor stays agnostic to worker-side verb growth.
    if (draining_.load()) {
        rejectedDraining_.fetch_add(1);
        return errorResponse(request, errtype::ShuttingDown,
                             "server is draining");
    }

    return proxyWork(request, raw_payload);
}

Supervisor::ProxyOutcome
Supervisor::proxyOnce(const std::string &socket_path,
                      const std::string &raw_payload,
                      uint64_t timeout_ms, std::string &response)
{
    Fd fd;
    try {
        fd = connectUnix(socket_path);
    } catch (const FatalError &) {
        return ProxyOutcome::ConnectFail;
    }
    if (!writeFrame(fd.get(), raw_payload))
        return ProxyOutcome::ConnectFail;
    switch (readFrameTimed(fd.get(), response, cfg.maxFrameBytes,
                           timeout_ms)) {
      case FrameStatus::Ok:
        return ProxyOutcome::Ok;
      case FrameStatus::Timeout:
        return ProxyOutcome::Timeout;
      case FrameStatus::Eof:
      case FrameStatus::Truncated:
      case FrameStatus::IoError:
      case FrameStatus::Oversized:
        return ProxyOutcome::Died;
    }
    return ProxyOutcome::Died;
}

std::string
Supervisor::proxyWork(const Request &request,
                      const std::string &raw_payload)
{
    uint64_t hash = routingHash(request);

    if (shards_->isQuarantined(hash)) {
        rejectedQuarantine_.fetch_add(1);
        quarantinedCounter().inc();
        return errorResponse(
            request, errtype::Quarantined,
            formatString("request content has crashed workers %u "
                         "times and is quarantined",
                         cfg.shards.quarantineThreshold));
    }

    // Graceful degradation: admission scales with surviving
    // capacity. At full strength the bound is queueDepth; with half
    // the fleet down, half the in-flight work.
    uint32_t live = shards_->liveCount();
    if (live == 0) {
        rejectedUnavailable_.fetch_add(1);
        return errorResponse(request, errtype::Unavailable,
                             "no shard workers are available");
    }
    uint32_t limit = std::max<uint32_t>(
        1, static_cast<uint32_t>(
               static_cast<uint64_t>(cfg.queueDepth) * live /
               cfg.shards.shards));
    uint32_t inflight = inflight_.load();
    do {
        if (inflight >= limit) {
            rejectedOverload_.fetch_add(1);
            return errorResponse(
                request, errtype::Overloaded,
                formatString("supervisor is at capacity (%u in "
                             "flight, limit %u with %u/%u shards "
                             "live)",
                             inflight, limit, live,
                             cfg.shards.shards));
        }
    } while (
        !inflight_.compare_exchange_weak(inflight, inflight + 1));
    proxied_.fetch_add(1);

    struct InflightGuard
    {
        std::atomic<uint32_t> &count;
        ~InflightGuard() { count.fetch_sub(1); }
    } guard{inflight_};

    // Per-request proxy deadline: the request's own deadline plus
    // grace (the worker enforces the precise one; the grace only
    // catches a worker too wedged to answer at all). Requests with
    // no deadline read unbounded — heartbeats break true hangs by
    // killing the worker, which surfaces here as a died stream.
    uint64_t deadline = request.deadlineMs ? request.deadlineMs
                                           : cfg.defaultDeadlineMs;
    uint64_t timeout_ms =
        deadline ? deadline + cfg.proxyGraceMs : 0;

    std::vector<uint32_t> order =
        failoverOrder(hash, cfg.shards.shards);
    uint32_t deaths = 0;
    bool attempted = false;
    for (uint32_t index : order) {
        if (!shards_->isUp(index))
            continue;
        attempted = true;
        std::string response;
        ProxyOutcome outcome =
            proxyOnce(shards_->socketPathOf(index), raw_payload,
                      timeout_ms, response);
        switch (outcome) {
          case ProxyOutcome::Ok:
            return response;
          case ProxyOutcome::ConnectFail:
            // The worker is between death and respawn; its sibling
            // can take the request. Not the request's fault.
            retried_.fetch_add(1);
            continue;
          case ProxyOutcome::Timeout:
            // The worker wedged on this request. Kill it (the
            // manager respawns it) and fail the request: its
            // deadline budget is spent, a sibling retry would just
            // hang twice as long.
            shards_->killShard(index, "hang");
            shards_->recordPoison(hash);
            return errorResponse(
                request, errtype::Timeout,
                formatString("shard %u exceeded the %llu ms proxy "
                             "deadline",
                             index,
                             (unsigned long long)timeout_ms));
          case ProxyOutcome::Died: {
            // The worker died mid-request. Work verbs are pure, so
            // the retry on a sibling is safe — unless this content
            // keeps killing workers.
            bool quarantined = shards_->recordPoison(hash);
            ++deaths;
            if (quarantined) {
                rejectedQuarantine_.fetch_add(1);
                quarantinedCounter().inc();
                return errorResponse(
                    request, errtype::Quarantined,
                    formatString(
                        "request content has crashed workers %u "
                        "times and is quarantined",
                        cfg.shards.quarantineThreshold));
            }
            if (deaths >= 2) {
                return errorResponse(
                    request, errtype::ShardFailed,
                    formatString("request crashed %u shard workers",
                                 deaths));
            }
            retried_.fetch_add(1);
            continue;
          }
        }
    }

    if (deaths > 0) {
        return errorResponse(
            request, errtype::ShardFailed,
            formatString("request crashed %u shard worker%s and no "
                         "sibling could serve it",
                         deaths, deaths == 1 ? "" : "s"));
    }
    rejectedUnavailable_.fetch_add(1);
    return errorResponse(request, errtype::Unavailable,
                         attempted
                             ? "every live shard refused the "
                               "connection"
                             : "no shard workers are available");
}

std::string
Supervisor::aggregateMetrics(const Request &request)
{
    if (!request.format.empty() && request.format != "json" &&
        request.format != "prometheus") {
        return errorResponse(
            request, errtype::BadRequest,
            formatString("unknown metrics format '%s'",
                         request.format.c_str()));
    }

    // Merge this process's counters with every live worker's into a
    // private registry. Counters are deltas-from-zero, so summing
    // same-named samples is the right aggregation; gauges and
    // histograms stay per-process (the counters exposition is what
    // workers export).
    obs::Registry merged;
    {
        JsonWriter w(0);
        obs::Registry::process().writeCountersJson(w);
        merged.restoreCounters(w.str());
    }

    Request scrape;
    scrape.verb = "metrics";
    scrape.format = "counters";
    std::string scrape_doc = buildRequestDoc(scrape);
    for (const ShardManager::ShardInfo &info : shards_->snapshot()) {
        if (info.state != ShardState::Up)
            continue;
        std::string payload;
        if (proxyOnce(info.socketPath, scrape_doc, 2000, payload) !=
            ProxyOutcome::Ok) {
            continue;
        }
        Response response;
        std::string parse_error;
        if (parseResponse(payload, response, parse_error) &&
            response.ok) {
            merged.restoreCounters(response.result);
        }
    }

    if (request.format == "prometheus") {
        JsonWriter w(0);
        w.beginObject();
        w.field("format", "prometheus");
        w.field("body", merged.prometheus());
        w.endObject();
        return okResponse(request, w.str());
    }
    JsonWriter w(0);
    merged.writeJson(w);
    return okResponse(request, w.str());
}

std::string
Supervisor::statsJson() const
{
    size_t active;
    {
        std::lock_guard<std::mutex> lock(connMu);
        active = activeFds.size();
    }

    JsonWriter w;
    w.beginObject();

    w.key("server").beginObject();
    w.field("role", "supervisor");
    w.field("draining", draining_.load());
    w.field("accepted", accepted_.load());
    w.field("active_connections", static_cast<uint64_t>(active));
    w.field("uptime_seconds",
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::seconds>(
                    std::chrono::steady_clock::now() - startTime_)
                    .count()));
    w.endObject();

    w.key("build");
    obs::writeJson(w, obs::buildInfo());

    w.key("proxy").beginObject();
    w.field("depth", static_cast<uint64_t>(cfg.queueDepth));
    w.field("inflight", static_cast<uint64_t>(inflight_.load()));
    w.field("proxied", proxied_.load());
    w.field("retried", retried_.load());
    w.field("rejected_overload", rejectedOverload_.load());
    w.field("rejected_quarantine", rejectedQuarantine_.load());
    w.field("rejected_unavailable", rejectedUnavailable_.load());
    w.field("rejected_draining", rejectedDraining_.load());
    w.endObject();

    w.key("verbs");
    metrics_.writeJson(w);

    w.key("shards").beginArray();
    for (const ShardManager::ShardInfo &info : shards_->snapshot()) {
        w.beginObject();
        w.field("index", static_cast<uint64_t>(info.index));
        w.field("pid", static_cast<int64_t>(info.pid));
        w.field("state", name(info.state));
        w.field("socket", info.socketPath);
        w.field("restarts", info.restarts);
        w.field("crash_streak",
                static_cast<uint64_t>(info.crashStreak));
        w.endObject();
    }
    w.endArray();

    w.key("quarantine").beginObject();
    w.field("threshold",
            static_cast<uint64_t>(cfg.shards.quarantineThreshold));
    w.field("entries",
            static_cast<uint64_t>(shards_->quarantineSize()));
    w.endObject();

    w.endObject();
    return w.str();
}

} // namespace serve
} // namespace elag
