/**
 * @file
 * The elagd server loop.
 *
 * Threading model:
 *
 *  - One acceptor thread polls the Unix-domain listener, the
 *    optional TCP-loopback listener, and a self-pipe; each accepted
 *    connection gets a (joinable, tracked) connection thread.
 *  - Connection threads read frames, parse requests, and answer
 *    control verbs (stats/health/metrics/drain) inline — those
 *    bypass admission control so they keep working under overload.
 *  - Work verbs pass admission control: a bounded count of requests
 *    submitted-but-not-started. At the configured depth new work is
 *    rejected immediately with a typed `overloaded` error instead of
 *    queueing unboundedly. Admitted requests execute on the
 *    support::parallel worker pool (shared with the rest of the
 *    toolchain, sized by --jobs); the connection thread blocks on
 *    the result future and writes the response, so each connection
 *    is strictly request/response ordered.
 *
 * Graceful drain (SIGTERM/SIGINT via the self-pipe, or the `drain`
 * verb): stop accepting, shut down the read side of every open
 * connection so idle clients see EOF, let in-flight requests finish
 * and their responses flush, then wait() returns so the daemon can
 * flush stats and exit 0.
 */

#ifndef ELAG_SERVE_SERVER_HH
#define ELAG_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cache/persistent_store.hh"
#include "serve/framing.hh"
#include "serve/metrics.hh"
#include "serve/router.hh"
#include "serve/socket.hh"
#include "support/parallel.hh"

namespace elag {
namespace serve {

struct ServerConfig
{
    /** Unix-domain socket path (required). */
    std::string socketPath;
    /** Extra TCP listener on 127.0.0.1:tcpPort; 0 disables it. */
    uint16_t tcpPort = 0;
    /** Admission queue depth: max requests waiting for a worker. */
    uint32_t queueDepth = 64;
    /** Deadline for requests that carry none; 0 = unlimited. */
    uint64_t defaultDeadlineMs = 0;
    /** Per-frame payload cap. */
    size_t maxFrameBytes = kMaxFramePayload;
    /** Worker pool; null uses parallel::ThreadPool::shared(). */
    parallel::ThreadPool *pool = nullptr;
    /**
     * Durable result cache layered under the RunCache (not owned);
     * null runs memory-only. Shard workers and the embedded daemon
     * both wire this from --cache-dir.
     */
    cache::PersistentStore *persist = nullptr;
    /**
     * Durable mid-request simulate checkpoints (see RouterConfig);
     * shard workers wire this from elagd --checkpoint-dir so a
     * supervisor-restarted worker finishes the interval instead of
     * replaying it. Empty disables.
     */
    std::string checkpointDir;
    /** Retires between request snapshots (0 = the 5M default). */
    uint64_t checkpointEvery = 0;
};

class Server
{
  public:
    explicit Server(const ServerConfig &config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind listeners and start the acceptor. Throws FatalError when
     * a listener cannot be set up.
     */
    void start();

    /**
     * Begin graceful drain (idempotent, callable from any thread,
     * including connection threads and the signal path): stop
     * accepting, EOF idle connections, let in-flight work finish.
     */
    void beginDrain();

    bool draining() const { return draining_.load(); }

    /**
     * Block until the server has fully drained: acceptor gone,
     * every connection thread joined, listeners closed, socket file
     * unlinked. Call exactly once, after start().
     */
    void wait();

    /**
     * Route SIGTERM/SIGINT to beginDrain() through a self-pipe (the
     * handler only write(2)s, so it is async-signal-safe). Restore
     * with restoreSignalHandlers() — tests install and restore
     * around each server lifetime.
     */
    void installSignalHandlers();
    static void restoreSignalHandlers();

    /** The `stats` verb document (also flushed at daemon exit). */
    std::string statsJson() const;

    ServerMetrics &metrics() { return metrics_; }
    const ServerConfig &config() const { return cfg; }

  private:
    void acceptLoop();
    void serveConnection(int fd, uint64_t conn_id);

    /**
     * Answer one parsed request. Sets @p initiate_drain for the
     * `drain` verb so the caller can begin draining after the
     * response has been written.
     */
    std::string handle(const Request &request, bool &initiate_drain);

    /** Admission control + pool execution of one work verb. */
    std::string executeAdmitted(const Request &request);

    parallel::ThreadPool &pool();

    ServerConfig cfg;
    Router router;
    ServerMetrics metrics_;

    Fd unixListener;
    Fd tcpListener;
    /** Self-pipe waking the acceptor's poll (drain, signals). */
    Fd wakeRead, wakeWrite;

    std::thread acceptor;
    mutable std::mutex connMu;
    std::vector<std::thread> connThreads;
    std::set<int> activeFds;

    std::atomic<bool> started_{false};
    std::atomic<bool> draining_{false};
    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> requestSeq_{0};
    /** Admitted but not yet started on a worker. */
    std::atomic<uint32_t> backlog_{0};
    std::atomic<uint32_t> executing_{0};
    std::atomic<uint64_t> admitted_{0};
    std::atomic<uint64_t> rejectedOverload_{0};
    std::atomic<uint64_t> rejectedDraining_{0};
    std::atomic<uint64_t> completed_{0};
    /** Construction time, for the stats verb's uptime_seconds. */
    std::chrono::steady_clock::time_point startTime_ =
        std::chrono::steady_clock::now();
};

} // namespace serve
} // namespace elag

#endif // ELAG_SERVE_SERVER_HH
