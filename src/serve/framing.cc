#include "serve/framing.hh"

#include <cstdint>

#include "serve/socket.hh"
#include "support/logging.hh"

namespace elag {
namespace serve {

const char *
name(FrameStatus status)
{
    switch (status) {
      case FrameStatus::Ok:
        return "ok";
      case FrameStatus::Eof:
        return "eof";
      case FrameStatus::Truncated:
        return "truncated";
      case FrameStatus::Oversized:
        return "oversized";
      case FrameStatus::IoError:
        return "io_error";
    }
    return "?";
}

FrameStatus
readFrame(int fd, std::string &payload, size_t max_payload)
{
    uint8_t header[4];
    size_t got = 0;
    switch (readFull(fd, header, sizeof(header), &got)) {
      case IoStatus::Ok:
        break;
      case IoStatus::Eof:
        return FrameStatus::Eof;
      case IoStatus::Short:
        return FrameStatus::Truncated;
      case IoStatus::Error:
        return FrameStatus::IoError;
    }
    uint32_t length = (static_cast<uint32_t>(header[0]) << 24) |
                      (static_cast<uint32_t>(header[1]) << 16) |
                      (static_cast<uint32_t>(header[2]) << 8) |
                      static_cast<uint32_t>(header[3]);
    if (length > max_payload)
        return FrameStatus::Oversized;

    payload.resize(length);
    if (length == 0)
        return FrameStatus::Ok;
    switch (readFull(fd, payload.data(), length, &got)) {
      case IoStatus::Ok:
        return FrameStatus::Ok;
      case IoStatus::Eof:
      case IoStatus::Short:
        return FrameStatus::Truncated;
      case IoStatus::Error:
        return FrameStatus::IoError;
    }
    return FrameStatus::IoError;
}

bool
writeFrame(int fd, const std::string &payload)
{
    elag_assert(payload.size() <= UINT32_MAX);
    uint32_t length = static_cast<uint32_t>(payload.size());
    uint8_t header[4] = {
        static_cast<uint8_t>(length >> 24),
        static_cast<uint8_t>(length >> 16),
        static_cast<uint8_t>(length >> 8),
        static_cast<uint8_t>(length),
    };
    if (!writeFull(fd, header, sizeof(header)))
        return false;
    return payload.empty() ||
           writeFull(fd, payload.data(), payload.size());
}

} // namespace serve
} // namespace elag
