#include "serve/framing.hh"

#include <chrono>
#include <cstdint>

#include "serve/socket.hh"
#include "support/logging.hh"

namespace elag {
namespace serve {

const char *
name(FrameStatus status)
{
    switch (status) {
      case FrameStatus::Ok:
        return "ok";
      case FrameStatus::Eof:
        return "eof";
      case FrameStatus::Truncated:
        return "truncated";
      case FrameStatus::Oversized:
        return "oversized";
      case FrameStatus::IoError:
        return "io_error";
      case FrameStatus::Timeout:
        return "timeout";
    }
    return "?";
}

namespace {

/**
 * The shared frame-read engine: the untimed entry point passes a 0
 * budget, which readFullTimed forwards straight to readFull.
 */
FrameStatus
readFrameBudget(int fd, std::string &payload, size_t max_payload,
                uint64_t timeout_ms)
{
    auto started = std::chrono::steady_clock::now();
    uint8_t header[4];
    size_t got = 0;
    switch (readFullTimed(fd, header, sizeof(header), timeout_ms,
                          &got)) {
      case IoStatus::Ok:
        break;
      case IoStatus::Eof:
        return FrameStatus::Eof;
      case IoStatus::Short:
        return FrameStatus::Truncated;
      case IoStatus::Error:
        return FrameStatus::IoError;
      case IoStatus::Timeout:
        // A deadline that expires before the first header byte is
        // still a frame timeout: the caller asked for a whole frame
        // within the budget.
        return FrameStatus::Timeout;
    }
    uint32_t length = (static_cast<uint32_t>(header[0]) << 24) |
                      (static_cast<uint32_t>(header[1]) << 16) |
                      (static_cast<uint32_t>(header[2]) << 8) |
                      static_cast<uint32_t>(header[3]);
    if (length > max_payload)
        return FrameStatus::Oversized;

    payload.resize(length);
    if (length == 0)
        return FrameStatus::Ok;
    // The budget covers the whole frame: charge the header's wait
    // against the payload's share (never rounding a live budget down
    // to "unlimited").
    uint64_t remaining = timeout_ms;
    if (timeout_ms) {
        uint64_t elapsed = std::chrono::duration_cast<
                               std::chrono::milliseconds>(
                               std::chrono::steady_clock::now() -
                               started)
                               .count();
        remaining = elapsed >= timeout_ms ? 1 : timeout_ms - elapsed;
    }
    switch (readFullTimed(fd, payload.data(), length, remaining,
                          &got)) {
      case IoStatus::Ok:
        return FrameStatus::Ok;
      case IoStatus::Eof:
      case IoStatus::Short:
        return FrameStatus::Truncated;
      case IoStatus::Error:
        return FrameStatus::IoError;
      case IoStatus::Timeout:
        return FrameStatus::Timeout;
    }
    return FrameStatus::IoError;
}

} // anonymous namespace

FrameStatus
readFrame(int fd, std::string &payload, size_t max_payload)
{
    return readFrameBudget(fd, payload, max_payload, 0);
}

FrameStatus
readFrameTimed(int fd, std::string &payload, size_t max_payload,
               uint64_t timeout_ms)
{
    return readFrameBudget(fd, payload, max_payload, timeout_ms);
}

bool
writeFrame(int fd, const std::string &payload)
{
    elag_assert(payload.size() <= UINT32_MAX);
    uint32_t length = static_cast<uint32_t>(payload.size());
    uint8_t header[4] = {
        static_cast<uint8_t>(length >> 24),
        static_cast<uint8_t>(length >> 16),
        static_cast<uint8_t>(length >> 8),
        static_cast<uint8_t>(length),
    };
    if (!writeFull(fd, header, sizeof(header)))
        return false;
    return payload.empty() ||
           writeFull(fd, payload.data(), payload.size());
}

} // namespace serve
} // namespace elag
