#include "serve/protocol.hh"

#include <algorithm>
#include <cstdint>

#include "support/json.hh"
#include "support/logging.hh"

namespace elag {
namespace serve {

bool
isWorkVerb(const std::string &verb)
{
    return verb == "compile" || verb == "classify" ||
           verb == "simulate" || verb == "generate";
}

bool
isControlVerb(const std::string &verb)
{
    return verb == "stats" || verb == "health" ||
           verb == "metrics" || verb == "drain";
}

namespace {

/** Position of `"key"` followed by ws + ':', or npos. */
size_t
keyPosition(const std::string &doc, const std::string &key)
{
    std::string needle = "\"" + key + "\"";
    size_t pos = doc.find(needle);
    while (pos != std::string::npos) {
        size_t p = pos + needle.size();
        while (p < doc.size() &&
               (doc[p] == ' ' || doc[p] == '\t' || doc[p] == '\n' ||
                doc[p] == '\r')) {
            ++p;
        }
        if (p < doc.size() && doc[p] == ':')
            return pos;
        pos = doc.find(needle, pos + 1);
    }
    return std::string::npos;
}

/** Optional uint member: absent keeps the default, present must parse. */
bool
optionalUint(const std::string &prefix, const std::string &key,
             uint64_t &out, std::string &error)
{
    if (keyPosition(prefix, key) == std::string::npos)
        return true;
    if (!jsonExtractUint(prefix, key, out)) {
        error = "member '" + key +
                "' must be an unsigned integer";
        return false;
    }
    return true;
}

bool
optionalUint32(const std::string &prefix, const std::string &key,
               uint32_t &out, std::string &error)
{
    uint64_t wide = out;
    if (!optionalUint(prefix, key, wide, error))
        return false;
    if (wide > UINT32_MAX) {
        error = "member '" + key + "' exceeds 32 bits";
        return false;
    }
    out = static_cast<uint32_t>(wide);
    return true;
}

bool
optionalString(const std::string &prefix, const std::string &key,
               std::string &out, std::string &error)
{
    if (keyPosition(prefix, key) == std::string::npos)
        return true;
    if (!jsonExtractString(prefix, key, out)) {
        error = "member '" + key + "' must be a string";
        return false;
    }
    return true;
}

bool
optionalBool(const std::string &prefix, const std::string &key,
             bool &out, std::string &error)
{
    if (keyPosition(prefix, key) == std::string::npos)
        return true;
    std::string raw;
    if (!jsonExtractRaw(prefix, key, raw) ||
        (raw != "true" && raw != "false")) {
        error = "member '" + key + "' must be a boolean";
        return false;
    }
    out = raw == "true";
    return true;
}

} // anonymous namespace

bool
parseRequest(const std::string &doc, Request &request,
             std::string &error)
{
    if (!jsonValid(doc)) {
        error = "request is not valid JSON";
        return false;
    }
    size_t first = doc.find_first_not_of(" \t\r\n");
    if (first == std::string::npos || doc[first] != '{') {
        error = "request must be a JSON object";
        return false;
    }

    // Scalars are read from the prefix before the source/spec
    // members, so protocol-looking text inside the shipped payload
    // cannot shadow them.
    size_t src_pos = keyPosition(doc, "source");
    size_t spec_pos = keyPosition(doc, "spec");
    size_t payload_pos = std::min(src_pos, spec_pos);
    std::string prefix = doc.substr(
        0, payload_pos == std::string::npos ? doc.size()
                                            : payload_pos);

    if (!optionalString(prefix, "verb", request.verb, error) ||
        !optionalUint(prefix, "id", request.id, error) ||
        !optionalString(prefix, "file", request.file, error) ||
        !optionalString(prefix, "machine", request.machine, error) ||
        !optionalString(prefix, "selection", request.selection,
                        error) ||
        !optionalUint32(prefix, "table", request.table, error) ||
        !optionalUint32(prefix, "regs", request.regs, error) ||
        !optionalBool(prefix, "no_opt", request.noOpt, error) ||
        !optionalBool(prefix, "no_classify", request.noClassify,
                      error) ||
        !optionalUint(prefix, "max_inst", request.maxInst, error) ||
        !optionalUint(prefix, "deadline_ms", request.deadlineMs,
                      error) ||
        !optionalString(prefix, "trace", request.trace, error) ||
        !optionalString(prefix, "format", request.format, error)) {
        return false;
    }
    if (request.verb.empty()) {
        error = "missing required member 'verb'";
        return false;
    }
    if (src_pos != std::string::npos &&
        !jsonExtractString(doc.substr(src_pos), "source",
                           request.source)) {
        error = "member 'source' must be a string";
        return false;
    }
    if (spec_pos != std::string::npos &&
        !jsonExtractString(doc.substr(spec_pos), "spec",
                           request.spec)) {
        error = "member 'spec' must be a string";
        return false;
    }
    return true;
}

std::string
buildRequestDoc(const Request &request)
{
    JsonWriter w(0);
    w.beginObject();
    w.field("verb", request.verb);
    w.field("id", request.id);
    w.field("file", request.file);
    w.field("machine", request.machine);
    if (!request.selection.empty())
        w.field("selection", request.selection);
    if (request.table)
        w.field("table", request.table);
    if (request.regs)
        w.field("regs", request.regs);
    if (request.noOpt)
        w.field("no_opt", true);
    if (request.noClassify)
        w.field("no_classify", true);
    w.field("max_inst", request.maxInst);
    if (request.deadlineMs)
        w.field("deadline_ms", request.deadlineMs);
    if (!request.trace.empty())
        w.field("trace", request.trace);
    if (!request.format.empty())
        w.field("format", request.format);
    // Scalar members above must precede the payloads; see
    // parseRequest.
    if (!request.spec.empty())
        w.field("spec", request.spec);
    if (!request.source.empty())
        w.field("source", request.source);
    w.endObject();
    return w.str();
}

std::string
okResponse(const Request &request, const std::string &result_json)
{
    JsonWriter w(0);
    w.beginObject();
    w.field("ok", true);
    w.field("id", request.id);
    w.field("verb", request.verb);
    w.key("result").rawValue(result_json);
    w.endObject();
    return w.str();
}

std::string
errorResponse(const Request &request, const std::string &type,
              const std::string &message)
{
    JsonWriter w(0);
    w.beginObject();
    w.field("ok", false);
    w.field("id", request.id);
    w.field("verb", request.verb);
    w.key("error").beginObject();
    w.field("type", type);
    w.field("message", message);
    w.endObject();
    w.endObject();
    return w.str();
}

bool
parseResponse(const std::string &doc, Response &response,
              std::string &error)
{
    if (!jsonValid(doc)) {
        error = "response is not valid JSON";
        return false;
    }
    // Envelope fields precede the (arbitrarily large) result member.
    size_t result_pos = keyPosition(doc, "result");
    std::string prefix = doc.substr(
        0, result_pos == std::string::npos ? doc.size() : result_pos);

    std::string ok_raw;
    if (!jsonExtractRaw(prefix, "ok", ok_raw) ||
        (ok_raw != "true" && ok_raw != "false")) {
        error = "missing or non-boolean 'ok' member";
        return false;
    }
    response.ok = ok_raw == "true";
    jsonExtractUint(prefix, "id", response.id);
    jsonExtractString(prefix, "verb", response.verb);

    if (response.ok) {
        if (result_pos == std::string::npos ||
            !jsonExtractRaw(doc.substr(result_pos), "result",
                            response.result)) {
            error = "ok response without a 'result' member";
            return false;
        }
        return true;
    }
    std::string error_block;
    if (!jsonExtractRaw(doc, "error", error_block)) {
        error = "error response without an 'error' member";
        return false;
    }
    jsonExtractString(error_block, "type", response.errorType);
    jsonExtractString(error_block, "message", response.errorMessage);
    if (response.errorType.empty()) {
        error = "error block without a 'type' member";
        return false;
    }
    return true;
}

} // namespace serve
} // namespace elag
