/**
 * @file
 * Client side of the elagd protocol: a single-connection blocking
 * Client, and a closed-loop LoadGen that drives many Clients from
 * concurrent threads and reports throughput and latency quantiles.
 *
 * Both are used by the elag_client tool and by the in-process
 * end-to-end tests, which connect to a Server running in the same
 * process.
 */

#ifndef ELAG_SERVE_CLIENT_HH
#define ELAG_SERVE_CLIENT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "serve/socket.hh"

namespace elag {

class JsonWriter;

namespace serve {

/**
 * One blocking protocol connection. call() is strictly
 * request/response, matching the server's per-connection ordering.
 * Transport failures (connection refused, server hangup mid-call)
 * throw FatalError; protocol-level errors come back as a Response
 * with ok == false.
 */
class Client
{
  public:
    static Client connectTo(const std::string &socket_path);
    static Client connectTcp(uint16_t port);

    Response call(const Request &request);

    Client(Client &&) = default;
    Client &operator=(Client &&) = default;

  private:
    explicit Client(Fd fd) : fd_(std::move(fd)) {}
    Fd fd_;
};

/** Connection-retry policy for ReconnectingClient. */
struct RetryConfig
{
    /** Total attempts per call(); 1 disables retry. */
    uint32_t maxAttempts = 4;
    /** Backoff before the first retry; doubled per further retry. */
    uint64_t baseDelayMs = 20;
    /** Backoff ceiling. */
    uint64_t capDelayMs = 1000;
};

/**
 * A Client that survives its server's restarts: transport failures
 * (connection refused while a supervisor respawns, EPIPE or a short
 * read when a worker dies mid-call) are retried on a fresh
 * connection with jittered exponential backoff, up to
 * RetryConfig::maxAttempts. Requests against elagd are pure, so
 * resending one that may already have executed is safe.
 *
 * Protocol-level errors (ok == false responses) are returned, never
 * retried — the server answered; the answer was no. FatalError
 * propagates only once every attempt is spent.
 */
class ReconnectingClient
{
  public:
    /** Unix-domain target (or TCP loopback when @p path is empty). */
    ReconnectingClient(const std::string &path, uint16_t tcp_port,
                       const RetryConfig &retry = {});

    Response call(const Request &request);

    /** Reconnect-and-resend cycles performed so far. */
    uint64_t retries() const { return retries_; }

  private:
    void connect();

    std::string socketPath_;
    uint16_t tcpPort_;
    RetryConfig retry_;
    std::unique_ptr<Client> client_;
    uint64_t retries_ = 0;
};

/** Closed-loop load generation configuration. */
struct LoadGenConfig
{
    std::string socketPath;
    /** TCP fallback when socketPath is empty. */
    uint16_t tcpPort = 0;
    uint32_t clients = 1;
    /** Requests issued per client thread. */
    uint32_t requests = 1;
    /**
     * Template request; `id` is rewritten per request, and when the
     * template carries no `trace` member each request gets a fresh
     * obs::newTraceId() so client and server spans correlate.
     */
    Request request;
    /** Per-call reconnect policy (failover rides on this). */
    RetryConfig retry;
};

/** Aggregated results of one load-generation run. */
struct LoadGenReport
{
    uint64_t attempted = 0;
    uint64_t succeeded = 0;
    /** Protocol-level errors by type (overloaded, timeout, ...). */
    uint64_t failed = 0;
    /** Transport-level failures (connect/IO) after all retries. */
    uint64_t transportErrors = 0;
    /** Reconnect-and-resend cycles absorbed by the retry policy. */
    uint64_t retries = 0;
    double wallSeconds = 0.0;
    double throughputRps = 0.0;
    uint64_t minUs = 0, maxUs = 0;
    double meanUs = 0.0;
    uint64_t p50Us = 0, p95Us = 0, p99Us = 0;
    /**
     * Failures by cause: protocol error types (overloaded, timeout,
     * ...) plus "transport" for connect/IO failures. Empty on a
     * clean run.
     */
    std::map<std::string, uint64_t> errorsByType;

    /** Human-readable multi-line summary. */
    std::string text() const;
    void writeJson(JsonWriter &w) const;
};

/**
 * Run the closed loop: each client thread opens its own connection
 * and issues its requests back to back; latencies are aggregated
 * across threads and wall time covers the whole fleet.
 */
LoadGenReport runLoadGen(const LoadGenConfig &config);

} // namespace serve
} // namespace elag

#endif // ELAG_SERVE_CLIENT_HH
