/**
 * @file
 * Client side of the elagd protocol: a single-connection blocking
 * Client, and a closed-loop LoadGen that drives many Clients from
 * concurrent threads and reports throughput and latency quantiles.
 *
 * Both are used by the elag_client tool and by the in-process
 * end-to-end tests, which connect to a Server running in the same
 * process.
 */

#ifndef ELAG_SERVE_CLIENT_HH
#define ELAG_SERVE_CLIENT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "serve/socket.hh"

namespace elag {

class JsonWriter;

namespace serve {

/**
 * One blocking protocol connection. call() is strictly
 * request/response, matching the server's per-connection ordering.
 * Transport failures (connection refused, server hangup mid-call)
 * throw FatalError; protocol-level errors come back as a Response
 * with ok == false.
 */
class Client
{
  public:
    static Client connectTo(const std::string &socket_path);
    static Client connectTcp(uint16_t port);

    Response call(const Request &request);

    Client(Client &&) = default;
    Client &operator=(Client &&) = default;

  private:
    explicit Client(Fd fd) : fd_(std::move(fd)) {}
    Fd fd_;
};

/** Closed-loop load generation configuration. */
struct LoadGenConfig
{
    std::string socketPath;
    /** TCP fallback when socketPath is empty. */
    uint16_t tcpPort = 0;
    uint32_t clients = 1;
    /** Requests issued per client thread. */
    uint32_t requests = 1;
    /**
     * Template request; `id` is rewritten per request, and when the
     * template carries no `trace` member each request gets a fresh
     * obs::newTraceId() so client and server spans correlate.
     */
    Request request;
};

/** Aggregated results of one load-generation run. */
struct LoadGenReport
{
    uint64_t attempted = 0;
    uint64_t succeeded = 0;
    /** Protocol-level errors by type (overloaded, timeout, ...). */
    uint64_t failed = 0;
    /** Transport-level failures (connect/IO). */
    uint64_t transportErrors = 0;
    double wallSeconds = 0.0;
    double throughputRps = 0.0;
    uint64_t minUs = 0, maxUs = 0;
    double meanUs = 0.0;
    uint64_t p50Us = 0, p95Us = 0, p99Us = 0;
    /**
     * Failures by cause: protocol error types (overloaded, timeout,
     * ...) plus "transport" for connect/IO failures. Empty on a
     * clean run.
     */
    std::map<std::string, uint64_t> errorsByType;

    /** Human-readable multi-line summary. */
    std::string text() const;
    void writeJson(JsonWriter &w) const;
};

/**
 * Run the closed loop: each client thread opens its own connection
 * and issues its requests back to back; latencies are aggregated
 * across threads and wall time covers the whole fleet.
 */
LoadGenReport runLoadGen(const LoadGenConfig &config);

} // namespace serve
} // namespace elag

#endif // ELAG_SERVE_CLIENT_HH
