/**
 * @file
 * Work-verb execution for the serving daemon.
 *
 * The Router turns an admitted request into its result document:
 * compile the shipped mini-C source, and for `simulate` run baseline
 * + configured machine through the shared, bounded sim::RunCache —
 * so repeated workloads across requests (and across clients) are
 * served from cache. Per-request wall-clock deadlines ride the
 * existing sim::Watchdog / SimTimeoutError path.
 *
 * Errors propagate as the existing exception taxonomy: FatalError
 * (bad program or configuration), SimTimeoutError (deadline), and
 * PanicError (model bug); the server maps them onto typed protocol
 * errors.
 */

#ifndef ELAG_SERVE_ROUTER_HH
#define ELAG_SERVE_ROUTER_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "cache/persistent_store.hh"
#include "pipeline/config.hh"
#include "serve/protocol.hh"

namespace elag {

namespace sim {
struct CompiledProgram;
struct Watchdog;
} // namespace sim

namespace serve {

/** Router policy knobs (from elagd flags). */
struct RouterConfig
{
    /** Deadline applied when a request carries none; 0 = unlimited. */
    uint64_t defaultDeadlineMs = 0;
    /**
     * Durable simulate-result cache (not owned); null disables
     * persistence. Hits return the stored rendered stats document —
     * byte-identical to `elagc --json-stats` by construction — and
     * skip compilation and simulation entirely.
     */
    cache::PersistentStore *persist = nullptr;
    /**
     * Durable mid-request checkpoints for simulate work: when set,
     * each simulate run snapshots to DIR/req-<key>.ckpt (keyed by
     * the same content hash as the persistent tier) and a restarted
     * worker handed the same request resumes from the last snapshot
     * instead of replaying the whole interval. Empty disables.
     */
    std::string checkpointDir;
    /** Retires between request snapshots (0 = the 5M default). */
    uint64_t checkpointEvery = 0;
};

class Router
{
  public:
    explicit Router(const RouterConfig &config = {}) : cfg(config) {}

    /**
     * Execute one work verb and return its result JSON document.
     * Throws FatalError / SimTimeoutError / PanicError on failure;
     * the caller owns mapping those to protocol errors.
     */
    std::string execute(const Request &request) const;

    /**
     * Machine configuration for a request, mirroring elagc's
     * --machine/--table/--regs/--selection semantics exactly (so a
     * served simulate matches the single-shot CLI byte for byte).
     * Throws FatalError on an unknown selection policy.
     */
    static pipeline::MachineConfig machineFor(const Request &request);

  private:
    /**
     * Simulate with durable mid-run snapshots (checkpointDir set):
     * resumes a predecessor worker's snapshot when one exists, falls
     * back to a clean run on any unusable snapshot.
     */
    std::string checkpointedSimulate(const Request &request,
                                     const sim::CompiledProgram &prog,
                                     const sim::Watchdog &watchdog)
        const;

    /** `generate`: spec -> rendered scenario document, memoized. */
    std::string generate(const Request &request,
                         uint64_t persist_key) const;

    RouterConfig cfg;

    /**
     * Bounded in-process memo of rendered generate documents, keyed
     * by the persistent-tier content key. Generation is cheap, but
     * the memo makes repeat hits observable (and byte-stable) even
     * without a --cache-dir durable tier behind the router.
     */
    mutable std::mutex genMu;
    mutable std::map<uint64_t, std::string> genMemo;
};

} // namespace serve
} // namespace elag

#endif // ELAG_SERVE_ROUTER_HH
