#include "serve/socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "support/logging.hh"

namespace elag {
namespace serve {

void
ignoreSigpipe()
{
    // write(2) to a half-closed socket then raises EPIPE instead of
    // delivering a fatal signal.
    std::signal(SIGPIPE, SIG_IGN);
}

void
Fd::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

namespace {

/** Fill a sockaddr_un; throws FatalError when the path is too long. */
sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        fatal("socket path '%s' is empty or too long (max %zu bytes)",
              path.c_str(), sizeof(addr.sun_path) - 1);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

sockaddr_in
loopbackAddress(uint16_t port)
{
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
}

} // anonymous namespace

Fd
listenUnix(const std::string &path, int backlog)
{
    sockaddr_un addr = unixAddress(path);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        fatal("socket(AF_UNIX): %s", std::strerror(errno));
    // A stale socket file from a crashed predecessor would make bind
    // fail with EADDRINUSE; remove it. A live daemon still holds the
    // listening socket, so its clients are unaffected (but a new
    // daemon on the same path steals future connections — operators
    // give each instance its own path).
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        fatal("bind('%s'): %s", path.c_str(), std::strerror(errno));
    }
    if (::listen(fd.get(), backlog) != 0)
        fatal("listen('%s'): %s", path.c_str(), std::strerror(errno));
    return fd;
}

Fd
listenTcpLoopback(uint16_t port, int backlog)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        fatal("socket(AF_INET): %s", std::strerror(errno));
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr = loopbackAddress(port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        fatal("bind(127.0.0.1:%u): %s", static_cast<unsigned>(port),
              std::strerror(errno));
    }
    if (::listen(fd.get(), backlog) != 0) {
        fatal("listen(127.0.0.1:%u): %s", static_cast<unsigned>(port),
              std::strerror(errno));
    }
    return fd;
}

Fd
connectUnix(const std::string &path)
{
    sockaddr_un addr = unixAddress(path);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        fatal("socket(AF_UNIX): %s", std::strerror(errno));
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        fatal("connect('%s'): %s", path.c_str(),
              std::strerror(errno));
    return fd;
}

Fd
connectTcpLoopback(uint16_t port)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        fatal("socket(AF_INET): %s", std::strerror(errno));
    sockaddr_in addr = loopbackAddress(port);
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        fatal("connect(127.0.0.1:%u): %s",
              static_cast<unsigned>(port), std::strerror(errno));
    return fd;
}

int
acceptOn(int listen_fd)
{
    for (;;) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno != EINTR)
            return -1;
    }
}

IoStatus
readFull(int fd, void *buf, size_t n, size_t *got)
{
    size_t done = 0;
    char *p = static_cast<char *>(buf);
    while (done < n) {
        ssize_t r = ::read(fd, p + done, n - done);
        if (r > 0) {
            done += static_cast<size_t>(r);
            continue;
        }
        if (r == 0) {
            if (got)
                *got = done;
            return done == 0 ? IoStatus::Eof : IoStatus::Short;
        }
        if (errno == EINTR)
            continue;
        if (got)
            *got = done;
        return IoStatus::Error;
    }
    if (got)
        *got = done;
    return IoStatus::Ok;
}

IoStatus
readFullTimed(int fd, void *buf, size_t n, uint64_t timeout_ms,
              size_t *got)
{
    if (timeout_ms == 0)
        return readFull(fd, buf, n, got);

    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    size_t done = 0;
    char *p = static_cast<char *>(buf);
    while (done < n) {
        auto left = std::chrono::duration_cast<
                        std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
        if (left <= 0) {
            if (got)
                *got = done;
            return IoStatus::Timeout;
        }
        struct pollfd pfd = {fd, POLLIN, 0};
        int rv = ::poll(&pfd, 1,
                        static_cast<int>(std::min<long long>(
                            left, 1 << 30)));
        if (rv < 0) {
            if (errno == EINTR)
                continue;
            if (got)
                *got = done;
            return IoStatus::Error;
        }
        if (rv == 0)
            continue; // recheck the deadline
        ssize_t r = ::read(fd, p + done, n - done);
        if (r > 0) {
            done += static_cast<size_t>(r);
            continue;
        }
        if (r == 0) {
            if (got)
                *got = done;
            return done == 0 ? IoStatus::Eof : IoStatus::Short;
        }
        if (errno == EINTR)
            continue;
        if (got)
            *got = done;
        return IoStatus::Error;
    }
    if (got)
        *got = done;
    return IoStatus::Ok;
}

bool
writeFull(int fd, const void *buf, size_t n)
{
    size_t done = 0;
    const char *p = static_cast<const char *>(buf);
    while (done < n) {
        ssize_t w = ::write(fd, p + done, n - done);
        if (w > 0) {
            done += static_cast<size_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        return false; // EPIPE (peer gone), or a real error
    }
    return true;
}

} // namespace serve
} // namespace elag
