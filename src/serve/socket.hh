/**
 * @file
 * Socket plumbing for the serving daemon and its clients.
 *
 * Thin, error-hardened wrappers over the POSIX socket calls: RAII
 * file descriptors, Unix-domain and TCP-loopback listeners and
 * connectors, and full-buffer read/write helpers that retry EINTR
 * and resume short transfers. SIGPIPE is ignored process-wide by
 * ignoreSigpipe(), so a peer that disconnects mid-response surfaces
 * as an EPIPE write error on one connection instead of killing the
 * server.
 *
 * All setup helpers (the listen and connect family) throw FatalError
 * with a descriptive message; the data-path helpers return status
 * codes so
 * per-connection code can decide between closing quietly and
 * reporting.
 */

#ifndef ELAG_SERVE_SOCKET_HH
#define ELAG_SERVE_SOCKET_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace elag {
namespace serve {

/**
 * Ignore SIGPIPE for the whole process (idempotent). Both elagd and
 * elag_client call this before touching a socket; library users that
 * embed a Server get it from Server::start().
 */
void ignoreSigpipe();

/** Movable owner of one file descriptor; closes on destruction. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Give up ownership without closing. */
    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /** Close (if open) and adopt @p fd. */
    void reset(int fd = -1);

  private:
    int fd_ = -1;
};

/**
 * Bind and listen on a Unix-domain socket at @p path, replacing any
 * stale socket file left by a previous run. Throws FatalError on
 * failure (path too long for sun_path, bind/listen errors).
 */
Fd listenUnix(const std::string &path, int backlog = 64);

/** Bind and listen on 127.0.0.1:@p port. Throws FatalError. */
Fd listenTcpLoopback(uint16_t port, int backlog = 64);

/** Connect to a Unix-domain socket. Throws FatalError. */
Fd connectUnix(const std::string &path);

/** Connect to 127.0.0.1:@p port. Throws FatalError. */
Fd connectTcpLoopback(uint16_t port);

/** accept(2) with EINTR retry; returns -1 on any other error. */
int acceptOn(int listen_fd);

/** How a full-buffer read ended. */
enum class IoStatus
{
    Ok,      ///< all n bytes transferred
    Eof,     ///< clean EOF before the first byte
    Short,   ///< EOF after some bytes (peer died mid-message)
    Error,   ///< read/write error (errno-level)
    Timeout, ///< deadline expired before all n bytes arrived
};

/**
 * Read exactly @p n bytes, retrying EINTR and short reads. On Short
 * or Error, @p got (when non-null) holds the bytes transferred.
 */
IoStatus readFull(int fd, void *buf, size_t n, size_t *got = nullptr);

/**
 * readFull with a wall-clock budget: gives up with IoStatus::Timeout
 * when @p timeout_ms elapses before all @p n bytes arrive (the bytes
 * read so far are in the buffer and counted in @p got). A budget of
 * 0 means no deadline — identical to readFull. The fd stays in
 * blocking mode; readiness is awaited with poll(2), so only readable
 * fds are ever read.
 */
IoStatus readFullTimed(int fd, void *buf, size_t n,
                       uint64_t timeout_ms, size_t *got = nullptr);

/**
 * Write exactly @p n bytes, retrying EINTR and short writes.
 * @return true when everything was written.
 */
bool writeFull(int fd, const void *buf, size_t n);

} // namespace serve
} // namespace elag

#endif // ELAG_SERVE_SOCKET_HH
