#include "serve/router.hh"

#include "ckpt/checkpoint.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "serve/routing.hh"
#include "sim/ckpt_run.hh"
#include "sim/run_cache.hh"
#include "sim/simulator.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "workloads/synthetic/generator.hh"

namespace elag {
namespace serve {

namespace {

const char *
specName(isa::LoadSpec spec)
{
    switch (spec) {
      case isa::LoadSpec::Normal:
        return "ld_n";
      case isa::LoadSpec::Predict:
        return "ld_p";
      case isa::LoadSpec::EarlyCalc:
        return "ld_e";
    }
    return "?";
}

sim::CompiledProgram
compileRequest(const Request &request)
{
    if (request.source.empty())
        fatal("verb '%s' requires a 'source' member",
              request.verb.c_str());
    sim::CompileOptions copts;
    if (request.noOpt)
        copts.opt = opt::OptConfig::noneEnabled();
    copts.runClassifier = !request.noClassify;
    return sim::compile(request.source, copts);
}

void
writeProgramBlock(JsonWriter &w, const Request &request,
                  const sim::CompiledProgram &prog)
{
    w.key("program").beginObject();
    w.field("file", request.file);
    w.field("instructions",
            static_cast<uint64_t>(prog.code.program.code.size()));
    w.key("static_loads").beginObject();
    w.field("total", prog.classStats.total());
    w.field("ld_n", prog.classStats.numNormal);
    w.field("ld_p", prog.classStats.numPredict);
    w.field("ld_e", prog.classStats.numEarlyCalc);
    w.endObject();
    w.endObject();
}

/** Generate-memo hit/miss counters, registered on first use. */
obs::Counter &
generateMemoCounter(bool hit)
{
    static obs::Counter &hits = obs::Registry::process().counter(
        "elag_serve_generate_memo_total",
        "Generate-verb memo lookups, by outcome.",
        {{"outcome", "hit"}});
    static obs::Counter &misses = obs::Registry::process().counter(
        "elag_serve_generate_memo_total",
        "Generate-verb memo lookups, by outcome.",
        {{"outcome", "miss"}});
    return hit ? hits : misses;
}

} // anonymous namespace

pipeline::MachineConfig
Router::machineFor(const Request &request)
{
    pipeline::MachineConfig cfg =
        request.machine == "baseline"
            ? pipeline::MachineConfig::baseline()
            : pipeline::MachineConfig::proposed();
    if (request.table) {
        cfg.addressTableEnabled = true;
        cfg.addressTableEntries = request.table;
    }
    if (request.regs) {
        cfg.earlyCalcEnabled = true;
        cfg.registerCacheSize = request.regs;
    }
    if (request.selection == "compiler")
        cfg.selection = pipeline::SelectionPolicy::CompilerSpec;
    else if (request.selection == "ev")
        cfg.selection = pipeline::SelectionPolicy::EvSelect;
    else if (request.selection == "all-predict")
        cfg.selection = pipeline::SelectionPolicy::AllPredict;
    else if (request.selection == "all-early")
        cfg.selection = pipeline::SelectionPolicy::AllEarlyCalc;
    else if (!request.selection.empty())
        fatal("unknown selection policy '%s'",
              request.selection.c_str());
    return cfg;
}

std::string
Router::checkpointedSimulate(const Request &request,
                             const sim::CompiledProgram &prog,
                             const sim::Watchdog &watchdog) const
{
    // Keyed by the same content hash as the persistent tier, so the
    // retried request a supervisor re-routes after a worker death
    // lands on the snapshot its predecessor left behind. Bypasses
    // the in-memory RunCache: a checkpointed run owns its telemetry
    // end to end so the resumed document stays byte-identical.
    sim::CkptPolicy policy;
    policy.path = formatString(
        "%s/req-%016llx.ckpt", cfg.checkpointDir.c_str(),
        static_cast<unsigned long long>(persistKey(request)));
    policy.everyRetires = cfg.checkpointEvery;
    std::string resume =
        ckpt::fileExists(policy.path) ? policy.path : std::string();

    pipeline::LoadTelemetry telemetry;
    sim::CkptStatsOutcome out;
    try {
        out = sim::runTimedCheckpointed(
            prog, machineFor(request),
            pipeline::MachineConfig::baseline(), request.maxInst,
            &telemetry, nullptr, nullptr, watchdog, policy, resume);
    } catch (const ckpt::CkptError &e) {
        // A snapshot this worker cannot use (torn, corrupt, other
        // run) is never fatal to the request: re-run clean and let
        // the fresh snapshots overwrite it.
        warn("unusable request checkpoint '%s' (%s: %s); re-running "
             "clean",
             policy.path.c_str(), ckpt::name(e.kind()), e.what());
        telemetry.reset();
        out = sim::runTimedCheckpointed(
            prog, machineFor(request),
            pipeline::MachineConfig::baseline(), request.maxInst,
            &telemetry, nullptr, nullptr, watchdog, policy);
    }
    if (out.resumed)
        inform("simulate request resumed from '%s'",
               policy.path.c_str());
    return sim::statsReportJson(request.file, request.machine,
                                request.selection, prog, out.base,
                                out.timed, telemetry);
}

std::string
Router::execute(const Request &request) const
{
    // The durable tier answers before anything is compiled: simulate
    // and generate results are pure functions of the request content,
    // so a persisted document (stored post-render) is the byte-exact
    // answer, at the cost of one disk read.
    uint64_t persist_key = 0;
    bool cacheable = request.verb == "simulate" ||
                     request.verb == "generate";
    if (cfg.persist && cacheable) {
        persist_key = persistKey(request);
        std::string doc;
        if (cfg.persist->lookup(persist_key, doc))
            return doc;
    }

    if (request.verb == "generate")
        return generate(request, persist_key);

    sim::CompiledProgram prog = compileRequest(request);

    if (request.verb == "compile") {
        JsonWriter w;
        w.beginObject();
        writeProgramBlock(w, request, prog);
        w.endObject();
        return w.str();
    }

    if (request.verb == "classify") {
        JsonWriter w;
        w.beginObject();
        writeProgramBlock(w, request, prog);
        w.key("loads").beginArray();
        for (const auto &entry : prog.specOf.entries()) {
            w.beginObject();
            w.field("load_id", entry.first);
            w.field("spec", specName(entry.second));
            w.endObject();
        }
        w.endArray();
        w.endObject();
        return w.str();
    }

    if (request.verb == "simulate") {
        obs::Span span("simulate", "serve");
        if (!request.trace.empty())
            span.arg("trace_id", request.trace);
        sim::Watchdog watchdog;
        watchdog.maxWallMs = request.deadlineMs
                                 ? request.deadlineMs
                                 : cfg.defaultDeadlineMs;
        std::string doc;
        if (!cfg.checkpointDir.empty()) {
            doc = checkpointedSimulate(request, prog, watchdog);
        } else {
            auto &cache = sim::RunCache::instance();
            // Identical structure to elagc --json-stats: a clean
            // baseline run plus the configured machine observed by
            // load telemetry, both shareable across requests via the
            // cache.
            sim::TimedResult base =
                cache.run(prog, pipeline::MachineConfig::baseline(),
                          request.maxInst, watchdog);
            sim::RunCache::Report report = cache.runReport(
                prog, machineFor(request), request.maxInst, watchdog);
            doc = sim::statsReportJson(request.file, request.machine,
                                       request.selection, prog, base,
                                       report.timed,
                                       report.telemetry);
        }
        if (cfg.persist)
            cfg.persist->append(persist_key, doc);
        return doc;
    }

    fatal("unhandled work verb '%s'", request.verb.c_str());
}

std::string
Router::generate(const Request &request, uint64_t persist_key) const
{
    if (request.spec.empty())
        fatal("verb 'generate' requires a 'spec' member");
    if (persist_key == 0)
        persist_key = persistKey(request);

    {
        std::lock_guard<std::mutex> lock(genMu);
        auto it = genMemo.find(persist_key);
        if (it != genMemo.end()) {
            generateMemoCounter(true).inc();
            return it->second;
        }
    }
    generateMemoCounter(false).inc();

    workloads::synthetic::ScenarioSpec spec;
    std::string error;
    if (!workloads::synthetic::parseScenarioSpec(request.spec, spec,
                                                 error))
        fatal("bad scenario spec: %s", error.c_str());

    obs::Span span("generate", "serve");
    if (!request.trace.empty())
        span.arg("trace_id", request.trace);
    workloads::synthetic::GeneratedScenario gen =
        workloads::synthetic::generateScenario(spec);

    JsonWriter w(0);
    w.beginObject();
    w.field("name", gen.name);
    w.field("family", workloads::synthetic::name(spec.family));
    w.field("content_hash", gen.contentHash);
    w.key("spec").rawValue(spec.toJson());
    w.field("source", gen.source);
    w.endObject();
    std::string doc = w.str();

    {
        std::lock_guard<std::mutex> lock(genMu);
        // Bound the memo: generated documents are small, but the
        // spec space is unbounded.
        if (genMemo.size() >= 256)
            genMemo.erase(genMemo.begin());
        genMemo.emplace(persist_key, doc);
    }
    if (cfg.persist)
        cfg.persist->append(persist_key, doc);
    return doc;
}

} // namespace serve
} // namespace elag
