/**
 * @file
 * Content-hash request routing for the sharded serving tier.
 *
 * The supervisor never compiles or simulates untrusted source — it
 * picks a shard from a hash of the request's program text and proxies
 * the frame. Hashing the content (not the connection) gives two
 * properties the supervision tree leans on:
 *
 *  - Affinity: the same program lands on the same shard, so that
 *    shard's in-memory RunCache stays hot for repeated workloads.
 *  - Poison tracking: a request that keeps killing workers keeps
 *    producing the same hash, so the supervisor can count crashes
 *    per content hash and quarantine repeat offenders instead of
 *    letting one bad program cycle every shard through restarts.
 *
 * Work verbs are pure functions of the request, so failover is safe:
 * when the primary shard is down (or dies mid-request), the request
 * may be retried verbatim on a sibling. failoverOrder() fixes the
 * retry sequence deterministically per hash.
 */

#ifndef ELAG_SERVE_ROUTING_HH
#define ELAG_SERVE_ROUTING_HH

#include <cstdint>
#include <vector>

#include "serve/protocol.hh"

namespace elag {
namespace serve {

/**
 * FNV-1a of the request's program text: the routing identity of a
 * work request. Control verbs (no source) all hash alike and are
 * answered by the supervisor itself, never routed.
 */
uint64_t routingHash(const Request &request);

/**
 * Content key for the persistent result cache: FNV-1a over every
 * request field that affects the simulate result document (source,
 * file label, machine knobs, instruction budget) — and the verb, so
 * verbs never collide. Deadlines and trace IDs are excluded: they
 * affect whether a result arrives, not what it is.
 */
uint64_t persistKey(const Request &request);

/** Primary shard for @p hash among @p shards workers (shards >= 1). */
uint32_t shardFor(uint64_t hash, uint32_t shards);

/**
 * The deterministic retry sequence for @p hash: the primary shard
 * first, then every sibling exactly once. Size == @p shards.
 */
std::vector<uint32_t> failoverOrder(uint64_t hash, uint32_t shards);

} // namespace serve
} // namespace elag

#endif // ELAG_SERVE_ROUTING_HH
