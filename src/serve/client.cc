#include "serve/client.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <random>
#include <thread>

#include "obs/span.hh"
#include "serve/framing.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace elag {
namespace serve {

Client
Client::connectTo(const std::string &socket_path)
{
    ignoreSigpipe();
    return Client(connectUnix(socket_path));
}

Client
Client::connectTcp(uint16_t port)
{
    ignoreSigpipe();
    return Client(connectTcpLoopback(port));
}

Response
Client::call(const Request &request)
{
    // The client-side view of the same request the server spans:
    // shared trace_id, different clock — the gap between the two
    // durations is transport + queueing.
    obs::Span span("request", "client");
    span.arg("verb", request.verb);
    if (!request.trace.empty())
        span.arg("trace_id", request.trace);

    if (!writeFrame(fd_.get(), buildRequestDoc(request)))
        fatal("elag_client: server hung up while sending request");

    std::string payload;
    FrameStatus status = readFrame(fd_.get(), payload);
    if (status != FrameStatus::Ok)
        fatal("elag_client: reading response failed: %s",
              name(status));

    Response response;
    std::string error;
    if (!parseResponse(payload, response, error))
        fatal("elag_client: malformed response: %s", error.c_str());
    return response;
}

ReconnectingClient::ReconnectingClient(const std::string &path,
                                       uint16_t tcp_port,
                                       const RetryConfig &retry)
    : socketPath_(path), tcpPort_(tcp_port), retry_(retry)
{
    elag_assert(retry_.maxAttempts >= 1);
}

void
ReconnectingClient::connect()
{
    Client fresh = socketPath_.empty()
                       ? Client::connectTcp(tcpPort_)
                       : Client::connectTo(socketPath_);
    client_.reset(new Client(std::move(fresh)));
}

Response
ReconnectingClient::call(const Request &request)
{
    // Thread-local so concurrent loadgen clients don't share (and
    // serialize on) one generator; jitter decorrelates the retry
    // storms of clients that all saw the same worker die.
    static thread_local std::mt19937_64 rng{std::random_device{}()};

    for (uint32_t attempt = 1;; ++attempt) {
        try {
            if (!client_)
                connect();
            return client_->call(request);
        } catch (const FatalError &) {
            // Connection refused (server restarting) or the stream
            // broke mid-call (worker died). The dead connection is
            // useless either way.
            client_.reset();
            if (attempt >= retry_.maxAttempts)
                throw;
            ++retries_;
            uint64_t delay = retry_.baseDelayMs;
            for (uint32_t i = 1;
                 i < attempt && delay < retry_.capDelayMs; ++i) {
                delay *= 2;
            }
            delay = std::min(delay, retry_.capDelayMs);
            // Full jitter: anywhere in [delay/2, delay].
            uint64_t floor = delay / 2;
            delay = floor + (delay > floor
                                 ? rng() % (delay - floor + 1)
                                 : 0);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
    }
}

namespace {

uint64_t
percentile(const std::vector<uint64_t> &sorted, unsigned pct)
{
    if (sorted.empty())
        return 0;
    // Nearest-rank definition: smallest value covering pct percent.
    size_t rank = (pct * sorted.size() + 99) / 100;
    if (rank == 0)
        rank = 1;
    return sorted[std::min(rank, sorted.size()) - 1];
}

} // anonymous namespace

std::string
LoadGenReport::text() const
{
    std::string out;
    out += formatString("requests:   %llu attempted, %llu ok, "
                        "%llu error, %llu transport, "
                        "%llu retries\n",
                        (unsigned long long)attempted,
                        (unsigned long long)succeeded,
                        (unsigned long long)failed,
                        (unsigned long long)transportErrors,
                        (unsigned long long)retries);
    out += formatString("wall:       %.3f s\n", wallSeconds);
    out += formatString("throughput: %.1f req/s\n", throughputRps);
    out += formatString("latency:    mean %.0f us, min %llu us, "
                        "max %llu us\n",
                        meanUs, (unsigned long long)minUs,
                        (unsigned long long)maxUs);
    out += formatString("quantiles:  p50 %llu us, p95 %llu us, "
                        "p99 %llu us\n",
                        (unsigned long long)p50Us,
                        (unsigned long long)p95Us,
                        (unsigned long long)p99Us);
    if (!errorsByType.empty()) {
        out += "errors:    ";
        for (const auto &kv : errorsByType)
            out += formatString(" %s=%llu", kv.first.c_str(),
                                (unsigned long long)kv.second);
        out += "\n";
    }
    return out;
}

void
LoadGenReport::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("attempted", attempted);
    w.field("succeeded", succeeded);
    w.field("failed", failed);
    w.field("transport_errors", transportErrors);
    w.field("retries", retries);
    w.field("wall_seconds", wallSeconds);
    w.field("throughput_rps", throughputRps);
    w.key("latency_us").beginObject();
    w.field("mean", meanUs);
    w.field("min", minUs);
    w.field("max", maxUs);
    w.field("p50", p50Us);
    w.field("p95", p95Us);
    w.field("p99", p99Us);
    w.endObject();
    w.key("errors_by_type").beginObject();
    for (const auto &kv : errorsByType)
        w.field(kv.first, kv.second);
    w.endObject();
    w.endObject();
}

LoadGenReport
runLoadGen(const LoadGenConfig &config)
{
    elag_assert(config.clients > 0);

    LoadGenReport report;
    std::mutex mu;
    std::vector<uint64_t> latencies;
    std::atomic<uint64_t> next_id{1};

    auto started = std::chrono::steady_clock::now();

    std::vector<std::thread> threads;
    threads.reserve(config.clients);
    for (uint32_t c = 0; c < config.clients; ++c) {
        threads.emplace_back([&] {
            uint64_t ok = 0, err = 0, transport = 0, attempted = 0;
            std::map<std::string, uint64_t> localErrors;
            std::vector<uint64_t> local;
            local.reserve(config.requests);
            // The reconnecting client absorbs worker deaths and
            // supervisor restarts: a request whose connection broke
            // is resent on a fresh one, and only a request that
            // exhausted every attempt counts as a transport error —
            // the thread then moves on to its next request rather
            // than abandoning the run.
            ReconnectingClient client(config.socketPath,
                                      config.tcpPort, config.retry);
            for (uint32_t i = 0; i < config.requests; ++i) {
                Request request = config.request;
                request.id = next_id.fetch_add(1);
                if (request.trace.empty())
                    request.trace = obs::newTraceId();
                ++attempted;
                auto t0 = std::chrono::steady_clock::now();
                try {
                    Response response = client.call(request);
                    uint64_t us =
                        std::chrono::duration_cast<
                            std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
                    local.push_back(us);
                    if (response.ok) {
                        ++ok;
                    } else {
                        ++err;
                        ++localErrors[response.errorType.empty()
                                          ? "unknown"
                                          : response.errorType];
                    }
                } catch (const FatalError &) {
                    ++transport;
                    ++localErrors["transport"];
                }
            }
            std::lock_guard<std::mutex> lock(mu);
            report.attempted += attempted;
            report.succeeded += ok;
            report.failed += err;
            report.transportErrors += transport;
            report.retries += client.retries();
            for (const auto &kv : localErrors)
                report.errorsByType[kv.first] += kv.second;
            latencies.insert(latencies.end(), local.begin(),
                             local.end());
        });
    }
    for (std::thread &t : threads)
        t.join();

    report.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - started)
            .count();

    std::sort(latencies.begin(), latencies.end());
    if (!latencies.empty()) {
        uint64_t sum = 0;
        for (uint64_t us : latencies)
            sum += us;
        report.minUs = latencies.front();
        report.maxUs = latencies.back();
        report.meanUs =
            static_cast<double>(sum) / latencies.size();
        report.p50Us = percentile(latencies, 50);
        report.p95Us = percentile(latencies, 95);
        report.p99Us = percentile(latencies, 99);
    }
    if (report.wallSeconds > 0.0)
        report.throughputRps =
            (report.succeeded + report.failed) / report.wallSeconds;
    return report;
}

} // namespace serve
} // namespace elag
