/**
 * @file
 * Shard-worker lifecycle for the supervision tree.
 *
 * The ShardManager owns N worker processes (re-exec'd elagd images in
 * --shard-worker mode), each listening on its own Unix socket next to
 * the supervisor's. A monitor thread keeps them honest:
 *
 *  - Crash detection: non-blocking waitpid catches workers that
 *    exited or were killed; each death schedules a respawn.
 *  - Hang detection: periodic `health` heartbeats with a bounded
 *    frame read; a worker that accepts but never answers is SIGKILLed
 *    (whole process group) and respawned. The supervisor's proxy path
 *    reports request-deadline hangs the same way via killShard().
 *  - Restart backoff: respawns are delayed exponentially per crash
 *    streak (RestartPolicy::delayMs); a worker that stays up long
 *    enough resets its streak.
 *  - Crash-loop circuit breaker: a streak past the threshold parks
 *    the shard (state Broken) for a cooldown instead of burning CPU
 *    on futile respawns; after the cooldown one probe respawn runs
 *    and either closes the breaker or re-trips it.
 *
 * Poison-request quarantine also lives here: the supervisor records
 * each routing hash whose request was in flight when a worker died.
 * A hash that has killed workers `quarantineThreshold` times is
 * quarantined — further requests with that hash are rejected with a
 * typed error before they reach a shard, so one poisonous program
 * cannot crash-loop the whole fleet.
 *
 * RestartPolicy is a pure value type (no clocks, no processes) so
 * backoff and breaker arithmetic is unit-testable without spawning
 * anything.
 */

#ifndef ELAG_SERVE_SHARD_HH
#define ELAG_SERVE_SHARD_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "support/subprocess.hh"

namespace elag {
namespace serve {

/** Backoff + circuit-breaker arithmetic, pure and unit-testable. */
struct RestartPolicy
{
    /** Respawn delay after the first crash of a streak. */
    uint64_t backoffBaseMs = 50;
    /** Upper bound on the exponential respawn delay. */
    uint64_t backoffCapMs = 5000;
    /** Uptime that resets a shard's crash streak. */
    uint64_t stableMs = 10'000;
    /** Streak length that trips the circuit breaker. */
    uint32_t breakerThreshold = 5;
    /** How long a tripped breaker parks the shard before a probe. */
    uint64_t breakerCooldownMs = 10'000;

    /**
     * Respawn delay for the @p streak-th consecutive crash
     * (streak >= 1): base doubled per extra crash, capped.
     */
    uint64_t delayMs(uint32_t streak) const;

    /** @return true when @p streak trips the circuit breaker. */
    bool
    breakerTrips(uint32_t streak) const
    {
        return streak >= breakerThreshold;
    }
};

/** Where one shard is in its lifecycle. */
enum class ShardState
{
    Down,     ///< not yet spawned (manager not started)
    Starting, ///< spawned, first heartbeat not yet answered
    Up,       ///< heartbeating; routable
    Backoff,  ///< crashed; respawn scheduled
    Broken,   ///< circuit breaker open; parked until cooldown ends
};

/** Stable lowercase name for stats documents and logs. */
const char *name(ShardState state);

struct ShardManagerConfig
{
    uint32_t shards = 0;
    /**
     * argv for one worker, built by the owner (tools/elagd bakes its
     * own re-exec flags here); the manager execs it verbatim.
     */
    std::function<std::vector<std::string>(
        uint32_t index, const std::string &socket_path)>
        workerArgv;
    /** Worker socket path for shard i (supervisor path + suffix). */
    std::function<std::string(uint32_t index)> socketPathFor;
    /** rlimit caps applied to every worker. */
    SpawnLimits limits;
    RestartPolicy restart;
    /** Crashes per routing hash before quarantine. */
    uint32_t quarantineThreshold = 3;
    /** Monitor tick. */
    uint64_t pollIntervalMs = 50;
    /** Gap between heartbeats to one Up shard. */
    uint64_t heartbeatIntervalMs = 500;
    /** Budget for one heartbeat round-trip before it counts missed. */
    uint64_t heartbeatTimeoutMs = 2000;
    /** Consecutive missed heartbeats that declare a hang. */
    uint32_t heartbeatMisses = 3;
    /** Spawn-to-first-heartbeat budget before a worker is hung. */
    uint64_t startupGraceMs = 10'000;
    /** SIGTERM-to-SIGKILL budget per worker at stop(). */
    uint64_t stopTimeoutMs = 5000;
};

class ShardManager
{
  public:
    explicit ShardManager(const ShardManagerConfig &config);
    ~ShardManager();

    ShardManager(const ShardManager &) = delete;
    ShardManager &operator=(const ShardManager &) = delete;

    /** Spawn every worker and start the monitor thread. */
    void start();

    /**
     * Stop monitoring and take the fleet down: SIGTERM each worker
     * (they drain in-flight work themselves), escalate to SIGKILL
     * past the stop timeout. Idempotent.
     */
    void stop();

    /** @return true when shard @p index is routable. */
    bool isUp(uint32_t index) const;

    /** Routable shard count (drives admission scaling). */
    uint32_t liveCount() const;

    std::string socketPathOf(uint32_t index) const;

    /**
     * A proxied request on @p index hit its deadline or found the
     * worker wedged: SIGKILL the worker's group now and respawn it
     * through the normal backoff path, attributed to @p reason
     * ("hang" from the proxy, "crash" variants come from the
     * monitor itself).
     */
    void killShard(uint32_t index, const std::string &reason);

    /**
     * Record that a request with routing hash @p hash was in flight
     * when its worker died. @return true when the hash is now (or
     * already was) quarantined.
     */
    bool recordPoison(uint64_t hash);

    /** @return true when @p hash has been quarantined. */
    bool isQuarantined(uint64_t hash) const;

    /** Total worker respawns, all reasons (stats + tests). */
    uint64_t restartsTotal() const;

    /** One shard's row in the supervisor's stats document. */
    struct ShardInfo
    {
        uint32_t index = 0;
        pid_t pid = -1;
        ShardState state = ShardState::Down;
        std::string socketPath;
        uint64_t restarts = 0;
        uint32_t crashStreak = 0;
    };

    std::vector<ShardInfo> snapshot() const;

    /** Quarantined hash count (stats). */
    size_t quarantineSize() const;

  private:
    struct Shard
    {
        pid_t pid = -1;
        ShardState state = ShardState::Down;
        std::string socketPath;
        uint64_t restarts = 0;
        uint32_t crashStreak = 0;
        /** monotonic ms of the last spawn. */
        uint64_t spawnedAtMs = 0;
        /** monotonic ms when Backoff/Broken may respawn. */
        uint64_t retryAtMs = 0;
        /** monotonic ms of the last heartbeat attempt. */
        uint64_t lastBeatMs = 0;
        uint32_t missedBeats = 0;
        /** Reason to attribute the next observed death to. */
        std::string pendingReason;
    };

    void monitorLoop();
    /** Spawn shard @p index. Lock held. */
    void spawnLocked(uint32_t index);
    /** Death bookkeeping: streak, backoff, breaker. Lock held. */
    void recordDeathLocked(uint32_t index, const std::string &reason,
                           uint64_t now_ms);
    /** One heartbeat round-trip; no lock held (blocking IO). */
    bool heartbeat(const std::string &socket_path) const;

    ShardManagerConfig cfg;

    mutable std::mutex mu;
    std::vector<Shard> shards_;
    std::unordered_map<uint64_t, uint32_t> poisonCounts_;
    std::atomic<uint64_t> restartsTotal_{0};
    std::atomic<uint32_t> liveCount_{0};

    std::thread monitor_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopped_{false};
};

} // namespace serve
} // namespace elag

#endif // ELAG_SERVE_SHARD_HH
