#include "serve/routing.hh"

#include "support/logging.hh"

namespace elag {
namespace serve {

namespace {

/** FNV-1a, the same hash family sim::RunCache keys with. */
struct Fnv1a
{
    uint64_t state = 1469598103934665603ull;

    void
    mixBytes(const void *data, size_t n)
    {
        const unsigned char *p =
            static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; ++i) {
            state ^= p[i];
            state *= 1099511628211ull;
        }
    }

    void
    mix(uint64_t v)
    {
        mixBytes(&v, sizeof(v));
    }

    void
    mixString(const std::string &s)
    {
        // Length-prefix so adjacent strings cannot alias
        // ("ab" + "c" vs "a" + "bc").
        mix(s.size());
        mixBytes(s.data(), s.size());
    }
};

} // anonymous namespace

uint64_t
routingHash(const Request &request)
{
    // `generate` requests carry their content in spec, not source;
    // mixing both keeps every work verb content-routable.
    Fnv1a h;
    h.mixBytes(request.source.data(), request.source.size());
    h.mixBytes(request.spec.data(), request.spec.size());
    return h.state;
}

uint64_t
persistKey(const Request &request)
{
    Fnv1a h;
    h.mixString(request.verb);
    h.mixString(request.source);
    h.mixString(request.spec);
    h.mixString(request.file);
    h.mixString(request.machine);
    h.mixString(request.selection);
    h.mix(request.table);
    h.mix(request.regs);
    h.mix(request.noOpt ? 1 : 0);
    h.mix(request.noClassify ? 1 : 0);
    h.mix(request.maxInst);
    return h.state;
}

uint32_t
shardFor(uint64_t hash, uint32_t shards)
{
    elag_assert(shards >= 1);
    return static_cast<uint32_t>(hash % shards);
}

std::vector<uint32_t>
failoverOrder(uint64_t hash, uint32_t shards)
{
    std::vector<uint32_t> order;
    order.reserve(shards);
    uint32_t primary = shardFor(hash, shards);
    for (uint32_t i = 0; i < shards; ++i)
        order.push_back((primary + i) % shards);
    return order;
}

} // namespace serve
} // namespace elag
