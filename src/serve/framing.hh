/**
 * @file
 * Length-prefixed message framing for the elagd wire protocol.
 *
 * Every message — request or response — travels as one frame:
 *
 *     +----------------+---------------------+
 *     | 4-byte big-    | payload bytes       |
 *     | endian length  | (one JSON document) |
 *     +----------------+---------------------+
 *
 * The length counts payload bytes only. Frames longer than the
 * receiver's limit are rejected with FrameStatus::Oversized without
 * reading the payload; the stream cannot be resynchronized after
 * that, so the connection is closed. A clean EOF between frames is
 * FrameStatus::Eof (normal connection close); EOF inside a frame is
 * Truncated (the peer died mid-message).
 */

#ifndef ELAG_SERVE_FRAMING_HH
#define ELAG_SERVE_FRAMING_HH

#include <cstddef>
#include <string>

namespace elag {
namespace serve {

/** Default payload cap: generous for source + stats documents. */
constexpr size_t kMaxFramePayload = 16u << 20;

/** How reading one frame ended. */
enum class FrameStatus
{
    Ok,        ///< payload delivered
    Eof,       ///< clean EOF at a frame boundary
    Truncated, ///< EOF inside the header or payload
    Oversized, ///< declared length exceeds the receiver's limit
    IoError,   ///< read(2) failed
    Timeout,   ///< deadline expired mid-frame (timed variant only)
};

/** Stable lowercase name for logging and error payloads. */
const char *name(FrameStatus status);

/**
 * Read one frame into @p payload (replaced, not appended). Blocks
 * until a full frame, EOF, or an error. On Oversized the declared
 * length has been consumed but no payload bytes; close the
 * connection.
 */
FrameStatus readFrame(int fd, std::string &payload,
                      size_t max_payload = kMaxFramePayload);

/**
 * readFrame with a wall-clock budget covering the whole frame
 * (header + payload); 0 means no deadline. On Timeout the stream is
 * mid-frame and cannot be resynchronized — close the connection.
 * The supervisor uses this to bound proxy reads so a hung shard is
 * detected instead of wedging a client connection forever.
 */
FrameStatus readFrameTimed(int fd, std::string &payload,
                           size_t max_payload, uint64_t timeout_ms);

/**
 * Write @p payload as one frame.
 * @return false when the peer is gone or write failed.
 */
bool writeFrame(int fd, const std::string &payload);

} // namespace serve
} // namespace elag

#endif // ELAG_SERVE_FRAMING_HH
