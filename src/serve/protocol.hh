/**
 * @file
 * The elagd request/response protocol.
 *
 * One frame carries one flat JSON document. Requests:
 *
 *     {"verb": "simulate", "id": 7, "file": "loop.c",
 *      "machine": "proposed", "max_inst": 500000000,
 *      "deadline_ms": 2000, "source": "int main() { ... }"}
 *
 * Verbs: `compile`, `classify`, `simulate` (work verbs that carry
 * mini-C source), `generate` (a work verb carrying a scenario-spec
 * document in `spec` instead of source), and `stats`, `health`,
 * `metrics`, `drain` (control verbs the server answers itself,
 * bypassing admission control so they work under overload). Scalar
 * members must precede `source`/`spec`: the parser reads them from
 * the prefix before the payload members, which keeps field
 * extraction immune to protocol-looking text inside the payload
 * being shipped.
 *
 * Requests may carry a `trace` member: an opaque correlation ID the
 * client mints (obs::newTraceId) and both sides attach to their
 * spans, so one request can be lined up across the client's and the
 * server's trace files. `metrics` requests may carry
 * `format: "prometheus"` to get the text exposition instead of JSON.
 *
 * Responses envelope either a result or a typed error:
 *
 *     {"ok": true,  "id": 7, "verb": "simulate", "result": {...}}
 *     {"ok": false, "id": 7, "verb": "simulate",
 *      "error": {"type": "overloaded", "message": "..."}}
 *
 * The result of `simulate` is spliced in verbatim from
 * sim::statsReportJson, so clients can recover a document
 * byte-identical to `elagc --json-stats` with jsonExtractRaw.
 */

#ifndef ELAG_SERVE_PROTOCOL_HH
#define ELAG_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

namespace elag {
namespace serve {

/** Typed error identifiers carried in error responses. */
namespace errtype {

constexpr const char *BadRequest = "bad_request";
constexpr const char *UnknownVerb = "unknown_verb";
constexpr const char *Overloaded = "overloaded";
constexpr const char *ShuttingDown = "shutting_down";
constexpr const char *Timeout = "timeout";
constexpr const char *Fatal = "fatal";
constexpr const char *Panic = "panic";
/** The *guest* program faulted (divide by zero, wild PC, ...). */
constexpr const char *GuestTrap = "guest_trap";
/** Content hash crashed workers too often; rejected pre-routing. */
constexpr const char *Quarantined = "quarantined";
/** The request crashed its worker and the failover retries too. */
constexpr const char *ShardFailed = "shard_failed";
/** No live shard workers to route to. */
constexpr const char *Unavailable = "unavailable";

} // namespace errtype

/** One parsed request. Defaults mirror elagc's flag defaults. */
struct Request
{
    std::string verb;
    uint64_t id = 0;
    /** mini-C program text (work verbs). */
    std::string source;
    /** Scenario-spec JSON document text (`generate` verb). */
    std::string spec;
    /** Label echoed into reports (elagc prints its input path). */
    std::string file = "<request>";
    std::string machine = "proposed";
    std::string selection;
    uint32_t table = 0;
    uint32_t regs = 0;
    bool noOpt = false;
    bool noClassify = false;
    uint64_t maxInst = 500'000'000;
    /** Wall-clock budget; 0 uses the server default (may be none). */
    uint64_t deadlineMs = 0;
    /** Correlation ID propagated into client- and server-side spans. */
    std::string trace;
    /** Exposition format for `metrics` ("" = JSON, "prometheus"). */
    std::string format;
};

/** @return true if @p verb computes on request-supplied source. */
bool isWorkVerb(const std::string &verb);

/** @return true if the server answers @p verb without admission. */
bool isControlVerb(const std::string &verb);

/**
 * Parse one request document. @return false (with @p error set) on
 * invalid JSON, a non-object document, a missing/empty verb, or
 * out-of-range numeric fields.
 */
bool parseRequest(const std::string &doc, Request &request,
                  std::string &error);

/** Serialize @p request as a compact document (source last). */
std::string buildRequestDoc(const Request &request);

/** Success envelope with @p result_json spliced in verbatim. */
std::string okResponse(const Request &request,
                       const std::string &result_json);

/** Error envelope with a typed error block. */
std::string errorResponse(const Request &request,
                          const std::string &type,
                          const std::string &message);

/** One parsed response envelope. */
struct Response
{
    bool ok = false;
    uint64_t id = 0;
    std::string verb;
    /** Raw JSON of the result member (exactly as the server sent). */
    std::string result;
    std::string errorType;
    std::string errorMessage;
};

/** Parse a response envelope. @return false on malformed input. */
bool parseResponse(const std::string &doc, Response &response,
                   std::string &error);

} // namespace serve
} // namespace elag

#endif // ELAG_SERVE_PROTOCOL_HH
