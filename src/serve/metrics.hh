/**
 * @file
 * Per-verb request accounting for the serving daemon.
 *
 * Counts requests and errors per verb and samples each request's
 * service latency into a fixed-bucket support::Histogram, reusing
 * the JSON stats layer for export. Exposed through the `stats` verb
 * and flushed once at daemon exit.
 */

#ifndef ELAG_SERVE_METRICS_HH
#define ELAG_SERVE_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "support/stats.hh"

namespace elag {

class JsonWriter;

namespace serve {

/** Thread-safe per-verb counters + latency histograms. */
class ServerMetrics
{
  public:
    /** Record one finished request: outcome + service micros. */
    void record(const std::string &verb, bool ok, uint64_t micros);

    /** Total requests recorded across verbs. */
    uint64_t totalRequests() const;

    /** Total error responses recorded across verbs. */
    uint64_t totalErrors() const;

    /**
     * Serialize as {"<verb>": {"requests", "errors", "mean_us",
     * "latency_us": {histogram}}, ...} in verb-name order.
     */
    void writeJson(JsonWriter &w) const;

  private:
    struct VerbStats
    {
        uint64_t requests = 0;
        uint64_t errors = 0;
        /** 64 buckets x 4096 us => 0..256 ms + overflow. */
        Histogram latency{64, 4096};
    };

    mutable std::mutex mu;
    std::map<std::string, VerbStats> verbs;
};

} // namespace serve
} // namespace elag

#endif // ELAG_SERVE_METRICS_HH
