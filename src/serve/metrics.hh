/**
 * @file
 * Per-verb request accounting for the serving daemon.
 *
 * Counts requests and errors per verb and samples each request's
 * service latency into fixed-bucket histograms. Since the unified
 * observability plane landed, the storage lives in the process-wide
 * obs::Registry (as `elag_serve_requests_total{verb=...}`,
 * `elag_serve_errors_total{verb=...}`, and
 * `elag_serve_latency_us{verb=...}`), so the same numbers surface
 * through the `metrics` verb and its Prometheus exposition. This
 * class keeps the original stats-verb JSON shape on top of the
 * registry-backed metrics, so existing `stats` consumers see no
 * change.
 */

#ifndef ELAG_SERVE_METRICS_HH
#define ELAG_SERVE_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hh"

namespace elag {

class JsonWriter;

namespace serve {

/** Thread-safe per-verb counters + latency histograms. */
class ServerMetrics
{
  public:
    /**
     * Build against the registry the per-verb metrics register in;
     * production uses obs::Registry::process(), tests may pass a
     * private registry.
     */
    explicit ServerMetrics(
        obs::Registry &registry = obs::Registry::process())
        : registry_(registry)
    {}

    /** Record one finished request: outcome + service micros. */
    void record(const std::string &verb, bool ok, uint64_t micros);

    /** Total requests recorded across verbs. */
    uint64_t totalRequests() const;

    /** Total error responses recorded across verbs. */
    uint64_t totalErrors() const;

    /**
     * Serialize as {"<verb>": {"requests", "errors", "mean_us",
     * "latency_us": {histogram}}, ...} in verb-name order.
     */
    void writeJson(JsonWriter &w) const;

  private:
    struct VerbStats
    {
        obs::Counter *requests = nullptr;
        obs::Counter *errors = nullptr;
        /** 64 buckets x 4096 us => 0..256 ms + overflow. */
        obs::Histogram *latency = nullptr;
    };

    /** Get-or-register the per-verb metric triple. Lock held. */
    VerbStats &verbStatsLocked(const std::string &verb);

    obs::Registry &registry_;
    mutable std::mutex mu;
    std::map<std::string, VerbStats> verbs;
};

} // namespace serve
} // namespace elag

#endif // ELAG_SERVE_METRICS_HH
