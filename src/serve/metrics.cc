#include "serve/metrics.hh"

#include "support/json.hh"

namespace elag {
namespace serve {

ServerMetrics::VerbStats &
ServerMetrics::verbStatsLocked(const std::string &verb)
{
    auto it = verbs.find(verb);
    if (it != verbs.end())
        return it->second;
    obs::Labels labels{{"verb", verb}};
    VerbStats vs;
    vs.requests = &registry_.counter(
        "elag_serve_requests_total",
        "Requests finished by the serving daemon, by verb.", labels);
    vs.errors = &registry_.counter(
        "elag_serve_errors_total",
        "Error responses sent by the serving daemon, by verb.",
        labels);
    // 64 buckets x 4096 us => 0..256 ms + overflow.
    vs.latency = &registry_.histogram(
        "elag_serve_latency_us",
        "Request service latency in microseconds, by verb.", 64, 4096,
        labels);
    return verbs.emplace(verb, vs).first->second;
}

void
ServerMetrics::record(const std::string &verb, bool ok,
                      uint64_t micros)
{
    std::lock_guard<std::mutex> lock(mu);
    VerbStats &vs = verbStatsLocked(verb);
    vs.requests->inc();
    if (!ok)
        vs.errors->inc();
    vs.latency->observe(micros);
}

uint64_t
ServerMetrics::totalRequests() const
{
    std::lock_guard<std::mutex> lock(mu);
    uint64_t total = 0;
    for (const auto &kv : verbs)
        total += kv.second.requests->value();
    return total;
}

uint64_t
ServerMetrics::totalErrors() const
{
    std::lock_guard<std::mutex> lock(mu);
    uint64_t total = 0;
    for (const auto &kv : verbs)
        total += kv.second.errors->value();
    return total;
}

void
ServerMetrics::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(mu);
    w.beginObject();
    for (const auto &kv : verbs) {
        const VerbStats &vs = kv.second;
        const obs::Histogram &h = *vs.latency;
        w.key(kv.first).beginObject();
        w.field("requests", vs.requests->value());
        w.field("errors", vs.errors->value());
        w.field("mean_us", h.mean());
        // Same shape support::Histogram always exported, so `stats`
        // consumers are unaffected by the registry move.
        w.key("latency_us").beginObject();
        w.field("samples", h.count());
        w.field("mean", h.mean());
        w.field("bucket_width", h.bucketWidth());
        w.key("buckets").beginArray();
        for (size_t i = 0; i < h.numBuckets(); ++i)
            w.value(h.bucket(i));
        w.endArray();
        w.field("overflow", h.overflow());
        w.endObject();
        w.endObject();
    }
    w.endObject();
}

} // namespace serve
} // namespace elag
