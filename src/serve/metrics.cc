#include "serve/metrics.hh"

#include "support/json.hh"

namespace elag {
namespace serve {

void
ServerMetrics::record(const std::string &verb, bool ok,
                      uint64_t micros)
{
    std::lock_guard<std::mutex> lock(mu);
    VerbStats &vs = verbs[verb];
    ++vs.requests;
    if (!ok)
        ++vs.errors;
    vs.latency.sample(micros);
}

uint64_t
ServerMetrics::totalRequests() const
{
    std::lock_guard<std::mutex> lock(mu);
    uint64_t total = 0;
    for (const auto &kv : verbs)
        total += kv.second.requests;
    return total;
}

uint64_t
ServerMetrics::totalErrors() const
{
    std::lock_guard<std::mutex> lock(mu);
    uint64_t total = 0;
    for (const auto &kv : verbs)
        total += kv.second.errors;
    return total;
}

void
ServerMetrics::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(mu);
    w.beginObject();
    for (const auto &kv : verbs) {
        const VerbStats &vs = kv.second;
        w.key(kv.first).beginObject();
        w.field("requests", vs.requests);
        w.field("errors", vs.errors);
        w.field("mean_us", vs.latency.mean());
        w.key("latency_us");
        elag::writeJson(w, vs.latency);
        w.endObject();
    }
    w.endObject();
}

} // namespace serve
} // namespace elag
