#include "serve/shard.hh"

#include <csignal>

#include <algorithm>
#include <chrono>

#include "obs/metrics.hh"
#include "serve/framing.hh"
#include "serve/protocol.hh"
#include "serve/socket.hh"
#include "support/logging.hh"

namespace elag {
namespace serve {

namespace {

uint64_t
monotonicMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

obs::Counter &
restartCounter(const std::string &reason)
{
    // Registration is idempotent and the set of reasons is tiny, so
    // resolving per event (restarts are rare) beats caching.
    return obs::Registry::process().counter(
        "elag_serve_shard_restarts_total",
        "Shard worker respawns scheduled by the supervisor, by "
        "reason.",
        {{"reason", reason}});
}

} // anonymous namespace

const char *
name(ShardState state)
{
    switch (state) {
      case ShardState::Down:
        return "down";
      case ShardState::Starting:
        return "starting";
      case ShardState::Up:
        return "up";
      case ShardState::Backoff:
        return "backoff";
      case ShardState::Broken:
        return "broken";
    }
    return "?";
}

uint64_t
RestartPolicy::delayMs(uint32_t streak) const
{
    elag_assert(streak >= 1);
    uint64_t delay = backoffBaseMs;
    for (uint32_t i = 1; i < streak; ++i) {
        if (delay >= backoffCapMs / 2)
            return backoffCapMs;
        delay *= 2;
    }
    return std::min(delay, backoffCapMs);
}

ShardManager::ShardManager(const ShardManagerConfig &config)
    : cfg(config)
{
    elag_assert(cfg.shards >= 1);
    elag_assert(cfg.workerArgv && cfg.socketPathFor);
    elag_assert(cfg.quarantineThreshold >= 1);
}

ShardManager::~ShardManager()
{
    stop();
}

void
ShardManager::start()
{
    elag_assert(!running_.load() && !stopped_.load());
    {
        std::lock_guard<std::mutex> lock(mu);
        shards_.resize(cfg.shards);
        for (uint32_t i = 0; i < cfg.shards; ++i) {
            shards_[i].socketPath = cfg.socketPathFor(i);
            spawnLocked(i);
        }
    }
    running_.store(true);
    monitor_ = std::thread([this] { monitorLoop(); });
}

void
ShardManager::stop()
{
    if (stopped_.exchange(true))
        return;
    running_.store(false);
    if (monitor_.joinable())
        monitor_.join();

    // The monitor is gone; this thread owns all shard state now.
    std::vector<pid_t> pids;
    {
        std::lock_guard<std::mutex> lock(mu);
        for (Shard &shard : shards_) {
            if (shard.pid > 0)
                pids.push_back(shard.pid);
            shard.state = ShardState::Down;
        }
        liveCount_.store(0);
    }

    // Workers drain themselves on SIGTERM (they run the same
    // graceful-drain path as a standalone daemon); escalate to
    // SIGKILL only past the budget.
    for (pid_t pid : pids)
        killSpawnedGroup(pid, SIGTERM);
    for (pid_t pid : pids) {
        SpawnedStatus status = waitSpawned(pid, cfg.stopTimeoutMs);
        if (status.running) {
            warn("elagd: shard pid %d ignored SIGTERM; killing",
                 static_cast<int>(pid));
            killSpawnedGroup(pid, SIGKILL);
            waitSpawned(pid, 2000);
        }
    }

    std::lock_guard<std::mutex> lock(mu);
    for (Shard &shard : shards_)
        shard.pid = -1;
}

void
ShardManager::spawnLocked(uint32_t index)
{
    Shard &shard = shards_[index];
    std::vector<std::string> argv =
        cfg.workerArgv(index, shard.socketPath);
    std::string error;
    pid_t pid = spawnSubprocess(argv, cfg.limits, error);
    uint64_t now = monotonicMs();
    if (pid < 0) {
        warn("elagd: cannot spawn shard %u: %s", index,
             error.c_str());
        shard.state = ShardState::Backoff;
        shard.retryAtMs = now + cfg.restart.delayMs(
                                    std::max(shard.crashStreak, 1u));
        return;
    }
    shard.pid = pid;
    shard.state = ShardState::Starting;
    shard.spawnedAtMs = now;
    shard.lastBeatMs = 0;
    shard.missedBeats = 0;
    shard.pendingReason.clear();
}

void
ShardManager::recordDeathLocked(uint32_t index,
                                const std::string &reason,
                                uint64_t now_ms)
{
    Shard &shard = shards_[index];
    bool wasStable =
        now_ms - shard.spawnedAtMs >= cfg.restart.stableMs;
    shard.crashStreak = wasStable ? 1 : shard.crashStreak + 1;
    shard.pid = -1;
    shard.missedBeats = 0;
    shard.pendingReason.clear();
    ++shard.restarts;
    restartsTotal_.fetch_add(1);
    restartCounter(reason).inc();

    if (cfg.restart.breakerTrips(shard.crashStreak)) {
        shard.state = ShardState::Broken;
        shard.retryAtMs = now_ms + cfg.restart.breakerCooldownMs;
        warn("elagd: shard %u crash-looping (%u in a row, %s); "
             "breaker open for %llu ms",
             index, shard.crashStreak, reason.c_str(),
             (unsigned long long)cfg.restart.breakerCooldownMs);
    } else {
        uint64_t delay = cfg.restart.delayMs(shard.crashStreak);
        shard.state = ShardState::Backoff;
        shard.retryAtMs = now_ms + delay;
        warn("elagd: shard %u died (%s); respawn in %llu ms", index,
             reason.c_str(), (unsigned long long)delay);
    }

    uint32_t live = 0;
    for (const Shard &s : shards_)
        if (s.state == ShardState::Up)
            ++live;
    liveCount_.store(live);
}

bool
ShardManager::heartbeat(const std::string &socket_path) const
{
    try {
        Fd fd(connectUnix(socket_path));
        Request ping;
        ping.verb = "health";
        if (!writeFrame(fd.get(), buildRequestDoc(ping)))
            return false;
        std::string payload;
        return readFrameTimed(fd.get(), payload, kMaxFramePayload,
                              cfg.heartbeatTimeoutMs) ==
               FrameStatus::Ok;
    } catch (const FatalError &) {
        return false; // connect refused: socket not bound (yet)
    }
}

void
ShardManager::monitorLoop()
{
    while (running_.load()) {
        uint64_t now = monotonicMs();

        // Reap deaths and run due respawns under the lock; gather
        // the heartbeat worklist for the unlocked IO below.
        struct Probe
        {
            uint32_t index;
            pid_t pid;
            std::string socket;
        };
        std::vector<Probe> probes;
        {
            std::lock_guard<std::mutex> lock(mu);
            for (uint32_t i = 0; i < shards_.size(); ++i) {
                Shard &shard = shards_[i];
                switch (shard.state) {
                  case ShardState::Starting:
                  case ShardState::Up: {
                      SpawnedStatus status = pollSpawned(shard.pid);
                      if (!status.running) {
                          std::string reason =
                              !shard.pendingReason.empty()
                                  ? shard.pendingReason
                                  : (status.termSignal ? "crash"
                                                       : "exit");
                          recordDeathLocked(i, reason, now);
                          break;
                      }
                      bool due =
                          shard.state == ShardState::Starting
                              ? now - shard.lastBeatMs >=
                                    cfg.pollIntervalMs
                              : now - shard.lastBeatMs >=
                                    cfg.heartbeatIntervalMs;
                      if (due) {
                          shard.lastBeatMs = now;
                          probes.push_back(
                              {i, shard.pid, shard.socketPath});
                      }
                      break;
                  }
                  case ShardState::Backoff:
                  case ShardState::Broken:
                      if (now >= shard.retryAtMs)
                          spawnLocked(i);
                      break;
                  case ShardState::Down:
                      break;
                }
            }
        }

        // Heartbeat IO happens unlocked; results are applied only if
        // the shard is still the same incarnation (same pid).
        for (const Probe &probe : probes) {
            bool alive = heartbeat(probe.socket);
            std::lock_guard<std::mutex> lock(mu);
            Shard &shard = shards_[probe.index];
            if (shard.pid != probe.pid ||
                (shard.state != ShardState::Starting &&
                 shard.state != ShardState::Up)) {
                continue; // respawned or reaped meanwhile
            }
            if (alive) {
                if (shard.state == ShardState::Starting) {
                    shard.state = ShardState::Up;
                    uint32_t live = 0;
                    for (const Shard &s : shards_)
                        if (s.state == ShardState::Up)
                            ++live;
                    liveCount_.store(live);
                    inform("elagd: shard %u up (pid %d)",
                           probe.index,
                           static_cast<int>(probe.pid));
                }
                shard.missedBeats = 0;
                continue;
            }
            if (shard.state == ShardState::Starting) {
                // Workers get a startup grace to bind their socket;
                // past it an unresponsive worker is hung.
                if (monotonicMs() - shard.spawnedAtMs >
                    cfg.startupGraceMs) {
                    shard.pendingReason = "hang";
                    killSpawnedGroup(shard.pid, SIGKILL);
                }
                continue;
            }
            if (++shard.missedBeats >= cfg.heartbeatMisses) {
                warn("elagd: shard %u missed %u heartbeats; "
                     "killing",
                     probe.index, shard.missedBeats);
                shard.pendingReason = "hang";
                killSpawnedGroup(shard.pid, SIGKILL);
            }
        }

        std::this_thread::sleep_for(
            std::chrono::milliseconds(cfg.pollIntervalMs));
    }
}

bool
ShardManager::isUp(uint32_t index) const
{
    std::lock_guard<std::mutex> lock(mu);
    return index < shards_.size() &&
           shards_[index].state == ShardState::Up;
}

uint32_t
ShardManager::liveCount() const
{
    return liveCount_.load();
}

std::string
ShardManager::socketPathOf(uint32_t index) const
{
    std::lock_guard<std::mutex> lock(mu);
    elag_assert(index < shards_.size());
    return shards_[index].socketPath;
}

void
ShardManager::killShard(uint32_t index, const std::string &reason)
{
    std::lock_guard<std::mutex> lock(mu);
    if (index >= shards_.size())
        return;
    Shard &shard = shards_[index];
    if (shard.pid <= 0 || (shard.state != ShardState::Up &&
                           shard.state != ShardState::Starting)) {
        return;
    }
    shard.pendingReason = reason;
    killSpawnedGroup(shard.pid, SIGKILL);
    // The monitor reaps the death and schedules the respawn with
    // this reason attached.
}

bool
ShardManager::recordPoison(uint64_t hash)
{
    std::lock_guard<std::mutex> lock(mu);
    uint32_t count = ++poisonCounts_[hash];
    return count >= cfg.quarantineThreshold;
}

bool
ShardManager::isQuarantined(uint64_t hash) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = poisonCounts_.find(hash);
    return it != poisonCounts_.end() &&
           it->second >= cfg.quarantineThreshold;
}

uint64_t
ShardManager::restartsTotal() const
{
    return restartsTotal_.load();
}

std::vector<ShardManager::ShardInfo>
ShardManager::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<ShardInfo> out;
    out.reserve(shards_.size());
    for (uint32_t i = 0; i < shards_.size(); ++i) {
        const Shard &shard = shards_[i];
        out.push_back({i, shard.pid, shard.state, shard.socketPath,
                       shard.restarts, shard.crashStreak});
    }
    return out;
}

size_t
ShardManager::quarantineSize() const
{
    std::lock_guard<std::mutex> lock(mu);
    size_t n = 0;
    for (const auto &kv : poisonCounts_)
        if (kv.second >= cfg.quarantineThreshold)
            ++n;
    return n;
}

} // namespace serve
} // namespace elag
