#include "serve/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>

#include "obs/build_info.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "sim/decoded.hh"
#include "sim/run_cache.hh"
#include "sim/simulator.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/trace.hh"

namespace elag {
namespace serve {

namespace {

trace::Channel &serverTrace = trace::channel("server");

/**
 * Write end of the drain self-pipe, published for the signal
 * handler. The handler only ever write(2)s one byte, which is
 * async-signal-safe; all actual drain work happens on the acceptor
 * thread when the poll wakes up.
 */
std::atomic<int> gSignalWakeFd{-1};

extern "C" void
drainSignalHandler(int)
{
    int fd = gSignalWakeFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        char byte = 's';
        // The pipe filling up just means a wakeup is already
        // pending, so a failed write is fine to ignore.
        ssize_t ignored = ::write(fd, &byte, 1);
        (void)ignored;
    }
}

uint64_t
elapsedMicros(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/**
 * Registry-backed mirrors of the server's lifecycle atomics, so the
 * same counts the stats verb reports are scrapeable as metrics.
 */
struct ServeCounters
{
    obs::Counter &accepted;
    obs::Counter &admitted;
    obs::Counter &rejectedOverload;
    obs::Counter &rejectedDraining;

    static ServeCounters &
    instance()
    {
        static ServeCounters counters = [] {
            obs::Registry &r = obs::Registry::process();
            return ServeCounters{
                r.counter("elag_serve_accepted_connections_total",
                          "Connections accepted by the daemon."),
                r.counter("elag_serve_admitted_total",
                          "Work requests past admission control."),
                r.counter("elag_serve_rejected_total",
                          "Work requests rejected at the door, by "
                          "reason.",
                          {{"reason", "overload"}}),
                r.counter("elag_serve_rejected_total",
                          "Work requests rejected at the door, by "
                          "reason.",
                          {{"reason", "draining"}}),
            };
        }();
        return counters;
    }
};

} // anonymous namespace

Server::Server(const ServerConfig &config)
    : cfg(config), router(RouterConfig{config.defaultDeadlineMs,
                                       config.persist,
                                       config.checkpointDir,
                                       config.checkpointEvery})
{
    if (cfg.queueDepth == 0)
        fatal("elagd: --queue-depth must be at least 1");
}

Server::~Server()
{
    if (started_.load()) {
        beginDrain();
        if (acceptor.joinable())
            wait();
    }
}

parallel::ThreadPool &
Server::pool()
{
    return cfg.pool ? *cfg.pool : parallel::ThreadPool::shared();
}

void
Server::start()
{
    elag_assert(!started_.load());
    ignoreSigpipe();

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0)
        fatal("elagd: cannot create wake pipe: %s", strerror(errno));
    wakeRead.reset(pipe_fds[0]);
    wakeWrite.reset(pipe_fds[1]);

    unixListener = listenUnix(cfg.socketPath);
    if (cfg.tcpPort)
        tcpListener = listenTcpLoopback(cfg.tcpPort);

    started_.store(true);
    acceptor = std::thread([this] { acceptLoop(); });
}

void
Server::installSignalHandlers()
{
    elag_assert(wakeWrite.valid());
    gSignalWakeFd.store(wakeWrite.get(), std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = drainSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
}

void
Server::restoreSignalHandlers()
{
    gSignalWakeFd.store(-1, std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = SIG_DFL;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
}

void
Server::beginDrain()
{
    if (draining_.exchange(true))
        return;

    ELAG_TRACE_EVT(serverTrace, requestSeq_.load(), "drain begins");

    // Wake the acceptor's poll so it stops accepting promptly.
    if (wakeWrite.valid()) {
        char byte = 'd';
        ssize_t ignored = ::write(wakeWrite.get(), &byte, 1);
        (void)ignored;
    }

    // EOF the read side of every open connection: idle clients see
    // a clean close, while responses still in flight go out on the
    // untouched write side. Connections deregister before closing,
    // so every fd in the set is still owned by its thread here.
    std::lock_guard<std::mutex> lock(connMu);
    for (int fd : activeFds)
        ::shutdown(fd, SHUT_RD);
}

void
Server::wait()
{
    elag_assert(started_.load());
    if (acceptor.joinable())
        acceptor.join();

    // The acceptor is gone, so no new connection threads can appear;
    // one sweep collects them all. Join outside the lock — threads
    // take connMu themselves to deregister their fd.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMu);
        threads.swap(connThreads);
    }
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();

    unixListener.reset();
    tcpListener.reset();
    if (!cfg.socketPath.empty())
        ::unlink(cfg.socketPath.c_str());
}

void
Server::acceptLoop()
{
    while (!draining_.load()) {
        struct pollfd fds[3];
        fds[0] = {wakeRead.get(), POLLIN, 0};
        fds[1] = {unixListener.get(), POLLIN, 0};
        nfds_t nfds = 2;
        if (tcpListener.valid())
            fds[nfds++] = {tcpListener.get(), POLLIN, 0};

        int rc = ::poll(fds, nfds, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            warn("elagd: poll failed: %s", strerror(errno));
            beginDrain();
            break;
        }

        if (fds[0].revents) {
            // Drain or signal wakeup; beginDrain is idempotent, so
            // it is safe to run it for a byte it wrote itself.
            beginDrain();
            break;
        }

        for (nfds_t i = 1; i < nfds; ++i) {
            if (!(fds[i].revents & POLLIN))
                continue;
            int conn = acceptOn(fds[i].fd);
            if (conn < 0)
                continue;
            uint64_t conn_id = accepted_.fetch_add(1) + 1;
            ServeCounters::instance().accepted.inc();
            std::lock_guard<std::mutex> lock(connMu);
            if (draining_.load()) {
                // Lost the race with beginDrain: it already swept
                // activeFds, so close rather than serve.
                ::close(conn);
                continue;
            }
            activeFds.insert(conn);
            connThreads.emplace_back(
                [this, conn, conn_id] { serveConnection(conn, conn_id); });
        }
    }
}

void
Server::serveConnection(int fd, uint64_t conn_id)
{
    std::string payload;
    for (;;) {
        FrameStatus status = readFrame(fd, payload, cfg.maxFrameBytes);
        if (status == FrameStatus::Eof)
            break;
        if (status == FrameStatus::Oversized) {
            // The stream cannot be resynchronized; tell the peer
            // why, then hang up.
            Request anon;
            writeFrame(fd, errorResponse(
                               anon, errtype::BadRequest,
                               formatString("frame exceeds %zu byte limit",
                                            cfg.maxFrameBytes)));
            break;
        }
        if (status != FrameStatus::Ok)
            break; // Truncated / IoError: peer died mid-frame.

        auto started = std::chrono::steady_clock::now();
        uint64_t seq = requestSeq_.fetch_add(1) + 1;

        // One span per request, parse through response write; the
        // client attaches the same trace_id to its side, so the two
        // trace files line up per request.
        obs::Span span("request", "serve");
        span.arg("conn", std::to_string(conn_id));

        Request request;
        std::string parse_error;
        std::string response;
        bool initiate_drain = false;
        if (!parseRequest(payload, request, parse_error)) {
            response = errorResponse(request, errtype::BadRequest,
                                     parse_error);
        } else {
            span.arg("verb", request.verb);
            if (!request.trace.empty())
                span.arg("trace_id", request.trace);
            response = handle(request, initiate_drain);
        }

        uint64_t micros = elapsedMicros(started);
        bool ok = startsWith(response, "{\"ok\":true");
        const std::string &verb =
            request.verb.empty() ? "<invalid>" : request.verb;
        metrics_.record(verb, ok, micros);
        ELAG_TRACE_EVT(serverTrace, seq,
                       "conn %llu verb=%s id=%llu %s %llu us",
                       (unsigned long long)conn_id, verb.c_str(),
                       (unsigned long long)request.id,
                       ok ? "ok" : "error",
                       (unsigned long long)micros);

        bool wrote = writeFrame(fd, response);
        span.end();
        if (initiate_drain) {
            // The drain ack is the last frame on this connection:
            // closing here makes the cutoff deterministic for the
            // requesting client, while beginDrain EOFs the others.
            beginDrain();
            break;
        }
        if (!wrote)
            break;
    }

    // Deregister before closing so beginDrain never shutdown(2)s a
    // recycled descriptor.
    {
        std::lock_guard<std::mutex> lock(connMu);
        activeFds.erase(fd);
    }
    ::close(fd);
}

std::string
Server::handle(const Request &request, bool &initiate_drain)
{
    if (request.verb == "health") {
        JsonWriter w(0);
        w.beginObject();
        w.field("status", "ok");
        w.field("draining", draining_.load());
        w.endObject();
        return okResponse(request, w.str());
    }

    if (request.verb == "stats")
        return okResponse(request, statsJson());

    if (request.verb == "metrics") {
        obs::Registry &registry = obs::Registry::process();
        if (request.format == "prometheus") {
            // The framed protocol carries JSON, so the text
            // exposition rides inside an envelope the client
            // unwraps (elag_client --format=prometheus prints the
            // body verbatim).
            JsonWriter w(0);
            w.beginObject();
            w.field("format", "prometheus");
            w.field("body", registry.prometheus());
            w.endObject();
            return okResponse(request, w.str());
        }
        if (request.format == "counters") {
            // Flat counters-only snapshot: what the supervisor
            // scrapes from each shard to aggregate a fleet-wide
            // metrics document (counters sum across processes;
            // gauges and histograms do not).
            JsonWriter w(0);
            registry.writeCountersJson(w);
            return okResponse(request, w.str());
        }
        if (!request.format.empty() && request.format != "json") {
            return errorResponse(
                request, errtype::BadRequest,
                formatString("unknown metrics format '%s'",
                             request.format.c_str()));
        }
        JsonWriter w(0);
        registry.writeJson(w);
        return okResponse(request, w.str());
    }

    if (request.verb == "drain") {
        initiate_drain = true;
        JsonWriter w(0);
        w.beginObject();
        w.field("draining", true);
        w.endObject();
        return okResponse(request, w.str());
    }

    // Chaos hook for supervision-tree tests: with ELAG_CHAOS_CRASH
    // set in the environment, the `crash` verb kills this process
    // dead, mid-request, exactly like a wild simulator bug would.
    // Without the env var the verb falls through to unknown_verb.
    if (request.verb == "crash" && std::getenv("ELAG_CHAOS_CRASH")) {
        warn("elagd: chaos crash requested; aborting");
        std::abort();
    }

    if (!isWorkVerb(request.verb))
        return errorResponse(request, errtype::UnknownVerb,
                             formatString("unknown verb '%s'",
                                          request.verb.c_str()));

    if (draining_.load()) {
        rejectedDraining_.fetch_add(1);
        ServeCounters::instance().rejectedDraining.inc();
        return errorResponse(request, errtype::ShuttingDown,
                             "server is draining");
    }

    return executeAdmitted(request);
}

std::string
Server::executeAdmitted(const Request &request)
{
    // Admission control: bound the number of requests that have been
    // accepted but not yet started on a worker. Rejecting at the
    // door keeps latency predictable instead of queueing without
    // limit while the pool is saturated.
    uint32_t backlog = backlog_.load();
    do {
        if (backlog >= cfg.queueDepth) {
            rejectedOverload_.fetch_add(1);
            ServeCounters::instance().rejectedOverload.inc();
            return errorResponse(
                request, errtype::Overloaded,
                formatString("request queue is full "
                             "(%u waiting, depth %u)",
                             backlog, cfg.queueDepth));
        }
    } while (!backlog_.compare_exchange_weak(backlog, backlog + 1));
    admitted_.fetch_add(1);
    ServeCounters::instance().admitted.inc();

    std::promise<std::string> done;
    std::future<std::string> result = done.get_future();
    pool().submit([this, &request, &done] {
        backlog_.fetch_sub(1);
        executing_.fetch_add(1);
        std::string response;
        try {
            response = okResponse(request, router.execute(request));
        } catch (const sim::SimTimeoutError &e) {
            response = errorResponse(request, errtype::Timeout,
                                     e.what());
        } catch (const sim::GuestTrapError &e) {
            // A guest fault is the submitted program's bug; the
            // server stays up and answers with a typed frame.
            response = errorResponse(request, errtype::GuestTrap,
                                     e.what());
        } catch (const FatalError &e) {
            response = errorResponse(request, errtype::Fatal,
                                     e.what());
        } catch (const PanicError &e) {
            response = errorResponse(request, errtype::Panic,
                                     e.what());
        } catch (const std::exception &e) {
            response = errorResponse(request, errtype::Panic,
                                     e.what());
        }
        executing_.fetch_sub(1);
        completed_.fetch_add(1);
        done.set_value(std::move(response));
    });
    return result.get();
}

std::string
Server::statsJson() const
{
    size_t active;
    {
        std::lock_guard<std::mutex> lock(connMu);
        active = activeFds.size();
    }
    sim::RunCache &cache = sim::RunCache::instance();
    sim::RunCache::Stats cs = cache.stats();

    JsonWriter w;
    w.beginObject();

    w.key("server").beginObject();
    w.field("draining", draining_.load());
    w.field("accepted", accepted_.load());
    w.field("active_connections", static_cast<uint64_t>(active));
    w.field("uptime_seconds",
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::seconds>(
                    std::chrono::steady_clock::now() - startTime_)
                    .count()));
    w.endObject();

    w.key("build");
    obs::writeJson(w, obs::buildInfo());

    w.key("queue").beginObject();
    w.field("depth", static_cast<uint64_t>(cfg.queueDepth));
    w.field("backlog", static_cast<uint64_t>(backlog_.load()));
    w.field("executing", static_cast<uint64_t>(executing_.load()));
    w.field("admitted", admitted_.load());
    w.field("rejected_overload", rejectedOverload_.load());
    w.field("rejected_draining", rejectedDraining_.load());
    w.field("completed", completed_.load());
    w.endObject();

    w.key("verbs");
    metrics_.writeJson(w);

    w.key("run_cache").beginObject();
    w.field("hits", cs.hits);
    w.field("misses", cs.misses);
    w.field("bypasses", cs.bypasses);
    w.field("evictions", cs.evictions);
    w.field("entries", static_cast<uint64_t>(cache.size()));
    w.field("capacity", static_cast<uint64_t>(cache.capacity()));
    w.endObject();

    if (cfg.persist) {
        cache::PersistentStore::Stats ps = cfg.persist->stats();
        w.key("persist").beginObject();
        w.field("dir", cfg.persist->dir());
        w.field("entries",
                static_cast<uint64_t>(cfg.persist->size()));
        w.field("appends", ps.appends);
        w.field("dedup_skipped", ps.dedupSkipped);
        w.field("hits", ps.hits);
        w.field("misses", ps.misses);
        w.field("recovered", ps.recovered);
        w.field("torn_truncated", ps.tornTruncated);
        w.field("corrupt_skipped", ps.corruptSkipped);
        w.field("read_failures", ps.readFailures);
        w.field("write_failures", ps.writeFailures);
        w.field("compactions", ps.compactions);
        w.endObject();
    }

    w.endObject();
    return w.str();
}

} // namespace serve
} // namespace elag
