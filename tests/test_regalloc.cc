/**
 * @file
 * Register-allocator unit tests: coloring, call-crossing constraints
 * (callee-saved classes), spilling under pressure, and the
 * disjointness invariants of the produced Allocation.
 */

#include <gtest/gtest.h>

#include "codegen/regalloc.hh"
#include "ir/ir.hh"
#include "isa/registers.hh"

using namespace elag;
using namespace elag::codegen;
using namespace elag::ir;

namespace {

IrInst
movImm(int dest, int64_t v)
{
    IrInst i;
    i.op = IrOpcode::Mov;
    i.dest = dest;
    i.a = Operand::makeImm(v);
    return i;
}

IrInst
addRegs(int dest, int a, int b)
{
    IrInst i;
    i.op = IrOpcode::Add;
    i.dest = dest;
    i.a = Operand::makeReg(a);
    i.b = Operand::makeReg(b);
    return i;
}

IrInst
callVoid(const std::string &name)
{
    IrInst i;
    i.op = IrOpcode::Call;
    i.callee = name;
    return i;
}

IrInst
retReg(int r)
{
    IrInst i;
    i.op = IrOpcode::Ret;
    i.a = Operand::makeReg(r);
    return i;
}

} // namespace

TEST(RegAlloc, DisjointShortLivedValuesShareRegisters)
{
    Function fn("f");
    BasicBlock *bb = fn.newBlock();
    // 100 values, each dead immediately: 2 registers suffice.
    int last = 0;
    for (int i = 0; i < 100; ++i) {
        int v = fn.newVReg();
        bb->insts.push_back(movImm(v, i));
        int w = fn.newVReg();
        bb->insts.push_back(addRegs(w, v, v));
        last = w;
    }
    bb->insts.push_back(retReg(last));
    fn.recomputeCfg();
    auto alloc = allocateRegisters(fn, fn.rpo());
    EXPECT_EQ(alloc.numSpillSlots, 0);
    // All assigned registers come from the allocatable range.
    for (const auto &kv : alloc.assignment) {
        EXPECT_GE(kv.second, AllocCallerFirst);
        EXPECT_LE(kv.second, isa::reg::CalleeSavedLast);
    }
}

TEST(RegAlloc, SimultaneouslyLiveValuesGetDistinctRegisters)
{
    Function fn("f");
    BasicBlock *bb = fn.newBlock();
    std::vector<int> vregs;
    for (int i = 0; i < 20; ++i) {
        int v = fn.newVReg();
        vregs.push_back(v);
        bb->insts.push_back(movImm(v, i));
    }
    // All used together at the end: all 20 live simultaneously.
    int acc = vregs[0];
    for (int i = 1; i < 20; ++i) {
        int next = fn.newVReg();
        bb->insts.push_back(addRegs(next, acc, vregs[i]));
        acc = next;
    }
    bb->insts.push_back(retReg(acc));
    fn.recomputeCfg();
    auto alloc = allocateRegisters(fn, fn.rpo());

    std::set<int> used;
    for (int v : vregs) {
        int phys = alloc.regFor(v);
        ASSERT_GE(phys, 0) << "v" << v << " spilled unexpectedly";
        EXPECT_TRUE(used.insert(phys).second)
            << "register reused for overlapping values";
    }
}

TEST(RegAlloc, CallCrossingValuesUseCalleeSaved)
{
    Function fn("f");
    BasicBlock *bb = fn.newBlock();
    int v = fn.newVReg();
    bb->insts.push_back(movImm(v, 7));
    bb->insts.push_back(callVoid("g"));
    bb->insts.push_back(retReg(v)); // live across the call
    fn.recomputeCfg();
    auto alloc = allocateRegisters(fn, fn.rpo());
    int phys = alloc.regFor(v);
    ASSERT_GE(phys, 0);
    EXPECT_GE(phys, isa::reg::CalleeSavedFirst);
    EXPECT_TRUE(alloc.usedCalleeSaved.count(phys));
}

TEST(RegAlloc, ValueNotCrossingCallMayUseCallerSaved)
{
    Function fn("f");
    BasicBlock *bb = fn.newBlock();
    int v = fn.newVReg();
    bb->insts.push_back(movImm(v, 7));
    int w = fn.newVReg();
    bb->insts.push_back(addRegs(w, v, v)); // v dies here
    bb->insts.push_back(callVoid("g"));
    IrInst r;
    r.op = IrOpcode::Ret;
    bb->insts.push_back(r);
    fn.recomputeCfg();
    auto alloc = allocateRegisters(fn, fn.rpo());
    int phys = alloc.regFor(v);
    ASSERT_GE(phys, 0);
    EXPECT_LT(phys, isa::reg::CalleeSavedFirst);
}

TEST(RegAlloc, ExtremePressureSpills)
{
    Function fn("f");
    BasicBlock *bb = fn.newBlock();
    std::vector<int> vregs;
    // More simultaneously live values than physical registers.
    for (int i = 0; i < 80; ++i) {
        int v = fn.newVReg();
        vregs.push_back(v);
        bb->insts.push_back(movImm(v, i));
    }
    int acc = vregs[0];
    for (int i = 1; i < 80; ++i) {
        int next = fn.newVReg();
        bb->insts.push_back(addRegs(next, acc, vregs[i]));
        acc = next;
    }
    bb->insts.push_back(retReg(acc));
    fn.recomputeCfg();
    auto alloc = allocateRegisters(fn, fn.rpo());
    EXPECT_GT(alloc.numSpillSlots, 0);

    // Invariant: no vreg is both colored and spilled; slots unique.
    std::set<int> slots;
    for (const auto &kv : alloc.spillSlots) {
        EXPECT_EQ(alloc.regFor(kv.first), -1);
        EXPECT_TRUE(slots.insert(kv.second).second);
        EXPECT_LT(kv.second, alloc.numSpillSlots);
    }
}

TEST(RegAlloc, ParametersReceiveHomes)
{
    Function fn("f");
    BasicBlock *bb = fn.newBlock();
    int p0 = fn.newVReg();
    int p1 = fn.newVReg();
    fn.params = {p0, p1};
    int s = fn.newVReg();
    bb->insts.push_back(addRegs(s, p0, p1));
    bb->insts.push_back(retReg(s));
    fn.recomputeCfg();
    auto alloc = allocateRegisters(fn, fn.rpo());
    EXPECT_TRUE(alloc.regFor(p0) >= 0 || alloc.isSpilled(p0));
    EXPECT_TRUE(alloc.regFor(p1) >= 0 || alloc.isSpilled(p1));
}

TEST(RegAlloc, LoopCarriedValueSpansTheLoop)
{
    // A value defined before a loop and used after it must not share
    // a register with values defined inside the loop.
    Function fn("f");
    BasicBlock *entry = fn.newBlock();
    BasicBlock *header = fn.newBlock();
    BasicBlock *body = fn.newBlock();
    BasicBlock *exit = fn.newBlock();

    int outer = fn.newVReg();
    int iv = fn.newVReg();
    entry->insts.push_back(movImm(outer, 42));
    entry->insts.push_back(movImm(iv, 0));
    IrInst j;
    j.op = IrOpcode::Jump;
    j.taken = header;
    entry->insts.push_back(j);

    IrInst br;
    br.op = IrOpcode::Br;
    br.cond = CondCode::Lt;
    br.a = Operand::makeReg(iv);
    br.b = Operand::makeImm(10);
    br.taken = body;
    br.notTaken = exit;
    header->insts.push_back(br);

    int tmp = fn.newVReg();
    body->insts.push_back(movImm(tmp, 5));
    IrInst inc;
    inc.op = IrOpcode::Add;
    inc.dest = iv;
    inc.a = Operand::makeReg(iv);
    inc.b = Operand::makeReg(tmp);
    body->insts.push_back(inc);
    IrInst j2;
    j2.op = IrOpcode::Jump;
    j2.taken = header;
    body->insts.push_back(j2);

    exit->insts.push_back(retReg(outer));
    fn.recomputeCfg();

    auto alloc = allocateRegisters(fn, fn.rpo());
    int r_outer = alloc.regFor(outer);
    int r_tmp = alloc.regFor(tmp);
    ASSERT_GE(r_outer, 0);
    ASSERT_GE(r_tmp, 0);
    EXPECT_NE(r_outer, r_tmp);
    EXPECT_NE(r_outer, alloc.regFor(iv));
}
