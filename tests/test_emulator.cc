/**
 * @file
 * Functional-emulator tests: instruction semantics on hand-
 * assembled programs (32-bit wrap, shifts, byte accesses, control
 * flow, the heap pointer convention) and trace-observer contents.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/registers.hh"
#include "sim/emulator.hh"
#include "support/logging.hh"

using namespace elag;
using namespace elag::isa;
namespace build = elag::isa::build;

namespace {

/** Assemble a raw program (no globals) ending in halt. */
isa::MachineProgram
assemble(std::vector<Instruction> code)
{
    isa::MachineProgram prog;
    prog.code = std::move(code);
    prog.globalSize = 8;
    prog.globalInit.assign(8, 0);
    prog.verify();
    return prog;
}

} // namespace

TEST(Emulator, ArithmeticWrapsAt32Bits)
{
    auto prog = assemble({
        build::li(10, 0x7fffffff),
        build::addi(11, 10, 1), // overflow wraps
        build::print(11),
        build::li(12, -2),
        build::rrr(Opcode::MUL, 13, 10, 12),
        build::print(13),
        build::halt(),
    });
    sim::Emulator emu(prog);
    auto r = emu.run();
    ASSERT_EQ(r.output.size(), 2u);
    EXPECT_EQ(r.output[0], INT32_MIN);
    EXPECT_EQ(r.output[1], 2); // 0x7fffffff * -2 mod 2^32
}

TEST(Emulator, ShiftSemantics)
{
    auto prog = assemble({
        build::li(10, -8),
        build::rri(Opcode::SRAI, 11, 10, 1),  // arithmetic: -4
        build::rri(Opcode::SRLI, 12, 10, 28), // logical: 15
        build::li(13, 1),
        build::rri(Opcode::SLLI, 14, 13, 31), // 1<<31 = INT_MIN
        build::print(11),
        build::print(12),
        build::print(14),
        build::halt(),
    });
    sim::Emulator emu(prog);
    auto r = emu.run();
    EXPECT_EQ(r.output[0], -4);
    EXPECT_EQ(r.output[1], 15);
    EXPECT_EQ(r.output[2], INT32_MIN);
}

TEST(Emulator, SetAndCompareOps)
{
    auto prog = assemble({
        build::li(10, -1),
        build::li(11, 1),
        build::rrr(Opcode::SLT, 12, 10, 11),  // signed: -1 < 1
        build::rrr(Opcode::SLTU, 13, 10, 11), // unsigned: max > 1
        build::rrr(Opcode::SEQ, 14, 10, 10),
        build::print(12),
        build::print(13),
        build::print(14),
        build::halt(),
    });
    sim::Emulator emu(prog);
    auto r = emu.run();
    EXPECT_EQ(r.output[0], 1);
    EXPECT_EQ(r.output[1], 0);
    EXPECT_EQ(r.output[2], 1);
}

TEST(Emulator, DivRemTowardZeroAndEdgeCases)
{
    auto prog = assemble({
        build::li(10, -7),
        build::li(11, 2),
        build::rrr(Opcode::DIV, 12, 10, 11),
        build::rrr(Opcode::REM, 13, 10, 11),
        build::li(14, INT32_MIN),
        build::li(15, -1),
        build::rrr(Opcode::DIV, 16, 14, 15), // INT_MIN / -1
        build::print(12),
        build::print(13),
        build::print(16),
        build::halt(),
    });
    sim::Emulator emu(prog);
    auto r = emu.run();
    EXPECT_EQ(r.output[0], -3);
    EXPECT_EQ(r.output[1], -1);
    EXPECT_EQ(r.output[2], INT32_MIN);
}

TEST(Emulator, DivideByZeroFaults)
{
    auto prog = assemble({
        build::li(10, 1),
        build::rrr(Opcode::DIV, 11, 10, 0),
        build::halt(),
    });
    sim::Emulator emu(prog);
    try {
        emu.run();
        FAIL() << "expected a guest trap";
    } catch (const sim::GuestTrapError &e) {
        EXPECT_EQ(e.kind(), sim::GuestTrapKind::DivideByZero);
        EXPECT_EQ(e.trapPc(), 1u);
    }
}

TEST(Emulator, ByteLoadsAreUnsigned)
{
    auto prog = assemble({
        build::li(10, isa::GlobalBase),
        build::li(11, 0xff),
        build::store(11, 10, 0, MemWidth::Byte),
        build::load(LoadSpec::Normal, 12, 10, 0, MemWidth::Byte),
        build::print(12),
        build::halt(),
    });
    sim::Emulator emu(prog);
    auto r = emu.run();
    EXPECT_EQ(r.output[0], 255);
}

TEST(Emulator, BaseIndexAddressing)
{
    auto prog = assemble({
        build::li(10, isa::GlobalBase),
        build::li(11, 42),
        build::store(11, 10, 4),
        build::li(12, 4),
        build::loadx(LoadSpec::Normal, 13, 10, 12),
        build::print(13),
        build::halt(),
    });
    sim::Emulator emu(prog);
    auto r = emu.run();
    EXPECT_EQ(r.output[0], 42);
}

TEST(Emulator, CallAndReturnThroughRa)
{
    // 0: jal ra, 3 ; 1: print r4 ; 2: halt ; 3: li r4, 9 ; 4: jr ra
    auto prog = assemble({
        build::jal(reg::Ra, 3),
        build::print(reg::Arg0),
        build::halt(),
        build::li(reg::Arg0, 9),
        build::jr(reg::Ra),
    });
    sim::Emulator emu(prog);
    auto r = emu.run();
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(r.output[0], 9);
    EXPECT_TRUE(r.halted);
}

TEST(Emulator, ConditionalBranchOutcomes)
{
    // Count down from 3 with a bne loop; print each value.
    auto prog = assemble({
        build::li(10, 3),                            // 0
        build::print(10),                            // 1
        build::addi(10, 10, -1),                     // 2
        build::branch(Opcode::BNE, 10, 0, 1),        // 3
        build::halt(),                               // 4
    });
    sim::Emulator emu(prog);
    auto r = emu.run();
    ASSERT_EQ(r.output.size(), 3u);
    EXPECT_EQ(r.output[0], 3);
    EXPECT_EQ(r.output[2], 1);
}

TEST(Emulator, InstructionCapStopsRunawayLoop)
{
    auto prog = assemble({
        build::jmp(0),
    });
    sim::Emulator emu(prog);
    auto r = emu.run(1000);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.instructions, 1000u);
}

TEST(Emulator, RegisterZeroIsImmutable)
{
    auto prog = assemble({
        build::li(0, 77), // write to r0 is discarded
        build::print(0),
        build::halt(),
    });
    sim::Emulator emu(prog);
    auto r = emu.run();
    EXPECT_EQ(r.output[0], 0);
}

TEST(Emulator, ObserverSeesEffectiveAddressesAndBranches)
{
    auto prog = assemble({
        build::li(10, isa::GlobalBase),              // 0
        build::store(10, 10, 0),                     // 1
        build::load(LoadSpec::Predict, 11, 10, 0),   // 2
        build::branch(Opcode::BEQ, 11, 10, 5),       // 3 (taken)
        build::print(10),                            // 4 skipped
        build::halt(),                               // 5
    });
    std::vector<pipeline::RetiredInst> trace;
    sim::Emulator emu(prog);
    emu.run(1000, [&](const pipeline::RetiredInst &ri) {
        trace.push_back(ri);
    });
    ASSERT_EQ(trace.size(), 5u); // print skipped
    EXPECT_EQ(trace[1].effAddr, isa::GlobalBase);
    EXPECT_EQ(trace[2].effAddr, isa::GlobalBase);
    EXPECT_EQ(trace[2].inst.spec, LoadSpec::Predict);
    EXPECT_TRUE(trace[3].taken);
    EXPECT_EQ(trace[3].nextPc, 5u);
}

TEST(Emulator, FloatingPointOps)
{
    Instruction cvt1 = build::rri(Opcode::CVTIF, 1, 10, 0);
    Instruction cvt2 = build::rri(Opcode::CVTIF, 2, 11, 0);
    Instruction fadd = build::rrr(Opcode::FADD, 3, 1, 2);
    Instruction fmul = build::rrr(Opcode::FMUL, 4, 3, 2);
    Instruction back = build::rri(Opcode::CVTFI, 12, 4, 0);
    auto prog = assemble({
        build::li(10, 3),
        build::li(11, 4),
        cvt1, cvt2, fadd, fmul, back,
        build::print(12),
        build::halt(),
    });
    sim::Emulator emu(prog);
    auto r = emu.run();
    EXPECT_EQ(r.output[0], 28); // (3+4)*4
}

TEST(Emulator, HeapPointerInitializedToHeapBase)
{
    // The last global word is the heap bump pointer; the emulator
    // patches it to heapBase() at reset.
    isa::MachineProgram prog;
    prog.globalSize = 16;
    prog.globalInit.assign(16, 0);
    prog.code = {
        build::li(10, isa::GlobalBase + 12),
        build::load(LoadSpec::Normal, 11, 10, 0),
        build::print(11),
        build::halt(),
    };
    prog.verify();
    sim::Emulator emu(prog);
    auto r = emu.run();
    EXPECT_EQ(static_cast<uint32_t>(r.output[0]), prog.heapBase());
}
