/**
 * @file
 * Tests for the serving subsystem: framing, the request/response
 * protocol, and an in-process elagd end to end — concurrent clients,
 * byte-identity with direct simulation, admission control under
 * overload, deadlines, and graceful drain.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "pipeline/telemetry.hh"
#include "serve/client.hh"
#include "serve/framing.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/socket.hh"
#include "sim/run_cache.hh"
#include "sim/simulator.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/parallel.hh"

using namespace elag;
using namespace elag::serve;

namespace {

/** A connected AF_UNIX socket pair wrapped in RAII fds. */
struct Pair
{
    Fd a, b;
    Pair()
    {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a.reset(fds[0]);
        b.reset(fds[1]);
    }
};

/** Fresh socket path per server so tests never collide. */
std::string
testSocketPath()
{
    static std::atomic<int> counter{0};
    return formatString("/tmp/elag-serve-test-%d-%d.sock",
                        static_cast<int>(::getpid()),
                        counter.fetch_add(1));
}

const char *kTinyProgram =
    "int main() { print(5); return 0; }";

const char *kArrayProgram = R"(
    int arr[64];
    int main() {
        int t = 0;
        for (int i = 0; i < 64; i++) { arr[i] = i * 3; t += arr[i]; }
        print(t);
        return 0;
    }
)";

/** Long enough to be visibly in flight, bounded by max_inst. */
const char *kSlowProgram = R"(
    int main() {
        int t = 0;
        for (int i = 0; i < 100000000; i++) t += i;
        print(t);
        return 0;
    }
)";

Request
simulateRequest(const std::string &source,
                uint64_t max_inst = 1'000'000)
{
    Request request;
    request.verb = "simulate";
    request.source = source;
    request.maxInst = max_inst;
    return request;
}

/** Poll a uint member of the stats document until it matches. */
bool
awaitStat(Client &client, const std::string &key, uint64_t want,
          int timeout_ms = 5000)
{
    Request stats;
    stats.verb = "stats";
    for (int i = 0; i < timeout_ms; ++i) {
        Response response = client.call(stats);
        EXPECT_TRUE(response.ok);
        uint64_t got = 0;
        if (jsonExtractUint(response.result, key, got) &&
            got == want) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
}

} // namespace

TEST(Framing, RoundTripsPayloads)
{
    Pair p;
    std::vector<std::string> payloads = {
        "x", "{\"verb\": \"health\"}", std::string(100'000, 'a')};
    for (const std::string &sent : payloads)
        ASSERT_TRUE(writeFrame(p.a.get(), sent));
    for (const std::string &sent : payloads) {
        std::string got;
        ASSERT_EQ(readFrame(p.b.get(), got), FrameStatus::Ok);
        EXPECT_EQ(got, sent);
    }
}

TEST(Framing, CleanEofBetweenFrames)
{
    Pair p;
    ASSERT_TRUE(writeFrame(p.a.get(), "hello"));
    p.a.reset();
    std::string got;
    EXPECT_EQ(readFrame(p.b.get(), got), FrameStatus::Ok);
    EXPECT_EQ(readFrame(p.b.get(), got), FrameStatus::Eof);
}

TEST(Framing, TruncatedHeaderAndPayload)
{
    {
        Pair p;
        // Half a length header, then EOF.
        const char partial[2] = {0, 0};
        ASSERT_TRUE(writeFull(p.a.get(), partial, sizeof(partial)));
        p.a.reset();
        std::string got;
        EXPECT_EQ(readFrame(p.b.get(), got), FrameStatus::Truncated);
    }
    {
        Pair p;
        // Header promising 100 bytes, only 3 delivered.
        const unsigned char header[4] = {0, 0, 0, 100};
        ASSERT_TRUE(writeFull(p.a.get(), header, sizeof(header)));
        ASSERT_TRUE(writeFull(p.a.get(), "abc", 3));
        p.a.reset();
        std::string got;
        EXPECT_EQ(readFrame(p.b.get(), got), FrameStatus::Truncated);
    }
}

TEST(Framing, OversizedRejectedBeforePayload)
{
    Pair p;
    ASSERT_TRUE(writeFrame(p.a.get(), std::string(2048, 'z')));
    std::string got;
    EXPECT_EQ(readFrame(p.b.get(), got, 1024),
              FrameStatus::Oversized);
}

TEST(Framing, GarbageHeaderReadsAsOversized)
{
    Pair p;
    // Random high bytes decode as a multi-hundred-MB length, which
    // the default cap rejects without allocating.
    const unsigned char garbage[8] = {0xde, 0xad, 0xbe, 0xef,
                                      0x01, 0x02, 0x03, 0x04};
    ASSERT_TRUE(writeFull(p.a.get(), garbage, sizeof(garbage)));
    std::string got;
    EXPECT_EQ(readFrame(p.b.get(), got), FrameStatus::Oversized);
}

TEST(Protocol, RequestRoundTrip)
{
    Request request;
    request.verb = "simulate";
    request.id = 42;
    request.file = "loop.c";
    request.machine = "baseline";
    request.selection = "ev";
    request.table = 128;
    request.regs = 8;
    request.noOpt = true;
    request.maxInst = 123456;
    request.deadlineMs = 2500;
    request.source = "int main() { return 0; }";

    Request parsed;
    std::string error;
    ASSERT_TRUE(parseRequest(buildRequestDoc(request), parsed, error))
        << error;
    EXPECT_EQ(parsed.verb, request.verb);
    EXPECT_EQ(parsed.id, request.id);
    EXPECT_EQ(parsed.file, request.file);
    EXPECT_EQ(parsed.machine, request.machine);
    EXPECT_EQ(parsed.selection, request.selection);
    EXPECT_EQ(parsed.table, request.table);
    EXPECT_EQ(parsed.regs, request.regs);
    EXPECT_EQ(parsed.noOpt, request.noOpt);
    EXPECT_EQ(parsed.noClassify, request.noClassify);
    EXPECT_EQ(parsed.maxInst, request.maxInst);
    EXPECT_EQ(parsed.deadlineMs, request.deadlineMs);
    EXPECT_EQ(parsed.source, request.source);
}

TEST(Protocol, SourceCannotSpoofScalarMembers)
{
    // Protocol-looking text inside the shipped program must not leak
    // into scalar fields: they are only read before `source`.
    Request request;
    request.verb = "compile";
    request.id = 7;
    request.source =
        "int main() { return 0; } "
        "// \"verb\": \"simulate\", \"id\": 999, \"max_inst\": 1";

    Request parsed;
    std::string error;
    ASSERT_TRUE(parseRequest(buildRequestDoc(request), parsed, error));
    EXPECT_EQ(parsed.verb, "compile");
    EXPECT_EQ(parsed.id, 7u);
    EXPECT_EQ(parsed.maxInst, 500'000'000u);
    EXPECT_EQ(parsed.source, request.source);
}

TEST(Protocol, RejectsMalformedRequests)
{
    Request parsed;
    std::string error;
    EXPECT_FALSE(parseRequest("not json at all {", parsed, error));
    EXPECT_FALSE(parseRequest("[1, 2, 3]", parsed, error));
    EXPECT_FALSE(parseRequest("{\"id\": 3}", parsed, error));
    EXPECT_FALSE(parsed.verb.empty() && error.empty());
}

TEST(Protocol, ResponseEnvelopesRoundTrip)
{
    Request request;
    request.verb = "simulate";
    request.id = 9;

    Response ok;
    std::string error;
    ASSERT_TRUE(parseResponse(okResponse(request, "{\n  \"a\": 1\n}"),
                              ok, error));
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.id, 9u);
    EXPECT_EQ(ok.verb, "simulate");
    EXPECT_EQ(ok.result, "{\n  \"a\": 1\n}");

    Response err;
    ASSERT_TRUE(parseResponse(
        errorResponse(request, errtype::Overloaded, "queue full"),
        err, error));
    EXPECT_FALSE(err.ok);
    EXPECT_EQ(err.errorType, errtype::Overloaded);
    EXPECT_EQ(err.errorMessage, "queue full");
}

TEST(Serve, EndToEndMatchesDirectSimulation)
{
    setQuiet(true);
    sim::RunCache::instance().clear();

    parallel::ThreadPool pool(4);
    ServerConfig config;
    config.socketPath = testSocketPath();
    config.pool = &pool;
    Server server(config);
    server.start();

    const uint64_t max_inst = 1'000'000;

    // The expected document, computed without the server.
    auto prog = sim::compile(kArrayProgram);
    auto base = sim::runTimed(
        prog, pipeline::MachineConfig::baseline(), max_inst);
    pipeline::LoadTelemetry telemetry;
    auto timed =
        sim::runTimed(prog, pipeline::MachineConfig::proposed(),
                      max_inst, {&telemetry});
    std::string expected = sim::statsReportJson(
        "<request>", "proposed", "", prog, base, timed, telemetry);

    // Concurrent clients, each its own connection; every response
    // must be byte-identical to the direct run.
    std::vector<std::thread> clients;
    std::atomic<int> matched{0};
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&] {
            Client client = Client::connectTo(config.socketPath);
            for (int i = 0; i < 3; ++i) {
                Response response =
                    client.call(simulateRequest(kArrayProgram,
                                                max_inst));
                EXPECT_TRUE(response.ok)
                    << response.errorType << ": "
                    << response.errorMessage;
                EXPECT_EQ(response.result, expected);
                if (response.ok && response.result == expected)
                    matched.fetch_add(1);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(matched.load(), 12);

    // Repeated identical workloads must have hit the run cache.
    auto cache_stats = sim::RunCache::instance().stats();
    EXPECT_GT(cache_stats.hits, 0u);

    server.beginDrain();
    server.wait();
}

TEST(Serve, CompileClassifyHealthAndUnknownVerbs)
{
    setQuiet(true);
    parallel::ThreadPool pool(2);
    ServerConfig config;
    config.socketPath = testSocketPath();
    config.pool = &pool;
    Server server(config);
    server.start();

    Client client = Client::connectTo(config.socketPath);

    Request health;
    health.verb = "health";
    Response response = client.call(health);
    ASSERT_TRUE(response.ok);
    std::string status;
    ASSERT_TRUE(jsonExtractString(response.result, "status", status));
    EXPECT_EQ(status, "ok");

    Request compile;
    compile.verb = "compile";
    compile.source = kTinyProgram;
    response = client.call(compile);
    ASSERT_TRUE(response.ok);
    uint64_t instructions = 0;
    EXPECT_TRUE(jsonExtractUint(response.result, "instructions",
                                instructions));
    EXPECT_GT(instructions, 0u);

    Request classify;
    classify.verb = "classify";
    classify.source = kArrayProgram;
    response = client.call(classify);
    ASSERT_TRUE(response.ok);
    EXPECT_NE(response.result.find("\"loads\""), std::string::npos);

    Request bogus;
    bogus.verb = "transmogrify";
    response = client.call(bogus);
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.errorType, errtype::UnknownVerb);

    // A work verb without source is a fatal (bad program) error.
    Request empty;
    empty.verb = "simulate";
    response = client.call(empty);
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.errorType, errtype::Fatal);

    server.beginDrain();
    server.wait();
}

TEST(Serve, OverloadRejectsAtFullQueueDepth)
{
    setQuiet(true);
    sim::RunCache::instance().clear();

    // One worker, depth one: a third concurrent request must be
    // turned away deterministically.
    parallel::ThreadPool pool(1);
    ServerConfig config;
    config.socketPath = testSocketPath();
    config.pool = &pool;
    config.queueDepth = 1;
    Server server(config);
    server.start();

    Client control = Client::connectTo(config.socketPath);

    // Distinct max_inst values keep the slow runs out of each
    // other's cache entries.
    std::thread first([&] {
        Client client = Client::connectTo(config.socketPath);
        Response response =
            client.call(simulateRequest(kSlowProgram, 40'000'000));
        EXPECT_TRUE(response.ok);
    });
    ASSERT_TRUE(awaitStat(control, "executing", 1));

    std::thread second([&] {
        Client client = Client::connectTo(config.socketPath);
        Response response =
            client.call(simulateRequest(kSlowProgram, 40'000'001));
        EXPECT_TRUE(response.ok);
    });
    ASSERT_TRUE(awaitStat(control, "backlog", 1));

    // Queue full: admission control rejects, a control verb still
    // answers (it just did, via awaitStat).
    Client third = Client::connectTo(config.socketPath);
    Response rejected =
        third.call(simulateRequest(kSlowProgram, 40'000'002));
    EXPECT_FALSE(rejected.ok);
    EXPECT_EQ(rejected.errorType, errtype::Overloaded);

    first.join();
    second.join();

    Request stats;
    stats.verb = "stats";
    Response response = control.call(stats);
    ASSERT_TRUE(response.ok);
    uint64_t overloaded = 0;
    ASSERT_TRUE(jsonExtractUint(response.result, "rejected_overload",
                                overloaded));
    EXPECT_EQ(overloaded, 1u);

    server.beginDrain();
    server.wait();
}

TEST(Serve, DeadlineTimesOutLongSimulations)
{
    setQuiet(true);
    sim::RunCache::instance().clear();

    parallel::ThreadPool pool(1);
    ServerConfig config;
    config.socketPath = testSocketPath();
    config.pool = &pool;
    Server server(config);
    server.start();

    Client client = Client::connectTo(config.socketPath);
    Request request = simulateRequest(kSlowProgram, 400'000'000);
    request.deadlineMs = 1;
    Response response = client.call(request);
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.errorType, errtype::Timeout);

    server.beginDrain();
    server.wait();
}

TEST(Serve, DrainVerbStopsServiceAndFinishesInFlight)
{
    setQuiet(true);
    parallel::ThreadPool pool(2);
    ServerConfig config;
    config.socketPath = testSocketPath();
    config.pool = &pool;
    Server server(config);
    server.start();

    Client client = Client::connectTo(config.socketPath);
    Request drain;
    drain.verb = "drain";
    Response response = client.call(drain);
    ASSERT_TRUE(response.ok);
    EXPECT_TRUE(server.draining());

    // The server EOFs this connection after the drain response, so
    // the next call observes the hangup.
    Request health;
    health.verb = "health";
    EXPECT_THROW(client.call(health), FatalError);

    server.wait();
    // The socket file is gone after a full drain.
    EXPECT_NE(::unlink(config.socketPath.c_str()), 0);
}

TEST(Serve, SigtermDrainsGracefully)
{
    setQuiet(true);
    parallel::ThreadPool pool(2);
    ServerConfig config;
    config.socketPath = testSocketPath();
    config.pool = &pool;
    Server server(config);
    server.start();
    server.installSignalHandlers();

    Client client = Client::connectTo(config.socketPath);
    Request health;
    health.verb = "health";
    ASSERT_TRUE(client.call(health).ok);

    ::raise(SIGTERM);
    server.wait();
    Server::restoreSignalHandlers();
    EXPECT_TRUE(server.draining());
}

TEST(Serve, LoadGenClosedLoopAggregates)
{
    setQuiet(true);
    sim::RunCache::instance().clear();

    parallel::ThreadPool pool(4);
    ServerConfig config;
    config.socketPath = testSocketPath();
    config.pool = &pool;
    Server server(config);
    server.start();

    LoadGenConfig loadgen;
    loadgen.socketPath = config.socketPath;
    loadgen.clients = 4;
    loadgen.requests = 4;
    loadgen.request = simulateRequest(kTinyProgram);
    LoadGenReport report = runLoadGen(loadgen);

    EXPECT_EQ(report.attempted, 16u);
    EXPECT_EQ(report.succeeded, 16u);
    EXPECT_EQ(report.failed, 0u);
    EXPECT_EQ(report.transportErrors, 0u);
    EXPECT_GT(report.throughputRps, 0.0);
    EXPECT_LE(report.p50Us, report.p95Us);
    EXPECT_LE(report.p95Us, report.p99Us);
    EXPECT_GE(report.minUs, 1u);

    // Same workload 16 times: the run cache must have been hit.
    EXPECT_GT(sim::RunCache::instance().stats().hits, 0u);

    server.beginDrain();
    server.wait();
}

TEST(Protocol, TraceAndFormatMembersRoundTrip)
{
    Request request;
    request.verb = "metrics";
    request.id = 11;
    request.trace = "deadbeefcafef00d";
    request.format = "prometheus";

    Request parsed;
    std::string error;
    ASSERT_TRUE(parseRequest(buildRequestDoc(request), parsed, error))
        << error;
    EXPECT_EQ(parsed.trace, request.trace);
    EXPECT_EQ(parsed.format, request.format);

    // Both members are optional; absent means empty.
    Request bare;
    ASSERT_TRUE(parseRequest("{\"verb\": \"health\"}", bare, error));
    EXPECT_EQ(bare.trace, "");
    EXPECT_EQ(bare.format, "");
}

TEST(Serve, MetricsVerbServesBothFormats)
{
    setQuiet(true);
    parallel::ThreadPool pool(2);
    ServerConfig config;
    config.socketPath = testSocketPath();
    config.pool = &pool;
    Server server(config);
    server.start();

    Client client = Client::connectTo(config.socketPath);

    // Drive at least one simulate through so serve counters exist.
    ASSERT_TRUE(client.call(simulateRequest(kTinyProgram)).ok);

    Request metrics;
    metrics.verb = "metrics";
    Response response = client.call(metrics);
    ASSERT_TRUE(response.ok);
    EXPECT_TRUE(jsonValid(response.result)) << response.result;
    EXPECT_NE(response.result.find("elag_serve_requests_total"),
              std::string::npos);

    metrics.format = "prometheus";
    response = client.call(metrics);
    ASSERT_TRUE(response.ok);
    std::string body;
    ASSERT_TRUE(jsonExtractString(response.result, "body", body));
    EXPECT_EQ(obs::validatePrometheus(body), "") << body;
    EXPECT_NE(body.find("# TYPE elag_serve_requests_total counter"),
              std::string::npos);

    metrics.format = "xml";
    response = client.call(metrics);
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.errorType, errtype::BadRequest);

    server.beginDrain();
    server.wait();
}

TEST(Serve, StatsCarriesUptimeAndBuildInfo)
{
    setQuiet(true);
    parallel::ThreadPool pool(1);
    ServerConfig config;
    config.socketPath = testSocketPath();
    config.pool = &pool;
    Server server(config);
    server.start();

    Client client = Client::connectTo(config.socketPath);
    Request stats;
    stats.verb = "stats";
    Response response = client.call(stats);
    ASSERT_TRUE(response.ok);

    uint64_t uptime = 123456;
    EXPECT_TRUE(jsonExtractUint(response.result, "uptime_seconds",
                                uptime));
    EXPECT_LT(uptime, 3600u); // fresh server: seconds, not garbage
    std::string build;
    ASSERT_TRUE(jsonExtractRaw(response.result, "build", build));
    std::string version;
    EXPECT_TRUE(jsonExtractString(build, "version", version));
    EXPECT_FALSE(version.empty());

    server.beginDrain();
    server.wait();
}

#ifndef ELAG_NO_SPANS

TEST(Serve, TraceIdPropagatesClientToServerSpans)
{
    setQuiet(true);
    sim::RunCache::instance().clear();

    // Client and server live in one process here, so both record
    // into the process tracer; a real deployment writes two files
    // joined on the same trace_id argument.
    obs::SpanTracer &tracer = obs::SpanTracer::process();
    tracer.reset();
    tracer.enable("/dev/null");

    parallel::ThreadPool pool(2);
    ServerConfig config;
    config.socketPath = testSocketPath();
    config.pool = &pool;
    Server server(config);
    server.start();

    std::string traceId = obs::newTraceId();
    {
        Client client = Client::connectTo(config.socketPath);
        Request request = simulateRequest(kTinyProgram);
        request.trace = traceId;
        ASSERT_TRUE(client.call(request).ok);
    }
    server.beginDrain();
    server.wait();

    std::string doc = tracer.json();
    tracer.reset();
    ASSERT_TRUE(jsonValid(doc)) << doc;

    // The shared trace_id shows up on the client-side request span
    // and on the server-side request + simulate spans.
    std::string needle = "\"trace_id\":\"" + traceId + "\"";
    size_t hits = 0;
    for (size_t p = doc.find(needle); p != std::string::npos;
         p = doc.find(needle, p + 1)) {
        ++hits;
    }
    EXPECT_GE(hits, 3u) << doc;
    EXPECT_NE(doc.find("\"cat\":\"client\""), std::string::npos);
    EXPECT_NE(doc.find("\"cat\":\"serve\""), std::string::npos);
}

#endif // ELAG_NO_SPANS

TEST(Serve, OversizedRequestGetsTypedErrorThenClose)
{
    setQuiet(true);
    parallel::ThreadPool pool(1);
    ServerConfig config;
    config.socketPath = testSocketPath();
    config.pool = &pool;
    config.maxFrameBytes = 4096;
    Server server(config);
    server.start();

    Fd conn = connectUnix(config.socketPath);
    ASSERT_TRUE(writeFrame(conn.get(), std::string(8192, 'x')));
    std::string payload;
    ASSERT_EQ(readFrame(conn.get(), payload), FrameStatus::Ok);
    Response response;
    std::string error;
    ASSERT_TRUE(parseResponse(payload, response, error));
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.errorType, errtype::BadRequest);
    // The stream cannot be resynchronized, so the server hangs up.
    // The unread payload can surface as ECONNRESET instead of a
    // clean EOF, depending on close/read ordering.
    FrameStatus status = readFrame(conn.get(), payload);
    EXPECT_TRUE(status == FrameStatus::Eof ||
                status == FrameStatus::IoError)
        << name(status);

    server.beginDrain();
    server.wait();
}
