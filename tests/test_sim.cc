/**
 * @file
 * Simulator-façade tests: compile options, determinism of emulation
 * across machine models (timing never changes architecture), the
 * profile/reclassify/regenerate loop, and speedup accounting.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "support/logging.hh"
#include "workloads/workloads.hh"

using namespace elag;
using pipeline::MachineConfig;
using pipeline::SelectionPolicy;

namespace {

const char *MixedSrc = R"(
    int table[512];
    int main() {
        for (int i = 0; i < 512; i++)
            table[i] = i ^ 5;
        int *head = (int*)0;
        for (int i = 0; i < 64; i++) {
            int *n = (int*)alloc(8);
            n[0] = table[i * 8];
            n[1] = (int)head;
            head = n;
        }
        int sum = 0;
        for (int r = 0; r < 10; r++) {
            for (int i = 0; i < 512; i++)
                sum += table[i];
            int *p = head;
            while (p) {
                sum += p[0];
                p = (int*)p[1];
            }
        }
        print(sum);
        return 0;
    }
)";

} // namespace

TEST(Sim, TimingModelNeverChangesArchitecturalResults)
{
    setQuiet(true);
    auto prog = sim::compile(MixedSrc);
    std::vector<MachineConfig> machines;
    machines.push_back(MachineConfig::baseline());
    machines.push_back(MachineConfig::proposed());
    MachineConfig ev = MachineConfig::proposed();
    ev.selection = SelectionPolicy::EvSelect;
    machines.push_back(ev);
    MachineConfig tiny;
    tiny.addressTableEnabled = true;
    tiny.addressTableEntries = 16;
    tiny.earlyCalcEnabled = true;
    tiny.memPorts = 1;
    tiny.issueWidth = 2;
    machines.push_back(tiny);

    std::vector<int32_t> reference;
    for (const auto &m : machines) {
        auto r = sim::runTimed(prog, m);
        ASSERT_TRUE(r.emulation.halted);
        if (reference.empty())
            reference = r.emulation.output;
        EXPECT_EQ(r.emulation.output, reference);
    }
}

TEST(Sim, TimedRunsAreDeterministic)
{
    setQuiet(true);
    auto prog = sim::compile(MixedSrc);
    auto a = sim::runTimed(prog, MachineConfig::proposed());
    auto b = sim::runTimed(prog, MachineConfig::proposed());
    EXPECT_EQ(a.pipe.cycles, b.pipe.cycles);
    EXPECT_EQ(a.pipe.predict.forwarded, b.pipe.predict.forwarded);
    EXPECT_EQ(a.pipe.earlyCalc.forwarded,
              b.pipe.earlyCalc.forwarded);
}

TEST(Sim, SpeedupIsBaselineOverMachine)
{
    setQuiet(true);
    auto prog = sim::compile(MixedSrc);
    auto base = sim::runTimed(prog, MachineConfig::baseline());
    auto fast = sim::runTimed(prog, MachineConfig::proposed());
    double s = sim::speedup(base, fast);
    EXPECT_NEAR(s,
                static_cast<double>(base.pipe.cycles) /
                    static_cast<double>(fast.pipe.cycles),
                1e-12);
    EXPECT_GE(s, 1.0);
}

TEST(Sim, ProfileTotalsMatchClassTotals)
{
    setQuiet(true);
    auto prog = sim::compile(MixedSrc);
    auto profile = sim::runProfile(prog);
    uint64_t per_load = 0;
    for (const auto &kv : profile.profile)
        per_load += kv.second.executions;
    EXPECT_EQ(per_load, profile.totalLoads());
    EXPECT_GT(profile.predict.executions, 0u);
    EXPECT_GT(profile.earlyCalc.executions, 0u);
}

TEST(Sim, RegenerateAfterReclassificationKeepsSemantics)
{
    setQuiet(true);
    auto prog = sim::compile(MixedSrc);
    sim::Emulator emu_before(prog.code.program);
    auto before = emu_before.run();

    auto profile = sim::runProfile(prog);
    classify::applyAddressProfile(*prog.module, profile.profile,
                                  0.60);
    prog.regenerate();

    sim::Emulator emu_after(prog.code.program);
    auto after = emu_after.run();
    EXPECT_EQ(before.output, after.output);
    EXPECT_EQ(before.exitValue, after.exitValue);
}

TEST(Sim, SpecOfMatchesMachineCode)
{
    setQuiet(true);
    auto prog = sim::compile(MixedSrc);
    // Every machine load that carries a loadId must agree with the
    // specOf map derived from the IR.
    for (size_t pc = 0; pc < prog.code.program.code.size(); ++pc) {
        const auto &inst = prog.code.program.code[pc];
        int load_id = prog.code.loadIdOf.at(static_cast<uint32_t>(pc));
        if (load_id < 0)
            continue;
        ASSERT_TRUE(inst.isLoad());
        ASSERT_TRUE(prog.specOf.has(load_id));
        EXPECT_EQ(inst.spec, prog.specOf.get(load_id));
    }
}

TEST(Sim, CompileRejectsBadSource)
{
    setQuiet(true);
    EXPECT_THROW(sim::compile("int main() { return undefined; }"),
                 FatalError);
    EXPECT_THROW(sim::compile("not a program"), FatalError);
}

TEST(Sim, WorkloadRegistryLookup)
{
    EXPECT_NE(workloads::findWorkload("023.eqntott"), nullptr);
    EXPECT_NE(workloads::findWorkload("gsm_enc"), nullptr);
    EXPECT_EQ(workloads::findWorkload("no-such-benchmark"), nullptr);
    EXPECT_EQ(workloads::specWorkloads().size(), 12u);
    EXPECT_EQ(workloads::mediaWorkloads().size(), 14u);
    for (const auto &w : workloads::specWorkloads()) {
        EXPECT_FALSE(w.source.empty());
        EXPECT_FALSE(w.description.empty());
        EXPECT_EQ(w.suite, workloads::Suite::SpecInt);
    }
}

TEST(Sim, DualPathNeverSlowsTheMachineMuch)
{
    // Speculation costs only bandwidth; with two ports the proposed
    // machine should never lose more than a sliver to the baseline.
    setQuiet(true);
    for (const char *name : {"026.compress", "gs", "134.perl"}) {
        const auto *w = workloads::findWorkload(name);
        ASSERT_NE(w, nullptr);
        auto prog = sim::compile(w->source);
        auto base = sim::runTimed(prog, MachineConfig::baseline());
        auto fast = sim::runTimed(prog, MachineConfig::proposed());
        EXPECT_GE(sim::speedup(base, fast), 0.995) << name;
    }
}
