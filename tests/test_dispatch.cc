/**
 * @file
 * Predecode + dispatch-engine tests.
 *
 * The contract under test: the computed-goto (threaded) and portable
 * switch dispatch loops are observably identical — same committed
 * stream, same stats documents byte for byte, same guest traps —
 * because they share one set of handler bodies; and the legacy
 * decode-as-you-go reference interpreter (which shares none of the
 * predecode machinery) agrees with both, pinning the predecoder
 * against an independent oracle. Plus unit coverage of the predecoder
 * itself (flag words, handler specialization, branch target
 * pre-splitting, the past-the-end sentinel, the process-wide stream
 * cache) and the typed guest-fault taxonomy.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "ckpt/serial.hh"
#include "isa/builder.hh"
#include "pipeline/telemetry.hh"
#include "sim/ckpt_run.hh"
#include "sim/decoded.hh"
#include "sim/emulator.hh"
#include "sim/simulator.hh"
#include "support/logging.hh"
#include "verify/ckpt_diff.hh"
#include "verify/invariant_checker.hh"
#include "verify/program_gen.hh"

using namespace elag;
using namespace elag::isa;
namespace build = elag::isa::build;

namespace {

/** Restore the Auto dispatch mode however a test exits. */
struct DispatchModeGuard
{
    explicit DispatchModeGuard(sim::DispatchMode mode)
    {
        sim::setDispatchMode(mode);
    }
    ~DispatchModeGuard()
    {
        sim::setDispatchMode(sim::DispatchMode::Auto);
    }
};

/** Assemble a raw program (no globals). */
isa::MachineProgram
assemble(std::vector<Instruction> code)
{
    isa::MachineProgram prog;
    prog.code = std::move(code);
    prog.globalSize = 8;
    prog.globalInit.assign(8, 0);
    prog.verify();
    return prog;
}

/**
 * The full machine-readable stats document of one verified timed run
 * under the given dispatch mode — the byte-identity anchor.
 */
std::string
statsDocUnder(const sim::CompiledProgram &prog, sim::DispatchMode mode)
{
    DispatchModeGuard guard(mode);
    pipeline::LoadTelemetry telemetry;
    verify::InvariantChecker checker;
    std::vector<pipeline::Observer *> observers{&telemetry, &checker};
    auto base = sim::runTimed(
        prog, pipeline::MachineConfig::baseline());
    auto timed = sim::runTimed(prog,
                               pipeline::MachineConfig::proposed(),
                               500'000'000, observers);
    checker.finish(timed.pipe);
    return sim::statsReportJson("<dispatch-diff>", "proposed", "",
                                prog, base, timed, telemetry);
}

} // namespace

// ---------------------------------------------------------------
// Predecode units.
// ---------------------------------------------------------------

TEST(Predecode, FlagWordAndSourcesMatchTheDecoder)
{
    std::vector<Instruction> cases = {
        build::rrr(Opcode::ADD, 5, 6, 7),
        build::rri(Opcode::ADDI, 5, 0, 42),
        build::load(LoadSpec::Normal, 5, 6, 16),
        build::loadx(LoadSpec::EarlyCalc, 5, 6, 7),
        build::store(7, 6, 16),
        build::branch(Opcode::BNE, 5, 6, 3),
        build::jal(1, 9),
        build::halt(),
    };
    for (const Instruction &inst : cases) {
        sim::DecodedInst d = sim::decodeInst(inst);
        EXPECT_EQ(d.flags, isa::decodeFlags(inst))
            << opcodeName(inst.op);
        EXPECT_TRUE(d.flags & isa::flag::Valid);
        int s1, s2;
        inst.intSources(s1, s2);
        EXPECT_EQ(d.src1, s1) << opcodeName(inst.op);
        EXPECT_EQ(d.src2, s2) << opcodeName(inst.op);
        EXPECT_EQ(isa::flagFuClass(d.flags), inst.fuClass());
        EXPECT_EQ(isa::flagLoadSpec(d.flags), inst.spec);
    }
}

TEST(Predecode, HandlersSpecializeByModeAndWidth)
{
    Instruction ld = build::load(LoadSpec::Normal, 5, 6, 16);
    EXPECT_EQ(sim::decodeInst(ld).handler, sim::Handler::LOAD_BO_W);
    ld.width = MemWidth::Byte;
    EXPECT_EQ(sim::decodeInst(ld).handler, sim::Handler::LOAD_BO_B);
    ld.mode = AddrMode::BaseIndex;
    EXPECT_EQ(sim::decodeInst(ld).handler, sim::Handler::LOAD_BI_B);

    Instruction st = build::store(7, 6, 16);
    EXPECT_EQ(sim::decodeInst(st).handler, sim::Handler::STORE_BO_W);
    st.mode = AddrMode::BaseIndex;
    EXPECT_EQ(sim::decodeInst(st).handler, sim::Handler::STORE_BI_W);

    Instruction fld;
    fld.op = Opcode::FLOAD;
    fld.rd = 3;
    fld.rs1 = 6;
    EXPECT_EQ(sim::decodeInst(fld).handler, sim::Handler::FLOAD_BO);
    fld.mode = AddrMode::BaseIndex;
    EXPECT_EQ(sim::decodeInst(fld).handler, sim::Handler::FLOAD_BI);
}

TEST(Predecode, BranchTargetsArePreSplit)
{
    Instruction beq = build::branch(Opcode::BEQ, 5, 6, 17);
    EXPECT_EQ(sim::decodeInst(beq).target, 17u);
    Instruction jmp = build::jmp(9);
    EXPECT_EQ(sim::decodeInst(jmp).target, 9u);
    // JR's target is a register value — nothing to pre-split.
    Instruction jr;
    jr.op = Opcode::JR;
    jr.rs1 = 1;
    EXPECT_EQ(sim::decodeInst(jr).target, 0u);
}

TEST(Predecode, StreamCarriesOneTrapSentinel)
{
    auto prog = assemble({build::nop(), build::halt()});
    sim::DecodedStream stream(prog);
    ASSERT_EQ(stream.size(), prog.code.size() + 1);
    EXPECT_EQ(stream.programSize(), prog.code.size());
    EXPECT_EQ(stream.at(stream.size() - 1).handler,
              sim::Handler::TRAP_PCRANGE);
}

TEST(Predecode, DegenerateEmptyProgramIsOneSentinel)
{
    isa::MachineProgram prog;
    prog.globalSize = 8;
    prog.globalInit.assign(8, 0);
    sim::DecodedStream stream(prog);
    ASSERT_EQ(stream.size(), 1u);
    EXPECT_EQ(stream.programSize(), 0u);
    EXPECT_EQ(stream.at(0).handler, sim::Handler::TRAP_PCRANGE);
}

TEST(Predecode, StreamCacheSharesByContentHash)
{
    sim::DecodedStream::clearCache();
    auto prog = assemble({build::nop(), build::halt()});
    auto a = sim::DecodedStream::get(prog);
    auto b = sim::DecodedStream::get(prog);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(sim::DecodedStream::cacheSize(), 1u);

    // Same code via an independently built (equal) program hits too.
    auto clone = assemble({build::nop(), build::halt()});
    EXPECT_EQ(sim::DecodedStream::get(clone).get(), a.get());
    EXPECT_EQ(sim::DecodedStream::cacheSize(), 1u);

    auto other = assemble({build::halt()});
    EXPECT_NE(sim::DecodedStream::get(other).get(), a.get());
    EXPECT_EQ(sim::DecodedStream::cacheSize(), 2u);
    sim::DecodedStream::clearCache();
    EXPECT_EQ(sim::DecodedStream::cacheSize(), 0u);
}

// ---------------------------------------------------------------
// Typed guest traps, under both dispatch modes.
// ---------------------------------------------------------------

class GuestTraps
    : public ::testing::TestWithParam<sim::DispatchMode>
{
  protected:
    void
    SetUp() override
    {
        if (GetParam() == sim::DispatchMode::Threaded &&
            !sim::threadedDispatchCompiled()) {
            GTEST_SKIP() << "threaded dispatch not compiled in";
        }
        sim::setDispatchMode(GetParam());
    }
    void
    TearDown() override
    {
        sim::setDispatchMode(sim::DispatchMode::Auto);
    }

    static sim::GuestTrapError
    trapOf(const isa::MachineProgram &prog)
    {
        sim::Emulator emu(prog);
        try {
            emu.run();
        } catch (const sim::GuestTrapError &e) {
            return e;
        }
        ADD_FAILURE() << "expected a guest trap";
        return sim::GuestTrapError(sim::GuestTrapKind::BadOpcode, 0,
                                   "unreached");
    }
};

TEST_P(GuestTraps, DivideAndRemainderByZero)
{
    auto div = trapOf(assemble({
        build::li(10, 7),
        build::rrr(Opcode::DIV, 11, 10, 0),
        build::halt(),
    }));
    EXPECT_EQ(div.kind(), sim::GuestTrapKind::DivideByZero);
    EXPECT_EQ(div.trapPc(), 1u);

    auto rem = trapOf(assemble({
        build::rrr(Opcode::REM, 11, 10, 0),
        build::halt(),
    }));
    EXPECT_EQ(rem.kind(), sim::GuestTrapKind::RemainderByZero);
    EXPECT_EQ(rem.trapPc(), 0u);
}

TEST_P(GuestTraps, FallingOffTheEndIsPcOutOfRange)
{
    auto trap = trapOf(assemble({build::nop(), build::nop()}));
    EXPECT_EQ(trap.kind(), sim::GuestTrapKind::PcOutOfRange);
    EXPECT_EQ(trap.trapPc(), 2u);
}

TEST_P(GuestTraps, WildIndirectJumpIsPcOutOfRange)
{
    auto trap = trapOf(assemble({
        build::li(10, 0x100000),
        build::jr(10),
        build::halt(),
    }));
    EXPECT_EQ(trap.kind(), sim::GuestTrapKind::PcOutOfRange);
    EXPECT_EQ(trap.trapPc(), 1u);
}

TEST_P(GuestTraps, OutOfRangeEffectiveAddressIsBadAddress)
{
    auto load = trapOf(assemble({
        build::li(10, -4),
        build::load(LoadSpec::Normal, 11, 10, 0),
        build::halt(),
    }));
    EXPECT_EQ(load.kind(), sim::GuestTrapKind::BadAddress);
    EXPECT_EQ(load.trapPc(), 1u);

    auto store = trapOf(assemble({
        build::li(10, -4),
        build::store(10, 10, 0),
        build::halt(),
    }));
    EXPECT_EQ(store.kind(), sim::GuestTrapKind::BadAddress);
}

TEST_P(GuestTraps, BadOpcodeTrapsLazily)
{
    // The junk opcode sits past HALT: predecode must stay lazy and
    // the program must run.
    Instruction junk;
    junk.op = static_cast<Opcode>(200);
    {
        sim::Emulator emu(assemble({build::halt(), junk}));
        auto result = emu.run();
        EXPECT_TRUE(result.halted);
    }
    // Reached, it traps with the typed kind.
    auto trap = trapOf(assemble({junk, build::halt()}));
    EXPECT_EQ(trap.kind(), sim::GuestTrapKind::BadOpcode);
    EXPECT_EQ(trap.trapPc(), 0u);
}

TEST_P(GuestTraps, TrapPreservesArchitecturalPc)
{
    // After a trap, a checkpoint of the emulator must hold the
    // faulting instruction's PC, in either dispatch mode.
    auto prog = assemble({
        build::li(10, 7),
        build::rrr(Opcode::DIV, 11, 10, 0),
        build::halt(),
    });
    sim::Emulator emu(prog);
    EXPECT_THROW(emu.run(), sim::GuestTrapError);
    ckpt::Writer w;
    emu.serialize(w);
    ckpt::Reader r(w.data().data(), w.size());
    EXPECT_EQ(r.u32(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, GuestTraps,
    ::testing::Values(sim::DispatchMode::Switch,
                      sim::DispatchMode::Threaded,
                      sim::DispatchMode::Legacy),
    [](const ::testing::TestParamInfo<sim::DispatchMode> &info) {
        switch (info.param) {
          case sim::DispatchMode::Switch: return "Switch";
          case sim::DispatchMode::Threaded: return "Threaded";
          default: return "Legacy";
        }
    });

// ---------------------------------------------------------------
// Differential: threaded vs. switch vs. legacy, byte-identical
// stats.
// ---------------------------------------------------------------

TEST(DispatchDifferential, GeneratedProgramsMatchByteForByte)
{
    setQuiet(true);

    constexpr int kPrograms = 6;
    verify::ProgramGen gen(20260809);
    for (int i = 0; i < kPrograms; ++i) {
        std::string source = gen.generate();
        sim::CompiledProgram prog = sim::compile(source);
        std::string switched =
            statsDocUnder(prog, sim::DispatchMode::Switch);
        ASSERT_NE(switched.find("\"cycles\""), std::string::npos);
        // The legacy interpreter shares no predecode machinery with
        // the switch loop: agreement here pins the predecoder itself.
        std::string legacy =
            statsDocUnder(prog, sim::DispatchMode::Legacy);
        ASSERT_EQ(switched, legacy)
            << "legacy interpreter diverged on generated program "
            << i << " (seed 20260809)";
        if (sim::threadedDispatchCompiled()) {
            std::string threaded =
                statsDocUnder(prog, sim::DispatchMode::Threaded);
            ASSERT_EQ(switched, threaded)
                << "dispatch modes diverged on generated program "
                << i << " (seed 20260809)";
        }
    }
}

TEST(DispatchDifferential, FunctionalResultsMatchIncludingCap)
{
    setQuiet(true);

    verify::ProgramGen gen(77);
    sim::CompiledProgram prog = sim::compile(gen.generate());

    std::vector<sim::DispatchMode> modes = {sim::DispatchMode::Switch,
                                            sim::DispatchMode::Legacy};
    if (sim::threadedDispatchCompiled())
        modes.push_back(sim::DispatchMode::Threaded);

    // Odd caps land mid-program: the capped PC, retire count, and
    // accumulated output must agree between modes.
    for (uint64_t cap : {1ull, 37ull, 10'001ull, 500'000'000ull}) {
        sim::EmulationResult ref;
        ckpt::Writer wref;
        for (size_t m = 0; m < modes.size(); ++m) {
            DispatchModeGuard guard(modes[m]);
            sim::Emulator emu(prog.code.program);
            sim::EmulationResult got = emu.run(cap);
            ckpt::Writer w;
            emu.serialize(w);
            if (m == 0) {
                ref = got;
                wref = std::move(w);
                continue;
            }
            EXPECT_EQ(ref.instructions, got.instructions)
                << "cap " << cap << " mode " << m;
            EXPECT_EQ(ref.halted, got.halted)
                << "cap " << cap << " mode " << m;
            EXPECT_EQ(ref.exitValue, got.exitValue)
                << "cap " << cap << " mode " << m;
            EXPECT_EQ(ref.output, got.output)
                << "cap " << cap << " mode " << m;
            ASSERT_EQ(wref.size(), w.size())
                << "cap " << cap << " mode " << m;
            EXPECT_EQ(std::memcmp(wref.data().data(),
                                  w.data().data(), wref.size()),
                      0)
                << "architectural state diverged at cap " << cap
                << " mode " << m;
        }
    }
}

// ---------------------------------------------------------------
// Checkpointing under threaded dispatch.
// ---------------------------------------------------------------

TEST(DispatchCkpt, KillResumeEquivalenceHoldsUnderThreadedDispatch)
{
    if (!sim::threadedDispatchCompiled())
        GTEST_SKIP() << "threaded dispatch not compiled in";
    setQuiet(true);
    DispatchModeGuard guard(sim::DispatchMode::Threaded);
    std::string path =
        std::string(::testing::TempDir()) + "dispatch_equiv.ckpt";
    verify::ProgramGen gen(4242);
    verify::CkptDiffResult diff = verify::checkKillResumeEquivalence(
        gen.generate(), path, 500'000'000, 15'000,
        /*with_checker=*/true);
    EXPECT_GT(diff.legs, 0u);
    EXPECT_TRUE(diff.equivalent) << diff.detail;
}

TEST(DispatchCkpt, SnapshotCrossesDispatchModes)
{
    if (!sim::threadedDispatchCompiled())
        GTEST_SKIP() << "threaded dispatch not compiled in";
    setQuiet(true);
    // Checkpoint mid-run under threaded dispatch, restore and finish
    // under switch dispatch: checkpoints carry architectural state
    // only, so the mode must not matter.
    verify::ProgramGen gen(99);
    sim::CompiledProgram prog = sim::compile(gen.generate());
    auto machine = pipeline::MachineConfig::proposed();

    // Snapshot mid-program: halve the program's own dynamic length
    // rather than guessing a boundary.
    uint64_t half;
    {
        sim::Emulator emu(prog.code.program);
        uint64_t total = emu.run().instructions;
        ASSERT_GT(total, 2u);
        half = total / 2;
    }

    sim::TimedResult whole;
    {
        DispatchModeGuard guard(sim::DispatchMode::Threaded);
        whole = sim::runTimed(prog, machine);
    }

    ckpt::Writer w;
    {
        DispatchModeGuard guard(sim::DispatchMode::Threaded);
        sim::ResumableTimedRun run(prog, machine, 500'000'000);
        run.step(half, {});
        ASSERT_FALSE(run.done());
        run.serialize(w);
    }
    sim::TimedResult stitched;
    {
        DispatchModeGuard guard(sim::DispatchMode::Switch);
        sim::ResumableTimedRun run(prog, machine, 500'000'000);
        ckpt::Reader r(w.data().data(), w.size());
        run.restore(r);
        while (!run.done())
            run.step(half, {});
        stitched = run.finish();
    }
    EXPECT_EQ(whole.pipe.cycles, stitched.pipe.cycles);
    EXPECT_EQ(whole.pipe.instructions, stitched.pipe.instructions);
    EXPECT_EQ(whole.emulation.exitValue,
              stitched.emulation.exitValue);
    EXPECT_EQ(whole.emulation.output, stitched.emulation.output);
}
